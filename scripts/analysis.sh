#!/usr/bin/env bash
# Static/dynamic analysis gate (DESIGN.md §10): loom model checking of
# the lock-free orchestration core, the secret-hygiene lint, randomized
# mailbox-accounting properties, and — when the nightly components are
# installed — Miri and ThreadSanitizer passes.
#
# Required (hard-fail): loom suites, theta-lint, mailbox proptests.
# Soft (skipped with a notice when the toolchain lacks them): Miri,
# TSan. CI treats only the required stages as blocking so the gate
# stays runnable on offline or stable-only hosts.
#
# Usage: scripts/analysis.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== loom: exhaustive model checking (orchestration handshake) =="
RUST_BACKTRACE=1 cargo test -q -p theta-orchestration --features loom --test loom

echo
echo "== loom: exhaustive model checking (metrics counters/histograms) =="
RUST_BACKTRACE=1 cargo test -q -p theta-metrics --features loom --test loom

echo
echo "== loom: dual-mode sanity (unit suites with the loom feature on) =="
cargo test -q -p theta-orchestration --features loom --lib
cargo test -q -p theta-metrics --features loom --lib

echo
echo "== theta-lint: secret-hygiene scan =="
cargo run -q -p theta-lint

echo
echo "== theta-analyze: symbol-graph passes (taint, locks, blocking, panics) =="
# Required stage. Taint and lock-order findings always fail; blocking
# and panic-path findings fail unless justified (inline `theta: allow`,
# crates/lint/panics.allow, or the checked-in baseline). The SUMMARY
# line carries per-pass counts into the CI job summary.
analyze_log="$(mktemp)"
analyze_rc=0
cargo run -q -p theta-lint -- analyze 2>"$analyze_log" || analyze_rc=$?
cat "$analyze_log" >&2
if [[ "$analyze_rc" -ne 0 ]]; then
    rm -f "$analyze_log"
    echo "theta-analyze found unjustified findings — see the report above." >&2
    exit 1
fi
if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
    {
        echo "### theta-analyze"
        grep '^SUMMARY' "$analyze_log" \
            | sed 's/^SUMMARY//; s/ /\n- /g' || true
    } >> "$GITHUB_STEP_SUMMARY"
fi
rm -f "$analyze_log"

echo
echo "== proptest: mailbox accounting under randomized interleavings =="
RUST_BACKTRACE=1 cargo test -q -p theta-orchestration --test proptest_mailbox

nightly_has() {
    rustup component list --toolchain nightly 2>/dev/null \
        | grep -q "^$1.*(installed)"
}

echo
if rustup run nightly cargo miri --version >/dev/null 2>&1; then
    echo "== miri: UB check on theta-codec + theta-metrics =="
    cargo +nightly miri test -q -p theta-codec -p theta-metrics
else
    echo "== miri skipped (nightly miri component not installed) =="
fi

echo
if nightly_has "rust-src"; then
    echo "== tsan: repeated saturation stress (nightly, instrumented std) =="
    host="$(rustc -vV | sed -n 's/^host: //p')"
    RUSTFLAGS="-Zsanitizer=thread" THETA_STRESS_REPEATS=3 RUST_BACKTRACE=1 \
        cargo +nightly test -q -Zbuild-std --target "$host" \
        --release --test stress_concurrency \
        saturation_mixed_schemes_all_agree_nothing_dropped
else
    echo "== tsan skipped (nightly rust-src component not installed) =="
fi

echo
echo "Analysis gate passed."
