#!/usr/bin/env bash
# Tier-1 CI gate: build, full test suite, the release-mode concurrency
# stress suite, and clippy (deny warnings) workspace-wide.
#
# Usage: scripts/ci.sh [--no-clippy]
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo
echo "== cargo test (workspace) =="
cargo test -q

echo
echo "== saturation stress test (release, full 64+ request mix) =="
RUST_BACKTRACE=1 cargo test -q --release --test stress_concurrency

echo
echo "== mailbox handoff interleaving harness (release, repeated runs) =="
RUST_BACKTRACE=1 cargo test -q --release -p theta-orchestration \
    handoff_interleaving_never_loses_messages

if [[ "${1:-}" != "--no-clippy" ]] && cargo clippy --version >/dev/null 2>&1; then
    echo
    echo "== cargo clippy -D warnings (workspace) =="
    cargo clippy --workspace -- -D warnings
else
    echo
    echo "== clippy skipped =="
fi

echo
echo "CI gate passed."
