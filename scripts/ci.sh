#!/usr/bin/env bash
# Tier-1 CI gate: build, full test suite, and clippy (deny warnings) on
# the crates the observability subsystem touches.
#
# Usage: scripts/ci.sh [--no-clippy]
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo
echo "== cargo test (workspace) =="
cargo test -q

if [[ "${1:-}" != "--no-clippy" ]] && cargo clippy --version >/dev/null 2>&1; then
    echo
    echo "== cargo clippy -D warnings (observability-touched crates) =="
    cargo clippy \
        -p theta-metrics \
        -p theta-protocols \
        -p theta-network \
        -p theta-orchestration \
        -p theta-service \
        -p theta-core \
        -p theta-bench \
        -- -D warnings
else
    echo
    echo "== clippy skipped =="
fi

echo
echo "CI gate passed."
