#!/usr/bin/env bash
# Tier-1 CI gate: build, full test suite, the release-mode concurrency
# stress suite, and clippy (deny warnings) workspace-wide.
#
# The static/dynamic analysis gate (loom model checking, secret-hygiene
# lint, Miri/TSan) lives in scripts/analysis.sh and runs as its own CI
# job; pass --with-analysis to chain it here locally.
#
# Usage: scripts/ci.sh [--no-clippy] [--with-analysis]
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo
echo "== cargo test (workspace) =="
cargo test -q

echo
echo "== saturation stress test (release, full 64+ request mix) =="
RUST_BACKTRACE=1 cargo test -q --release --test stress_concurrency

echo
echo "== gossip overlay integration (release, 20 nodes, partition + tamper) =="
RUST_BACKTRACE=1 cargo test -q --release --test integration_gossip

echo
echo "== mailbox handoff interleaving harness (release, repeated runs) =="
RUST_BACKTRACE=1 cargo test -q --release -p theta-orchestration \
    handoff_interleaving_never_loses_messages

echo
echo "== cross-instance batch verify smoke (release, >=1.5x gate) =="
cargo run -q --release -p theta-bench --bin bench_cross_batch -- --quick

echo
echo "== worker-pool scaling smoke (release; asserts 2-worker >= 1.5x when host_cores >= 2, records skip otherwise) =="
cargo run -q --release -p theta-bench --bin bench_parallel -- --quick

echo
echo "== observability overhead gate (tracing + profiler < 5% on the hot path, quick) =="
cargo run -q --release -p theta-bench --bin bench_observability -- --quick --gate

echo
echo "== front-end C10k gate (>=5k idle connections, flat threads, p99 delta < 10%) =="
cargo run -q --release -p theta-bench --bin bench_frontend -- --quick --gate

if [[ " $* " != *" --no-clippy "* ]] && cargo clippy --version >/dev/null 2>&1; then
    echo
    echo "== cargo clippy -D warnings (workspace) =="
    cargo clippy --workspace -- -D warnings
else
    echo
    echo "== clippy skipped =="
fi

if [[ " $* " == *" --with-analysis "* ]]; then
    echo
    echo "== analysis gate (loom, lint, proptest, miri/tsan) =="
    scripts/analysis.sh
fi

echo
echo "CI gate passed."
