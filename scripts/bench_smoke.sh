#!/usr/bin/env bash
# Quick smoke run of the scalar-multiplication kernel benchmarks.
#
# Runs the Criterion `kernels` bench with a shrunken measurement budget
# (CRITERION_QUICK=1) and then the `bench_kernels` binary, which writes
# the old-vs-new speedup table to BENCH_kernels.json at the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

export CRITERION_QUICK=1

echo "== criterion kernels bench (quick mode) =="
cargo bench -p theta-bench --bench kernels

echo
echo "== kernel speedup table -> BENCH_kernels.json =="
cargo run --release -p theta-bench --bin bench_kernels -- --quick

echo
echo "BENCH_kernels.json:"
cat BENCH_kernels.json

echo
echo "== observability instrumentation overhead -> BENCH_observability.json =="
cargo run --release -p theta-bench --bin bench_observability -- --quick

echo
echo "BENCH_observability.json:"
cat BENCH_observability.json
