//! # theta-sync
//!
//! The one place the workspace's concurrency-sensitive crates import
//! their synchronization primitives from.
//!
//! - **Default build**: zero-cost re-exports of `std::sync` (and
//!   `std::thread` spawning) — identical types, identical codegen.
//! - **`--features loom`**: the same names resolve to the vendored
//!   loom mirrors, whose operations are scheduling points for the
//!   model checker. [`model`]/[`model_bounded`] then explore every
//!   thread interleaving of a test body (bounded-preemption DFS).
//!
//! Code that must be model-checkable follows two rules:
//!
//! 1. import `Mutex`/`Condvar`/`atomic::*` from `theta_sync`, never
//!    from `std::sync` directly;
//! 2. keep the checked core free of time, randomness and map-iteration
//!    nondeterminism (the checker replays schedules deterministically).
//!
//! The loom mirrors are dual-mode — outside a `model()` call they
//! delegate to `std` — so a crate compiled with the `loom` feature
//! still runs its ordinary unit tests unchanged.

#[cfg(not(feature = "loom"))]
mod imp {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }

    pub mod thread {
        pub use std::thread::{spawn, yield_now, JoinHandle};
    }

    /// Without the `loom` feature a "model" is a single plain run; the
    /// exhaustive exploration only exists under `--features loom`.
    pub fn model<F: Fn() + Send + Sync + 'static>(f: F) {
        f();
    }

    /// See [`model`].
    pub fn model_bounded<F: Fn() + Send + Sync + 'static>(_bound: usize, f: F) {
        f();
    }
}

#[cfg(feature = "loom")]
mod imp {
    pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    pub mod atomic {
        pub use loom::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }

    pub mod thread {
        pub use loom::thread::{spawn, yield_now, JoinHandle};
    }

    pub use loom::{model, model_bounded};
}

pub use imp::*;

/// True when this build resolves to the loom mirrors (used by tests to
/// assert they are actually model-checking).
pub const LOOM: bool = cfg!(feature = "loom");

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicU64, Ordering};
    use super::*;

    #[test]
    fn shim_smoke() {
        // Whichever backend is active, the basic API shape holds.
        let m = Mutex::new(0u32);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 1);
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
        assert_eq!(a.load(Ordering::Relaxed), 3);
        model(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = x.clone();
            let h = thread::spawn(move || x2.store(5, Ordering::SeqCst));
            h.join().unwrap();
            assert_eq!(x.load(Ordering::SeqCst), 5);
        });
    }
}
