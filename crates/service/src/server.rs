//! The RPC server: accepts connections, answers scheme-API calls inline
//! and protocol-API calls from per-request waiter threads.
//!
//! Two cluster-plane endpoints live here as well:
//!
//! - **CollectTrace** fans `GetTrace` out across the roster
//!   ([`ClusterConfig::peers`]) and merges the per-node journals into one
//!   timeline on the collector's clock, using the per-link offsets the
//!   transport probed at handshake time
//!   (`theta_clock_offset_micros{peer}`);
//! - **GetHealth** is an SLO watchdog: cumulative fault counters are
//!   judged as *deltas since the previous poll*, and the end-to-end p99
//!   over the same window, so a node that saturated and then drained
//!   reports degraded exactly once and ready thereafter.

use crate::{
    write_frame, ClusterTrace, ClusterTraceEntry, Frame, HealthReport, NodeTrace, PublicKeyChest,
    RpcClient, RpcRequest, RpcResponse,
};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use theta_codec::Decode;
use theta_metrics::histogram::HistogramSnapshot;
use theta_metrics::observability::{
    E2E_HISTOGRAM, MAILBOX_DROPPED_COUNTER, OVERLOAD_REJECTIONS_COUNTER, RUNQUEUE_DEPTH_GAUGE,
    SUBMISSION_QUEUE_DEPTH_GAUGE,
};
use theta_metrics::{NodeObservability, TraceEventKind};
use theta_orchestration::{NodeHandle, SubmitError, WaitError};
use theta_schemes::registry::SchemeId;

/// SLO thresholds the [`RpcRequest::GetHealth`] watchdog judges against.
#[derive(Clone, Debug)]
pub struct SloThresholds {
    /// End-to-end p99 latency bound, applied to the samples recorded
    /// since the previous health poll.
    pub p99_e2e: Duration,
    /// Bound on the instantaneous run-queue and submission-queue depths.
    pub max_queue_depth: i64,
}

impl Default for SloThresholds {
    fn default() -> Self {
        SloThresholds { p99_e2e: Duration::from_secs(5), max_queue_depth: 256 }
    }
}

/// Cluster-plane configuration: the roster CollectTrace fans out to and
/// the SLO thresholds GetHealth judges against.
#[derive(Clone, Debug, Default)]
pub struct ClusterConfig {
    /// `(node id, RPC address)` of every node, including the serving
    /// node (its own entry is answered locally, not dialed).
    pub peers: Vec<(u16, SocketAddr)>,
    /// The serving node's 1-based roster id.
    pub self_id: u16,
    /// Health-plane SLOs.
    pub slo: SloThresholds,
}

/// Handle to a running RPC service.
pub struct ServiceHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections (in-flight requests finish).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// The watchdog's memory between health polls: the counter and
/// histogram values seen last time, so checks judge the window since
/// the previous poll instead of the process lifetime.
#[derive(Default)]
struct HealthBaseline {
    e2e: HistogramSnapshot,
    mailbox_dropped: u64,
    overload_rejections: u64,
    link_errors: u64,
}

struct HealthState {
    prev: Mutex<HealthBaseline>,
}

/// Starts serving the two Thetacrypt APIs for a node, standalone: no
/// roster (CollectTrace reports this node only) and default SLOs.
///
/// `node` is the orchestration handle whose Θ-network executes protocol
/// requests; `keys` backs the scheme API. Binds `addr` (use port 0 for
/// an ephemeral port, then read [`ServiceHandle::addr`]).
///
/// # Errors
///
/// I/O errors from binding the listener.
pub fn serve(
    addr: SocketAddr,
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    request_timeout: Duration,
) -> std::io::Result<ServiceHandle> {
    serve_with_cluster(addr, node, keys, request_timeout, ClusterConfig::default())
}

/// [`serve`] plus the cluster plane: a roster for CollectTrace fan-out
/// and SLO thresholds for GetHealth.
///
/// # Errors
///
/// I/O errors from binding the listener.
pub fn serve_with_cluster(
    addr: SocketAddr,
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    request_timeout: Duration,
    cluster: ClusterConfig,
) -> std::io::Result<ServiceHandle> {
    serve_on(TcpListener::bind(addr)?, node, keys, request_timeout, cluster)
}

/// [`serve_with_cluster`] on a pre-bound listener — lets a caller bind
/// every node's ephemeral port first, learn the full roster, and only
/// then start the servers with that roster.
///
/// # Errors
///
/// I/O errors reading the listener's local address.
pub fn serve_on(
    listener: TcpListener,
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    request_timeout: Duration,
    cluster: ClusterConfig,
) -> std::io::Result<ServiceHandle> {
    let bound = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shutdown_accept = shutdown.clone();
    let cluster = Arc::new(cluster);
    let health = Arc::new(HealthState { prev: Mutex::new(HealthBaseline::default()) });
    let join = std::thread::Builder::new()
        .name("theta-rpc-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if shutdown_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let node = node.clone();
                let keys = keys.clone();
                let cluster = cluster.clone();
                let health = health.clone();
                std::thread::Builder::new()
                    .name("theta-rpc-conn".into())
                    .spawn(move || {
                        handle_connection(stream, node, keys, request_timeout, cluster, health)
                    })
                    .ok();
            }
        })
        .expect("spawn accept loop");
    Ok(ServiceHandle { addr: bound, shutdown, join: Some(join) })
}

/// Short method label used by the per-variant RPC counters.
fn method_name(request: &RpcRequest) -> &'static str {
    match request {
        RpcRequest::Protocol(_) => "protocol",
        RpcRequest::GetPublicKey(_) => "get_public_key",
        RpcRequest::Encrypt { .. } => "encrypt",
        RpcRequest::VerifySignature { .. } => "verify_signature",
        RpcRequest::GetNodeStats => "get_node_stats",
        RpcRequest::GetMetrics => "get_metrics",
        RpcRequest::GetTrace(_) => "get_trace",
        RpcRequest::CollectTrace(_) => "collect_trace",
        RpcRequest::GetHealth => "get_health",
    }
}

fn handle_connection(
    stream: TcpStream,
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    request_timeout: Duration,
    cluster: Arc<ClusterConfig>,
    health: Arc<HealthState>,
) {
    stream.set_nodelay(true).ok();
    let writer = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    }));
    let obs = node.observability();
    let rpc_timer = obs.registry.histogram("theta_rpc_request_seconds");
    let mut reader = stream;
    loop {
        let frame: Frame<RpcRequest> = match crate::read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => return, // client gone or malformed
        };
        let id = frame.id;
        let started = std::time::Instant::now();
        obs.registry
            .counter_with("theta_rpc_requests_total", &[("method", method_name(&frame.body))])
            .inc();
        match frame.body {
            RpcRequest::Protocol(request) => {
                obs.journal.record(
                    request.instance_id().0,
                    theta_metrics::TraceEventKind::RpcReceived,
                );
                // Backpressure-aware admission: a full submission queue
                // refuses the request up front instead of buffering it
                // without bound behind the router.
                let pending = match node.try_submit(request) {
                    Ok(p) => p,
                    Err(SubmitError::Overloaded) => {
                        rpc_timer.record(started.elapsed());
                        let _ = write_frame(
                            &mut writer.lock(),
                            &Frame { id, body: RpcResponse::Overloaded },
                        );
                        continue;
                    }
                    Err(SubmitError::NodeStopped) => {
                        rpc_timer.record(started.elapsed());
                        let _ = write_frame(
                            &mut writer.lock(),
                            &Frame {
                                id,
                                body: RpcResponse::Error("the node has stopped".into()),
                            },
                        );
                        continue;
                    }
                };
                // Answer from a waiter thread so the connection can pipeline.
                let writer = writer.clone();
                let rpc_timer = rpc_timer.clone();
                std::thread::Builder::new()
                    .name("theta-rpc-wait".into())
                    .spawn(move || {
                        let response = match pending.wait_timeout(request_timeout) {
                            Ok(result) => match result.outcome {
                                Ok(output) => RpcResponse::ProtocolResult {
                                    output: output.as_bytes().to_vec(),
                                    server_latency_us: result.elapsed.as_micros() as u64,
                                },
                                // The router's live-instance admission cap
                                // surfaces as the same wire-level refusal as
                                // a full submission queue.
                                Err(theta_schemes::SchemeError::Overloaded) => {
                                    RpcResponse::Overloaded
                                }
                                Err(e) => RpcResponse::Error(e.to_string()),
                            },
                            Err(WaitError::TimedOut) => {
                                RpcResponse::Error("request timed out".into())
                            }
                            Err(WaitError::NodeStopped) => RpcResponse::Error(
                                "the node stopped before delivering the result".into(),
                            ),
                        };
                        rpc_timer.record(started.elapsed());
                        let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
                    })
                    .ok();
                continue; // timed inside the waiter thread
            }
            RpcRequest::GetNodeStats => {
                let response = RpcResponse::NodeStats(node.counters());
                let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
            }
            RpcRequest::GetMetrics => {
                let response = RpcResponse::MetricsText(obs.render_prometheus());
                let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
            }
            RpcRequest::GetTrace(instance) => {
                let (events, truncated) = obs.journal.events_for_flagged(&instance);
                let response = if events.is_empty() && !truncated {
                    RpcResponse::Error("no trace recorded for that instance id".into())
                } else {
                    RpcResponse::Trace(NodeTrace {
                        wall_anchor_micros: obs.journal.wall_anchor_micros(),
                        truncated,
                        events,
                    })
                };
                let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
            }
            RpcRequest::CollectTrace(instance) => {
                let response =
                    RpcResponse::ClusterTrace(collect_cluster_trace(&obs, &cluster, instance));
                let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
            }
            RpcRequest::GetHealth => {
                let response = RpcResponse::Health(health_report(&obs, &cluster.slo, &health));
                let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
            }
            other => {
                let response = answer_scheme_api(other, &keys);
                let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
            }
        }
        rpc_timer.record(started.elapsed());
    }
}

fn answer_scheme_api(request: RpcRequest, keys: &PublicKeyChest) -> RpcResponse {
    match request {
        RpcRequest::GetPublicKey(scheme) => match keys.encoded_key(scheme) {
            Some(bytes) => RpcResponse::PublicKey(bytes),
            None => RpcResponse::Error(format!("scheme {scheme} not provisioned")),
        },
        RpcRequest::Encrypt { scheme, label, message } => {
            let mut rng = rand::rngs::OsRng;
            match scheme {
                SchemeId::Sg02 => match &keys.sg02 {
                    Some(pk) => {
                        let ct = theta_schemes::sg02::encrypt(pk, &label, &message, &mut rng);
                        RpcResponse::Ciphertext(theta_codec::Encode::encoded(&ct))
                    }
                    None => RpcResponse::Error("sg02 not provisioned".into()),
                },
                SchemeId::Bz03 => match &keys.bz03 {
                    Some(pk) => {
                        let ct = theta_schemes::bz03::encrypt(pk, &label, &message, &mut rng);
                        RpcResponse::Ciphertext(theta_codec::Encode::encoded(&ct))
                    }
                    None => RpcResponse::Error("bz03 not provisioned".into()),
                },
                other => RpcResponse::Error(format!("{other} is not a cipher")),
            }
        }
        RpcRequest::VerifySignature { scheme, message, signature } => {
            let verified = match scheme {
                SchemeId::Sh00 => keys.sh00.as_ref().map(|pk| {
                    theta_schemes::sh00::Signature::decoded(&signature)
                        .map(|sig| theta_schemes::sh00::verify(pk, &message, &sig))
                        .unwrap_or(false)
                }),
                SchemeId::Bls04 => keys.bls04.as_ref().map(|pk| {
                    theta_schemes::bls04::Signature::decoded(&signature)
                        .map(|sig| theta_schemes::bls04::verify(pk, &message, &sig))
                        .unwrap_or(false)
                }),
                SchemeId::Kg20 => keys.kg20.as_ref().map(|pk| {
                    theta_schemes::kg20::Signature::decoded(&signature)
                        .map(|sig| theta_schemes::kg20::verify(pk, &message, &sig))
                        .unwrap_or(false)
                }),
                other => return RpcResponse::Error(format!("{other} is not a signature scheme")),
            };
            match verified {
                Some(ok) => RpcResponse::Verified(ok),
                None => RpcResponse::Error(format!("scheme {scheme} not provisioned")),
            }
        }
        RpcRequest::Protocol(_)
        | RpcRequest::GetNodeStats
        | RpcRequest::GetMetrics
        | RpcRequest::GetTrace(_)
        | RpcRequest::CollectTrace(_)
        | RpcRequest::GetHealth => {
            unreachable!("handled by the connection loop")
        }
    }
}

/// Per-peer dial/read bound for the CollectTrace fan-out: a slow or
/// dead peer costs at most this, and the merged timeline simply omits
/// it (`nodes_reporting` says how many answered).
const FANOUT_TIMEOUT: Duration = Duration::from_secs(5);

/// Fans `GetTrace(instance)` out across the roster and merges every
/// answering node's journal slice into one timeline on this node's
/// clock, using the handshake-probed per-peer offsets.
fn collect_cluster_trace(
    obs: &NodeObservability,
    cluster: &ClusterConfig,
    instance: [u8; 32],
) -> ClusterTrace {
    let mut slices: Vec<(u16, i64, NodeTrace)> = Vec::new();
    let (local_events, local_truncated) = obs.journal.events_for_flagged(&instance);
    if !local_events.is_empty() || local_truncated {
        slices.push((
            cluster.self_id,
            0,
            NodeTrace {
                wall_anchor_micros: obs.journal.wall_anchor_micros(),
                truncated: local_truncated,
                events: local_events,
            },
        ));
    }
    for &(peer_id, addr) in &cluster.peers {
        if peer_id == cluster.self_id {
            continue;
        }
        let Ok(mut peer) = RpcClient::connect(addr, FANOUT_TIMEOUT) else { continue };
        // A peer with no trace answers with an error; that is "nothing
        // to contribute", not a fan-out failure.
        let Ok(slice) = peer.trace(instance) else { continue };
        let offset = obs
            .registry
            .gauge_value("theta_clock_offset_micros", &[("peer", &peer_id.to_string())])
            .unwrap_or(0);
        slices.push((peer_id, offset, slice));
    }
    merge_cluster_trace(slices)
}

/// Merges per-node journal slices into one sorted timeline.
///
/// Each event's wall time on its recording node is `wall_anchor +
/// at_micros`; the handshake probe estimated `offset ≈ remote_wall −
/// local_wall` per peer, so subtracting it maps the event onto the
/// collector's clock. The audit pass then checks the joined order is
/// causal: every receive must align after the earliest send its origin
/// node recorded for the instance.
fn merge_cluster_trace(slices: Vec<(u16, i64, NodeTrace)>) -> ClusterTrace {
    let nodes_reporting = slices.len() as u16;
    let truncated = slices.iter().any(|(_, _, s)| s.truncated);
    let mut entries: Vec<ClusterTraceEntry> = Vec::new();
    for (node, offset, slice) in slices {
        let anchor = slice.wall_anchor_micros as i64;
        for event in slice.events {
            entries.push(ClusterTraceEntry {
                node,
                aligned_micros: anchor + event.at_micros as i64 - offset,
                event,
            });
        }
    }
    entries.sort_by_key(|e| (e.aligned_micros, e.node));
    let mut causality_violations = 0u32;
    for e in &entries {
        if e.event.kind != TraceEventKind::PeerRecv {
            continue;
        }
        let earliest_send = entries
            .iter()
            .filter(|s| s.node == e.event.peer && s.event.kind == TraceEventKind::PeerSend)
            .map(|s| s.aligned_micros)
            .min();
        if earliest_send.is_some_and(|send| send > e.aligned_micros) {
            causality_violations += 1;
        }
    }
    ClusterTrace { entries, nodes_reporting, truncated, causality_violations }
}

/// The SLO watchdog: judges queue depths instantaneously and the fault
/// counters / e2e p99 over the window since the previous poll, so a
/// saturated-then-drained node reports degraded once and ready after.
fn health_report(
    obs: &NodeObservability,
    slo: &SloThresholds,
    state: &HealthState,
) -> HealthReport {
    let registry = &obs.registry;
    let e2e = registry.histogram_snapshot(E2E_HISTOGRAM, &[]).unwrap_or_default();
    let e2e_p99_micros = e2e.percentile(99.0).map_or(0, |s| (s * 1e6) as u64);
    let runqueue_depth = registry.gauge_value(RUNQUEUE_DEPTH_GAUGE, &[]).unwrap_or(0);
    let submission_queue_depth =
        registry.gauge_value(SUBMISSION_QUEUE_DEPTH_GAUGE, &[]).unwrap_or(0);
    let mailbox_dropped = registry.counter_value(MAILBOX_DROPPED_COUNTER, &[]).unwrap_or(0);
    let overload_rejections =
        registry.counter_value(OVERLOAD_REJECTIONS_COUNTER, &[]).unwrap_or(0);
    let link_errors = [
        "theta_tcp_send_errors_total",
        "theta_tcp_reader_exits_total",
        "theta_net_aead_failures_total",
    ]
    .iter()
    .map(|name| registry.counter_value(name, &[]).unwrap_or(0))
    .sum::<u64>();

    // Window everything cumulative against the previous poll's baseline.
    let (window, dropped_delta, rejected_delta, link_delta) = {
        let mut prev = state.prev.lock();
        let mut window = e2e.clone();
        for (w, p) in window.buckets.iter_mut().zip(&prev.e2e.buckets) {
            *w = w.saturating_sub(*p);
        }
        window.sum_micros = window.sum_micros.saturating_sub(prev.e2e.sum_micros);
        let deltas = (
            window,
            mailbox_dropped.saturating_sub(prev.mailbox_dropped),
            overload_rejections.saturating_sub(prev.overload_rejections),
            link_errors.saturating_sub(prev.link_errors),
        );
        *prev = HealthBaseline { e2e, mailbox_dropped, overload_rejections, link_errors };
        deltas
    };

    let mut reasons = Vec::new();
    if let Some(p99) = window.percentile(99.0) {
        let bound = slo.p99_e2e.as_secs_f64();
        if p99 > bound {
            reasons.push(format!("e2e p99 {p99:.3}s over the {bound:.3}s SLO since the last poll"));
        }
    }
    if runqueue_depth > slo.max_queue_depth {
        reasons.push(format!("run-queue depth {runqueue_depth} > {}", slo.max_queue_depth));
    }
    if submission_queue_depth > slo.max_queue_depth {
        reasons.push(format!(
            "submission-queue depth {submission_queue_depth} > {}",
            slo.max_queue_depth
        ));
    }
    if dropped_delta > 0 {
        reasons.push(format!("{dropped_delta} mailbox drop(s) since the last poll"));
    }
    if rejected_delta > 0 {
        reasons.push(format!("{rejected_delta} overload rejection(s) since the last poll"));
    }
    if link_delta > 0 {
        reasons.push(format!("{link_delta} link fault(s) since the last poll"));
    }
    HealthReport {
        ready: reasons.is_empty(),
        reasons,
        e2e_p99_micros,
        runqueue_depth,
        submission_queue_depth,
        mailbox_dropped,
        overload_rejections,
        link_errors,
    }
}
