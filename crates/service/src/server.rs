//! The RPC server's domain logic: request dispatch, the scheme API, the
//! multi-tenant key-manager endpoints, per-tenant admission quotas, and
//! the cluster observability plane.
//!
//! The I/O itself — accepting sockets, framing, pipelining, completion
//! delivery — lives in the event-driven front-end (`crate::frontend`).
//! This module decides *what happens* to each decoded request:
//!
//! - scheme-API and observability calls are answered inline (pure
//!   in-memory work);
//! - protocol-API calls are admitted through the bounded submission
//!   queue ([`theta_orchestration::NodeHandle::try_submit_with`]) and
//!   answered later via the front-end's completion queue, with
//!   per-tenant in-flight quotas enforced at admission;
//! - the rare slow endpoints — on-demand tenant keygen and the
//!   CollectTrace roster fan-out — run on short-lived offload threads
//!   so the readiness loop never blocks.
//!
//! Two cluster-plane endpoints live here as well:
//!
//! - **CollectTrace** fans `GetTrace` out across the roster
//!   ([`ClusterConfig::peers`]) and merges the per-node journals into one
//!   timeline on the collector's clock, using the per-link offsets the
//!   transport probed at handshake time
//!   (`theta_clock_offset_micros{peer}`);
//! - **GetHealth** is an SLO watchdog: cumulative fault counters are
//!   judged as *deltas since the previous poll*, and the end-to-end p99
//!   over the same window, so a node that saturated and then drained
//!   reports degraded exactly once and ready thereafter.

use crate::frontend::{completion_for, spawn_frontend, Completion, FrontendShared, ServiceHandle};
use crate::{
    ClusterTrace, ClusterTraceEntry, HealthReport, NodeTrace, PublicKeyChest, RpcClient,
    RpcRequest, RpcResponse,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};
use theta_codec::Decode;
use theta_metrics::histogram::HistogramSnapshot;
use theta_metrics::observability::{
    E2E_HISTOGRAM, MAILBOX_DROPPED_COUNTER, OVERLOAD_REJECTIONS_COUNTER, RUNQUEUE_DEPTH_GAUGE,
    SUBMISSION_QUEUE_DEPTH_GAUGE,
};
use theta_metrics::{NodeObservability, TraceEventKind};
use theta_orchestration::{InstanceResult, KeyRef, NodeHandle, SubmitError};
use theta_schemes::registry::SchemeId;

/// SLO thresholds the [`RpcRequest::GetHealth`] watchdog judges against.
#[derive(Clone, Debug)]
pub struct SloThresholds {
    /// End-to-end p99 latency bound, applied to the samples recorded
    /// since the previous health poll.
    pub p99_e2e: Duration,
    /// Bound on the instantaneous run-queue and submission-queue depths.
    pub max_queue_depth: i64,
}

impl Default for SloThresholds {
    fn default() -> Self {
        SloThresholds { p99_e2e: Duration::from_secs(5), max_queue_depth: 256 }
    }
}

/// Cluster-plane configuration: the roster CollectTrace fans out to and
/// the SLO thresholds GetHealth judges against.
#[derive(Clone, Debug, Default)]
pub struct ClusterConfig {
    /// `(node id, RPC address)` of every node, including the serving
    /// node (its own entry is answered locally, not dialed).
    pub peers: Vec<(u16, SocketAddr)>,
    /// The serving node's 1-based roster id.
    pub self_id: u16,
    /// Health-plane SLOs.
    pub slo: SloThresholds,
}

/// The key-manager backing the on-demand keygen endpoints. The service
/// layer is agnostic of how shares are dealt and persisted; `theta-core`
/// provides the concrete manager (per-tenant namespaces, encrypted
/// share persistence, hot-key cache).
pub trait KeyAdmin: Send + Sync {
    /// Deals a fresh key for `keyref` under `scheme`, installs the
    /// shares, and returns the encoded public key. Generating a name
    /// that already exists is an error (keys are immutable once dealt).
    fn generate(&self, keyref: &KeyRef, scheme: SchemeId) -> Result<Vec<u8>, String>;

    /// A tenant's keys as `(name, scheme)` pairs, sorted by name.
    fn list(&self, tenant: &str) -> Vec<(String, SchemeId)>;

    /// The scheme and encoded public key of one tenant key.
    fn tenant_public_key(&self, keyref: &KeyRef) -> Result<(SchemeId, Vec<u8>), String>;
}

/// Optional service behaviour beyond the bare protocol/scheme APIs.
#[derive(Clone, Default)]
pub struct ServiceOptions {
    /// Roster and SLO thresholds for the cluster plane.
    pub cluster: ClusterConfig,
    /// The key manager answering `Keygen`/`ListKeys`/`GetTenantKey` and
    /// backing tenant-scoped protocol requests; `None` refuses those
    /// endpoints.
    pub key_admin: Option<Arc<dyn KeyAdmin>>,
    /// Per-tenant cap on in-flight tenant-scoped protocol requests
    /// (0 = unlimited). Exceeding it yields [`RpcResponse::Overloaded`],
    /// the same retryable refusal as a full submission queue, so one
    /// tenant cannot monopolize the node's capacity.
    pub tenant_quota: usize,
}

/// The watchdog's memory between health polls: the counter and
/// histogram values seen last time, so checks judge the window since
/// the previous poll instead of the process lifetime.
#[derive(Default)]
struct HealthBaseline {
    e2e: HistogramSnapshot,
    mailbox_dropped: u64,
    overload_rejections: u64,
    link_errors: u64,
}

/// Everything the front-end needs to answer requests: the node handle,
/// key material, cluster plane, quotas and metric handles.
pub(crate) struct ServiceContext {
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    cluster: Arc<ClusterConfig>,
    admin: Option<Arc<dyn KeyAdmin>>,
    tenant_quota: usize,
    /// In-flight tenant-scoped protocol requests per tenant. Slots are
    /// taken at admission and released when the router's completion
    /// drains through the loop — never tied to connection lifetime, so
    /// a client dying mid-request cannot leak quota.
    quotas: Mutex<HashMap<String, usize>>,
    health_prev: Mutex<HealthBaseline>,
    pub(crate) obs: Arc<NodeObservability>,
    pub(crate) rpc_timer: Arc<theta_metrics::histogram::Histogram>,
    quota_rejections: Arc<theta_metrics::registry::Counter>,
}

impl ServiceContext {
    /// Takes one in-flight slot for `tenant`; `false` means the tenant
    /// is at its cap and the request must be refused as `Overloaded`.
    fn try_acquire_quota(&self, tenant: &str) -> bool {
        if self.tenant_quota == 0 {
            return true;
        }
        let mut quotas = self.quotas.lock();
        let slot = quotas.entry(tenant.to_string()).or_insert(0);
        if *slot >= self.tenant_quota {
            false
        } else {
            *slot += 1;
            true
        }
    }

    /// Returns an in-flight slot. Idle tenants are dropped from the map
    /// so the table stays proportional to *active* tenants.
    pub(crate) fn release_quota(&self, tenant: &str) {
        if self.tenant_quota == 0 {
            return;
        }
        let mut quotas = self.quotas.lock();
        if let Some(slot) = quotas.get_mut(tenant) {
            *slot = slot.saturating_sub(1);
            if *slot == 0 {
                quotas.remove(tenant);
            }
        }
    }
}

/// Starts serving the two Thetacrypt APIs for a node, standalone: no
/// roster (CollectTrace reports this node only), default SLOs, no key
/// manager.
///
/// `node` is the orchestration handle whose Θ-network executes protocol
/// requests; `keys` backs the scheme API. Binds `addr` (use port 0 for
/// an ephemeral port, then read [`ServiceHandle::addr`]).
///
/// # Errors
///
/// I/O errors from binding the listener.
pub fn serve(
    addr: SocketAddr,
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    request_timeout: Duration,
) -> std::io::Result<ServiceHandle> {
    serve_with_cluster(addr, node, keys, request_timeout, ClusterConfig::default())
}

/// [`serve`] plus the cluster plane: a roster for CollectTrace fan-out
/// and SLO thresholds for GetHealth.
///
/// # Errors
///
/// I/O errors from binding the listener.
pub fn serve_with_cluster(
    addr: SocketAddr,
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    request_timeout: Duration,
    cluster: ClusterConfig,
) -> std::io::Result<ServiceHandle> {
    serve_on(TcpListener::bind(addr)?, node, keys, request_timeout, cluster)
}

/// [`serve_with_cluster`] on a pre-bound listener — lets a caller bind
/// every node's ephemeral port first, learn the full roster, and only
/// then start the servers with that roster.
///
/// # Errors
///
/// I/O errors reading the listener's local address.
pub fn serve_on(
    listener: TcpListener,
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    request_timeout: Duration,
    cluster: ClusterConfig,
) -> std::io::Result<ServiceHandle> {
    serve_on_with_options(
        listener,
        node,
        keys,
        request_timeout,
        ServiceOptions { cluster, ..ServiceOptions::default() },
    )
}

/// The full-surface entry point: [`serve_on`] plus a key manager for
/// the on-demand keygen endpoints and a per-tenant in-flight quota.
///
/// # Errors
///
/// I/O errors reading the listener's local address or spawning the
/// front-end thread.
pub fn serve_on_with_options(
    listener: TcpListener,
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    request_timeout: Duration,
    options: ServiceOptions,
) -> std::io::Result<ServiceHandle> {
    let obs = node.observability();
    let rpc_timer = obs.registry.histogram("theta_rpc_request_seconds");
    let quota_rejections = obs.registry.counter("theta_quota_rejections_total");
    let ctx = Arc::new(ServiceContext {
        node,
        keys,
        cluster: Arc::new(options.cluster),
        admin: options.key_admin,
        tenant_quota: options.tenant_quota,
        quotas: Mutex::new(HashMap::new()),
        health_prev: Mutex::new(HealthBaseline::default()),
        obs,
        rpc_timer,
        quota_rejections,
    });
    spawn_frontend(listener, ctx, request_timeout)
}

/// Short method label used by the per-variant RPC counters.
fn method_name(request: &RpcRequest) -> &'static str {
    match request {
        RpcRequest::Protocol(_) => "protocol",
        RpcRequest::GetPublicKey(_) => "get_public_key",
        RpcRequest::Encrypt { .. } => "encrypt",
        RpcRequest::VerifySignature { .. } => "verify_signature",
        RpcRequest::GetNodeStats => "get_node_stats",
        RpcRequest::GetMetrics => "get_metrics",
        RpcRequest::GetTrace(_) => "get_trace",
        RpcRequest::CollectTrace(_) => "collect_trace",
        RpcRequest::GetHealth => "get_health",
        RpcRequest::Keygen { .. } => "keygen",
        RpcRequest::ListKeys(_) => "list_keys",
        RpcRequest::GetTenantKey(_) => "get_tenant_key",
    }
}

/// How the front-end should treat a dispatched request.
pub(crate) enum Dispatch {
    /// Answered synchronously — write the response now.
    Inline(RpcResponse),
    /// Admitted to the router; a completion will arrive, and the
    /// request-timeout backstop applies.
    Submitted,
    /// Running on an offload thread; a completion will arrive, no
    /// service-level deadline (the work bounds itself).
    Offloaded,
}

/// Maps a router result onto the wire, preserving the PR-4 contract:
/// the live-instance admission cap surfaces as the same retryable
/// `Overloaded` as a full submission queue.
pub(crate) fn respond_to_result(result: InstanceResult) -> RpcResponse {
    match result.outcome {
        Ok(output) => RpcResponse::ProtocolResult {
            output: output.as_bytes().to_vec(),
            server_latency_us: result.elapsed.as_micros() as u64,
        },
        Err(theta_schemes::SchemeError::Overloaded) => RpcResponse::Overloaded,
        Err(theta_schemes::SchemeError::Shutdown) => {
            RpcResponse::Error("the node stopped before delivering the result".into())
        }
        Err(e) => RpcResponse::Error(e.to_string()),
    }
}

/// Decides what happens to one decoded request. Runs on the event-loop
/// thread, so everything here must be non-blocking; slow endpoints are
/// offloaded.
pub(crate) fn dispatch_request(
    ctx: &Arc<ServiceContext>,
    shared: &Arc<FrontendShared>,
    conn: u64,
    frame_id: u64,
    started: Instant,
    request: RpcRequest,
) -> Dispatch {
    ctx.obs
        .registry
        .counter_with("theta_rpc_requests_total", &[("method", method_name(&request))])
        .inc();
    match request {
        RpcRequest::Protocol(request) => {
            let instance = request.instance_id().0;
            ctx.obs.journal.record(instance, TraceEventKind::RpcReceived);
            // Per-tenant admission quota, taken before the submission
            // queue so one tenant's burst is refused at its own cap
            // rather than consuming shared queue slots.
            let quota_tenant = match request.keyref() {
                Some(keyref) if ctx.tenant_quota > 0 => {
                    if !ctx.try_acquire_quota(&keyref.tenant) {
                        ctx.quota_rejections.inc();
                        ctx.obs.journal.record(instance, TraceEventKind::QuotaRejected);
                        return Dispatch::Inline(RpcResponse::Overloaded);
                    }
                    Some(keyref.tenant.clone())
                }
                _ => None,
            };
            // Backpressure-aware admission: a full submission queue
            // refuses the request up front instead of buffering it
            // without bound behind the router.
            let callback_shared = shared.clone();
            let callback_tenant = quota_tenant.clone();
            let submitted = ctx.node.try_submit_with(request, move |result| {
                // Runs on the router thread: push the completion and
                // wake the loop — nothing heavier.
                callback_shared.complete(completion_for(
                    conn,
                    frame_id,
                    started,
                    callback_tenant,
                    result,
                ));
            });
            match submitted {
                Ok(()) => Dispatch::Submitted,
                Err(e) => {
                    if let Some(tenant) = &quota_tenant {
                        ctx.release_quota(tenant);
                    }
                    Dispatch::Inline(match e {
                        SubmitError::Overloaded => RpcResponse::Overloaded,
                        SubmitError::NodeStopped => {
                            RpcResponse::Error("the node has stopped".into())
                        }
                    })
                }
            }
        }
        RpcRequest::Keygen { keyref, scheme } => {
            let Some(admin) = ctx.admin.clone() else {
                return Dispatch::Inline(RpcResponse::Error(
                    "no key manager on this node".into(),
                ));
            };
            // Dealing a key is seconds of modular arithmetic — far too
            // slow for the loop thread.
            let shared = shared.clone();
            let spawned = std::thread::Builder::new()
                .name("theta-keygen".into())
                .spawn(move || {
                    let response = match admin.generate(&keyref, scheme) {
                        Ok(public) => RpcResponse::PublicKey(public),
                        Err(e) => RpcResponse::Error(e),
                    };
                    shared.complete(Completion {
                        conn,
                        frame_id,
                        started,
                        response,
                        quota_tenant: None,
                        tracked: false,
                    });
                });
            match spawned {
                Ok(_) => Dispatch::Offloaded,
                Err(_) => Dispatch::Inline(RpcResponse::Error("cannot spawn keygen".into())),
            }
        }
        RpcRequest::ListKeys(tenant) => Dispatch::Inline(match &ctx.admin {
            Some(admin) => RpcResponse::KeyList(admin.list(&tenant)),
            None => RpcResponse::Error("no key manager on this node".into()),
        }),
        RpcRequest::GetTenantKey(keyref) => Dispatch::Inline(match &ctx.admin {
            Some(admin) => match admin.tenant_public_key(&keyref) {
                Ok((scheme, key)) => RpcResponse::TenantKey { scheme, key },
                Err(e) => RpcResponse::Error(e),
            },
            None => RpcResponse::Error("no key manager on this node".into()),
        }),
        RpcRequest::GetNodeStats => Dispatch::Inline(RpcResponse::NodeStats(ctx.node.counters())),
        RpcRequest::GetMetrics => {
            Dispatch::Inline(RpcResponse::MetricsText(ctx.obs.render_prometheus()))
        }
        RpcRequest::GetTrace(instance) => {
            let (events, truncated) = ctx.obs.journal.events_for_flagged(&instance);
            Dispatch::Inline(if events.is_empty() && !truncated {
                RpcResponse::Error("no trace recorded for that instance id".into())
            } else {
                RpcResponse::Trace(NodeTrace {
                    wall_anchor_micros: ctx.obs.journal.wall_anchor_micros(),
                    truncated,
                    events,
                })
            })
        }
        RpcRequest::CollectTrace(instance) => {
            // Dials every roster peer with a 5 s budget each — offload.
            let ctx = ctx.clone();
            let shared = shared.clone();
            let spawned = std::thread::Builder::new()
                .name("theta-trace-fanout".into())
                .spawn(move || {
                    let response = RpcResponse::ClusterTrace(collect_cluster_trace(
                        &ctx.obs,
                        &ctx.cluster,
                        instance,
                    ));
                    shared.complete(Completion {
                        conn,
                        frame_id,
                        started,
                        response,
                        quota_tenant: None,
                        tracked: false,
                    });
                });
            match spawned {
                Ok(_) => Dispatch::Offloaded,
                Err(_) => Dispatch::Inline(RpcResponse::Error("cannot spawn fan-out".into())),
            }
        }
        RpcRequest::GetHealth => {
            Dispatch::Inline(RpcResponse::Health(health_report(ctx)))
        }
        other => Dispatch::Inline(answer_scheme_api(other, &ctx.keys)),
    }
}

fn answer_scheme_api(request: RpcRequest, keys: &PublicKeyChest) -> RpcResponse {
    match request {
        RpcRequest::GetPublicKey(scheme) => match keys.encoded_key(scheme) {
            Some(bytes) => RpcResponse::PublicKey(bytes),
            None => RpcResponse::Error(format!("scheme {scheme} not provisioned")),
        },
        RpcRequest::Encrypt { scheme, label, message } => {
            let mut rng = rand::rngs::OsRng;
            match scheme {
                SchemeId::Sg02 => match &keys.sg02 {
                    Some(pk) => {
                        let ct = theta_schemes::sg02::encrypt(pk, &label, &message, &mut rng);
                        RpcResponse::Ciphertext(theta_codec::Encode::encoded(&ct))
                    }
                    None => RpcResponse::Error("sg02 not provisioned".into()),
                },
                SchemeId::Bz03 => match &keys.bz03 {
                    Some(pk) => {
                        let ct = theta_schemes::bz03::encrypt(pk, &label, &message, &mut rng);
                        RpcResponse::Ciphertext(theta_codec::Encode::encoded(&ct))
                    }
                    None => RpcResponse::Error("bz03 not provisioned".into()),
                },
                other => RpcResponse::Error(format!("{other} is not a cipher")),
            }
        }
        RpcRequest::VerifySignature { scheme, message, signature } => {
            let verified = match scheme {
                SchemeId::Sh00 => keys.sh00.as_ref().map(|pk| {
                    theta_schemes::sh00::Signature::decoded(&signature)
                        .map(|sig| theta_schemes::sh00::verify(pk, &message, &sig))
                        .unwrap_or(false)
                }),
                SchemeId::Bls04 => keys.bls04.as_ref().map(|pk| {
                    theta_schemes::bls04::Signature::decoded(&signature)
                        .map(|sig| theta_schemes::bls04::verify(pk, &message, &sig))
                        .unwrap_or(false)
                }),
                SchemeId::Kg20 => keys.kg20.as_ref().map(|pk| {
                    theta_schemes::kg20::Signature::decoded(&signature)
                        .map(|sig| theta_schemes::kg20::verify(pk, &message, &sig))
                        .unwrap_or(false)
                }),
                other => return RpcResponse::Error(format!("{other} is not a signature scheme")),
            };
            match verified {
                Some(ok) => RpcResponse::Verified(ok),
                None => RpcResponse::Error(format!("scheme {scheme} not provisioned")),
            }
        }
        RpcRequest::Protocol(_)
        | RpcRequest::GetNodeStats
        | RpcRequest::GetMetrics
        | RpcRequest::GetTrace(_)
        | RpcRequest::CollectTrace(_)
        | RpcRequest::GetHealth
        | RpcRequest::Keygen { .. }
        | RpcRequest::ListKeys(_)
        | RpcRequest::GetTenantKey(_) => {
            unreachable!("handled by dispatch_request")
        }
    }
}

/// Per-peer dial/read bound for the CollectTrace fan-out: a slow or
/// dead peer costs at most this, and the merged timeline simply omits
/// it (`nodes_reporting` says how many answered).
const FANOUT_TIMEOUT: Duration = Duration::from_secs(5);

/// Fans `GetTrace(instance)` out across the roster and merges every
/// answering node's journal slice into one timeline on this node's
/// clock, using the handshake-probed per-peer offsets.
fn collect_cluster_trace(
    obs: &NodeObservability,
    cluster: &ClusterConfig,
    instance: [u8; 32],
) -> ClusterTrace {
    let mut slices: Vec<(u16, i64, NodeTrace)> = Vec::new();
    let (local_events, local_truncated) = obs.journal.events_for_flagged(&instance);
    if !local_events.is_empty() || local_truncated {
        slices.push((
            cluster.self_id,
            0,
            NodeTrace {
                wall_anchor_micros: obs.journal.wall_anchor_micros(),
                truncated: local_truncated,
                events: local_events,
            },
        ));
    }
    for &(peer_id, addr) in &cluster.peers {
        if peer_id == cluster.self_id {
            continue;
        }
        let Ok(mut peer) = RpcClient::connect(addr, FANOUT_TIMEOUT) else { continue };
        // A peer with no trace answers with an error; that is "nothing
        // to contribute", not a fan-out failure.
        let Ok(slice) = peer.trace(instance) else { continue };
        let offset = obs
            .registry
            .gauge_value("theta_clock_offset_micros", &[("peer", &peer_id.to_string())])
            .unwrap_or(0);
        slices.push((peer_id, offset, slice));
    }
    merge_cluster_trace(slices)
}

/// Merges per-node journal slices into one sorted timeline.
///
/// Each event's wall time on its recording node is `wall_anchor +
/// at_micros`; the handshake probe estimated `offset ≈ remote_wall −
/// local_wall` per peer, so subtracting it maps the event onto the
/// collector's clock. The audit pass then checks the joined order is
/// causal: every receive must align after the earliest send its origin
/// node recorded for the instance.
fn merge_cluster_trace(slices: Vec<(u16, i64, NodeTrace)>) -> ClusterTrace {
    let nodes_reporting = slices.len() as u16;
    let truncated = slices.iter().any(|(_, _, s)| s.truncated);
    let mut entries: Vec<ClusterTraceEntry> = Vec::new();
    for (node, offset, slice) in slices {
        let anchor = slice.wall_anchor_micros as i64;
        for event in slice.events {
            entries.push(ClusterTraceEntry {
                node,
                aligned_micros: anchor + event.at_micros as i64 - offset,
                event,
            });
        }
    }
    entries.sort_by_key(|e| (e.aligned_micros, e.node));
    let mut causality_violations = 0u32;
    for e in &entries {
        if e.event.kind != TraceEventKind::PeerRecv {
            continue;
        }
        let earliest_send = entries
            .iter()
            .filter(|s| s.node == e.event.peer && s.event.kind == TraceEventKind::PeerSend)
            .map(|s| s.aligned_micros)
            .min();
        if earliest_send.is_some_and(|send| send > e.aligned_micros) {
            causality_violations += 1;
        }
    }
    ClusterTrace { entries, nodes_reporting, truncated, causality_violations }
}

/// The SLO watchdog: judges queue depths instantaneously and the fault
/// counters / e2e p99 over the window since the previous poll, so a
/// saturated-then-drained node reports degraded once and ready after.
fn health_report(ctx: &ServiceContext) -> HealthReport {
    let registry = &ctx.obs.registry;
    let slo = &ctx.cluster.slo;
    let e2e = registry.histogram_snapshot(E2E_HISTOGRAM, &[]).unwrap_or_default();
    let e2e_p99_micros = e2e.percentile(99.0).map_or(0, |s| (s * 1e6) as u64);
    let runqueue_depth = registry.gauge_value(RUNQUEUE_DEPTH_GAUGE, &[]).unwrap_or(0);
    let submission_queue_depth =
        registry.gauge_value(SUBMISSION_QUEUE_DEPTH_GAUGE, &[]).unwrap_or(0);
    let mailbox_dropped = registry.counter_value(MAILBOX_DROPPED_COUNTER, &[]).unwrap_or(0);
    let overload_rejections =
        registry.counter_value(OVERLOAD_REJECTIONS_COUNTER, &[]).unwrap_or(0);
    let link_errors = [
        "theta_tcp_send_errors_total",
        "theta_tcp_reader_exits_total",
        "theta_net_aead_failures_total",
    ]
    .iter()
    .map(|name| registry.counter_value(name, &[]).unwrap_or(0))
    .sum::<u64>();

    // Window everything cumulative against the previous poll's baseline.
    let (window, dropped_delta, rejected_delta, link_delta) = {
        let mut prev = ctx.health_prev.lock();
        let mut window = e2e.clone();
        for (w, p) in window.buckets.iter_mut().zip(&prev.e2e.buckets) {
            *w = w.saturating_sub(*p);
        }
        window.sum_micros = window.sum_micros.saturating_sub(prev.e2e.sum_micros);
        let deltas = (
            window,
            mailbox_dropped.saturating_sub(prev.mailbox_dropped),
            overload_rejections.saturating_sub(prev.overload_rejections),
            link_errors.saturating_sub(prev.link_errors),
        );
        *prev = HealthBaseline { e2e, mailbox_dropped, overload_rejections, link_errors };
        deltas
    };

    let mut reasons = Vec::new();
    if let Some(p99) = window.percentile(99.0) {
        let bound = slo.p99_e2e.as_secs_f64();
        if p99 > bound {
            reasons.push(format!("e2e p99 {p99:.3}s over the {bound:.3}s SLO since the last poll"));
        }
    }
    if runqueue_depth > slo.max_queue_depth {
        reasons.push(format!("run-queue depth {runqueue_depth} > {}", slo.max_queue_depth));
    }
    if submission_queue_depth > slo.max_queue_depth {
        reasons.push(format!(
            "submission-queue depth {submission_queue_depth} > {}",
            slo.max_queue_depth
        ));
    }
    if dropped_delta > 0 {
        reasons.push(format!("{dropped_delta} mailbox drop(s) since the last poll"));
    }
    if rejected_delta > 0 {
        reasons.push(format!("{rejected_delta} overload rejection(s) since the last poll"));
    }
    if link_delta > 0 {
        reasons.push(format!("{link_delta} link fault(s) since the last poll"));
    }
    HealthReport {
        ready: reasons.is_empty(),
        reasons,
        e2e_p99_micros,
        runqueue_depth,
        submission_queue_depth,
        mailbox_dropped,
        overload_rejections,
        link_errors,
    }
}
