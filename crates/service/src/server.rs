//! The RPC server: accepts connections, answers scheme-API calls inline
//! and protocol-API calls from per-request waiter threads.

use crate::{write_frame, Frame, PublicKeyChest, RpcRequest, RpcResponse};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use theta_codec::Decode;
use theta_orchestration::{NodeHandle, SubmitError, WaitError};
use theta_schemes::registry::SchemeId;

/// Handle to a running RPC service.
pub struct ServiceHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections (in-flight requests finish).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Starts serving the two Thetacrypt APIs for a node.
///
/// `node` is the orchestration handle whose Θ-network executes protocol
/// requests; `keys` backs the scheme API. Binds `addr` (use port 0 for
/// an ephemeral port, then read [`ServiceHandle::addr`]).
///
/// # Errors
///
/// I/O errors from binding the listener.
pub fn serve(
    addr: SocketAddr,
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    request_timeout: Duration,
) -> std::io::Result<ServiceHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shutdown_accept = shutdown.clone();
    let join = std::thread::Builder::new()
        .name("theta-rpc-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if shutdown_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let node = node.clone();
                let keys = keys.clone();
                std::thread::Builder::new()
                    .name("theta-rpc-conn".into())
                    .spawn(move || handle_connection(stream, node, keys, request_timeout))
                    .ok();
            }
        })
        .expect("spawn accept loop");
    Ok(ServiceHandle { addr: bound, shutdown, join: Some(join) })
}

/// Short method label used by the per-variant RPC counters.
fn method_name(request: &RpcRequest) -> &'static str {
    match request {
        RpcRequest::Protocol(_) => "protocol",
        RpcRequest::GetPublicKey(_) => "get_public_key",
        RpcRequest::Encrypt { .. } => "encrypt",
        RpcRequest::VerifySignature { .. } => "verify_signature",
        RpcRequest::GetNodeStats => "get_node_stats",
        RpcRequest::GetMetrics => "get_metrics",
        RpcRequest::GetTrace(_) => "get_trace",
    }
}

fn handle_connection(
    stream: TcpStream,
    node: Arc<NodeHandle>,
    keys: PublicKeyChest,
    request_timeout: Duration,
) {
    stream.set_nodelay(true).ok();
    let writer = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    }));
    let obs = node.observability();
    let rpc_timer = obs.registry.histogram("theta_rpc_request_seconds");
    let mut reader = stream;
    loop {
        let frame: Frame<RpcRequest> = match crate::read_frame(&mut reader) {
            Ok(f) => f,
            Err(_) => return, // client gone or malformed
        };
        let id = frame.id;
        let started = std::time::Instant::now();
        obs.registry
            .counter_with("theta_rpc_requests_total", &[("method", method_name(&frame.body))])
            .inc();
        match frame.body {
            RpcRequest::Protocol(request) => {
                obs.journal.record(
                    request.instance_id().0,
                    theta_metrics::TraceEventKind::RpcReceived,
                );
                // Backpressure-aware admission: a full submission queue
                // refuses the request up front instead of buffering it
                // without bound behind the router.
                let pending = match node.try_submit(request) {
                    Ok(p) => p,
                    Err(SubmitError::Overloaded) => {
                        rpc_timer.record(started.elapsed());
                        let _ = write_frame(
                            &mut writer.lock(),
                            &Frame { id, body: RpcResponse::Overloaded },
                        );
                        continue;
                    }
                    Err(SubmitError::NodeStopped) => {
                        rpc_timer.record(started.elapsed());
                        let _ = write_frame(
                            &mut writer.lock(),
                            &Frame {
                                id,
                                body: RpcResponse::Error("the node has stopped".into()),
                            },
                        );
                        continue;
                    }
                };
                // Answer from a waiter thread so the connection can pipeline.
                let writer = writer.clone();
                let rpc_timer = rpc_timer.clone();
                std::thread::Builder::new()
                    .name("theta-rpc-wait".into())
                    .spawn(move || {
                        let response = match pending.wait_timeout(request_timeout) {
                            Ok(result) => match result.outcome {
                                Ok(output) => RpcResponse::ProtocolResult {
                                    output: output.as_bytes().to_vec(),
                                    server_latency_us: result.elapsed.as_micros() as u64,
                                },
                                // The router's live-instance admission cap
                                // surfaces as the same wire-level refusal as
                                // a full submission queue.
                                Err(theta_schemes::SchemeError::Overloaded) => {
                                    RpcResponse::Overloaded
                                }
                                Err(e) => RpcResponse::Error(e.to_string()),
                            },
                            Err(WaitError::TimedOut) => {
                                RpcResponse::Error("request timed out".into())
                            }
                            Err(WaitError::NodeStopped) => RpcResponse::Error(
                                "the node stopped before delivering the result".into(),
                            ),
                        };
                        rpc_timer.record(started.elapsed());
                        let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
                    })
                    .ok();
                continue; // timed inside the waiter thread
            }
            RpcRequest::GetNodeStats => {
                let response = RpcResponse::NodeStats(node.counters());
                let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
            }
            RpcRequest::GetMetrics => {
                let response = RpcResponse::MetricsText(obs.render_prometheus());
                let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
            }
            RpcRequest::GetTrace(instance) => {
                let events = obs.journal.events_for(&instance);
                let response = if events.is_empty() {
                    RpcResponse::Error("no trace recorded for that instance id".into())
                } else {
                    RpcResponse::Trace(events)
                };
                let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
            }
            other => {
                let response = answer_scheme_api(other, &keys);
                let _ = write_frame(&mut writer.lock(), &Frame { id, body: response });
            }
        }
        rpc_timer.record(started.elapsed());
    }
}

fn answer_scheme_api(request: RpcRequest, keys: &PublicKeyChest) -> RpcResponse {
    match request {
        RpcRequest::GetPublicKey(scheme) => match keys.encoded_key(scheme) {
            Some(bytes) => RpcResponse::PublicKey(bytes),
            None => RpcResponse::Error(format!("scheme {scheme} not provisioned")),
        },
        RpcRequest::Encrypt { scheme, label, message } => {
            let mut rng = rand::rngs::OsRng;
            match scheme {
                SchemeId::Sg02 => match &keys.sg02 {
                    Some(pk) => {
                        let ct = theta_schemes::sg02::encrypt(pk, &label, &message, &mut rng);
                        RpcResponse::Ciphertext(theta_codec::Encode::encoded(&ct))
                    }
                    None => RpcResponse::Error("sg02 not provisioned".into()),
                },
                SchemeId::Bz03 => match &keys.bz03 {
                    Some(pk) => {
                        let ct = theta_schemes::bz03::encrypt(pk, &label, &message, &mut rng);
                        RpcResponse::Ciphertext(theta_codec::Encode::encoded(&ct))
                    }
                    None => RpcResponse::Error("bz03 not provisioned".into()),
                },
                other => RpcResponse::Error(format!("{other} is not a cipher")),
            }
        }
        RpcRequest::VerifySignature { scheme, message, signature } => {
            let verified = match scheme {
                SchemeId::Sh00 => keys.sh00.as_ref().map(|pk| {
                    theta_schemes::sh00::Signature::decoded(&signature)
                        .map(|sig| theta_schemes::sh00::verify(pk, &message, &sig))
                        .unwrap_or(false)
                }),
                SchemeId::Bls04 => keys.bls04.as_ref().map(|pk| {
                    theta_schemes::bls04::Signature::decoded(&signature)
                        .map(|sig| theta_schemes::bls04::verify(pk, &message, &sig))
                        .unwrap_or(false)
                }),
                SchemeId::Kg20 => keys.kg20.as_ref().map(|pk| {
                    theta_schemes::kg20::Signature::decoded(&signature)
                        .map(|sig| theta_schemes::kg20::verify(pk, &message, &sig))
                        .unwrap_or(false)
                }),
                other => return RpcResponse::Error(format!("{other} is not a signature scheme")),
            };
            match verified {
                Some(ok) => RpcResponse::Verified(ok),
                None => RpcResponse::Error(format!("scheme {scheme} not provisioned")),
            }
        }
        RpcRequest::Protocol(_)
        | RpcRequest::GetNodeStats
        | RpcRequest::GetMetrics
        | RpcRequest::GetTrace(_) => {
            unreachable!("handled by the connection loop")
        }
    }
}
