//! # theta-service
//!
//! The paper's *service layer* (§3.4): the RPC boundary through which an
//! application invokes its local Thetacrypt instance, with the two
//! endpoints of the paper:
//!
//! - the **protocol API** — submit a threshold operation as a black box
//!   and receive the network-wide result;
//! - the **scheme API** — direct access to cryptographic primitives
//!   (public keys, encryption, signature verification) without running a
//!   protocol.
//!
//! The original uses gRPC/protobuf; this reproduction frames
//! `theta-codec` messages over TCP with a `u32` length prefix. Request
//! ids allow pipelining; the server answers protocol requests from a
//! per-request waiter thread, so slow instances never block the
//! connection.

pub mod client;
mod frontend;
pub mod server;

pub use client::{RpcClient, RpcError};
pub use frontend::ServiceHandle;
pub use server::{
    serve, serve_on, serve_on_with_options, serve_with_cluster, ClusterConfig, KeyAdmin,
    ServiceOptions, SloThresholds,
};

use theta_codec::{CodecError, Decode, Encode, Reader, Writer};
use theta_orchestration::{KeyRef, Request};
use theta_schemes::registry::SchemeId;
use theta_schemes::{bls04, bz03, cks05, kg20, sg02, sh00};

/// Public keys of every provisioned scheme — what the scheme API serves.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PublicKeyChest {
    /// SG02 public key, when provisioned.
    pub sg02: Option<sg02::PublicKey>,
    /// BZ03 public key, when provisioned.
    pub bz03: Option<bz03::PublicKey>,
    /// SH00 public key, when provisioned.
    pub sh00: Option<sh00::PublicKey>,
    /// BLS04 public key, when provisioned.
    pub bls04: Option<bls04::PublicKey>,
    /// KG20 public key, when provisioned.
    pub kg20: Option<kg20::PublicKey>,
    /// CKS05 public key, when provisioned.
    pub cks05: Option<cks05::PublicKey>,
}

impl PublicKeyChest {
    /// Encoded public key for `scheme`, or `None` when not provisioned.
    pub fn encoded_key(&self, scheme: SchemeId) -> Option<Vec<u8>> {
        match scheme {
            SchemeId::Sg02 => self.sg02.as_ref().map(Encode::encoded),
            SchemeId::Bz03 => self.bz03.as_ref().map(Encode::encoded),
            SchemeId::Sh00 => self.sh00.as_ref().map(Encode::encoded),
            SchemeId::Bls04 => self.bls04.as_ref().map(Encode::encoded),
            SchemeId::Kg20 => self.kg20.as_ref().map(Encode::encoded),
            SchemeId::Cks05 => self.cks05.as_ref().map(Encode::encoded),
        }
    }
}

/// A call to the service layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpcRequest {
    /// Protocol API: run a threshold operation across the Θ-network.
    Protocol(Request),
    /// Scheme API: fetch the public key of a scheme.
    GetPublicKey(SchemeId),
    /// Scheme API: encrypt locally under the threshold public key
    /// (SG02 or BZ03), returning the encoded ciphertext.
    Encrypt {
        /// Target cipher (must be [`SchemeId::Sg02`] or [`SchemeId::Bz03`]).
        scheme: SchemeId,
        /// Ciphertext label.
        label: Vec<u8>,
        /// Plaintext to protect.
        message: Vec<u8>,
    },
    /// Scheme API: verify a combined signature locally.
    VerifySignature {
        /// Signature scheme (SH00, BLS04 or KG20).
        scheme: SchemeId,
        /// Signed message.
        message: Vec<u8>,
        /// Encoded signature.
        signature: Vec<u8>,
    },
    /// Observability: snapshot of the node's event-loop counters.
    GetNodeStats,
    /// Observability: the node's full metrics registry rendered in the
    /// Prometheus text exposition format.
    GetMetrics,
    /// Observability: the recorded trace-journal events for one protocol
    /// instance, in recording order.
    GetTrace([u8; 32]),
    /// Observability: fan a [`RpcRequest::GetTrace`] out across the whole
    /// roster and merge the per-node journals into one offset-aligned
    /// cross-node timeline.
    CollectTrace([u8; 32]),
    /// Observability: the SLO watchdog's machine-readable ready/degraded
    /// verdict for the serving node.
    GetHealth,
    /// Key manager: deal a fresh tenant key on demand (dealer-on-node);
    /// answers with [`RpcResponse::PublicKey`].
    Keygen {
        /// The tenant/name the new key will live under.
        keyref: KeyRef,
        /// The scheme to generate a key for.
        scheme: SchemeId,
    },
    /// Key manager: list a tenant's keys as `(name, scheme)` pairs.
    ListKeys(String),
    /// Key manager: fetch the public key of one tenant key.
    GetTenantKey(KeyRef),
}

impl Encode for RpcRequest {
    fn encode(&self, w: &mut Writer) {
        match self {
            RpcRequest::Protocol(req) => {
                0u8.encode(w);
                req.encode(w);
            }
            RpcRequest::GetPublicKey(scheme) => {
                1u8.encode(w);
                scheme.encode(w);
            }
            RpcRequest::Encrypt { scheme, label, message } => {
                2u8.encode(w);
                scheme.encode(w);
                label.encode(w);
                message.encode(w);
            }
            RpcRequest::VerifySignature { scheme, message, signature } => {
                3u8.encode(w);
                scheme.encode(w);
                message.encode(w);
                signature.encode(w);
            }
            RpcRequest::GetNodeStats => {
                4u8.encode(w);
            }
            RpcRequest::GetMetrics => {
                5u8.encode(w);
            }
            RpcRequest::GetTrace(instance) => {
                6u8.encode(w);
                instance.encode(w);
            }
            RpcRequest::CollectTrace(instance) => {
                7u8.encode(w);
                instance.encode(w);
            }
            RpcRequest::GetHealth => {
                8u8.encode(w);
            }
            RpcRequest::Keygen { keyref, scheme } => {
                9u8.encode(w);
                keyref.encode(w);
                scheme.encode(w);
            }
            RpcRequest::ListKeys(tenant) => {
                10u8.encode(w);
                tenant.encode(w);
            }
            RpcRequest::GetTenantKey(keyref) => {
                11u8.encode(w);
                keyref.encode(w);
            }
        }
    }
}

impl Decode for RpcRequest {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(RpcRequest::Protocol(Request::decode(r)?)),
            1 => Ok(RpcRequest::GetPublicKey(SchemeId::decode(r)?)),
            2 => Ok(RpcRequest::Encrypt {
                scheme: SchemeId::decode(r)?,
                label: Vec::<u8>::decode(r)?,
                message: Vec::<u8>::decode(r)?,
            }),
            3 => Ok(RpcRequest::VerifySignature {
                scheme: SchemeId::decode(r)?,
                message: Vec::<u8>::decode(r)?,
                signature: Vec::<u8>::decode(r)?,
            }),
            4 => Ok(RpcRequest::GetNodeStats),
            5 => Ok(RpcRequest::GetMetrics),
            6 => Ok(RpcRequest::GetTrace(<[u8; 32]>::decode(r)?)),
            7 => Ok(RpcRequest::CollectTrace(<[u8; 32]>::decode(r)?)),
            8 => Ok(RpcRequest::GetHealth),
            9 => Ok(RpcRequest::Keygen {
                keyref: KeyRef::decode(r)?,
                scheme: SchemeId::decode(r)?,
            }),
            10 => Ok(RpcRequest::ListKeys(String::decode(r)?)),
            11 => Ok(RpcRequest::GetTenantKey(KeyRef::decode(r)?)),
            other => Err(CodecError::InvalidTag(other as u32)),
        }
    }
}

/// One node's trace-journal slice for an instance, with the clock anchor
/// needed to place it on a cross-node timeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeTrace {
    /// UNIX-epoch wall clock (µs) at the journal's creation — added to
    /// each event's monotonic `at_micros` to recover a wall timestamp.
    pub wall_anchor_micros: u64,
    /// True when the journal's ring evicted part of this instance's
    /// history: the events below are a suffix, not the full trace.
    pub truncated: bool,
    /// The recorded events, in recording order.
    pub events: Vec<theta_metrics::TraceEvent>,
}

/// One event on the merged cross-node timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterTraceEntry {
    /// Roster node that recorded the event.
    pub node: u16,
    /// Event time mapped onto the collecting node's clock:
    /// `wall_anchor + at_micros - offset(collector → node)`.
    pub aligned_micros: i64,
    /// The event as recorded.
    pub event: theta_metrics::TraceEvent,
}

/// A merged, offset-aligned cross-node timeline for one instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterTrace {
    /// All nodes' events sorted by aligned timestamp.
    pub entries: Vec<ClusterTraceEntry>,
    /// Nodes whose journal contributed events (including the collector).
    pub nodes_reporting: u16,
    /// True when any contributing journal had evicted part of the
    /// instance's history — the timeline is a suffix.
    pub truncated: bool,
    /// Receives whose earliest matching send aligns *after* them — 0
    /// unless clock-offset estimation was off by more than the true
    /// network latency.
    pub causality_violations: u32,
}

/// The SLO watchdog's verdict plus the numerics it judged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// True when every SLO check passed since the previous poll.
    pub ready: bool,
    /// One line per failed check; empty when ready.
    pub reasons: Vec<String>,
    /// Cumulative p99 end-to-end protocol latency (µs; 0 = no samples).
    pub e2e_p99_micros: u64,
    /// Current worker run-queue depth.
    pub runqueue_depth: i64,
    /// Current submission-queue depth.
    pub submission_queue_depth: i64,
    /// Cumulative instance-mailbox drops.
    pub mailbox_dropped: u64,
    /// Cumulative admission-control rejections.
    pub overload_rejections: u64,
    /// Cumulative link faults (send errors + reader exits + AEAD
    /// failures), 0 on transports without those counters.
    pub link_errors: u64,
}

fn encode_trace_events(events: &[theta_metrics::TraceEvent], w: &mut Writer) {
    (events.len() as u32).encode(w);
    for ev in events {
        ev.instance.encode(w);
        ev.kind.code().encode(w);
        ev.at_micros.encode(w);
        ev.peer.encode(w);
        ev.detail.encode(w);
    }
}

fn decode_trace_events(r: &mut Reader) -> theta_codec::Result<Vec<theta_metrics::TraceEvent>> {
    let len = u32::decode(r)? as usize;
    let mut events = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        events.push(decode_trace_event(r)?);
    }
    Ok(events)
}

fn decode_trace_event(r: &mut Reader) -> theta_codec::Result<theta_metrics::TraceEvent> {
    let instance = <[u8; 32]>::decode(r)?;
    let code = u8::decode(r)?;
    let kind = theta_metrics::TraceEventKind::from_code(code)
        .ok_or(CodecError::InvalidTag(code as u32))?;
    Ok(theta_metrics::TraceEvent {
        instance,
        kind,
        at_micros: u64::decode(r)?,
        peer: u16::decode(r)?,
        detail: String::decode(r)?,
    })
}

/// Successful RPC payloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpcResponse {
    /// Result of a protocol run: the output bytes (plaintext, encoded
    /// signature or coin) plus the server-side latency in microseconds.
    ProtocolResult {
        /// Output bytes.
        output: Vec<u8>,
        /// Server-side latency in microseconds (paper's latency metric).
        server_latency_us: u64,
    },
    /// An encoded public key.
    PublicKey(Vec<u8>),
    /// An encoded ciphertext.
    Ciphertext(Vec<u8>),
    /// Outcome of a signature verification.
    Verified(bool),
    /// The request failed.
    Error(String),
    /// The serving node was at capacity (submission queue or
    /// live-instance cap) and refused the request without queueing it;
    /// safe to retry later or against another node.
    Overloaded,
    /// Event-loop counters of the serving node.
    NodeStats(theta_metrics::EventLoopSnapshot),
    /// Prometheus text exposition of the node's metrics registry.
    MetricsText(String),
    /// One node's trace-journal slice for an instance, with its clock
    /// anchor and truncation flag.
    Trace(NodeTrace),
    /// The merged, offset-aligned cross-node timeline for an instance.
    ClusterTrace(ClusterTrace),
    /// The SLO watchdog's ready/degraded verdict.
    Health(HealthReport),
    /// A tenant's keys as `(name, scheme)` pairs, sorted by name.
    KeyList(Vec<(String, SchemeId)>),
    /// One tenant key's scheme and encoded public key.
    TenantKey {
        /// The key's scheme.
        scheme: SchemeId,
        /// The encoded public key.
        key: Vec<u8>,
    },
}

impl Encode for RpcResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            RpcResponse::ProtocolResult { output, server_latency_us } => {
                0u8.encode(w);
                output.encode(w);
                server_latency_us.encode(w);
            }
            RpcResponse::PublicKey(bytes) => {
                1u8.encode(w);
                bytes.encode(w);
            }
            RpcResponse::Ciphertext(bytes) => {
                2u8.encode(w);
                bytes.encode(w);
            }
            RpcResponse::Verified(ok) => {
                3u8.encode(w);
                ok.encode(w);
            }
            RpcResponse::Error(msg) => {
                4u8.encode(w);
                msg.encode(w);
            }
            RpcResponse::NodeStats(s) => {
                // `EventLoopSnapshot` lives in theta-metrics (which has
                // no codec dependency), so its fields are framed here.
                5u8.encode(w);
                s.wakeups.encode(w);
                s.events_processed.encode(w);
                s.commands_processed.encode(w);
                s.retries_sent.encode(w);
                s.cache_evictions.encode(w);
                s.instances_started.encode(w);
                s.instances_completed.encode(w);
                s.instances_timed_out.encode(w);
            }
            RpcResponse::MetricsText(text) => {
                6u8.encode(w);
                text.encode(w);
            }
            RpcResponse::Overloaded => {
                8u8.encode(w);
            }
            RpcResponse::Trace(trace) => {
                // `TraceEvent` lives in theta-metrics (no codec
                // dependency), so its fields are framed here too.
                7u8.encode(w);
                trace.wall_anchor_micros.encode(w);
                trace.truncated.encode(w);
                encode_trace_events(&trace.events, w);
            }
            RpcResponse::ClusterTrace(trace) => {
                9u8.encode(w);
                (trace.entries.len() as u32).encode(w);
                for entry in &trace.entries {
                    entry.node.encode(w);
                    entry.aligned_micros.encode(w);
                    entry.event.instance.encode(w);
                    entry.event.kind.code().encode(w);
                    entry.event.at_micros.encode(w);
                    entry.event.peer.encode(w);
                    entry.event.detail.encode(w);
                }
                trace.nodes_reporting.encode(w);
                trace.truncated.encode(w);
                trace.causality_violations.encode(w);
            }
            RpcResponse::Health(report) => {
                10u8.encode(w);
                report.ready.encode(w);
                (report.reasons.len() as u32).encode(w);
                for reason in &report.reasons {
                    reason.encode(w);
                }
                report.e2e_p99_micros.encode(w);
                report.runqueue_depth.encode(w);
                report.submission_queue_depth.encode(w);
                report.mailbox_dropped.encode(w);
                report.overload_rejections.encode(w);
                report.link_errors.encode(w);
            }
            RpcResponse::KeyList(keys) => {
                11u8.encode(w);
                (keys.len() as u32).encode(w);
                for (name, scheme) in keys {
                    name.encode(w);
                    scheme.encode(w);
                }
            }
            RpcResponse::TenantKey { scheme, key } => {
                12u8.encode(w);
                scheme.encode(w);
                key.encode(w);
            }
        }
    }
}

impl Decode for RpcResponse {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(RpcResponse::ProtocolResult {
                output: Vec::<u8>::decode(r)?,
                server_latency_us: u64::decode(r)?,
            }),
            1 => Ok(RpcResponse::PublicKey(Vec::<u8>::decode(r)?)),
            2 => Ok(RpcResponse::Ciphertext(Vec::<u8>::decode(r)?)),
            3 => Ok(RpcResponse::Verified(bool::decode(r)?)),
            4 => Ok(RpcResponse::Error(String::decode(r)?)),
            5 => Ok(RpcResponse::NodeStats(theta_metrics::EventLoopSnapshot {
                wakeups: u64::decode(r)?,
                events_processed: u64::decode(r)?,
                commands_processed: u64::decode(r)?,
                retries_sent: u64::decode(r)?,
                cache_evictions: u64::decode(r)?,
                instances_started: u64::decode(r)?,
                instances_completed: u64::decode(r)?,
                instances_timed_out: u64::decode(r)?,
            })),
            6 => Ok(RpcResponse::MetricsText(String::decode(r)?)),
            7 => Ok(RpcResponse::Trace(NodeTrace {
                wall_anchor_micros: u64::decode(r)?,
                truncated: bool::decode(r)?,
                events: decode_trace_events(r)?,
            })),
            8 => Ok(RpcResponse::Overloaded),
            9 => {
                let len = u32::decode(r)? as usize;
                let mut entries = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    entries.push(ClusterTraceEntry {
                        node: u16::decode(r)?,
                        aligned_micros: i64::decode(r)?,
                        event: decode_trace_event(r)?,
                    });
                }
                Ok(RpcResponse::ClusterTrace(ClusterTrace {
                    entries,
                    nodes_reporting: u16::decode(r)?,
                    truncated: bool::decode(r)?,
                    causality_violations: u32::decode(r)?,
                }))
            }
            10 => {
                let ready = bool::decode(r)?;
                let len = u32::decode(r)? as usize;
                let mut reasons = Vec::with_capacity(len.min(64));
                for _ in 0..len {
                    reasons.push(String::decode(r)?);
                }
                Ok(RpcResponse::Health(HealthReport {
                    ready,
                    reasons,
                    e2e_p99_micros: u64::decode(r)?,
                    runqueue_depth: i64::decode(r)?,
                    submission_queue_depth: i64::decode(r)?,
                    mailbox_dropped: u64::decode(r)?,
                    overload_rejections: u64::decode(r)?,
                    link_errors: u64::decode(r)?,
                }))
            }
            11 => {
                let len = u32::decode(r)? as usize;
                let mut keys = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    keys.push((String::decode(r)?, SchemeId::decode(r)?));
                }
                Ok(RpcResponse::KeyList(keys))
            }
            12 => Ok(RpcResponse::TenantKey {
                scheme: SchemeId::decode(r)?,
                key: Vec::<u8>::decode(r)?,
            }),
            other => Err(CodecError::InvalidTag(other as u32)),
        }
    }
}

/// One frame on the wire: correlation id + body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame<T> {
    /// Correlation id chosen by the client.
    pub id: u64,
    /// Request or response body.
    pub body: T,
}

impl<T: Encode> Encode for Frame<T> {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.body.encode(w);
    }
}

impl<T: Decode> Decode for Frame<T> {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(Frame { id: u64::decode(r)?, body: T::decode(r)? })
    }
}

pub(crate) fn write_frame<T: Encode>(
    stream: &mut std::net::TcpStream,
    frame: &Frame<T>,
) -> std::io::Result<()> {
    use std::io::Write;
    let body = frame.encoded();
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(&body)
}

pub(crate) fn read_frame<T: Decode>(stream: &mut std::net::TcpStream) -> std::io::Result<Frame<T>> {
    use std::io::Read;
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > 64 << 20 {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Frame::<T>::decoded(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_request_codec() {
        let reqs = [
            RpcRequest::Protocol(Request::Cks05Coin(b"r".to_vec())),
            RpcRequest::GetPublicKey(SchemeId::Bls04),
            RpcRequest::Encrypt {
                scheme: SchemeId::Sg02,
                label: b"l".to_vec(),
                message: b"m".to_vec(),
            },
            RpcRequest::VerifySignature {
                scheme: SchemeId::Sh00,
                message: b"m".to_vec(),
                signature: vec![1, 2, 3],
            },
            RpcRequest::GetNodeStats,
            RpcRequest::GetMetrics,
            RpcRequest::GetTrace([7u8; 32]),
            RpcRequest::CollectTrace([8u8; 32]),
            RpcRequest::GetHealth,
        ];
        for r in reqs {
            assert_eq!(RpcRequest::decoded(&r.encoded()).unwrap(), r);
        }
    }

    #[test]
    fn rpc_response_codec() {
        let resps = [
            RpcResponse::ProtocolResult { output: vec![1], server_latency_us: 42 },
            RpcResponse::PublicKey(vec![2]),
            RpcResponse::Ciphertext(vec![3]),
            RpcResponse::Verified(true),
            RpcResponse::Error("nope".into()),
            RpcResponse::Overloaded,
            RpcResponse::NodeStats(theta_metrics::EventLoopSnapshot {
                wakeups: 1,
                events_processed: 2,
                commands_processed: 3,
                retries_sent: 4,
                cache_evictions: 5,
                instances_started: 6,
                instances_completed: 7,
                instances_timed_out: 8,
            }),
            RpcResponse::MetricsText("# TYPE x counter\nx 1\n".into()),
            RpcResponse::Trace(NodeTrace {
                wall_anchor_micros: 1_700_000_000_000_000,
                truncated: true,
                events: vec![theta_metrics::TraceEvent {
                    instance: [9u8; 32],
                    kind: theta_metrics::TraceEventKind::ShareVerified,
                    at_micros: 1234,
                    peer: 3,
                    detail: "ok".into(),
                }],
            }),
            RpcResponse::ClusterTrace(ClusterTrace {
                entries: vec![ClusterTraceEntry {
                    node: 2,
                    aligned_micros: -5,
                    event: theta_metrics::TraceEvent {
                        instance: [1u8; 32],
                        kind: theta_metrics::TraceEventKind::PeerRecv,
                        at_micros: 77,
                        peer: 1,
                        detail: "span=0101010101010101 hop=1".into(),
                    },
                }],
                nodes_reporting: 4,
                truncated: false,
                causality_violations: 1,
            }),
            RpcResponse::Health(HealthReport {
                ready: false,
                reasons: vec!["queue depth 300 > 256".into()],
                e2e_p99_micros: 123_456,
                runqueue_depth: 300,
                submission_queue_depth: 12,
                mailbox_dropped: 2,
                overload_rejections: 9,
                link_errors: 0,
            }),
        ];
        for r in resps {
            assert_eq!(RpcResponse::decoded(&r.encoded()).unwrap(), r);
        }
    }

    #[test]
    fn frame_codec() {
        let f = Frame { id: 99, body: RpcResponse::Verified(false) };
        assert_eq!(Frame::<RpcResponse>::decoded(&f.encoded()).unwrap(), f);
    }

    #[test]
    fn key_manager_codec() {
        let reqs = [
            RpcRequest::Keygen {
                keyref: KeyRef::new("acme", "signing-1"),
                scheme: SchemeId::Bls04,
            },
            RpcRequest::ListKeys("acme".into()),
            RpcRequest::GetTenantKey(KeyRef::new("acme", "signing-1")),
            RpcRequest::Protocol(Request::scoped(
                KeyRef::new("acme", "signing-1"),
                Request::Bls04Sign(b"m".to_vec()),
            )),
        ];
        for r in reqs {
            assert_eq!(RpcRequest::decoded(&r.encoded()).unwrap(), r);
        }
        let resps = [
            RpcResponse::KeyList(vec![
                ("signing-1".into(), SchemeId::Bls04),
                ("sealing".into(), SchemeId::Sg02),
            ]),
            RpcResponse::KeyList(vec![]),
            RpcResponse::TenantKey { scheme: SchemeId::Bls04, key: vec![1, 2, 3] },
        ];
        for r in resps {
            assert_eq!(RpcResponse::decoded(&r.encoded()).unwrap(), r);
        }
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(RpcRequest::decoded(&[12]).is_err());
        assert!(RpcResponse::decoded(&[13]).is_err());
    }
}
