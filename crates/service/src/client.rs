//! The RPC client used by applications (and by the benchmarking client,
//! exactly as in the paper's §4.1 setup).

use crate::{read_frame, write_frame, Frame, RpcRequest, RpcResponse};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use theta_orchestration::Request;
use theta_schemes::registry::SchemeId;

/// Errors surfaced by RPC calls.
#[derive(Debug)]
pub enum RpcError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with an error.
    Server(String),
    /// The node refused the request at its capacity bound without
    /// queueing it — retry later or against another node.
    Overloaded,
    /// The server answered with an unexpected response kind.
    UnexpectedResponse,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "rpc i/o error: {e}"),
            RpcError::Server(msg) => write!(f, "server error: {msg}"),
            RpcError::Overloaded => {
                write!(f, "node overloaded: submission refused, retry later")
            }
            RpcError::UnexpectedResponse => write!(f, "unexpected response kind"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e)
    }
}

/// A blocking RPC client over one TCP connection.
///
/// Calls are correlated by id, so out-of-order server responses (protocol
/// results racing scheme-API answers) are handled transparently.
pub struct RpcClient {
    stream: TcpStream,
    next_id: u64,
    /// Bounds each *awaited response*, not the connection lifetime:
    /// every wait gets a fresh window, restarted whenever any complete
    /// frame arrives (an answering server is making progress).
    response_timeout: Option<Duration>,
    /// Responses that arrived while waiting for a different id.
    parked: HashMap<u64, RpcResponse>,
}

impl RpcClient {
    /// Connects to a Thetacrypt service endpoint. `timeout` bounds the
    /// TCP connect and becomes the initial per-response timeout: each
    /// awaited response gets the full window (a server that is slow but
    /// answering within it never errors, however many responses are
    /// awaited over the connection's life), while a server that accepts
    /// the connection and then goes silent surfaces as an
    /// [`RpcError::Io`] timeout instead of blocking the caller forever.
    ///
    /// # Errors
    ///
    /// I/O errors from the TCP connect.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<RpcClient, RpcError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true).ok();
        Ok(RpcClient {
            stream,
            next_id: 0,
            response_timeout: Some(timeout),
            parked: HashMap::new(),
        })
    }

    /// Overrides the per-response timeout (`None` waits forever).
    /// Useful when the connect budget and the protocol-latency budget
    /// differ — e.g. a 1 s dial but minute-long keygen waits.
    pub fn set_response_timeout(&mut self, timeout: Option<Duration>) {
        self.response_timeout = timeout;
    }

    fn call(&mut self, body: RpcRequest) -> Result<RpcResponse, RpcError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &Frame { id, body })?;
        self.wait_for(id)
    }

    fn wait_for(&mut self, id: u64) -> Result<RpcResponse, RpcError> {
        if let Some(resp) = self.parked.remove(&id) {
            return Ok(resp);
        }
        // Regression (PR 6 follow-up): the timeout used to be applied
        // once at connect as the socket's read timeout, which made it a
        // *per-read* bound for the whole connection — response N+1 only
        // got whatever window response N had left unused on a pipelined
        // wait, and a legitimately slow-but-answering server tripped it.
        // Each awaited response now gets its own full window, tracked
        // as a deadline so partial reads cannot stretch it.
        let mut deadline = self.response_timeout.map(|t| std::time::Instant::now() + t);
        loop {
            match deadline {
                Some(d) => {
                    let remaining = d.saturating_duration_since(std::time::Instant::now());
                    if remaining.is_zero() {
                        return Err(RpcError::Io(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "timed out waiting for the response",
                        )));
                    }
                    self.stream.set_read_timeout(Some(remaining))?;
                }
                None => self.stream.set_read_timeout(None)?,
            }
            let frame: Frame<RpcResponse> = read_frame(&mut self.stream)?;
            // A complete frame arrived — the server is alive and
            // draining its queue, so the window restarts.
            deadline = self.response_timeout.map(|t| std::time::Instant::now() + t);
            if frame.id == id {
                return Ok(frame.body);
            }
            self.parked.insert(frame.id, frame.body);
        }
    }

    /// Protocol API: runs a threshold operation to completion, returning
    /// `(output bytes, server-side latency)`.
    ///
    /// # Errors
    ///
    /// [`RpcError::Server`] when the Θ-network failed or timed out.
    pub fn run_protocol(&mut self, request: Request) -> Result<(Vec<u8>, Duration), RpcError> {
        match self.call(RpcRequest::Protocol(request))? {
            RpcResponse::ProtocolResult { output, server_latency_us } => {
                Ok((output, Duration::from_micros(server_latency_us)))
            }
            RpcResponse::Overloaded => Err(RpcError::Overloaded),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Submits a protocol request without waiting; returns the id to pass
    /// to [`RpcClient::collect_protocol`]. Lets load generators pipeline.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn submit_protocol(&mut self, request: Request) -> Result<u64, RpcError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &Frame { id, body: RpcRequest::Protocol(request) })?;
        Ok(id)
    }

    /// Collects a previously submitted protocol request.
    ///
    /// # Errors
    ///
    /// Same as [`RpcClient::run_protocol`].
    pub fn collect_protocol(&mut self, id: u64) -> Result<(Vec<u8>, Duration), RpcError> {
        match self.wait_for(id)? {
            RpcResponse::ProtocolResult { output, server_latency_us } => {
                Ok((output, Duration::from_micros(server_latency_us)))
            }
            RpcResponse::Overloaded => Err(RpcError::Overloaded),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Scheme API: fetches the encoded public key for `scheme`.
    ///
    /// # Errors
    ///
    /// [`RpcError::Server`] when the scheme is not provisioned.
    pub fn public_key(&mut self, scheme: SchemeId) -> Result<Vec<u8>, RpcError> {
        match self.call(RpcRequest::GetPublicKey(scheme))? {
            RpcResponse::PublicKey(bytes) => Ok(bytes),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Scheme API: server-side encryption under the threshold key.
    ///
    /// # Errors
    ///
    /// [`RpcError::Server`] for non-cipher schemes or missing keys.
    pub fn encrypt(
        &mut self,
        scheme: SchemeId,
        label: &[u8],
        message: &[u8],
    ) -> Result<Vec<u8>, RpcError> {
        match self.call(RpcRequest::Encrypt {
            scheme,
            label: label.to_vec(),
            message: message.to_vec(),
        })? {
            RpcResponse::Ciphertext(bytes) => Ok(bytes),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Observability: snapshot of the serving node's event-loop counters.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response kind.
    pub fn node_stats(&mut self) -> Result<theta_metrics::EventLoopSnapshot, RpcError> {
        match self.call(RpcRequest::GetNodeStats)? {
            RpcResponse::NodeStats(s) => Ok(s),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Observability: the node's metrics registry rendered as Prometheus
    /// text exposition.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response kind.
    pub fn metrics(&mut self) -> Result<String, RpcError> {
        match self.call(RpcRequest::GetMetrics)? {
            RpcResponse::MetricsText(text) => Ok(text),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Observability: the node's trace-journal slice for `instance` —
    /// its events in recording order plus the wall-clock anchor and a
    /// flag saying whether the ring evicted part of the history.
    ///
    /// # Errors
    ///
    /// [`RpcError::Server`] when the node has no trace for that id.
    pub fn trace(&mut self, instance: [u8; 32]) -> Result<crate::NodeTrace, RpcError> {
        match self.call(RpcRequest::GetTrace(instance))? {
            RpcResponse::Trace(trace) => Ok(trace),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Observability: asks the node to fan `GetTrace` out across its
    /// roster and merge every journal into one offset-aligned cross-node
    /// timeline for `instance`.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response kind.
    pub fn collect_trace(&mut self, instance: [u8; 32]) -> Result<crate::ClusterTrace, RpcError> {
        match self.call(RpcRequest::CollectTrace(instance))? {
            RpcResponse::ClusterTrace(trace) => Ok(trace),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Observability: the node's SLO watchdog verdict.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response kind.
    pub fn health(&mut self) -> Result<crate::HealthReport, RpcError> {
        match self.call(RpcRequest::GetHealth)? {
            RpcResponse::Health(report) => Ok(report),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Key manager: deals a fresh key for `keyref` under `scheme` on
    /// demand and returns its encoded public key.
    ///
    /// # Errors
    ///
    /// [`RpcError::Server`] when the node has no key manager, the name
    /// already exists, or dealing failed.
    pub fn keygen(
        &mut self,
        keyref: theta_orchestration::KeyRef,
        scheme: SchemeId,
    ) -> Result<Vec<u8>, RpcError> {
        match self.call(RpcRequest::Keygen { keyref, scheme })? {
            RpcResponse::PublicKey(bytes) => Ok(bytes),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Key manager: a tenant's keys as `(name, scheme)` pairs.
    ///
    /// # Errors
    ///
    /// [`RpcError::Server`] when the node has no key manager.
    pub fn list_keys(&mut self, tenant: &str) -> Result<Vec<(String, SchemeId)>, RpcError> {
        match self.call(RpcRequest::ListKeys(tenant.to_string()))? {
            RpcResponse::KeyList(keys) => Ok(keys),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Key manager: the scheme and encoded public key of one tenant key.
    ///
    /// # Errors
    ///
    /// [`RpcError::Server`] when the key does not exist or the node has
    /// no key manager.
    pub fn tenant_key(
        &mut self,
        keyref: theta_orchestration::KeyRef,
    ) -> Result<(SchemeId, Vec<u8>), RpcError> {
        match self.call(RpcRequest::GetTenantKey(keyref))? {
            RpcResponse::TenantKey { scheme, key } => Ok((scheme, key)),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }

    /// Scheme API: verifies a combined signature.
    ///
    /// # Errors
    ///
    /// [`RpcError::Server`] for non-signature schemes or missing keys.
    pub fn verify_signature(
        &mut self,
        scheme: SchemeId,
        message: &[u8],
        signature: &[u8],
    ) -> Result<bool, RpcError> {
        match self.call(RpcRequest::VerifySignature {
            scheme,
            message: message.to_vec(),
            signature: signature.to_vec(),
        })? {
            RpcResponse::Verified(ok) => Ok(ok),
            RpcResponse::Error(msg) => Err(RpcError::Server(msg)),
            _ => Err(RpcError::UnexpectedResponse),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Regression (PR 6): `connect` never applied its timeout to reads,
    /// so a server that accepted the connection but never answered hung
    /// the client forever. Reads must now time out.
    #[test]
    fn reads_time_out_against_an_accept_but_silent_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            // Accept, hold the connection open, never answer.
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(3));
            drop(stream);
        });
        let start = std::time::Instant::now();
        let mut client = RpcClient::connect(addr, Duration::from_millis(300)).unwrap();
        let err = client.node_stats();
        assert!(
            matches!(err, Err(RpcError::Io(_))),
            "expected an i/o timeout, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "client hung on a silent server for {:?}",
            start.elapsed()
        );
    }

    /// Regression: the read timeout used to be set once at connect, so
    /// on a connection that stayed up it effectively bounded the sum of
    /// reads rather than each awaited response. A server that is slow
    /// (here ~3× slower than the window would allow cumulatively) but
    /// answers every request within the window must never trip it.
    #[test]
    fn slow_but_live_server_does_not_trip_the_response_timeout() {
        use crate::RpcRequest;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Answer each request ~250 ms after it arrives.
            while let Ok(frame) = crate::read_frame::<RpcRequest>(&mut stream) {
                std::thread::sleep(Duration::from_millis(250));
                let body = RpcResponse::MetricsText("# slow\n".into());
                if crate::write_frame(&mut stream, &Frame { id: frame.id, body }).is_err() {
                    break;
                }
            }
        });
        let mut client = RpcClient::connect(addr, Duration::from_millis(400)).unwrap();
        // Sequential: each of the four responses takes ~250 ms — fine
        // per-response, but 1 s cumulatively, which the old
        // per-connection socket timeout would have misjudged.
        for _ in 0..4 {
            client.metrics().expect("slow-but-live server must not time out");
        }
        // Pipelined: submit three, then wait; responses arrive ~250 ms
        // apart and each arrival restarts the window.
        let ids: Vec<u64> = (0..3)
            .map(|_| {
                let id = client.next_id;
                client.next_id += 1;
                write_frame(&mut client.stream, &Frame { id, body: RpcRequest::GetMetrics })
                    .unwrap();
                id
            })
            .collect();
        for id in ids {
            let resp = client.wait_for(id).expect("pipelined responses within the window");
            assert!(matches!(resp, RpcResponse::MetricsText(_)));
        }
    }
}
