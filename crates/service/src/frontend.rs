//! The event-driven service front-end: one thread, a poll(2) readiness
//! loop, and zero per-connection or per-request threads.
//!
//! The pre-refactor server spawned an OS thread per connection plus a
//! waiter thread per in-flight protocol request — ~2 threads and two
//! stacks per idle subscriber, which caps a node at a few hundred
//! clients. This loop holds every connection in one thread:
//!
//! - the listener and every connection socket are non-blocking; one
//!   `poll(2)` call (hand-rolled FFI — the workspace vendors no libc)
//!   waits on all of them plus a wakeup pipe;
//! - reads go through a shared 64 KiB scratch buffer, so a connection's
//!   heap cost is proportional to the bytes it actually sent, never to
//!   the length its frame header claims (the 64 MiB frame cap still
//!   bounds a single frame);
//! - protocol requests are submitted to the router with a completion
//!   *callback* ([`theta_orchestration::NodeHandle::try_submit_with`])
//!   that pushes the finished result onto [`FrontendShared`] and writes
//!   one byte into the wakeup pipe — the loop picks it up and writes
//!   the response frame, so a pipelined connection with a thousand
//!   requests in flight still costs zero threads;
//! - the rare slow endpoints (tenant keygen, cluster trace fan-out) run
//!   on short-lived offload threads that complete through the same
//!   queue, keeping the loop itself non-blocking.
//!
//! Shutdown is deterministic: [`ServiceHandle::stop`] sets a flag and
//! writes a wakeup byte; the loop observes it, closes every socket and
//! exits — no dummy self-connect, idempotent, and no leaked fds.

use crate::server::{dispatch_request, respond_to_result, Dispatch, ServiceContext};
use crate::{Frame, RpcRequest, RpcResponse};
use parking_lot::Mutex;
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use theta_codec::Decode;
use theta_metrics::registry::Counter;

/// Largest single read per connection per wakeup, and the buffer size a
/// connection is allowed to keep across idle periods. Bounds both the
/// per-wakeup allocation a hostile frame header can force and the
/// steady-state memory of an idle subscriber.
const READ_CHUNK: usize = 64 * 1024;

/// Frames larger than this are refused outright (matches the blocking
/// codec's cap in `read_frame`).
const MAX_FRAME: usize = 64 << 20;

/// A connection whose client stops reading while we owe it more than
/// this many buffered response bytes is dropped: the old design let TCP
/// backpressure block a writer thread, the loop must bound user-space
/// buffering instead.
const MAX_WRITE_BUFFER: usize = 64 << 20;

// poll(2) FFI — the workspace vendors no libc crate, so the two
// constants and the syscall binding live here (Linux/unix ABI).
const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
}

/// EINTR-safe poll over `fds`; `timeout` of `None` blocks indefinitely.
fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> std::io::Result<usize> {
    let timeout_ms = match timeout {
        // Round up so a 1µs-away deadline does not busy-spin at 0ms.
        Some(t) => t.as_millis().saturating_add(1).min(i32::MAX as u128) as i32,
        None => -1,
    };
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = std::io::Error::last_os_error();
        if err.kind() != std::io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// The loop's wakeup half: producers (router callbacks, offload
/// threads, [`ServiceHandle::stop`]) call [`Waker::wake`]; the loop
/// polls the read end. The armed flag keeps at most one byte in flight,
/// so the pipe can never fill and `wake` never blocks.
struct Waker {
    pipe: UnixStream,
    armed: AtomicBool,
}

impl Waker {
    fn wake(&self) {
        if !self.armed.swap(true, Ordering::SeqCst) {
            let _ = (&self.pipe).write(&[1u8]);
        }
    }
}

/// One finished asynchronous request: which connection and frame it
/// answers, the response, and the bookkeeping the loop settles on
/// delivery (latency histogram sample, tenant quota release).
pub(crate) struct Completion {
    pub(crate) conn: u64,
    pub(crate) frame_id: u64,
    pub(crate) started: Instant,
    pub(crate) response: RpcResponse,
    /// `Some(tenant)` when this request held a per-tenant in-flight
    /// quota slot — released by the loop when the completion lands, so
    /// a connection dying mid-request can never leak quota.
    pub(crate) quota_tenant: Option<String>,
    /// True for router-submitted requests (which have a pending entry
    /// and a service-level deadline); false for offload completions.
    /// A tracked completion whose pending entry is already gone was
    /// answered by the timeout backstop and must not be written twice.
    pub(crate) tracked: bool,
}

/// What the router callbacks and offload threads share with the loop:
/// the completion queue and the waker.
pub(crate) struct FrontendShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl FrontendShared {
    /// Queues a finished request and wakes the loop. Callable from any
    /// thread; cheap enough for the router thread.
    pub(crate) fn complete(&self, completion: Completion) {
        self.completions.lock().push(completion);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock())
    }
}

/// Handle to a running RPC service.
pub struct ServiceHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<FrontendShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the service: the loop closes the listener and every
    /// connection, then its thread exits. Idempotent — any number of
    /// calls (and the eventual drop) stop it exactly once, and no
    /// dummy self-connection is involved.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }

    /// Consuming alias of [`ServiceHandle::stop`], kept for callers of
    /// the original API.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Why a request admitted to the loop is still unanswered.
struct PendingRequest {
    deadline: Instant,
}

/// Per-connection state: the socket plus read/write buffers. An idle
/// subscriber that has sent nothing holds two empty `Vec`s — its cost
/// is this struct and the kernel socket, nothing else.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already flushed to the socket.
    write_pos: usize,
    dead: bool,
}

impl Conn {
    fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Appends an encoded response frame and flushes what the socket
    /// will take right now; the loop arms `POLLOUT` for the rest.
    fn queue_frame(&mut self, frame: &Frame<RpcResponse>) {
        use theta_codec::Encode;
        let body = frame.encoded();
        self.write_buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.write_buf.extend_from_slice(&body);
        if self.write_buf.len() - self.write_pos > MAX_WRITE_BUFFER {
            // The client stopped reading while piling up requests.
            self.dead = true;
            return;
        }
        self.flush();
    }

    /// Writes until the socket would block. Leaves `dead` set on hard
    /// I/O errors.
    fn flush(&mut self) {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
            // An idle connection keeps at most READ_CHUNK of buffer
            // capacity — the "flat memory under C10k" guarantee.
            if self.write_buf.capacity() > READ_CHUNK {
                self.write_buf = Vec::new();
            }
        }
    }
}

/// Where a poll slot points.
enum PollTarget {
    Listener,
    Wakeup,
    Conn(u64),
}

pub(crate) struct EventLoop {
    listener: TcpListener,
    wake_rx: UnixStream,
    shared: Arc<FrontendShared>,
    ctx: Arc<ServiceContext>,
    stop: Arc<AtomicBool>,
    request_timeout: Duration,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    /// Admitted-but-unanswered protocol requests, keyed by
    /// `(connection, frame id)` — only for the request-timeout backstop;
    /// results normally arrive through the completion queue first.
    pending: HashMap<(u64, u64), PendingRequest>,
    deadlines: BinaryHeap<std::cmp::Reverse<(Instant, u64, u64)>>,
    scratch: Vec<u8>,
    /// The poll set, maintained INCREMENTALLY across iterations (slots
    /// 0/1 are the listener and the wakeup pipe, connections follow):
    /// rebuilding it from `conns` every wakeup made each poll cost
    /// O(connections) in userspace on top of the kernel's own fd scan,
    /// which is the dominant per-wakeup cost with thousands of idle
    /// subscribers. `targets` is parallel to `pollfds`; `slot_of` maps a
    /// connection id to its slot.
    pollfds: Vec<PollFd>,
    targets: Vec<PollTarget>,
    slot_of: HashMap<u64, usize>,
    /// Connections whose state may have changed this iteration: their
    /// slot's event mask is refreshed and, if dead, they are reaped —
    /// so per-wakeup work scales with the connections *involved*, never
    /// with the connections that exist.
    touched: Vec<u64>,
    /// `theta_frontend_frame_errors_total` — malformed or internally
    /// inconsistent frames (counted and dropped, never panicked on).
    frame_errors: Arc<Counter>,
}

/// Spawns the front-end thread serving `listener`.
pub(crate) fn spawn_frontend(
    listener: TcpListener,
    ctx: Arc<ServiceContext>,
    request_timeout: Duration,
) -> std::io::Result<ServiceHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    let shared = Arc::new(FrontendShared {
        completions: Mutex::new(Vec::new()),
        waker: Waker { pipe: wake_tx, armed: AtomicBool::new(false) },
    });
    let stop = Arc::new(AtomicBool::new(false));
    let frame_errors = ctx.obs.registry.counter("theta_frontend_frame_errors_total");
    let event_loop = EventLoop {
        listener,
        wake_rx,
        shared: shared.clone(),
        ctx,
        stop: stop.clone(),
        request_timeout,
        conns: HashMap::new(),
        next_conn_id: 0,
        pending: HashMap::new(),
        deadlines: BinaryHeap::new(),
        scratch: vec![0u8; READ_CHUNK],
        pollfds: Vec::new(),
        targets: Vec::new(),
        slot_of: HashMap::new(),
        touched: Vec::new(),
        frame_errors,
    };
    let join = std::thread::Builder::new()
        .name("theta-rpc-frontend".into())
        .spawn(move || event_loop.run())?;
    Ok(ServiceHandle { addr, stop, shared, join: Some(join) })
}

impl EventLoop {
    // theta: event-loop
    fn run(mut self) {
        let connections_gauge = self.ctx.obs.registry.gauge("theta_frontend_connections");
        let accepts = self.ctx.obs.registry.counter("theta_frontend_accepts_total");
        self.pollfds.push(PollFd {
            fd: self.listener.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        self.targets.push(PollTarget::Listener);
        self.pollfds
            .push(PollFd { fd: self.wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
        self.targets.push(PollTarget::Wakeup);
        let mut ready: Vec<(u64, i16)> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            let timeout = self
                .next_request_deadline()
                .map(|t| t.saturating_duration_since(Instant::now()));
            if poll_fds(&mut self.pollfds, timeout).is_err() {
                // poll can only fail structurally (EINVAL/ENOMEM);
                // back off rather than spin.
                // theta: allow(blocking): deliberate backoff after a structural poll(2) failure, not a message-path stall
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            // poll(2) wrote every slot's revents; pull out the ready
            // ones first so dispatch can borrow `self` mutably.
            let mut accept_ready = false;
            let mut wake_ready = false;
            ready.clear();
            for (slot, target) in self.pollfds.iter().zip(&self.targets) {
                if slot.revents == 0 {
                    continue;
                }
                match target {
                    PollTarget::Listener => accept_ready = true,
                    PollTarget::Wakeup => wake_ready = true,
                    PollTarget::Conn(id) => ready.push((*id, slot.revents)),
                }
            }
            if accept_ready {
                self.accept_burst(&accepts, &connections_gauge);
            }
            if wake_ready {
                self.drain_wakeup();
            }
            for &(id, revents) in &ready {
                if revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0 {
                    self.read_burst(id);
                }
                if revents & POLLOUT != 0 {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.flush();
                    }
                }
                self.touched.push(id);
            }
            // Completions may have queued while we serviced sockets.
            self.deliver_completions();
            self.expire_requests();
            self.settle_touched(&connections_gauge);
        }
        // Shutdown: everything (listener, sockets, wake pipe ends) is
        // dropped here; stop() joins this thread, so by the time stop
        // returns no fd of ours is left open.
    }

    fn next_request_deadline(&mut self) -> Option<Instant> {
        while let Some(std::cmp::Reverse((t, conn, frame))) = self.deadlines.peek().copied() {
            match self.pending.get(&(conn, frame)) {
                // Stale entries (already answered) are discarded here.
                Some(p) if p.deadline == t => return Some(t),
                _ => {
                    self.deadlines.pop();
                }
            }
        }
        None
    }

    fn accept_burst(
        &mut self,
        accepts: &Arc<theta_metrics::registry::Counter>,
        gauge: &Arc<theta_metrics::registry::Gauge>,
    ) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    self.slot_of.insert(id, self.pollfds.len());
                    self.pollfds.push(PollFd {
                        fd: stream.as_raw_fd(),
                        events: POLLIN,
                        revents: 0,
                    });
                    self.targets.push(PollTarget::Conn(id));
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            write_pos: 0,
                            dead: false,
                        },
                    );
                    accepts.inc();
                    gauge.set(self.conns.len() as i64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient per-connection failures (ECONNABORTED et
                // al.): skip the connection, keep accepting.
                Err(_) => break,
            }
        }
    }

    fn drain_wakeup(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        // Clearing `armed` *before* draining the queue guarantees a
        // producer that pushes after our drain writes a fresh byte.
        self.shared.waker.armed.store(false, Ordering::SeqCst);
        self.deliver_completions();
    }

    fn deliver_completions(&mut self) {
        for completion in self.shared.drain() {
            if let Some(tenant) = &completion.quota_tenant {
                self.ctx.release_quota(tenant);
            }
            let key = (completion.conn, completion.frame_id);
            let was_pending = self.pending.remove(&key).is_some();
            if completion.tracked && !was_pending {
                // The timeout backstop already answered this frame (and
                // recorded the timer); the late result only releases
                // quota, above.
                continue;
            }
            self.ctx.rpc_timer.record(completion.started.elapsed());
            if let Some(conn) = self.conns.get_mut(&completion.conn) {
                conn.queue_frame(&Frame {
                    id: completion.frame_id,
                    body: completion.response,
                });
                self.touched.push(completion.conn);
            }
        }
    }

    /// Request-timeout backstop: answers pending frames whose window
    /// elapsed. The router delivers real terminal results (including
    /// its own instance timeout) through the completion queue; this
    /// only fires when the service-level window is shorter.
    fn expire_requests(&mut self) {
        let now = Instant::now();
        while let Some(std::cmp::Reverse((t, conn_id, frame_id))) = self.deadlines.peek().copied()
        {
            if t > now {
                break;
            }
            self.deadlines.pop();
            let still_pending = self
                .pending
                .get(&(conn_id, frame_id))
                .is_some_and(|p| p.deadline <= now);
            if !still_pending {
                continue;
            }
            self.pending.remove(&(conn_id, frame_id));
            // Quota (if held) is NOT released here — the completion
            // that eventually arrives releases it, keeping the
            // in-flight accounting truthful.
            // A timed-out request took (by definition) the full window.
            self.ctx.rpc_timer.record(self.request_timeout);
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                conn.queue_frame(&Frame {
                    id: frame_id,
                    body: RpcResponse::Error("request timed out".into()),
                });
                self.touched.push(conn_id);
            }
        }
    }

    fn read_burst(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&self.scratch[..n]);
                    // Oversized-frame check happens during parsing; a
                    // hostile 64 MiB length header costs nothing until
                    // the bytes actually arrive.
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        self.parse_frames(id);
    }

    /// Decodes and dispatches every complete frame in the read buffer.
    // theta: event-loop
    // theta: entrypoint(network)
    fn parse_frames(&mut self, id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            if conn.dead || conn.read_buf.len() < 4 {
                break;
            }
            // Wire input never panics the event loop: both the header
            // and the body are fetched with `get`, and the impossible
            // branches are counted error paths, not unwraps.
            let Some(header) = conn.read_buf.get(..4).and_then(|h| <[u8; 4]>::try_from(h).ok())
            else {
                self.frame_errors.inc();
                conn.dead = true;
                break;
            };
            let len = u32::from_le_bytes(header) as usize;
            if len > MAX_FRAME {
                self.frame_errors.inc();
                conn.dead = true;
                break;
            }
            if conn.read_buf.len() < 4 + len {
                break; // incomplete frame; wait for more bytes
            }
            let Some(body) = conn.read_buf.get(4..4 + len) else {
                self.frame_errors.inc();
                conn.dead = true;
                break;
            };
            let frame = match Frame::<RpcRequest>::decoded(body) {
                Ok(f) => f,
                Err(_) => {
                    // Malformed request: counted, then drop the
                    // connection, matching the blocking server.
                    self.frame_errors.inc();
                    conn.dead = true;
                    break;
                }
            };
            conn.read_buf.drain(..4 + len);
            if conn.read_buf.is_empty() && conn.read_buf.capacity() > READ_CHUNK {
                conn.read_buf = Vec::new();
            }
            self.handle_frame(id, frame);
        }
        // After a burst, release an emptied oversized buffer even if
        // the last frame left the conn borrowed above.
        if let Some(conn) = self.conns.get_mut(&id) {
            if conn.read_buf.is_empty() && conn.read_buf.capacity() > READ_CHUNK {
                conn.read_buf = Vec::new();
            }
        }
    }

    fn handle_frame(&mut self, conn_id: u64, frame: Frame<RpcRequest>) {
        let started = Instant::now();
        let frame_id = frame.id;
        match dispatch_request(&self.ctx, &self.shared, conn_id, frame_id, started, frame.body)
        {
            Dispatch::Inline(response) => {
                self.ctx.rpc_timer.record(started.elapsed());
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.queue_frame(&Frame { id: frame_id, body: response });
                }
            }
            Dispatch::Submitted => {
                let deadline = started + self.request_timeout;
                self.pending.insert((conn_id, frame_id), PendingRequest { deadline });
                self.deadlines
                    .push(std::cmp::Reverse((deadline, conn_id, frame_id)));
            }
            Dispatch::Offloaded => {
                // Offload threads (keygen, trace fan-out) answer
                // through the completion queue without a deadline —
                // they bound their own work.
            }
        }
    }

    /// End-of-iteration pass over every connection an event, completion
    /// or timeout touched: refresh its slot's event mask (write interest
    /// comes and goes with the buffer) and reap it if it died. Only
    /// touched connections are visited — the thousands of idle ones
    /// cost nothing.
    fn settle_touched(&mut self, gauge: &Arc<theta_metrics::registry::Gauge>) {
        let mut reaped = false;
        while let Some(id) = self.touched.pop() {
            let Some(conn) = self.conns.get(&id) else { continue };
            if conn.dead {
                self.conns.remove(&id);
                self.unregister(id);
                // Forget the per-request timeout entries; quota held by
                // in-flight requests is released when their completions
                // arrive, so nothing leaks with the connection gone.
                self.pending.retain(|&(conn, _), _| conn != id);
                reaped = true;
            } else if let Some(&slot) = self.slot_of.get(&id) {
                let mut events = POLLIN;
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                self.pollfds[slot].events = events;
            }
        }
        if reaped {
            gauge.set(self.conns.len() as i64);
        }
    }

    /// Drops a connection's poll slot, patching the bookkeeping of the
    /// slot `swap_remove` moved into its place.
    fn unregister(&mut self, id: u64) {
        let Some(slot) = self.slot_of.remove(&id) else { return };
        self.pollfds.swap_remove(slot);
        self.targets.swap_remove(slot);
        if slot < self.targets.len() {
            // The listener/wakeup slots sit at 0/1 and are never
            // removed, so a moved tail slot is always a connection.
            if let PollTarget::Conn(moved) = self.targets[slot] {
                self.slot_of.insert(moved, slot);
            }
        }
    }
}

/// Helper the completion-callback path uses to translate a router
/// result into a queued completion.
pub(crate) fn completion_for(
    conn: u64,
    frame_id: u64,
    started: Instant,
    quota_tenant: Option<String>,
    result: theta_orchestration::InstanceResult,
) -> Completion {
    Completion {
        conn,
        frame_id,
        started,
        response: respond_to_result(result),
        quota_tenant,
        tracked: true,
    }
}
