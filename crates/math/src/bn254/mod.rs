//! The BN254 pairing-friendly curve (the paper's "Bn254", Table 3) with a
//! complete optimal-ate pairing, built from scratch.
//!
//! Tower: `Fp2 = Fp[u]/(u²+1)`, `Fp6 = Fp2[v]/(v³−ξ)`, `Fp12 = Fp6[w]/(w²−v)`
//! with ξ = 9 + u. G1 is `y² = x³ + 3` over F_p (cofactor 1); G2 is the
//! r-order subgroup of the D-type sextic twist `y² = x³ + 3/ξ` over F_p².
//!
//! # Example
//!
//! ```
//! use theta_math::bn254::{pairing, Fr, G1, G2};
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let sk = Fr::random(&mut rng);
//! // BLS-style: e(sk·H, G2) == e(H, sk·G2)
//! let h = G1::mul_generator(&Fr::from_u64(42));
//! let lhs = pairing(&h.mul(&sk), &G2::generator());
//! let rhs = pairing(&h, &G2::mul_generator(&sk));
//! assert_eq!(lhs, rhs);
//! ```

mod curve;
mod fp;
mod fp12;
mod fp2;
mod fp6;
mod fr;
mod g1;
mod g2;
mod pairing;

pub use fp::Fp;
pub use fp12::Fp12;
pub use fp2::Fp2;
pub use fp6::Fp6;
pub use fr::Fr;
pub use g1::G1;
pub use g2::G2;
pub use pairing::{miller_loop, multi_pairing, pairing, pairing_check};
