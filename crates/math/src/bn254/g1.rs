//! G1: the group of F_p-rational points on `y² = x³ + 3` (cofactor 1).

use super::curve::define_weierstrass_group;
use super::fp::Fp;

define_weierstrass_group!(
    /// A point of the BN254 G1 group in Jacobian coordinates.
    ///
    /// Used for BLS04 signatures and BZ03 ciphertext-validity elements.
    /// The cofactor is 1, so every curve point is in the r-order group.
    G1,
    Fp,
    Fp::from_u64(3),
    (Fp::from_u64(1), Fp::from_u64(2))
);

impl G1 {
    /// `scalar · G` for the fixed generator, via the process-wide
    /// fixed-base table (additions only — no doublings, no per-call
    /// table build).
    pub fn mul_generator(scalar: &super::fr::Fr) -> G1 {
        crate::precomp::bn254_g1_table().mul(scalar.to_biguint())
    }

    /// Lifts an x-coordinate to a curve point, picking the root whose
    /// parity matches `y_odd`. Returns `None` when `x³ + 3` is a
    /// non-residue. This is the primitive behind try-and-increment
    /// hash-to-G1 (used by BLS04 message hashing and BZ03).
    pub fn from_x(x: Fp, y_odd: bool) -> Option<G1> {
        let yy = x.square().mul(&x).add(&G1::b());
        let mut y = yy.sqrt()?;
        if y.is_odd() != y_odd {
            y = y.neg();
        }
        G1::from_affine(x, y)
    }

    /// Compressed 33-byte encoding: a tag byte then big-endian x.
    ///
    /// Tag: 0 = identity, 2 = even y, 3 = odd y.
    pub fn to_compressed(&self) -> [u8; 33] {
        let mut out = [0u8; 33];
        match self.to_affine() {
            None => out,
            Some((x, y)) => {
                out[0] = if y.is_odd() { 3 } else { 2 };
                out[1..].copy_from_slice(&x.to_bytes_be());
                out
            }
        }
    }

    /// Decodes the 33-byte compressed encoding.
    pub fn from_compressed(bytes: &[u8; 33]) -> Option<G1> {
        match bytes[0] {
            0 => {
                if bytes[1..].iter().all(|&b| b == 0) {
                    Some(G1::identity())
                } else {
                    None
                }
            }
            tag @ (2 | 3) => {
                let mut xb = [0u8; 32];
                xb.copy_from_slice(&bytes[1..]);
                let x = Fp::from_bytes_be(&xb)?;
                G1::from_x(x, tag == 3)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::Fr;
    use crate::BigUint;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x61)
    }

    #[test]
    fn generator_on_curve() {
        let g = G1::generator();
        assert!(!g.is_identity());
        let (x, y) = g.to_affine().unwrap();
        assert!(G1::from_affine(x, y).is_some());
        assert!(g.is_torsion_free());
    }

    #[test]
    fn group_laws() {
        let mut r = rng();
        for _ in 0..5 {
            let p = G1::mul_generator(&Fr::random(&mut r));
            let q = G1::mul_generator(&Fr::random(&mut r));
            let s = G1::mul_generator(&Fr::random(&mut r));
            assert_eq!(p.add(&q), q.add(&p));
            assert_eq!(p.add(&q).add(&s), p.add(&q.add(&s)));
            assert_eq!(p.add(&G1::identity()), p);
            assert!(p.add(&p.neg()).is_identity());
            assert_eq!(p.double(), p.add(&p));
        }
    }

    #[test]
    fn scalar_mul_homomorphism() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        assert_eq!(
            G1::mul_generator(&a.add(&b)),
            G1::mul_generator(&a).add(&G1::mul_generator(&b))
        );
        assert_eq!(
            G1::mul_generator(&a.mul(&b)),
            G1::mul_generator(&a).mul(&b)
        );
    }

    #[test]
    fn order_annihilates() {
        assert!(G1::generator().mul_biguint(Fr::modulus()).is_identity());
        let r_minus_1 = Fr::modulus() - &BigUint::one();
        assert_eq!(
            G1::generator().mul_biguint(&r_minus_1),
            G1::generator().neg()
        );
    }

    #[test]
    fn small_multiples() {
        let g = G1::generator();
        let mut acc = G1::identity();
        for k in 0u64..8 {
            assert_eq!(g.mul(&Fr::from_u64(k)), acc);
            acc = acc.add(&g);
        }
    }

    #[test]
    fn compressed_roundtrip() {
        let mut r = rng();
        for _ in 0..10 {
            let p = G1::mul_generator(&Fr::random(&mut r));
            let c = p.to_compressed();
            assert_eq!(G1::from_compressed(&c).unwrap(), p);
        }
        let id = G1::identity();
        assert_eq!(G1::from_compressed(&id.to_compressed()).unwrap(), id);
    }

    #[test]
    fn compressed_rejects_garbage() {
        let mut bad = [0xffu8; 33];
        bad[0] = 9;
        assert!(G1::from_compressed(&bad).is_none());
        // Non-canonical identity (tag 0 with nonzero payload).
        let mut bad = [0u8; 33];
        bad[5] = 1;
        assert!(G1::from_compressed(&bad).is_none());
    }

    #[test]
    fn from_x_respects_sign() {
        let mut r = rng();
        let p = G1::mul_generator(&Fr::random(&mut r));
        let (x, y) = p.to_affine().unwrap();
        let q = G1::from_x(x, y.is_odd()).unwrap();
        assert_eq!(p, q);
        let q_neg = G1::from_x(x, !y.is_odd()).unwrap();
        assert_eq!(p.neg(), q_neg);
    }
}
