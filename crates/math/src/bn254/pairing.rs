//! The optimal ate pairing e : G1 × G2 → G_T ⊂ F_p¹².
//!
//! Implemented with affine Miller-loop steps (one F_p² inversion per step)
//! for clarity; the line function is assembled into a full F_p¹² element
//! and multiplied without sparse tricks. Correctness is enforced by
//! bilinearity/non-degeneracy tests rather than test vectors, which a
//! wrong loop constant, twist type or Frobenius coefficient would all
//! break.

use super::fp::Fp;
use super::fp2::Fp2;
use super::fp6::Fp6;
use super::fp12::Fp12;
use super::g1::G1;
use super::g2::G2;

/// The BN parameter x = 4965661367192848881; the Miller loop runs over
/// 6x + 2 = 29793968203157093288 (65 bits, hence `u128`).
const SIX_X_PLUS_2: u128 = 29793968203157093288;

/// Affine G2 point used inside the Miller loop.
#[derive(Clone, Copy)]
struct TwistPoint {
    x: Fp2,
    y: Fp2,
}

/// Line through (or tangent at) twist points, evaluated at P ∈ G1.
///
/// After untwisting, the line is `y_P − λ·x_P·w + (λ·x_T − y_T)·w³`,
/// i.e. in the tower: c0 = (y_P, 0, 0), c1 = (−λ·x_P, λ·x_T − y_T, 0).
fn line_value(lambda: &Fp2, t: &TwistPoint, px: &Fp, py: &Fp) -> Fp12 {
    let a = Fp2::from_fp(*py);
    let b = lambda.mul_fp(px).neg();
    let c = lambda.mul(&t.x).sub(&t.y);
    Fp12::new(
        Fp6::new(a, Fp2::ZERO, Fp2::ZERO),
        Fp6::new(b, c, Fp2::ZERO),
    )
}

/// Vertical line `x_P − x_T·w²` through T and −T, evaluated at P.
fn vertical_line_value(t: &TwistPoint, px: &Fp) -> Fp12 {
    // w² = v, so the element is c0 = (x_P, −x_T, 0), c1 = 0.
    Fp12::new(
        Fp6::new(Fp2::from_fp(*px), t.x.neg(), Fp2::ZERO),
        Fp6::ZERO,
    )
}

/// Tangent step: returns (line at P, 2T).
fn double_step(t: &TwistPoint, px: &Fp, py: &Fp) -> (Fp12, TwistPoint) {
    // λ = 3x² / 2y
    let xx = t.x.square();
    let num = xx.double().add(&xx);
    let denom = t.y.double().invert().expect("y != 0 on the Miller path");
    let lambda = num.mul(&denom);
    let line = line_value(&lambda, t, px, py);
    let x3 = lambda.square().sub(&t.x.double());
    let y3 = lambda.mul(&t.x.sub(&x3)).sub(&t.y);
    (line, TwistPoint { x: x3, y: y3 })
}

/// Chord step: returns (line at P, T + Q).
fn add_step(t: &TwistPoint, q: &TwistPoint, px: &Fp, py: &Fp) -> (Fp12, TwistPoint) {
    if t.x == q.x {
        if t.y == q.y {
            return double_step(t, px, py);
        }
        // T = −Q: vertical line, sum is the identity — this cannot occur
        // mid-loop for r-torsion inputs but is handled for completeness.
        return (
            vertical_line_value(t, px),
            TwistPoint { x: Fp2::ZERO, y: Fp2::ZERO },
        );
    }
    let lambda = q.y.sub(&t.y).mul(&q.x.sub(&t.x).invert().expect("x_T != x_Q"));
    let line = line_value(&lambda, t, px, py);
    let x3 = lambda.square().sub(&t.x).sub(&q.x);
    let y3 = lambda.mul(&t.x.sub(&x3)).sub(&t.y);
    (line, TwistPoint { x: x3, y: y3 })
}

/// The Miller loop of the optimal ate pairing (no final exponentiation).
///
/// Returns `Fp12::ONE` when either input is the identity.
pub fn miller_loop(p: &G1, q: &G2) -> Fp12 {
    let (px, py) = match p.to_affine() {
        Some(c) => c,
        None => return Fp12::ONE,
    };
    let (qx, qy) = match q.to_affine() {
        Some(c) => c,
        None => return Fp12::ONE,
    };
    let q_aff = TwistPoint { x: qx, y: qy };
    let mut t = q_aff;
    let mut f = Fp12::ONE;

    let bits = 128 - SIX_X_PLUS_2.leading_zeros();
    for i in (0..bits - 1).rev() {
        f = f.square();
        let (line, t2) = double_step(&t, &px, &py);
        f = f.mul(&line);
        t = t2;
        if (SIX_X_PLUS_2 >> i) & 1 == 1 {
            let (line, t2) = add_step(&t, &q_aff, &px, &py);
            f = f.mul(&line);
            t = t2;
        }
    }

    // Frobenius correction lines: Q1 = ψ(Q), Q2 = ψ²(Q) (negated).
    let q1 = q.frobenius();
    let q2 = q1.frobenius().neg();
    let (q1x, q1y) = q1.to_affine().expect("psi(Q) != identity");
    let (q2x, q2y) = q2.to_affine().expect("psi^2(Q) != identity");
    let q1_aff = TwistPoint { x: q1x, y: q1y };
    let q2_aff = TwistPoint { x: q2x, y: q2y };

    let (line, t2) = add_step(&t, &q1_aff, &px, &py);
    f = f.mul(&line);
    t = t2;
    let (line, _) = add_step(&t, &q2_aff, &px, &py);
    f = f.mul(&line);

    f
}

/// The full optimal ate pairing `e(P, Q)`.
///
/// # Examples
///
/// ```
/// use theta_math::bn254::{pairing, Fr, G1, G2};
/// let e = pairing(&G1::generator(), &G2::generator());
/// assert!(!e.is_one()); // non-degenerate
/// ```
pub fn pairing(p: &G1, q: &G2) -> Fp12 {
    miller_loop(p, q)
        .final_exponentiation()
        .expect("miller loop output is invertible")
}

/// Computes `Π e(P_i, Q_i)` sharing one final exponentiation — the shape
/// every pairing-based verification equation in BLS04/BZ03 uses.
pub fn multi_pairing(pairs: &[(&G1, &G2)]) -> Fp12 {
    let mut acc = Fp12::ONE;
    for (p, q) in pairs {
        acc = acc.mul(&miller_loop(p, q));
    }
    acc.final_exponentiation()
        .expect("miller loop outputs are invertible")
}

/// Checks `e(a1, a2) == e(b1, b2)` using a single final exponentiation via
/// `e(a1, a2) · e(−b1, b2) == 1`.
pub fn pairing_check(a1: &G1, a2: &G2, b1: &G1, b2: &G2) -> bool {
    multi_pairing(&[(a1, a2), (&b1.neg(), b2)]).is_one()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::Fr;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xee)
    }

    #[test]
    fn non_degenerate() {
        let e = pairing(&G1::generator(), &G2::generator());
        assert!(!e.is_one());
        assert!(!e.is_zero());
    }

    #[test]
    fn output_has_order_r() {
        let e = pairing(&G1::generator(), &G2::generator());
        assert_eq!(e.pow(Fr::modulus()), Fp12::ONE);
    }

    #[test]
    fn bilinear_in_g1() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        let e_base = pairing(&G1::generator(), &G2::generator());
        let e_scaled = pairing(&G1::mul_generator(&a), &G2::generator());
        assert_eq!(e_scaled, e_base.pow(a.to_biguint()));
    }

    #[test]
    fn bilinear_in_g2() {
        let mut r = rng();
        let b = Fr::random(&mut r);
        let e_base = pairing(&G1::generator(), &G2::generator());
        let e_scaled = pairing(&G1::generator(), &G2::mul_generator(&b));
        assert_eq!(e_scaled, e_base.pow(b.to_biguint()));
    }

    #[test]
    fn bilinear_both_sides() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let lhs = pairing(&G1::mul_generator(&a), &G2::mul_generator(&b));
        let rhs = pairing(&G1::mul_generator(&a.mul(&b)), &G2::generator());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn identity_pairs_to_one() {
        assert!(pairing(&G1::identity(), &G2::generator()).is_one());
        assert!(pairing(&G1::generator(), &G2::identity()).is_one());
    }

    #[test]
    fn inverse_relation() {
        let e = pairing(&G1::generator(), &G2::generator());
        let e_neg = pairing(&G1::generator().neg(), &G2::generator());
        assert_eq!(e.mul(&e_neg), Fp12::ONE);
    }

    #[test]
    fn multi_pairing_matches_products() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let p1 = G1::mul_generator(&a);
        let p2 = G1::mul_generator(&b);
        let q = G2::generator();
        let single = pairing(&p1, &q).mul(&pairing(&p2, &q));
        let multi = multi_pairing(&[(&p1, &q), (&p2, &q)]);
        assert_eq!(single, multi);
    }

    #[test]
    fn pairing_check_works() {
        let mut r = rng();
        let x = Fr::random(&mut r);
        // e(xG1, G2) == e(G1, xG2)
        assert!(pairing_check(
            &G1::mul_generator(&x),
            &G2::generator(),
            &G1::generator(),
            &G2::mul_generator(&x),
        ));
        // and a perturbed equation fails
        assert!(!pairing_check(
            &G1::mul_generator(&x.add(&Fr::one())),
            &G2::generator(),
            &G1::generator(),
            &G2::mul_generator(&x),
        ));
    }
}
