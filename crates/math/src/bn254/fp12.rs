//! The full extension F_p¹² = F_p⁶[w] / (w² − v), target group of the
//! BN254 pairing, with the Frobenius endomorphism needed by the optimal
//! ate Miller loop and the final exponentiation.

use super::fp::Fp;
use super::fp2::Fp2;
use super::fp6::Fp6;
use crate::BigUint;
use std::fmt;
use std::sync::OnceLock;

/// An element `c0 + c1·w` of F_p¹².
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Fp12 {
    pub c0: Fp6,
    pub c1: Fp6,
}

/// Frobenius constants γ: powers of ξ used by the p-power endomorphisms.
struct FrobeniusParams {
    /// ξ^((p−1)/6): scales the w-coefficient in the F_p¹² Frobenius.
    gamma_w: Fp2,
    /// ξ^((p−1)/3): scales the v-coefficient in the F_p⁶ Frobenius.
    gamma_v1: Fp2,
    /// ξ^(2(p−1)/3): scales the v²-coefficient in the F_p⁶ Frobenius.
    gamma_v2: Fp2,
    /// ξ^((p−1)/2): scales the y-coordinate in the G2 Frobenius (ψ).
    gamma_y: Fp2,
}

fn frobenius_params() -> &'static FrobeniusParams {
    static PARAMS: OnceLock<FrobeniusParams> = OnceLock::new();
    PARAMS.get_or_init(|| {
        let p = Fp::modulus();
        let one = BigUint::one();
        let p_minus_1 = p - &one;
        let e6 = p_minus_1.divrem(&BigUint::from_u64(6)).0;
        let e3 = p_minus_1.divrem(&BigUint::from_u64(3)).0;
        let e2 = &p_minus_1 >> 1;
        let xi = Fp2::xi();
        FrobeniusParams {
            gamma_w: xi.pow(&e6),
            gamma_v1: xi.pow(&e3),
            gamma_v2: xi.pow(&e3).square(),
            gamma_y: xi.pow(&e2),
        }
    })
}

/// ξ^((p−1)/3) — exposed for the G2 untwist-Frobenius-twist endomorphism.
pub(crate) fn frobenius_gamma_x() -> Fp2 {
    frobenius_params().gamma_v1
}

/// ξ^((p−1)/2) — exposed for the G2 untwist-Frobenius-twist endomorphism.
pub(crate) fn frobenius_gamma_y() -> Fp2 {
    frobenius_params().gamma_y
}

/// Frobenius endomorphism of F_p⁶ (coefficients conjugated, v-powers scaled).
fn frobenius_fp6(a: &Fp6) -> Fp6 {
    let params = frobenius_params();
    Fp6 {
        c0: a.c0.conjugate(),
        c1: a.c1.conjugate().mul(&params.gamma_v1),
        c2: a.c2.conjugate().mul(&params.gamma_v2),
    }
}

impl Fp12 {
    /// The additive identity.
    pub const ZERO: Fp12 = Fp12 { c0: Fp6::ZERO, c1: Fp6::ZERO };
    /// The multiplicative identity.
    pub const ONE: Fp12 = Fp12 { c0: Fp6::ONE, c1: Fp6::ZERO };

    /// Builds from two F_p⁶ halves.
    pub fn new(c0: Fp6, c1: Fp6) -> Fp12 {
        Fp12 { c0, c1 }
    }

    /// Uniformly random element.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Fp12 {
        Fp12 { c0: Fp6::random(rng), c1: Fp6::random(rng) }
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// True when one.
    pub fn is_one(&self) -> bool {
        *self == Fp12::ONE
    }

    /// Addition.
    pub fn add(&self, rhs: &Fp12) -> Fp12 {
        Fp12 { c0: self.c0.add(&rhs.c0), c1: self.c1.add(&rhs.c1) }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Fp12) -> Fp12 {
        Fp12 { c0: self.c0.sub(&rhs.c0), c1: self.c1.sub(&rhs.c1) }
    }

    /// Multiplication (Karatsuba; w² = v).
    pub fn mul(&self, rhs: &Fp12) -> Fp12 {
        let aa = self.c0.mul(&rhs.c0);
        let bb = self.c1.mul(&rhs.c1);
        let sum_a = self.c0.add(&self.c1);
        let sum_b = rhs.c0.add(&rhs.c1);
        Fp12 {
            c0: aa.add(&bb.mul_by_v()),
            c1: sum_a.mul(&sum_b).sub(&aa).sub(&bb),
        }
    }

    /// Squaring.
    pub fn square(&self) -> Fp12 {
        self.mul(self)
    }

    /// Conjugation over F_p⁶: `c0 − c1 w`. For unitary elements (pairing
    /// outputs after the easy part) this equals inversion.
    pub fn conjugate(&self) -> Fp12 {
        Fp12 { c0: self.c0, c1: self.c1.neg() }
    }

    /// Multiplicative inverse.
    pub fn invert(&self) -> Option<Fp12> {
        // (c0 + c1 w)^{-1} = (c0 − c1 w) / (c0² − c1²·v)
        let denom = self.c0.square().sub(&self.c1.square().mul_by_v());
        let denom_inv = denom.invert()?;
        Some(Fp12 {
            c0: self.c0.mul(&denom_inv),
            c1: self.c1.neg().mul(&denom_inv),
        })
    }

    /// The p-power Frobenius endomorphism.
    pub fn frobenius(&self) -> Fp12 {
        let params = frobenius_params();
        let c0 = frobenius_fp6(&self.c0);
        let c1 = frobenius_fp6(&self.c1).mul_fp2(&params.gamma_w);
        Fp12 { c0, c1 }
    }

    /// The p²-power Frobenius (two applications).
    pub fn frobenius2(&self) -> Fp12 {
        self.frobenius().frobenius()
    }

    /// Exponentiation by an arbitrary non-negative integer.
    pub fn pow(&self, exp: &BigUint) -> Fp12 {
        let mut acc = Fp12::ONE;
        for i in (0..exp.bits()).rev() {
            acc = acc.square();
            if exp.bit(i) {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Final exponentiation of the pairing.
    ///
    /// Easy part via conjugation/Frobenius; hard part via the
    /// Fuentes-Castañeda x-chain for BN curves (three ~63-bit
    /// exponentiations instead of one 762-bit square-and-multiply).
    /// The chain computes `f^(m·(p⁴−p²+1)/r)` for the fixed constant
    /// `m = 2x(6x²+3x+1)` with `gcd(m, r) = 1` — a standard,
    /// equally-valid instantiation of the pairing's final power: the
    /// result is still r-torsion, non-degenerate and bilinear, and every
    /// pairing in the library uses the same exponent. The exact relation
    /// to the canonical exponent is asserted in tests against
    /// [`Fp12::final_exponentiation_generic`].
    pub fn final_exponentiation(&self) -> Option<Fp12> {
        let f2 = self.easy_part()?;
        Some(hard_part_chain(&f2))
    }

    /// Reference final exponentiation (plain square-and-multiply with the
    /// canonical (p⁴ − p² + 1)/r exponent); the correctness oracle for
    /// the optimized chain, which equals this value raised to the fixed
    /// r-coprime constant `m = 2x(6x²+3x+1)`.
    pub fn final_exponentiation_generic(&self) -> Option<Fp12> {
        let f2 = self.easy_part()?;
        static HARD: OnceLock<BigUint> = OnceLock::new();
        let exp = HARD.get_or_init(|| {
            let p = Fp::modulus();
            let r = super::fr::Fr::modulus();
            let p2 = p * p;
            let p4 = &p2 * &p2;
            let num = &(&p4 - &p2) + &BigUint::one();
            let (q, rem) = num.divrem(r);
            assert!(rem.is_zero(), "r divides p^4 - p^2 + 1 for BN curves");
            q
        });
        Some(f2.pow(exp))
    }

    /// Easy part: `f^((p⁶−1)(p²+1))`.
    fn easy_part(&self) -> Option<Fp12> {
        let inv = self.invert()?;
        let f1 = self.conjugate().mul(&inv); // f^(p⁶−1)
        Some(f1.frobenius2().mul(&f1)) // ^(p²+1)
    }

    /// `self^x` for the BN parameter x (elements here are unitary, so a
    /// plain left-to-right ladder over x's 63 bits suffices).
    fn pow_by_x(&self) -> Fp12 {
        /// The BN254 curve parameter x = 4965661367192848881.
        const X: u64 = 4965661367192848881;
        let mut acc = Fp12::ONE;
        for i in (0..64 - X.leading_zeros()).rev() {
            acc = acc.square();
            if (X >> i) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// The p³-power Frobenius.
    fn frobenius3(&self) -> Fp12 {
        self.frobenius2().frobenius()
    }
}

/// Fuentes-Castañeda hard part `f^(m·(p⁴−p²+1)/r)`, m = 2x(6x²+3x+1),
/// for BN curves with positive parameter x (the chain used by standard
/// Bn implementations; `exp_by_neg_x(f) = conj(f^x)` since inputs are
/// unitary after the easy part, making inversion a conjugation).
fn hard_part_chain(r: &Fp12) -> Fp12 {
    let exp_by_neg_x = |f: &Fp12| f.pow_by_x().conjugate();

    let y0 = exp_by_neg_x(r); // r^{-x}
    let y1 = y0.square(); // r^{-2x}
    let y2 = y1.square(); // r^{-4x}
    let y3 = y2.mul(&y1); // r^{-6x}
    let y4 = exp_by_neg_x(&y3); // r^{6x²}
    let y5 = y4.square(); // r^{12x²}
    let y6 = exp_by_neg_x(&y5); // r^{-12x³}
    let y3 = y3.conjugate(); // r^{6x}
    let y6 = y6.conjugate(); // r^{12x³}
    let y7 = y6.mul(&y4); // r^{12x³+6x²}
    let y8 = y7.mul(&y3); // r^{12x³+6x²+6x}
    let y9 = y8.mul(&y1); // r^{12x³+6x²+4x}
    let y10 = y8.mul(&y4); // r^{12x³+12x²+6x}
    let y11 = y10.mul(r);
    let y12 = y9.frobenius();
    let y13 = y12.mul(&y11);
    let y14 = y8.frobenius2();
    let y15 = y14.mul(&y13);
    let y16 = r.conjugate();
    let y17 = y16.mul(&y9);
    let y18 = y17.frobenius3();
    y18.mul(&y15)
}

impl fmt::Debug for Fp12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp12({:?}, {:?})", self.c0, self.c1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xf12)
    }

    #[test]
    fn ring_axioms() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp12::random(&mut r);
            let b = Fp12::random(&mut r);
            let c = Fp12::random(&mut r);
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            assert_eq!(a.mul(&Fp12::ONE), a);
        }
    }

    #[test]
    fn w_squared_is_v() {
        let w = Fp12::new(Fp6::ZERO, Fp6::ONE);
        let v = Fp12::new(Fp6::new(Fp2::ZERO, Fp2::ONE, Fp2::ZERO), Fp6::ZERO);
        assert_eq!(w.square(), v);
    }

    #[test]
    fn invert_roundtrip() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fp12::ONE);
        }
    }

    #[test]
    fn frobenius_matches_pow_p() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        assert_eq!(a.frobenius(), a.pow(Fp::modulus()));
    }

    #[test]
    fn frobenius_twelve_times_identity() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let mut b = a;
        for _ in 0..12 {
            b = b.frobenius();
        }
        assert_eq!(a, b);
    }

    #[test]
    fn final_exponentiation_lands_in_torsion() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let f = a.final_exponentiation().expect("nonzero");
        // Result must have order dividing r.
        assert_eq!(f.pow(super::super::fr::Fr::modulus()), Fp12::ONE);
    }

    #[test]
    fn fast_hard_part_is_fixed_multiple_of_generic() {
        // fast = generic^m with m = 2x(6x²+3x+1), the Fuentes-Castañeda
        // constant; verified exactly.
        let x = BigUint::from_u64(4965661367192848881);
        let six_x2 = (&(&x * &x) * &BigUint::from_u64(6)).clone();
        let three_x = &x * &BigUint::from_u64(3);
        let m = &(&x << 1) * &(&(&six_x2 + &three_x) + &BigUint::one());
        let mut r = rng();
        for _ in 0..2 {
            let a = Fp12::random(&mut r);
            let fast = a.final_exponentiation().unwrap();
            let generic = a.final_exponentiation_generic().unwrap();
            assert_eq!(fast, generic.pow(&m));
            // And the fast output is genuinely r-torsion.
            assert_eq!(fast.pow(super::super::fr::Fr::modulus()), Fp12::ONE);
        }
    }

    #[test]
    fn pow_by_x_matches_pow() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let x = BigUint::from_u64(4965661367192848881);
        assert_eq!(a.pow_by_x(), a.pow(&x));
    }
}
