//! The quadratic extension F_p² = F_p[u] / (u² + 1).
//!
//! G2 of BN254 lives over this field, and the sextic twist is defined with
//! the non-residue ξ = 9 + u.

use super::fp::Fp;
use crate::BigUint;
use std::fmt;

/// An element `c0 + c1·u` of F_p².
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp2 {
    /// Real coefficient.
    pub c0: Fp,
    /// Coefficient of `u`.
    pub c1: Fp,
}

impl Fp2 {
    /// The additive identity.
    pub const ZERO: Fp2 = Fp2 { c0: Fp::ZERO, c1: Fp::ZERO };
    /// The multiplicative identity.
    pub const ONE: Fp2 = Fp2 { c0: Fp::ONE, c1: Fp::ZERO };

    /// Builds from two base-field coefficients.
    pub fn new(c0: Fp, c1: Fp) -> Fp2 {
        Fp2 { c0, c1 }
    }

    /// Embeds a base-field element.
    pub fn from_fp(c0: Fp) -> Fp2 {
        Fp2 { c0, c1: Fp::ZERO }
    }

    /// ξ = 9 + u, the sextic non-residue defining the twist and the tower.
    pub fn xi() -> Fp2 {
        Fp2 { c0: Fp::from_u64(9), c1: Fp::ONE }
    }

    /// Uniformly random element.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Fp2 {
        Fp2 { c0: Fp::random(rng), c1: Fp::random(rng) }
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Addition.
    pub fn add(&self, rhs: &Fp2) -> Fp2 {
        Fp2 { c0: self.c0.add(&rhs.c0), c1: self.c1.add(&rhs.c1) }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Fp2) -> Fp2 {
        Fp2 { c0: self.c0.sub(&rhs.c0), c1: self.c1.sub(&rhs.c1) }
    }

    /// Negation.
    pub fn neg(&self) -> Fp2 {
        Fp2 { c0: self.c0.neg(), c1: self.c1.neg() }
    }

    /// Doubling.
    pub fn double(&self) -> Fp2 {
        self.add(self)
    }

    /// Multiplication (Karatsuba over the base field; u² = −1).
    pub fn mul(&self, rhs: &Fp2) -> Fp2 {
        let aa = self.c0.mul(&rhs.c0);
        let bb = self.c1.mul(&rhs.c1);
        let sum_a = self.c0.add(&self.c1);
        let sum_b = rhs.c0.add(&rhs.c1);
        Fp2 {
            c0: aa.sub(&bb),
            c1: sum_a.mul(&sum_b).sub(&aa).sub(&bb),
        }
    }

    /// Squaring (complex method).
    pub fn square(&self) -> Fp2 {
        let a_plus_b = self.c0.add(&self.c1);
        let a_minus_b = self.c0.sub(&self.c1);
        let ab = self.c0.mul(&self.c1);
        Fp2 {
            c0: a_plus_b.mul(&a_minus_b),
            c1: ab.double(),
        }
    }

    /// Scales by a base-field element.
    pub fn mul_fp(&self, s: &Fp) -> Fp2 {
        Fp2 { c0: self.c0.mul(s), c1: self.c1.mul(s) }
    }

    /// Multiplies by the non-residue ξ = 9 + u:
    /// `(a + bu)(9 + u) = (9a − b) + (a + 9b)u`.
    pub fn mul_by_xi(&self) -> Fp2 {
        let nine_a = self.c0.double().double().double().add(&self.c0);
        let nine_b = self.c1.double().double().double().add(&self.c1);
        Fp2 {
            c0: nine_a.sub(&self.c1),
            c1: self.c0.add(&nine_b),
        }
    }

    /// Complex conjugation `a − bu` (the Frobenius endomorphism of F_p²).
    pub fn conjugate(&self) -> Fp2 {
        Fp2 { c0: self.c0, c1: self.c1.neg() }
    }

    /// Multiplicative inverse: `(a + bu)^{-1} = (a − bu)/(a² + b²)`.
    pub fn invert(&self) -> Option<Fp2> {
        let norm = self.c0.square().add(&self.c1.square());
        let norm_inv = norm.invert()?;
        Some(Fp2 {
            c0: self.c0.mul(&norm_inv),
            c1: self.c1.neg().mul(&norm_inv),
        })
    }

    /// Exponentiation by an arbitrary integer.
    pub fn pow(&self, exp: &BigUint) -> Fp2 {
        let mut acc = Fp2::ONE;
        for i in (0..exp.bits()).rev() {
            acc = acc.square();
            if exp.bit(i) {
                acc = acc.mul(self);
            }
        }
        acc
    }
}

impl fmt::Debug for Fp2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp2({} + {}·u)", self.c0, self.c1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xf2)
    }

    #[test]
    fn ring_axioms() {
        let mut r = rng();
        for _ in 0..50 {
            let a = Fp2::random(&mut r);
            let b = Fp2::random(&mut r);
            let c = Fp2::random(&mut r);
            assert_eq!(a.add(&b), b.add(&a));
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            assert_eq!(a.mul(&Fp2::ONE), a);
            assert_eq!(a.add(&Fp2::ZERO), a);
            assert!(a.sub(&a).is_zero());
        }
    }

    #[test]
    fn u_squared_is_minus_one() {
        let u = Fp2::new(Fp::ZERO, Fp::ONE);
        assert_eq!(u.square(), Fp2::from_fp(Fp::ONE.neg()));
    }

    #[test]
    fn square_matches_mul() {
        let mut r = rng();
        for _ in 0..50 {
            let a = Fp2::random(&mut r);
            assert_eq!(a.square(), a.mul(&a));
        }
    }

    #[test]
    fn invert_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp2::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fp2::ONE);
        }
        assert!(Fp2::ZERO.invert().is_none());
    }

    #[test]
    fn mul_by_xi_matches_mul() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp2::random(&mut r);
            assert_eq!(a.mul_by_xi(), a.mul(&Fp2::xi()));
        }
    }

    #[test]
    fn conjugate_is_frobenius() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        assert_eq!(a.pow(super::super::fp::Fp::modulus()), a.conjugate());
    }

    #[test]
    fn conjugate_fixes_base_field() {
        let a = Fp2::from_fp(Fp::from_u64(12345));
        assert_eq!(a.conjugate(), a);
    }

    #[test]
    fn xi_is_nonresidue_order() {
        // ξ^((p²−1)/6) must be a primitive 6th root of unity for the tower
        // to be a field; indirectly verified by ξ having no cube/square root
        // issues — check ξ^(p²−1) == 1 and ξ^((p²−1)/2) != 1.
        let p = Fp::modulus();
        let p2_minus_1 = &(p * p) - &BigUint::one();
        let xi = Fp2::xi();
        assert_eq!(xi.pow(&p2_minus_1), Fp2::ONE);
        let half = &p2_minus_1 >> 1;
        assert!(xi.pow(&half) != Fp2::ONE, "xi must be a quadratic non-residue");
        let third = p2_minus_1.divrem(&BigUint::from_u64(3)).0;
        assert!(xi.pow(&third) != Fp2::ONE, "xi must be a cubic non-residue");
    }
}
