//! The BN254 scalar field F_r (the order of G1, G2 and G_T):
//! r = 21888242871839275222246405745257275088548364400416034343698204186575808495617.
//!
//! Shamir sharing and Lagrange interpolation for BLS04 and BZ03 happen here.

use crate::{mod_inverse, BigUint};
use rand::RngCore;
use std::fmt;
use std::sync::OnceLock;

/// An element of the scalar field Z_r.
///
/// # Examples
///
/// ```
/// use theta_math::bn254::Fr;
/// let a = Fr::from_u64(7);
/// assert_eq!(a.mul(&a.invert().unwrap()), Fr::one());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Fr(BigUint);

impl Fr {
    /// Constant-time equality; use instead of `==` whenever either
    /// scalar is secret (key shares, nonces, DKG shares).
    #[must_use]
    pub fn ct_eq(&self, other: &Fr) -> bool {
        self.0.ct_eq(&other.0)
    }

    /// Volatile-overwrites the underlying limbs with zero; for `Drop`
    /// impls of secret-bearing wrappers.
    pub fn wipe(&mut self) {
        self.0.wipe();
    }

    /// The group order r.
    pub fn modulus() -> &'static BigUint {
        static R: OnceLock<BigUint> = OnceLock::new();
        R.get_or_init(|| {
            BigUint::from_dec(
                "21888242871839275222246405745257275088548364400416034343698204186575808495617",
            )
            .expect("constant")
        })
    }

    /// The zero scalar.
    pub fn zero() -> Fr {
        Fr(BigUint::zero())
    }

    /// The one scalar.
    pub fn one() -> Fr {
        Fr(BigUint::one())
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Fr {
        Fr(BigUint::from_u64(v).rem(Self::modulus()))
    }

    /// Builds from a [`BigUint`], reducing mod r.
    pub fn from_biguint(v: &BigUint) -> Fr {
        Fr(v.rem(Self::modulus()))
    }

    /// Reduces 64 uniform little-endian bytes mod r (bias-free hashing).
    pub fn from_bytes_wide(bytes: &[u8; 64]) -> Fr {
        Fr(BigUint::from_bytes_le(bytes).rem(Self::modulus()))
    }

    /// Decodes a 32-byte little-endian encoding (reduced mod r).
    pub fn from_bytes(bytes: &[u8; 32]) -> Fr {
        Fr(BigUint::from_bytes_le(bytes).rem(Self::modulus()))
    }

    /// Encodes as 32 little-endian bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        let le = self.0.to_bytes_le();
        out[..le.len()].copy_from_slice(&le);
        out
    }

    /// The canonical integer representative in `[0, r)`.
    pub fn to_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Uniformly random scalar.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Fr {
        Fr(BigUint::random_below(rng, Self::modulus()))
    }

    /// Uniformly random nonzero scalar.
    pub fn random_nonzero<R: RngCore + ?Sized>(rng: &mut R) -> Fr {
        loop {
            let s = Self::random(rng);
            if !s.is_zero() {
                return s;
            }
        }
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Addition mod r.
    pub fn add(&self, rhs: &Fr) -> Fr {
        let sum = &self.0 + &rhs.0;
        Fr(if &sum >= Self::modulus() { &sum - Self::modulus() } else { sum })
    }

    /// Subtraction mod r.
    pub fn sub(&self, rhs: &Fr) -> Fr {
        if self.0 >= rhs.0 {
            Fr(&self.0 - &rhs.0)
        } else {
            Fr(&(&self.0 + Self::modulus()) - &rhs.0)
        }
    }

    /// Negation mod r.
    pub fn neg(&self) -> Fr {
        if self.0.is_zero() {
            Fr::zero()
        } else {
            Fr(Self::modulus() - &self.0)
        }
    }

    /// Multiplication mod r.
    pub fn mul(&self, rhs: &Fr) -> Fr {
        Fr((&self.0 * &rhs.0).rem(Self::modulus()))
    }

    /// Multiplicative inverse, `None` for zero.
    pub fn invert(&self) -> Option<Fr> {
        mod_inverse(&self.0, Self::modulus()).map(Fr)
    }

    /// `self^exp mod r`.
    pub fn pow(&self, exp: &BigUint) -> Fr {
        Fr(self.0.pow_mod(exp, Self::modulus()))
    }
}

impl fmt::Debug for Fr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fr({})", self.0)
    }
}

impl fmt::Display for Fr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xf4)
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..50 {
            let a = Fr::random(&mut r);
            let b = Fr::random(&mut r);
            let c = Fr::random(&mut r);
            assert_eq!(a.add(&b), b.add(&a));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            assert_eq!(a.sub(&a), Fr::zero());
            assert_eq!(a.add(&a.neg()), Fr::zero());
            assert_eq!(a.mul(&Fr::one()), a);
        }
    }

    #[test]
    fn invert_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fr::random_nonzero(&mut r);
            assert_eq!(a.mul(&a.invert().unwrap()), Fr::one());
        }
        assert!(Fr::zero().invert().is_none());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fr::random(&mut r);
            assert_eq!(Fr::from_bytes(&a.to_bytes()), a);
        }
    }

    #[test]
    fn modulus_is_254_bits() {
        assert_eq!(Fr::modulus().bits(), 254);
    }
}
