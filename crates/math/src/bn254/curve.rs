//! Shared Jacobian-coordinate short-Weierstrass group implementation
//! (`y² = x³ + b`, a = 0) instantiated for G1 (over F_p) and G2 (over F_p²).

/// Defines a Jacobian-coordinate elliptic-curve group over a field type
/// that provides `add/sub/mul/square/double/neg/invert/is_zero` plus
/// `ZERO`/`ONE` constants (as [`super::fp::Fp`] and [`super::fp2::Fp2`] do).
macro_rules! define_weierstrass_group {
    (
        $(#[$doc:meta])*
        $name:ident, $field:ty, $b:expr, $gen:expr
    ) => {
        $(#[$doc])*
        #[derive(Clone, Copy)]
        pub struct $name {
            x: $field,
            y: $field,
            z: $field,
        }

        impl $name {
            /// The point at infinity (Z = 0).
            pub fn identity() -> $name {
                $name {
                    x: <$field>::ONE,
                    y: <$field>::ONE,
                    z: <$field>::ZERO,
                }
            }

            /// The fixed group generator.
            pub fn generator() -> $name {
                let (x, y) = $gen;
                $name { x, y, z: <$field>::ONE }
            }

            /// The curve constant `b`.
            pub fn b() -> $field {
                $b
            }

            /// Builds from affine coordinates, checking `y² = x³ + b`.
            pub fn from_affine(x: $field, y: $field) -> Option<$name> {
                let lhs = y.square();
                let rhs = x.square().mul(&x).add(&Self::b());
                if lhs == rhs {
                    Some($name { x, y, z: <$field>::ONE })
                } else {
                    None
                }
            }

            /// Converts to affine coordinates; `None` for the identity.
            pub fn to_affine(&self) -> Option<($field, $field)> {
                let zinv = self.z.invert()?;
                let zinv2 = zinv.square();
                let zinv3 = zinv2.mul(&zinv);
                Some((self.x.mul(&zinv2), self.y.mul(&zinv3)))
            }

            /// True for the point at infinity.
            pub fn is_identity(&self) -> bool {
                self.z.is_zero()
            }

            /// Point doubling (`dbl-2009-l`, a = 0).
            pub fn double(&self) -> $name {
                if self.is_identity() {
                    return *self;
                }
                let a = self.x.square();
                let b = self.y.square();
                let c = b.square();
                let d = self.x.add(&b).square().sub(&a).sub(&c).double();
                let e = a.double().add(&a);
                let f = e.square();
                let x3 = f.sub(&d.double());
                let y3 = e.mul(&d.sub(&x3)).sub(&c.double().double().double());
                let z3 = self.y.mul(&self.z).double();
                $name { x: x3, y: y3, z: z3 }
            }

            /// Point addition (`add-2007-bl` with identity/doubling handling).
            pub fn add(&self, rhs: &$name) -> $name {
                if self.is_identity() {
                    return *rhs;
                }
                if rhs.is_identity() {
                    return *self;
                }
                let z1z1 = self.z.square();
                let z2z2 = rhs.z.square();
                let u1 = self.x.mul(&z2z2);
                let u2 = rhs.x.mul(&z1z1);
                let s1 = self.y.mul(&rhs.z).mul(&z2z2);
                let s2 = rhs.y.mul(&self.z).mul(&z1z1);
                if u1 == u2 {
                    return if s1 == s2 {
                        self.double()
                    } else {
                        Self::identity()
                    };
                }
                let h = u2.sub(&u1);
                let i = h.double().square();
                let j = h.mul(&i);
                let rr = s2.sub(&s1).double();
                let v = u1.mul(&i);
                let x3 = rr.square().sub(&j).sub(&v.double());
                let y3 = rr.mul(&v.sub(&x3)).sub(&s1.mul(&j).double());
                let z3 = self.z.add(&rhs.z).square().sub(&z1z1).sub(&z2z2).mul(&h);
                $name { x: x3, y: y3, z: z3 }
            }

            /// Negation.
            pub fn neg(&self) -> $name {
                $name { x: self.x, y: self.y.neg(), z: self.z }
            }

            /// Subtraction.
            pub fn sub(&self, rhs: &$name) -> $name {
                self.add(&rhs.neg())
            }

            /// Scalar multiplication by a non-negative integer (4-bit window).
            pub fn mul_biguint(&self, scalar: &crate::BigUint) -> $name {
                if scalar.is_zero() || self.is_identity() {
                    return Self::identity();
                }
                let mut table = [Self::identity(); 16];
                for i in 1..16 {
                    table[i] = table[i - 1].add(self);
                }
                let bits = scalar.bits();
                let windows = bits.div_ceil(4);
                let mut acc = Self::identity();
                for w in (0..windows).rev() {
                    for _ in 0..4 {
                        acc = acc.double();
                    }
                    let mut nibble = 0usize;
                    for b in 0..4 {
                        let bit_idx = w * 4 + (3 - b);
                        nibble = (nibble << 1) | scalar.bit(bit_idx) as usize;
                    }
                    if nibble != 0 {
                        acc = acc.add(&table[nibble]);
                    }
                }
                acc
            }

            /// Scalar multiplication by a field scalar.
            pub fn mul(&self, scalar: &super::fr::Fr) -> $name {
                self.mul_biguint(scalar.to_biguint())
            }

            /// True when `r · self` is the identity (prime-subgroup test).
            pub fn is_torsion_free(&self) -> bool {
                self.mul_biguint(super::fr::Fr::modulus()).is_identity()
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                // (X1 Z2², Y1 Z2³) == (X2 Z1², Y2 Z1³), identity-aware.
                match (self.is_identity(), other.is_identity()) {
                    (true, true) => true,
                    (true, false) | (false, true) => false,
                    (false, false) => {
                        let z1z1 = self.z.square();
                        let z2z2 = other.z.square();
                        self.x.mul(&z2z2) == other.x.mul(&z1z1)
                            && self.y.mul(&z2z2.mul(&other.z))
                                == other.y.mul(&z1z1.mul(&self.z))
                    }
                }
            }
        }

        impl Eq for $name {}

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self.to_affine() {
                    None => write!(f, concat!(stringify!($name), "(identity)")),
                    Some((x, y)) => {
                        write!(f, concat!(stringify!($name), "({:?}, {:?})"), x, y)
                    }
                }
            }
        }
    };
}

pub(crate) use define_weierstrass_group;
