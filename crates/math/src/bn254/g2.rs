//! G2: the r-order subgroup of the sextic twist `y² = x³ + 3/ξ` over F_p².

use super::curve::define_weierstrass_group;
use super::fp::Fp;
use super::fp12::{frobenius_gamma_x, frobenius_gamma_y};
use super::fp2::Fp2;
use std::sync::OnceLock;

fn b2() -> Fp2 {
    static B: OnceLock<Fp2> = OnceLock::new();
    *B.get_or_init(|| {
        Fp2::from_fp(Fp::from_u64(3)).mul(&Fp2::xi().invert().expect("xi nonzero"))
    })
}

fn g2_generator_affine() -> (Fp2, Fp2) {
    static G: OnceLock<(Fp2, Fp2)> = OnceLock::new();
    *G.get_or_init(|| {
        let x = Fp2::new(
            Fp::from_dec(
                "10857046999023057135944570762232829481370756359578518086990519993285655852781",
            ),
            Fp::from_dec(
                "11559732032986387107991004021392285783925812861821192530917403151452391805634",
            ),
        );
        let y = Fp2::new(
            Fp::from_dec(
                "8495653923123431417604973247489272438418190587263600148770280649306958101930",
            ),
            Fp::from_dec(
                "4082367875863433681332203403145435568316851327593401208105741076214120093531",
            ),
        );
        (x, y)
    })
}

define_weierstrass_group!(
    /// A point of the BN254 G2 group (on the D-type sextic twist) in
    /// Jacobian coordinates.
    ///
    /// Public keys of BLS04 and the ElGamal-style elements of BZ03 live
    /// here. Unlike G1 the twist has a large cofactor, so deserialized
    /// points must pass [`G2::is_torsion_free`].
    G2,
    Fp2,
    b2(),
    g2_generator_affine()
);

impl G2 {
    /// `scalar · G` for the fixed generator, via the process-wide
    /// fixed-base table (additions only — no doublings, no per-call
    /// table build).
    pub fn mul_generator(scalar: &super::fr::Fr) -> G2 {
        crate::precomp::bn254_g2_table().mul(scalar.to_biguint())
    }

    /// The untwist-Frobenius-twist endomorphism ψ used by the optimal ate
    /// pairing: `ψ(x, y) = (x̄·ξ^((p−1)/3), ȳ·ξ^((p−1)/2))`.
    pub fn frobenius(&self) -> G2 {
        match self.to_affine() {
            None => G2::identity(),
            Some((x, y)) => {
                let xf = x.conjugate().mul(&frobenius_gamma_x());
                let yf = y.conjugate().mul(&frobenius_gamma_y());
                G2::from_affine(xf, yf).expect("psi maps the twist to itself")
            }
        }
    }

    /// Compressed 65-byte encoding: tag byte then big-endian `x.c1 || x.c0`.
    pub fn to_compressed(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        match self.to_affine() {
            None => out,
            Some((x, y)) => {
                out[0] = if y.c0.is_odd() { 3 } else { 2 };
                out[1..33].copy_from_slice(&x.c1.to_bytes_be());
                out[33..65].copy_from_slice(&x.c0.to_bytes_be());
                out
            }
        }
    }

    /// Decodes the 65-byte compressed encoding, including the subgroup check.
    pub fn from_compressed(bytes: &[u8; 65]) -> Option<G2> {
        match bytes[0] {
            0 => {
                if bytes[1..].iter().all(|&b| b == 0) {
                    Some(G2::identity())
                } else {
                    None
                }
            }
            tag @ (2 | 3) => {
                let mut c1 = [0u8; 32];
                let mut c0 = [0u8; 32];
                c1.copy_from_slice(&bytes[1..33]);
                c0.copy_from_slice(&bytes[33..65]);
                let x = Fp2::new(Fp::from_bytes_be(&c0)?, Fp::from_bytes_be(&c1)?);
                let yy = x.square().mul(&x).add(&b2());
                let mut y = sqrt_fp2(&yy)?;
                if y.c0.is_odd() != (tag == 3) {
                    y = y.neg();
                }
                let point = G2::from_affine(x, y)?;
                if point.is_torsion_free() {
                    Some(point)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// Square root in F_p² via the complex method (p ≡ 3 mod 4).
///
/// For `a = a0 + a1·u`, uses the norm: `|a| = a0² + a1²`, then
/// `x0² = (a0 + sqrt(|a|))/2` (or with the other root sign).
fn sqrt_fp2(a: &Fp2) -> Option<Fp2> {
    if a.is_zero() {
        return Some(Fp2::ZERO);
    }
    if a.c1.is_zero() {
        // Pure base-field element: either sqrt(a0) or sqrt(-a0)·u.
        if let Some(r) = a.c0.sqrt() {
            return Some(Fp2::new(r, Fp::ZERO));
        }
        let r = a.c0.neg().sqrt()?;
        return Some(Fp2::new(Fp::ZERO, r));
    }
    let norm = a.c0.square().add(&a.c1.square());
    let alpha = norm.sqrt()?;
    let two_inv = Fp::from_u64(2).invert().expect("2 != 0");
    let mut delta = a.c0.add(&alpha).mul(&two_inv);
    if delta.sqrt().is_none() {
        delta = a.c0.sub(&alpha).mul(&two_inv);
    }
    let x0 = delta.sqrt()?;
    let x1 = a.c1.mul(&two_inv).mul(&x0.invert()?);
    let candidate = Fp2::new(x0, x1);
    if candidate.square() == *a {
        Some(candidate)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::Fr;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x62)
    }

    #[test]
    fn generator_on_twist_and_torsion_free() {
        let g = G2::generator();
        assert!(!g.is_identity());
        assert!(g.is_torsion_free());
    }

    #[test]
    fn group_laws() {
        let mut r = rng();
        for _ in 0..3 {
            let p = G2::mul_generator(&Fr::random(&mut r));
            let q = G2::mul_generator(&Fr::random(&mut r));
            assert_eq!(p.add(&q), q.add(&p));
            assert_eq!(p.double(), p.add(&p));
            assert!(p.add(&p.neg()).is_identity());
        }
    }

    #[test]
    fn scalar_homomorphism() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        assert_eq!(
            G2::mul_generator(&a.add(&b)),
            G2::mul_generator(&a).add(&G2::mul_generator(&b))
        );
    }

    #[test]
    fn frobenius_is_endomorphism() {
        let mut r = rng();
        let p = G2::mul_generator(&Fr::random(&mut r));
        let q = G2::mul_generator(&Fr::random(&mut r));
        // ψ(P + Q) = ψ(P) + ψ(Q)
        assert_eq!(p.add(&q).frobenius(), p.frobenius().add(&q.frobenius()));
        // ψ maps into the curve (checked inside from_affine) and preserves order.
        assert!(p.frobenius().is_torsion_free());
    }

    #[test]
    fn frobenius_trace_identity() {
        // On the r-torsion, ψ satisfies ψ² − [t]ψ + [p] = 0 where t is the
        // trace; equivalently for BN curves ψ²(P) − [t]ψ(P) + [p]P = O.
        // We check the cheaper characteristic equation ψ(P) = [p mod r]·P
        // (ψ acts as multiplication by p on the r-torsion of the twist).
        let mut r = rng();
        let p_point = G2::mul_generator(&Fr::random(&mut r));
        let p_mod_r = Fr::from_biguint(super::super::fp::Fp::modulus());
        assert_eq!(p_point.frobenius(), p_point.mul(&p_mod_r));
    }

    #[test]
    fn sqrt_fp2_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp2::random(&mut r);
            let sq = a.square();
            let root = sqrt_fp2(&sq).expect("squares have roots");
            assert!(root == a || root == a.neg());
        }
    }

    #[test]
    fn compressed_roundtrip() {
        let mut r = rng();
        for _ in 0..5 {
            let p = G2::mul_generator(&Fr::random(&mut r));
            assert_eq!(G2::from_compressed(&p.to_compressed()).unwrap(), p);
        }
        let id = G2::identity();
        assert_eq!(G2::from_compressed(&id.to_compressed()).unwrap(), id);
    }

    #[test]
    fn compressed_rejects_non_subgroup() {
        // A random twist point is overwhelmingly unlikely to be in the
        // r-order subgroup; find one and ensure decode rejects it.
        let mut r = rng();
        let mut tried = 0;
        loop {
            let x = Fp2::random(&mut r);
            let yy = x.square().mul(&x).add(&b2());
            if let Some(y) = sqrt_fp2(&yy) {
                let p = G2::from_affine(x, y).unwrap();
                if !p.is_torsion_free() {
                    let mut enc = [0u8; 65];
                    enc[0] = if y.c0.is_odd() { 3 } else { 2 };
                    enc[1..33].copy_from_slice(&x.c1.to_bytes_be());
                    enc[33..65].copy_from_slice(&x.c0.to_bytes_be());
                    assert!(G2::from_compressed(&enc).is_none());
                    break;
                }
            }
            tried += 1;
            assert!(tried < 100, "could not find an off-subgroup twist point");
        }
    }
}
