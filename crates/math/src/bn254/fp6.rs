//! The sextic-tower middle layer F_p⁶ = F_p²[v] / (v³ − ξ) with ξ = 9 + u.

use super::fp2::Fp2;
use std::fmt;

/// An element `c0 + c1·v + c2·v²` of F_p⁶.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Fp6 {
    pub c0: Fp2,
    pub c1: Fp2,
    pub c2: Fp2,
}

impl Fp6 {
    /// The additive identity.
    pub const ZERO: Fp6 = Fp6 { c0: Fp2::ZERO, c1: Fp2::ZERO, c2: Fp2::ZERO };
    /// The multiplicative identity.
    pub const ONE: Fp6 = Fp6 { c0: Fp2::ONE, c1: Fp2::ZERO, c2: Fp2::ZERO };

    /// Builds from three F_p² coefficients.
    pub fn new(c0: Fp2, c1: Fp2, c2: Fp2) -> Fp6 {
        Fp6 { c0, c1, c2 }
    }

    /// Embeds an F_p² element.
    pub fn from_fp2(c0: Fp2) -> Fp6 {
        Fp6 { c0, c1: Fp2::ZERO, c2: Fp2::ZERO }
    }

    /// Uniformly random element.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Fp6 {
        Fp6 { c0: Fp2::random(rng), c1: Fp2::random(rng), c2: Fp2::random(rng) }
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    /// Addition.
    pub fn add(&self, rhs: &Fp6) -> Fp6 {
        Fp6 {
            c0: self.c0.add(&rhs.c0),
            c1: self.c1.add(&rhs.c1),
            c2: self.c2.add(&rhs.c2),
        }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Fp6) -> Fp6 {
        Fp6 {
            c0: self.c0.sub(&rhs.c0),
            c1: self.c1.sub(&rhs.c1),
            c2: self.c2.sub(&rhs.c2),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Fp6 {
        Fp6 { c0: self.c0.neg(), c1: self.c1.neg(), c2: self.c2.neg() }
    }

    /// Multiplication (Toom-style interpolation with v³ = ξ).
    pub fn mul(&self, rhs: &Fp6) -> Fp6 {
        let t0 = self.c0.mul(&rhs.c0);
        let t1 = self.c1.mul(&rhs.c1);
        let t2 = self.c2.mul(&rhs.c2);

        // c0 = t0 + ξ·((a1+a2)(b1+b2) − t1 − t2)
        let s12 = self.c1.add(&self.c2).mul(&rhs.c1.add(&rhs.c2)).sub(&t1).sub(&t2);
        let c0 = t0.add(&s12.mul_by_xi());
        // c1 = (a0+a1)(b0+b1) − t0 − t1 + ξ·t2
        let s01 = self.c0.add(&self.c1).mul(&rhs.c0.add(&rhs.c1)).sub(&t0).sub(&t1);
        let c1 = s01.add(&t2.mul_by_xi());
        // c2 = (a0+a2)(b0+b2) − t0 − t2 + t1
        let s02 = self.c0.add(&self.c2).mul(&rhs.c0.add(&rhs.c2)).sub(&t0).sub(&t2);
        let c2 = s02.add(&t1);

        Fp6 { c0, c1, c2 }
    }

    /// Squaring.
    pub fn square(&self) -> Fp6 {
        self.mul(self)
    }

    /// Multiplies by `v` (cyclic shift with a ξ twist):
    /// `(a0 + a1 v + a2 v²)·v = ξ·a2 + a0 v + a1 v²`.
    pub fn mul_by_v(&self) -> Fp6 {
        Fp6 {
            c0: self.c2.mul_by_xi(),
            c1: self.c0,
            c2: self.c1,
        }
    }

    /// Scales by an F_p² element.
    pub fn mul_fp2(&self, s: &Fp2) -> Fp6 {
        Fp6 { c0: self.c0.mul(s), c1: self.c1.mul(s), c2: self.c2.mul(s) }
    }

    /// Multiplicative inverse.
    pub fn invert(&self) -> Option<Fp6> {
        // Standard formula (e.g. Guide to Pairing-Based Cryptography §5.2.3):
        // A = a0² − ξ a1 a2, B = ξ a2² − a0 a1, C = a1² − a0 a2,
        // F = a0 A + ξ (a2 B + a1 C), inverse = (A + B v + C v²)/F.
        let a = self.c0.square().sub(&self.c1.mul(&self.c2).mul_by_xi());
        let b = self.c2.square().mul_by_xi().sub(&self.c0.mul(&self.c1));
        let c = self.c1.square().sub(&self.c0.mul(&self.c2));
        let f = self
            .c0
            .mul(&a)
            .add(&self.c2.mul(&b).add(&self.c1.mul(&c)).mul_by_xi());
        let f_inv = f.invert()?;
        Some(Fp6 {
            c0: a.mul(&f_inv),
            c1: b.mul(&f_inv),
            c2: c.mul(&f_inv),
        })
    }
}

impl fmt::Debug for Fp6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp6({:?}, {:?}, {:?})", self.c0, self.c1, self.c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xf6)
    }

    #[test]
    fn ring_axioms() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp6::random(&mut r);
            let b = Fp6::random(&mut r);
            let c = Fp6::random(&mut r);
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            assert_eq!(a.mul(&Fp6::ONE), a);
        }
    }

    #[test]
    fn v_cubed_is_xi() {
        let v = Fp6::new(Fp2::ZERO, Fp2::ONE, Fp2::ZERO);
        let v3 = v.mul(&v).mul(&v);
        assert_eq!(v3, Fp6::from_fp2(Fp2::xi()));
    }

    #[test]
    fn mul_by_v_matches() {
        let mut r = rng();
        let v = Fp6::new(Fp2::ZERO, Fp2::ONE, Fp2::ZERO);
        for _ in 0..10 {
            let a = Fp6::random(&mut r);
            assert_eq!(a.mul_by_v(), a.mul(&v));
        }
    }

    #[test]
    fn invert_roundtrip() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp6::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fp6::ONE);
        }
        assert!(Fp6::ZERO.invert().is_none());
    }
}
