//! The BN254 base field F_p with
//! p = 21888242871839275222246405745257275088696311157297823662689037894645226208583.
//!
//! Elements are kept in 4-limb Montgomery form; this field is hot (every
//! pairing evaluates ~10^5 multiplications here), so unlike the dynamic
//! [`crate::Montgomery`] context it uses fixed-width CIOS arithmetic.

use crate::BigUint;
use std::fmt;
use std::sync::OnceLock;

/// The modulus p as little-endian u64 limbs.
const P: [u64; 4] = [
    0x3c208c16d87cfd47,
    0x97816a916871ca8d,
    0xb85045b68181585d,
    0x30644e72e131a029,
];

/// `-p^{-1} mod 2^64`.
const P_INV: u64 = 0x87d20782e4866389;

/// `R = 2^256 mod p` (Montgomery form of 1).
const R1: [u64; 4] = [
    0xd35d438dc58f0d9d,
    0x0a78eb28f5c70b3d,
    0x666ea36f7879462c,
    0x0e0a77c19a07df2f,
];

/// `R^2 mod p`.
const R2: [u64; 4] = [
    0xf32cfc5b538afa89,
    0xb5e71911d44501fb,
    0x47ab1eff0a417ff6,
    0x06d89f71cab8351f,
];

#[inline(always)]
fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

#[inline(always)]
fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + (borrow >> 63) as u128);
    (t as u64, (t >> 64) as u64)
}

#[inline(always)]
fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 * c as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// An element of F_p in Montgomery form.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp([u64; 4]);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp([0, 0, 0, 0]);
    /// The multiplicative identity (R mod p in Montgomery form).
    pub const ONE: Fp = Fp(R1);

    /// The modulus as a [`BigUint`].
    pub fn modulus() -> &'static BigUint {
        static M: OnceLock<BigUint> = OnceLock::new();
        M.get_or_init(|| BigUint::from_limbs(P.to_vec()))
    }

    /// Builds from a small integer.
    pub fn from_u64(v: u64) -> Fp {
        Fp::from_raw([v, 0, 0, 0])
    }

    /// Builds from raw little-endian limbs (must be < p), converting into
    /// Montgomery form.
    pub fn from_raw(limbs: [u64; 4]) -> Fp {
        Fp(limbs).mul(&Fp(R2))
    }

    /// Builds from a [`BigUint`] (reduced mod p).
    pub fn from_biguint(v: &BigUint) -> Fp {
        let v = v.rem(Self::modulus());
        let mut limbs = [0u64; 4];
        for (i, l) in v.limbs().iter().enumerate() {
            limbs[i] = *l;
        }
        Fp::from_raw(limbs)
    }

    /// Parses a decimal string (reduced mod p).
    pub fn from_dec(s: &str) -> Fp {
        Fp::from_biguint(&BigUint::from_dec(s).expect("valid decimal"))
    }

    /// The canonical integer representative.
    pub fn to_biguint(&self) -> BigUint {
        BigUint::from_limbs(self.to_raw().to_vec())
    }

    /// Converts out of Montgomery form into plain little-endian limbs.
    pub fn to_raw(&self) -> [u64; 4] {
        // Montgomery reduction of (self, 0).
        let mut t = [self.0[0], self.0[1], self.0[2], self.0[3], 0, 0, 0, 0];
        mont_reduce(&mut t)
    }

    /// Uniformly random element.
    pub fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Fp {
        let v = BigUint::random_below(rng, Self::modulus());
        Fp::from_biguint(&v)
    }

    /// True when zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Addition.
    #[inline]
    pub fn add(&self, rhs: &Fp) -> Fp {
        let (d0, c) = adc(self.0[0], rhs.0[0], 0);
        let (d1, c) = adc(self.0[1], rhs.0[1], c);
        let (d2, c) = adc(self.0[2], rhs.0[2], c);
        let (d3, _) = adc(self.0[3], rhs.0[3], c);
        // The sum never overflows 2^256 since both inputs are < p < 2^254·1.22.
        Fp([d0, d1, d2, d3]).reduce_once()
    }

    #[inline]
    fn reduce_once(self) -> Fp {
        let (d0, b) = sbb(self.0[0], P[0], 0);
        let (d1, b) = sbb(self.0[1], P[1], b);
        let (d2, b) = sbb(self.0[2], P[2], b);
        let (d3, b) = sbb(self.0[3], P[3], b);
        if b == 0 {
            Fp([d0, d1, d2, d3])
        } else {
            self
        }
    }

    /// Subtraction.
    #[inline]
    pub fn sub(&self, rhs: &Fp) -> Fp {
        let (d0, b) = sbb(self.0[0], rhs.0[0], 0);
        let (d1, b) = sbb(self.0[1], rhs.0[1], b);
        let (d2, b) = sbb(self.0[2], rhs.0[2], b);
        let (d3, b) = sbb(self.0[3], rhs.0[3], b);
        if b == 0 {
            Fp([d0, d1, d2, d3])
        } else {
            let (d0, c) = adc(d0, P[0], 0);
            let (d1, c) = adc(d1, P[1], c);
            let (d2, c) = adc(d2, P[2], c);
            let (d3, _) = adc(d3, P[3], c);
            Fp([d0, d1, d2, d3])
        }
    }

    /// Negation.
    #[inline]
    pub fn neg(&self) -> Fp {
        if self.is_zero() {
            *self
        } else {
            let (d0, b) = sbb(P[0], self.0[0], 0);
            let (d1, b) = sbb(P[1], self.0[1], b);
            let (d2, b) = sbb(P[2], self.0[2], b);
            let (d3, _) = sbb(P[3], self.0[3], b);
            Fp([d0, d1, d2, d3])
        }
    }

    /// Doubling.
    #[inline]
    pub fn double(&self) -> Fp {
        self.add(self)
    }

    /// Multiplication (Montgomery CIOS).
    #[inline]
    pub fn mul(&self, rhs: &Fp) -> Fp {
        let a = &self.0;
        let b = &rhs.0;
        // Schoolbook 4x4 into 8 limbs, then Montgomery reduce.
        let mut t = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u64;
            for j in 0..4 {
                let (lo, hi) = mac(t[i + j], a[i], b[j], carry);
                t[i + j] = lo;
                carry = hi;
            }
            t[i + 4] = carry;
        }
        Fp(mont_reduce(&mut t))
    }

    /// Squaring.
    #[inline]
    pub fn square(&self) -> Fp {
        self.mul(self)
    }

    /// Exponentiation by an arbitrary integer exponent.
    pub fn pow(&self, exp: &BigUint) -> Fp {
        let mut acc = Fp::ONE;
        for i in (0..exp.bits()).rev() {
            acc = acc.square();
            if exp.bit(i) {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse (`self^(p−2)`), `None` for zero.
    pub fn invert(&self) -> Option<Fp> {
        if self.is_zero() {
            return None;
        }
        static EXP: OnceLock<BigUint> = OnceLock::new();
        let e = EXP.get_or_init(|| Fp::modulus() - &BigUint::from_u64(2));
        Some(self.pow(e))
    }

    /// Square root (p ≡ 3 mod 4, so `x^((p+1)/4)`), `None` for non-residues.
    pub fn sqrt(&self) -> Option<Fp> {
        static EXP: OnceLock<BigUint> = OnceLock::new();
        let e = EXP.get_or_init(|| (Fp::modulus() + &BigUint::one()) >> 2);
        let root = self.pow(e);
        if root.square() == *self {
            Some(root)
        } else {
            None
        }
    }

    /// Canonical sign: true when the representative is odd (used for
    /// compressed-point encodings).
    pub fn is_odd(&self) -> bool {
        self.to_raw()[0] & 1 == 1
    }

    /// Encodes as 32 big-endian bytes.
    pub fn to_bytes_be(&self) -> [u8; 32] {
        let raw = self.to_raw();
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[(3 - i) * 8..(4 - i) * 8].copy_from_slice(&raw[i].to_be_bytes());
        }
        out
    }

    /// Decodes 32 big-endian bytes, rejecting values ≥ p.
    pub fn from_bytes_be(bytes: &[u8; 32]) -> Option<Fp> {
        let v = BigUint::from_bytes_be(bytes);
        if &v >= Self::modulus() {
            return None;
        }
        Some(Fp::from_biguint(&v))
    }
}

/// Montgomery reduction of an 8-limb value; returns 4 limbs < p.
///
/// Standard interleaved REDC (the zkcrypto layout): one reduction round per
/// input limb, threading a second carry chain through the high half.
#[inline]
fn mont_reduce(t: &mut [u64; 8]) -> [u64; 4] {
    let k = t[0].wrapping_mul(P_INV);
    let (_, carry) = mac(t[0], k, P[0], 0);
    let (r1, carry) = mac(t[1], k, P[1], carry);
    let (r2, carry) = mac(t[2], k, P[2], carry);
    let (r3, carry) = mac(t[3], k, P[3], carry);
    let (r4, carry2) = adc(t[4], 0, carry);

    let k = r1.wrapping_mul(P_INV);
    let (_, carry) = mac(r1, k, P[0], 0);
    let (r2, carry) = mac(r2, k, P[1], carry);
    let (r3, carry) = mac(r3, k, P[2], carry);
    let (r4, carry) = mac(r4, k, P[3], carry);
    let (r5, carry2) = adc(t[5], carry2, carry);

    let k = r2.wrapping_mul(P_INV);
    let (_, carry) = mac(r2, k, P[0], 0);
    let (r3, carry) = mac(r3, k, P[1], carry);
    let (r4, carry) = mac(r4, k, P[2], carry);
    let (r5, carry) = mac(r5, k, P[3], carry);
    let (r6, carry2) = adc(t[6], carry2, carry);

    let k = r3.wrapping_mul(P_INV);
    let (_, carry) = mac(r3, k, P[0], 0);
    let (r4, carry) = mac(r4, k, P[1], carry);
    let (r5, carry) = mac(r5, k, P[2], carry);
    let (r6, carry) = mac(r6, k, P[3], carry);
    let (r7, _) = adc(t[7], carry2, carry);

    Fp([r4, r5, r6, r7]).reduce_once().0
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.to_biguint())
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_biguint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xb254)
    }

    #[test]
    fn constants_consistent() {
        // P really is the BN254 prime.
        assert_eq!(
            Fp::modulus().to_dec(),
            "21888242871839275222246405745257275088696311157297823662689037894645226208583"
        );
        // P_INV · p ≡ −1 mod 2^64
        assert_eq!(P[0].wrapping_mul(P_INV), u64::MAX);
        // R1 = 2^256 mod p
        let r = (BigUint::one() << 256).rem(Fp::modulus());
        assert_eq!(BigUint::from_limbs(R1.to_vec()), r);
        // R2 = R^2 mod p
        let r2 = (&r * &r).rem(Fp::modulus());
        assert_eq!(BigUint::from_limbs(R2.to_vec()), r2);
    }

    #[test]
    fn one_roundtrip() {
        assert_eq!(Fp::ONE.to_biguint(), BigUint::one());
        assert_eq!(Fp::from_u64(1), Fp::ONE);
        assert!(Fp::ZERO.is_zero());
    }

    #[test]
    fn add_sub_match_biguint() {
        let mut r = rng();
        let p = Fp::modulus();
        for _ in 0..200 {
            let a = Fp::random(&mut r);
            let b = Fp::random(&mut r);
            let expect = (&a.to_biguint() + &b.to_biguint()).rem(p);
            assert_eq!(a.add(&b).to_biguint(), expect);
            let expect_sub = if a.to_biguint() >= b.to_biguint() {
                &a.to_biguint() - &b.to_biguint()
            } else {
                &(&a.to_biguint() + p) - &b.to_biguint()
            };
            assert_eq!(a.sub(&b).to_biguint(), expect_sub);
        }
    }

    #[test]
    fn mul_matches_biguint() {
        let mut r = rng();
        let p = Fp::modulus();
        for _ in 0..200 {
            let a = Fp::random(&mut r);
            let b = Fp::random(&mut r);
            let expect = (&a.to_biguint() * &b.to_biguint()).rem(p);
            assert_eq!(a.mul(&b).to_biguint(), expect);
        }
    }

    #[test]
    fn neg_and_double() {
        let mut r = rng();
        for _ in 0..50 {
            let a = Fp::random(&mut r);
            assert!(a.add(&a.neg()).is_zero());
            assert_eq!(a.double(), a.add(&a));
        }
        assert!(Fp::ZERO.neg().is_zero());
    }

    #[test]
    fn invert_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.mul(&a.invert().unwrap()), Fp::ONE);
        }
        assert!(Fp::ZERO.invert().is_none());
    }

    #[test]
    fn sqrt_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("squares have roots");
            assert!(root == a || root == a.neg());
        }
    }

    #[test]
    fn sqrt_non_residue() {
        // The curve equation x³+3 at x=1 gives 4 = 2², a residue; we need a
        // known non-residue: p ≡ 3 mod 4 means −1 is a non-residue.
        assert!(Fp::ONE.neg().sqrt().is_none());
    }

    #[test]
    fn pow_fermat() {
        let mut r = rng();
        let a = Fp::random(&mut r);
        let e = Fp::modulus() - &BigUint::one();
        assert_eq!(a.pow(&e), Fp::ONE);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp::random(&mut r);
            assert_eq!(Fp::from_bytes_be(&a.to_bytes_be()).unwrap(), a);
        }
        // Reject p itself.
        let mut p_bytes = [0u8; 32];
        let pb = Fp::modulus().to_bytes_be();
        p_bytes[32 - pb.len()..].copy_from_slice(&pb);
        assert!(Fp::from_bytes_be(&p_bytes).is_none());
    }
}
