//! Fixed-base scalar-multiplication tables.
//!
//! For a base point known ahead of time — the Ed25519 basepoint, the
//! BN254 G1/G2 generators, per-key RSA verification bases — a one-time
//! table `windows[w][j] = j · 16ʷ · B` turns every later multiplication
//! into ~`bits/4` pure additions with **no doublings at all**, roughly
//! 4–5× cheaper than the generic double-and-add ladder (which also
//! rebuilds its 15-entry table per call).
//!
//! The three process-wide generator tables are built lazily behind
//! `OnceLock`s, so keygen, share creation and DLEQ proving all share
//! one table per group.

use crate::msm::{mul_point, CurveGroup};
use crate::BigUint;
use std::sync::OnceLock;

/// A comb/window table for one fixed base point.
pub struct PrecomputedBase<G> {
    /// `windows[w][j] = j · 16ʷ · base`, `j ∈ 0..16`.
    windows: Vec<[G; 16]>,
}

impl<G: CurveGroup> PrecomputedBase<G> {
    /// Builds the table covering scalars up to `max_bits` bits.
    pub fn new(base: &G, max_bits: usize) -> Self {
        let nwin = max_bits.div_ceil(4);
        let mut windows = Vec::with_capacity(nwin);
        let mut cur = *base; // 16ʷ · base for the current window
        for _ in 0..nwin {
            let mut row = [G::identity(); 16];
            for j in 1..16 {
                row[j] = row[j - 1].add(&cur);
            }
            // 16^{w+1}·B = 2 · (8·16ʷ·B), already sitting in row[8].
            cur = row[8].double();
            windows.push(row);
        }
        PrecomputedBase { windows }
    }

    /// The base point the table was built for.
    pub fn base(&self) -> G {
        self.windows[0][1]
    }

    /// Number of scalar bits the table covers.
    pub fn max_bits(&self) -> usize {
        self.windows.len() * 4
    }

    /// `scalar · base` using only table lookups and additions.
    ///
    /// Scalars wider than the table fall back to the generic ladder.
    pub fn mul(&self, scalar: &BigUint) -> G {
        if scalar.bits() > self.max_bits() {
            return mul_point(&self.base(), scalar);
        }
        let mut acc = G::identity();
        for (w, row) in self.windows.iter().enumerate() {
            let base_bit = w * 4;
            let nibble = scalar.bit(base_bit) as usize
                | (scalar.bit(base_bit + 1) as usize) << 1
                | (scalar.bit(base_bit + 2) as usize) << 2
                | (scalar.bit(base_bit + 3) as usize) << 3;
            if nibble != 0 {
                acc = acc.add(&row[nibble]);
            }
        }
        acc
    }
}

/// Process-wide table for the Ed25519 basepoint `B`.
pub fn ed25519_base_table() -> &'static PrecomputedBase<crate::ed25519::Point> {
    static T: OnceLock<PrecomputedBase<crate::ed25519::Point>> = OnceLock::new();
    T.get_or_init(|| PrecomputedBase::new(&crate::ed25519::Point::base(), 256))
}

/// Process-wide table for the BN254 G1 generator.
pub fn bn254_g1_table() -> &'static PrecomputedBase<crate::bn254::G1> {
    static T: OnceLock<PrecomputedBase<crate::bn254::G1>> = OnceLock::new();
    T.get_or_init(|| PrecomputedBase::new(&crate::bn254::G1::generator(), 256))
}

/// Process-wide table for the BN254 G2 generator.
pub fn bn254_g2_table() -> &'static PrecomputedBase<crate::bn254::G2> {
    static T: OnceLock<PrecomputedBase<crate::bn254::G2>> = OnceLock::new();
    T.get_or_init(|| PrecomputedBase::new(&crate::bn254::G2::generator(), 256))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{Fr, G1, G2};
    use crate::ed25519::{Point, Scalar};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xf1c5)
    }

    #[test]
    fn table_matches_ladder_ed25519() {
        let mut r = rng();
        let table = ed25519_base_table();
        for _ in 0..10 {
            let s = Scalar::random(&mut r);
            assert_eq!(table.mul(s.to_biguint()), Point::base().mul_biguint(s.to_biguint()));
        }
        assert!(table.mul(&BigUint::zero()).is_identity());
        assert_eq!(table.mul(&BigUint::one()), Point::base());
    }

    #[test]
    fn table_matches_ladder_g1_g2() {
        let mut r = rng();
        for _ in 0..5 {
            let s = Fr::random(&mut r);
            assert_eq!(
                bn254_g1_table().mul(s.to_biguint()),
                G1::generator().mul_biguint(s.to_biguint())
            );
            assert_eq!(
                bn254_g2_table().mul(s.to_biguint()),
                G2::generator().mul_biguint(s.to_biguint())
            );
        }
    }

    #[test]
    fn oversized_scalar_falls_back() {
        let table = PrecomputedBase::new(&Point::base(), 64);
        let wide = (BigUint::one() << 100) + BigUint::from_u64(7);
        assert_eq!(table.mul(&wide), Point::base().mul_biguint(&wide));
    }

    #[test]
    fn small_table_exact_boundary() {
        let table = PrecomputedBase::new(&Point::base(), 8);
        for k in [0u64, 1, 15, 16, 200, 255] {
            let s = BigUint::from_u64(k);
            assert_eq!(table.mul(&s), Point::base().mul_biguint(&s), "k={k}");
        }
    }
}
