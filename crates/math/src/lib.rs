//! # theta-math
//!
//! From-scratch mathematical substrate for the Thetacrypt reproduction:
//!
//! - [`BigUint`] / [`BigInt`]: arbitrary-precision integers with Knuth
//!   division and Karatsuba multiplication.
//! - [`Montgomery`]: reusable Montgomery contexts for fast modular
//!   exponentiation over odd moduli (RSA, scalar fields).
//! - [`prime`]: Miller–Rabin plus (safe-)prime generation for SH00.
//! - [`ed25519`]: the twisted-Edwards curve and its scalar field, used by
//!   SG02, KG20 (FROST) and CKS05.
//! - [`bn254`]: the BN254 pairing-friendly curve with a full optimal-ate
//!   pairing, used by BLS04 and BZ03.
//!
//! The crate replaces MIRACL Core from the paper's implementation. It has
//! no dependencies beyond `rand` and is deliberately self-contained so the
//! schemes crate can be audited bottom-up.
//!
//! ## Example
//!
//! ```
//! use theta_math::{BigUint, mod_inverse};
//! let p = BigUint::from_dec("65537").unwrap();
//! let x = BigUint::from_u64(42);
//! let inv = mod_inverse(&x, &p).unwrap();
//! assert!((&inv * &x).rem(&p).is_one());
//! ```

mod bigint;
mod crt;
mod biguint;
pub mod ct;
mod mont;
pub mod msm;
pub mod precomp;
pub mod prime;

pub mod bn254;
pub mod ed25519;

pub use bigint::{ext_gcd, mod_inverse, BigInt, Sign};
pub use ct::{ct_eq_bytes, ct_eq_u64s, wipe_bytes, wipe_u64s};
pub use crt::{crt_combine, rsa_crt_pow};
pub use biguint::BigUint;
pub use mont::{MontTable, Montgomery};
pub use msm::{msm, CurveGroup};
pub use precomp::PrecomputedBase;
pub use prime::{generate_prime, generate_safe_prime, is_probable_prime};
