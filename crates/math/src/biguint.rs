//! Arbitrary-precision unsigned integers.
//!
//! This is the foundation of every asymmetric primitive in the workspace:
//! RSA (SH00), the Ed25519 scalar field, the BN254 base/scalar fields and
//! all Shamir/Lagrange arithmetic ultimately bottom out here.
//!
//! Representation: little-endian `Vec<u64>` limbs with no trailing zero
//! limbs (canonical form). Zero is the empty limb vector.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Examples
///
/// ```
/// use theta_math::BigUint;
/// let a = BigUint::from_u64(1u64 << 40);
/// let b = &a * &a;
/// assert_eq!(b, BigUint::from_u64(1) << 80);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs, canonical (no trailing zeros).
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint { limbs: vec![lo, hi] };
        out.normalize();
        out
    }

    /// Constant-time equality: running time depends only on the longer
    /// operand's limb count, never on where the values differ. Use this
    /// — not `==`/[`PartialEq`] — whenever either operand is secret
    /// (key shares, DKG shares, RSA exponents).
    #[must_use]
    pub fn ct_eq(&self, other: &BigUint) -> bool {
        crate::ct::ct_eq_u64s(&self.limbs, &other.limbs)
    }

    /// Volatile-overwrites every limb with zero (the optimizer cannot
    /// elide it) and leaves `self == 0`. For `Drop` impls of
    /// secret-bearing wrappers.
    pub fn wipe(&mut self) {
        crate::ct::wipe_u64s(&mut self.limbs);
        self.limbs.clear();
    }

    /// Builds a value from little-endian limbs (any trailing zeros are trimmed).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Borrows the little-endian limbs (canonical, no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns the limb at `i`, or 0 when out of range.
    #[inline]
    pub fn limb(&self, i: usize) -> u64 {
        self.limbs.get(i).copied().unwrap_or(0)
    }

    /// Parses a big-endian hexadecimal string (no `0x` prefix, `_` allowed).
    ///
    /// # Errors
    ///
    /// Returns `None` when a non-hex character is found.
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut out = Self::zero();
        let mut any = false;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(16)? as u64;
            out = (out << 4) + BigUint::from_u64(d);
            any = true;
        }
        if any {
            Some(out)
        } else {
            None
        }
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns `None` when a non-decimal character is found or `s` is empty.
    pub fn from_dec(s: &str) -> Option<Self> {
        let mut out = Self::zero();
        let mut any = false;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10)? as u64;
            out = out.mul_small(10);
            out = out + BigUint::from_u64(d);
            any = true;
        }
        if any {
            Some(out)
        } else {
            None
        }
    }

    /// Decodes a big-endian byte string.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Decodes a little-endian byte string.
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut limb = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                limb |= (b as u64) << (8 * i);
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Encodes as big-endian bytes with no leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Encodes as exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Encodes as little-endian bytes with no trailing zeros (empty for zero).
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut out = self.to_bytes_be();
        out.reverse();
        out
    }

    /// True when the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True when the value is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True when the value is even (zero counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// True when the value is odd.
    #[inline]
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (counting from the least-significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Converts to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128`, returning `None` on overflow.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self * small`, a fast scalar multiply.
    pub fn mul_small(&self, small: u64) -> Self {
        if small == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let prod = l as u128 * small as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Self::from_limbs(out)
    }

    /// `(self / small, self % small)` for a nonzero `u64` divisor.
    ///
    /// # Panics
    ///
    /// Panics when `small == 0`.
    pub fn divrem_small(&self, small: u64) -> (Self, u64) {
        assert!(small != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / small as u128) as u64;
            rem = cur % small as u128;
        }
        (Self::from_limbs(out), rem as u64)
    }

    /// Euclidean division: `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics when `divisor` is zero.
    pub fn divrem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (Self::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_small(divisor.limbs[0]);
            return (q, Self::from_u64(r));
        }
        self.divrem_knuth(divisor)
    }

    /// Knuth Algorithm D (TAOCP 4.3.1) for multi-limb division.
    fn divrem_knuth(&self, divisor: &Self) -> (Self, Self) {
        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self << shift; // dividend
        let v = divisor << shift; // divisor
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un: Vec<u64> = u.limbs.clone();
        un.push(0); // u has m+n+1 limbs with an extra top limb
        let vn = &v.limbs;

        let mut q = vec![0u64; m + 1];
        let v_top = vn[n - 1] as u128;
        let v_next = vn[n - 2] as u128;

        for j in (0..=m).rev() {
            // Estimate q̂ = (u[j+n]·b + u[j+n-1]) / v[n-1]
            let numer = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = numer / v_top;
            let mut rhat = numer % v_top;
            // Correct q̂ down at most twice.
            while qhat >> 64 != 0
                || qhat * v_next > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract: u[j..j+n+1] -= q̂ · v
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let prod = qhat * vn[i] as u128 + carry;
                carry = prod >> 64;
                let sub = un[j + i] as i128 - (prod as u64) as i128 + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = sub as u64;
            let negative = sub < 0;

            q[j] = qhat as u64;
            if negative {
                // q̂ was one too large: add back.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let sum = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = sum as u64;
                    carry = sum >> 64;
                }
                un[j + n] = (un[j + n] as u128).wrapping_add(carry) as u64;
            }
        }

        let quotient = Self::from_limbs(q);
        let remainder = Self::from_limbs(un[..n].to_vec()) >> shift;
        (quotient, remainder)
    }

    /// `self mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics when `modulus` is zero.
    pub fn rem(&self, modulus: &Self) -> Self {
        self.divrem(modulus).1
    }

    /// Checked subtraction: `None` when `other > self`.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if self < other {
            return None;
        }
        Some(self - other)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a >> 1;
            b = b >> 1;
            shift += 1;
        }
        while a.is_even() {
            a = a >> 1;
        }
        loop {
            while b.is_even() {
                b = b >> 1;
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = &b - &a;
            if b.is_zero() {
                break;
            }
        }
        a << shift
    }

    /// Modular exponentiation `self^exp mod modulus` (simple square-and-multiply;
    /// for hot paths over odd moduli prefer [`crate::Montgomery`]).
    ///
    /// # Panics
    ///
    /// Panics when `modulus` is zero.
    pub fn pow_mod(&self, exp: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus.is_one() {
            return Self::zero();
        }
        if modulus.is_odd() {
            // Montgomery is markedly faster and handles every odd modulus.
            let ctx = crate::Montgomery::new(modulus.clone());
            return ctx.pow(self, exp);
        }
        let mut base = self.rem(modulus);
        let mut result = Self::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = (&result * &base).rem(modulus);
            }
            base = (&base * &base).rem(modulus);
        }
        result
    }

    /// Uniform random value in `[0, bound)` (rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn random_below<R: rand::RngCore + ?Sized>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero(), "empty range");
        let bits = bound.bits();
        let limbs = bits.div_ceil(64);
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        loop {
            let mut raw: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
            if let Some(top) = raw.last_mut() {
                *top &= top_mask;
            }
            let candidate = Self::from_limbs(raw);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Uniform random value with exactly `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics when `bits == 0`.
    pub fn random_bits<R: rand::RngCore + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits > 0, "need at least one bit");
        let limbs = bits.div_ceil(64);
        let mut raw: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
        let top_bit = (bits - 1) % 64;
        let top = raw.last_mut().unwrap();
        if top_bit < 63 {
            *top &= (1u64 << (top_bit + 1)) - 1;
        }
        *top |= 1u64 << top_bit;
        Self::from_limbs(raw)
    }
}

// ---------------------------------------------------------------------------
// Arithmetic operator impls (reference-based to avoid needless clones).
// ---------------------------------------------------------------------------

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut out = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u128;
        for i in 0..long.limbs.len() {
            let sum = long.limbs[i] as u128 + short.limb(i) as u128 + carry;
            out.push(sum as u64);
            carry = sum >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }
}

impl std::ops::Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl std::ops::Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    /// Panics on underflow.
    fn sub(self, rhs: &BigUint) -> BigUint {
        assert!(self >= rhs, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let diff = self.limbs[i] as i128 - rhs.limb(i) as i128 + borrow;
            out.push(diff as u64);
            borrow = diff >> 64;
        }
        BigUint::from_limbs(out)
    }
}

impl std::ops::Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

/// Karatsuba threshold in limbs; below this, schoolbook wins.
const KARATSUBA_THRESHOLD: usize = 24;

fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    // Karatsuba: split at half of the longer operand.
    let split = a.len().max(b.len()) / 2;
    let (a0, a1) = a.split_at(split.min(a.len()));
    let (b0, b1) = b.split_at(split.min(b.len()));
    let a0 = BigUint::from_limbs(a0.to_vec());
    let a1 = BigUint::from_limbs(a1.to_vec());
    let b0 = BigUint::from_limbs(b0.to_vec());
    let b1 = BigUint::from_limbs(b1.to_vec());

    let z0 = BigUint::from_limbs(mul_limbs(a0.limbs(), b0.limbs()));
    let z2 = BigUint::from_limbs(mul_limbs(a1.limbs(), b1.limbs()));
    let sa = &a0 + &a1;
    let sb = &b0 + &b1;
    let z1 = BigUint::from_limbs(mul_limbs(sa.limbs(), sb.limbs()));
    let z1 = &(&z1 - &z0) - &z2;

    let mut acc = z0;
    acc = &acc + &(z1 << (64 * split));
    acc = &acc + &(z2 << (128 * split));
    acc.limbs
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(mul_limbs(&self.limbs, &rhs.limbs))
    }
}

impl std::ops::Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl std::ops::Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl std::ops::Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        &self << shift
    }
}

impl std::ops::Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        let limb_shift = shift / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = shift % 64;
        let mut out = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry = 0u64;
            for l in out.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (64 - bit_shift);
                *l = new;
            }
        }
        BigUint::from_limbs(out)
    }
}

impl std::ops::Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        &self >> shift
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        Self::from_u64(v as u64)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dec())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl BigUint {
    /// Lowercase hexadecimal representation (no prefix, `"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Decimal representation.
    pub fn to_dec(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_small(10_000_000_000_000_000_000u64);
            digits.push(r);
            cur = q;
        }
        let mut s = format!("{}", digits.pop().unwrap());
        while let Some(d) = digits.pop() {
            s.push_str(&format!("{d:019}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xbeef)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn add_sub_roundtrip_u128() {
        let mut r = rng();
        for _ in 0..200 {
            let a: u128 = r.gen();
            let b: u128 = r.gen::<u128>() >> 1;
            let ba = BigUint::from_u128(a >> 1);
            let bb = BigUint::from_u128(b);
            let sum = &ba + &bb;
            assert_eq!(sum.to_u128().unwrap(), (a >> 1) + b);
            assert_eq!(&sum - &bb, ba);
        }
    }

    #[test]
    fn mul_matches_u128() {
        let mut r = rng();
        for _ in 0..200 {
            let a: u64 = r.gen();
            let b: u64 = r.gen();
            let prod = &BigUint::from_u64(a) * &BigUint::from_u64(b);
            assert_eq!(prod.to_u128().unwrap(), a as u128 * b as u128);
        }
    }

    #[test]
    fn mul_karatsuba_matches_schoolbook() {
        let mut r = rng();
        for _ in 0..10 {
            let a = BigUint::random_bits(&mut r, 64 * 60);
            let b = BigUint::random_bits(&mut r, 64 * 55);
            let k = &a * &b;
            let s = BigUint::from_limbs(mul_schoolbook(a.limbs(), b.limbs()));
            assert_eq!(k, s);
        }
    }

    #[test]
    fn divrem_identity() {
        let mut r = rng();
        for _ in 0..100 {
            let a = BigUint::random_bits(&mut r, 700);
            let b = BigUint::random_bits(&mut r, 250);
            let (q, rem) = a.divrem(&b);
            assert!(rem < b);
            assert_eq!(&(&q * &b) + &rem, a);
        }
    }

    #[test]
    fn divrem_small_divisors() {
        let mut r = rng();
        for _ in 0..100 {
            let a = BigUint::random_bits(&mut r, 300);
            let d: u64 = r.gen::<u64>() | 1;
            let (q, rem) = a.divrem(&BigUint::from_u64(d));
            assert_eq!(&q.mul_small(d) + &rem, a);
        }
    }

    #[test]
    fn divrem_edge_cases() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let (q, r) = a.divrem(&a);
        assert!(q.is_one());
        assert!(r.is_zero());

        let small = BigUint::from_u64(5);
        let (q, r) = small.divrem(&a);
        assert!(q.is_zero());
        assert_eq!(r, small);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().divrem(&BigUint::zero());
    }

    #[test]
    fn knuth_add_back_case() {
        // Classic case that exercises the "add back" branch of Algorithm D.
        let u = BigUint::from_limbs(vec![0, 0, 0x8000_0000_0000_0000]);
        let v = BigUint::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.divrem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef").unwrap();
        assert_eq!(&(&a << 13) >> 13, a);
        assert_eq!((&a >> 1000), BigUint::zero());
        assert_eq!(&a << 0, a);
        assert_eq!(&a >> 0, a);
    }

    #[test]
    fn hex_and_dec_roundtrip() {
        let cases = [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "21888242871839275222246405745257275088696311157297823662689037894645226208583",
        ];
        for c in cases {
            let v = BigUint::from_dec(c).unwrap();
            assert_eq!(v.to_dec(), c);
            let h = v.to_hex();
            assert_eq!(BigUint::from_hex(&h).unwrap(), v);
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        for bits in [1, 7, 64, 65, 255, 256, 1024] {
            let v = BigUint::random_bits(&mut r, bits);
            assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
            assert_eq!(BigUint::from_bytes_le(&v.to_bytes_le()), v);
        }
        assert!(BigUint::from_bytes_be(&[]).is_zero());
        assert!(BigUint::zero().to_bytes_be().is_empty());
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from_u64(0x1234);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_overflow_panics() {
        let v = BigUint::from_u64(0x123456);
        let _ = v.to_bytes_be_padded(2);
    }

    #[test]
    fn gcd_known() {
        let a = BigUint::from_u64(48);
        let b = BigUint::from_u64(36);
        assert_eq!(a.gcd(&b), BigUint::from_u64(12));
        assert_eq!(a.gcd(&BigUint::zero()), a);
        assert_eq!(BigUint::zero().gcd(&b), b);
    }

    #[test]
    fn gcd_coprime() {
        let p = BigUint::from_dec("65537").unwrap();
        let q = BigUint::from_dec("274177").unwrap();
        assert!(p.gcd(&q).is_one());
    }

    #[test]
    fn pow_mod_known() {
        // 2^10 mod 1000 = 24
        let r = BigUint::from_u64(2).pow_mod(&BigUint::from_u64(10), &BigUint::from_u64(1000));
        assert_eq!(r, BigUint::from_u64(24));
        // Fermat: a^(p-1) ≡ 1 mod p for prime p
        let p = BigUint::from_dec("1000000007").unwrap();
        let a = BigUint::from_u64(123456789);
        let r = a.pow_mod(&(&p - &BigUint::one()), &p);
        assert!(r.is_one());
    }

    #[test]
    fn pow_mod_even_modulus() {
        // 3^5 mod 16 = 243 mod 16 = 3
        let r = BigUint::from_u64(3).pow_mod(&BigUint::from_u64(5), &BigUint::from_u64(16));
        assert_eq!(r, BigUint::from_u64(3));
    }

    #[test]
    fn random_below_in_range() {
        let mut r = rng();
        let bound = BigUint::from_u64(1000);
        for _ in 0..100 {
            let v = BigUint::random_below(&mut r, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_exact() {
        let mut r = rng();
        for bits in [1, 2, 63, 64, 65, 256] {
            let v = BigUint::random_bits(&mut r, bits);
            assert_eq!(v.bits(), bits);
        }
    }

    #[test]
    fn cmp_ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u128(1u128 << 100);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", BigUint::zero()), "0");
        assert!(!format!("{:?}", BigUint::zero()).is_empty());
        assert_eq!(format!("{}", BigUint::from_u64(12345)), "12345");
    }
}
