//! Field arithmetic over GF(2^255 − 19) in radix-2^51.
//!
//! Five 64-bit limbs, each holding 51 bits plus slack; products use `u128`.
//! This is the classic representation from the ref10/curve25519-dalek
//! lineage, re-derived here from scratch.

use crate::BigUint;

const MASK51: u64 = (1u64 << 51) - 1;

/// An element of GF(2^255 − 19).
#[derive(Clone, Copy, Debug)]
pub struct Fe([u64; 5]);

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0, 0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Decodes 32 little-endian bytes; the top bit (bit 255) is ignored,
    /// matching RFC 8032 field-element decoding.
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| -> u64 {
            let mut v = [0u8; 8];
            v[..b.len()].copy_from_slice(b);
            u64::from_le_bytes(v)
        };
        let l0 = load(&bytes[0..8]) & MASK51;
        let l1 = (load(&bytes[6..14]) >> 3) & MASK51;
        let l2 = (load(&bytes[12..20]) >> 6) & MASK51;
        let l3 = (load(&bytes[19..27]) >> 1) & MASK51;
        let l4 = (load(&bytes[24..32]) >> 12) & MASK51;
        Fe([l0, l1, l2, l3, l4])
    }

    /// Encodes to 32 little-endian bytes in fully-reduced canonical form.
    pub fn to_bytes(self) -> [u8; 32] {
        let t = self.reduce_full();
        let mut out = [0u8; 32];
        // Pack 5×51 bits into 255 bits.
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for i in 0..5 {
            acc |= (t.0[i] as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = acc as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        if idx < 32 {
            out[idx] = acc as u8;
        }
        let _ = t;
        out
    }

    /// Fully reduces to the canonical representative in `[0, p)`.
    fn reduce_full(self) -> Fe {
        let mut t = self.carry();
        // t is now < 2^255 + small; conditionally subtract p up to twice.
        for _ in 0..2 {
            let mut borrow: i128 = t.0[0] as i128 - (MASK51 - 18) as i128; // p0 = 2^51 - 19
            let mut r = [0u64; 5];
            r[0] = (borrow as u64) & MASK51;
            borrow >>= 51;
            for (i, limb) in r.iter_mut().enumerate().skip(1) {
                let cur = t.0[i] as i128 - MASK51 as i128 + borrow;
                *limb = (cur as u64) & MASK51;
                borrow = cur >> 51;
            }
            if borrow == 0 {
                t = Fe(r);
            }
        }
        t
    }

    /// One pass of carry propagation, bringing all limbs under 2^52.
    fn carry(self) -> Fe {
        let mut l = self.0;
        let mut c: u64;
        for _ in 0..2 {
            c = l[0] >> 51;
            l[0] &= MASK51;
            l[1] += c;
            c = l[1] >> 51;
            l[1] &= MASK51;
            l[2] += c;
            c = l[2] >> 51;
            l[2] &= MASK51;
            l[3] += c;
            c = l[3] >> 51;
            l[3] &= MASK51;
            l[4] += c;
            c = l[4] >> 51;
            l[4] &= MASK51;
            l[0] += c * 19;
        }
        Fe(l)
    }

    /// Addition.
    pub fn add(&self, rhs: &Fe) -> Fe {
        Fe([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
            self.0[4] + rhs.0[4],
        ])
        .carry()
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Fe) -> Fe {
        // Add 2p to keep limbs non-negative.
        let two_p = [
            (MASK51 - 18) << 1, // 2·(2^51 − 19)
            MASK51 << 1,
            MASK51 << 1,
            MASK51 << 1,
            MASK51 << 1,
        ];
        Fe([
            self.0[0] + two_p[0] - rhs.0[0],
            self.0[1] + two_p[1] - rhs.0[1],
            self.0[2] + two_p[2] - rhs.0[2],
            self.0[3] + two_p[3] - rhs.0[3],
            self.0[4] + two_p[4] - rhs.0[4],
        ])
        .carry()
    }

    /// Negation.
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Multiplication.
    pub fn mul(&self, rhs: &Fe) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0;
        let [b0, b1, b2, b3, b4] = rhs.0;
        let m = |x: u64, y: u64| x as u128 * y as u128;

        let r0 = m(a0, b0) + 19 * (m(a1, b4) + m(a2, b3) + m(a3, b2) + m(a4, b1));
        let mut r1 = m(a0, b1) + m(a1, b0) + 19 * (m(a2, b4) + m(a3, b3) + m(a4, b2));
        let mut r2 = m(a0, b2) + m(a1, b1) + m(a2, b0) + 19 * (m(a3, b4) + m(a4, b3));
        let mut r3 = m(a0, b3) + m(a1, b2) + m(a2, b1) + m(a3, b0) + 19 * m(a4, b4);
        let mut r4 = m(a0, b4) + m(a1, b3) + m(a2, b2) + m(a3, b1) + m(a4, b0);

        // Carry chain over u128 accumulators.
        let mut out = [0u64; 5];
        let c = r0 >> 51;
        out[0] = (r0 as u64) & MASK51;
        r1 += c;
        let c = r1 >> 51;
        out[1] = (r1 as u64) & MASK51;
        r2 += c;
        let c = r2 >> 51;
        out[2] = (r2 as u64) & MASK51;
        r3 += c;
        let c = r3 >> 51;
        out[3] = (r3 as u64) & MASK51;
        r4 += c;
        let c = r4 >> 51;
        out[4] = (r4 as u64) & MASK51;
        out[0] += (c as u64) * 19;
        Fe(out).carry()
    }

    /// Squaring.
    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// `self^(2^n)` (n repeated squarings).
    fn sq_n(&self, n: u32) -> Fe {
        let mut t = *self;
        for _ in 0..n {
            t = t.square();
        }
        t
    }

    /// Multiplicative inverse (`self^(p−2)`); returns zero for zero.
    pub fn invert(&self) -> Fe {
        // Standard ref10 addition chain for p − 2 = 2^255 − 21.
        let z = *self;
        let z2 = z.square(); // 2
        let z8 = z2.sq_n(2); // 8
        let z9 = z.mul(&z8); // 9
        let z11 = z2.mul(&z9); // 11
        let z22 = z11.square(); // 22
        let z_5_0 = z9.mul(&z22); // 2^5 − 2^0 = 31
        let z_10_5 = z_5_0.sq_n(5);
        let z_10_0 = z_10_5.mul(&z_5_0);
        let z_20_10 = z_10_0.sq_n(10);
        let z_20_0 = z_20_10.mul(&z_10_0);
        let z_40_20 = z_20_0.sq_n(20);
        let z_40_0 = z_40_20.mul(&z_20_0);
        let z_50_10 = z_40_0.sq_n(10);
        let z_50_0 = z_50_10.mul(&z_10_0);
        let z_100_50 = z_50_0.sq_n(50);
        let z_100_0 = z_100_50.mul(&z_50_0);
        let z_200_100 = z_100_0.sq_n(100);
        let z_200_0 = z_200_100.mul(&z_100_0);
        let z_250_50 = z_200_0.sq_n(50);
        let z_250_0 = z_250_50.mul(&z_50_0);
        let z_255_5 = z_250_0.sq_n(5);
        z_255_5.mul(&z11)
    }

    /// `self^((p−5)/8)` = `self^(2^252 − 3)`, the core of square-root extraction.
    pub fn pow22523(&self) -> Fe {
        let z = *self;
        let z2 = z.square();
        let z8 = z2.sq_n(2);
        let z9 = z.mul(&z8);
        let z11 = z2.mul(&z9);
        let z22 = z11.square();
        let z_5_0 = z9.mul(&z22);
        let z_10_5 = z_5_0.sq_n(5);
        let z_10_0 = z_10_5.mul(&z_5_0);
        let z_20_10 = z_10_0.sq_n(10);
        let z_20_0 = z_20_10.mul(&z_10_0);
        let z_40_20 = z_20_0.sq_n(20);
        let z_40_0 = z_40_20.mul(&z_20_0);
        let z_50_10 = z_40_0.sq_n(10);
        let z_50_0 = z_50_10.mul(&z_10_0);
        let z_100_50 = z_50_0.sq_n(50);
        let z_100_0 = z_100_50.mul(&z_50_0);
        let z_200_100 = z_100_0.sq_n(100);
        let z_200_0 = z_200_100.mul(&z_100_0);
        let z_250_50 = z_200_0.sq_n(50);
        let z_250_0 = z_250_50.mul(&z_50_0);
        let z_252_2 = z_250_0.sq_n(2);
        z_252_2.mul(&z)
    }

    /// True when this element is zero.
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Canonical "sign": the least-significant bit of the reduced encoding
    /// (RFC 8032 uses this to disambiguate x given y).
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Square root: returns `r` with `r² = self` when one exists.
    ///
    /// Uses `r = self^((p+3)/8)` corrected by `sqrt(−1)` when needed.
    pub fn sqrt(&self) -> Option<Fe> {
        let candidate = self.mul(&self.pow22523()); // self^((p+3)/8)
        let square = candidate.square();
        if square == *self {
            return Some(candidate);
        }
        let corrected = candidate.mul(&sqrt_m1());
        if corrected.square() == *self {
            return Some(corrected);
        }
        None
    }

    /// Parses from a decimal string (helper for curve constants).
    pub fn from_dec(s: &str) -> Fe {
        let v = BigUint::from_dec(s).expect("valid decimal");
        let p = (BigUint::one() << 255) - BigUint::from_u64(19);
        let v = v.rem(&p);
        let mut bytes = [0u8; 32];
        let le = v.to_bytes_le();
        bytes[..le.len()].copy_from_slice(&le);
        Fe::from_bytes(&bytes)
    }

    /// Converts to a [`BigUint`] (canonical representative).
    pub fn to_biguint(self) -> BigUint {
        BigUint::from_bytes_le(&self.to_bytes())
    }
}

impl PartialEq for Fe {
    fn eq(&self, other: &Self) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for Fe {}

/// The Edwards `d` parameter: −121665/121666 mod p.
pub fn edwards_d() -> Fe {
    static CACHE: std::sync::OnceLock<Fe> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        Fe::from_dec(
            "37095705934669439343138083508754565189542113879843219016388785533085940283555",
        )
    })
}

/// `sqrt(−1) mod p` (a fourth root of unity).
pub fn sqrt_m1() -> Fe {
    static CACHE: std::sync::OnceLock<Fe> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        Fe::from_dec(
            "19681161376707505956807079304988542015446066515923890162744021073123829784752",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xed25519)
    }

    fn random_fe(r: &mut impl RngCore) -> Fe {
        let mut b = [0u8; 32];
        r.fill_bytes(&mut b);
        b[31] &= 0x7f;
        Fe::from_bytes(&b)
    }

    fn p() -> BigUint {
        (BigUint::one() << 255) - BigUint::from_u64(19)
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        for _ in 0..100 {
            let fe = random_fe(&mut r);
            assert_eq!(Fe::from_bytes(&fe.to_bytes()), fe);
        }
    }

    #[test]
    fn add_matches_biguint() {
        let mut r = rng();
        for _ in 0..100 {
            let a = random_fe(&mut r);
            let b = random_fe(&mut r);
            let expect = (&a.to_biguint() + &b.to_biguint()).rem(&p());
            assert_eq!(a.add(&b).to_biguint(), expect);
        }
    }

    #[test]
    fn sub_matches_biguint() {
        let mut r = rng();
        for _ in 0..100 {
            let a = random_fe(&mut r);
            let b = random_fe(&mut r);
            let pa = a.to_biguint();
            let pb = b.to_biguint();
            let expect = if pa >= pb {
                &pa - &pb
            } else {
                &(&pa + &p()) - &pb
            };
            assert_eq!(a.sub(&b).to_biguint(), expect);
        }
    }

    #[test]
    fn mul_matches_biguint() {
        let mut r = rng();
        for _ in 0..100 {
            let a = random_fe(&mut r);
            let b = random_fe(&mut r);
            let expect = (&a.to_biguint() * &b.to_biguint()).rem(&p());
            assert_eq!(a.mul(&b).to_biguint(), expect);
        }
    }

    #[test]
    fn invert_matches() {
        let mut r = rng();
        for _ in 0..20 {
            let a = random_fe(&mut r);
            if a.is_zero() {
                continue;
            }
            let inv = a.invert();
            assert_eq!(a.mul(&inv), Fe::ONE);
        }
    }

    #[test]
    fn invert_zero_is_zero() {
        assert!(Fe::ZERO.invert().is_zero());
    }

    #[test]
    fn sqrt_of_squares() {
        let mut r = rng();
        for _ in 0..20 {
            let a = random_fe(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root.square() == sq);
        }
    }

    #[test]
    fn sqrt_of_non_residue_fails() {
        // 2 is a non-residue mod p (p ≡ 5 mod 8).
        let two = Fe::from_dec("2");
        assert!(two.sqrt().is_none());
    }

    #[test]
    fn sqrt_m1_is_fourth_root() {
        let i = sqrt_m1();
        assert_eq!(i.square(), Fe::ZERO.sub(&Fe::ONE));
    }

    #[test]
    fn d_constant_equation() {
        // d = -121665/121666
        let num = Fe::from_dec("121665").neg();
        let den = Fe::from_dec("121666");
        assert_eq!(edwards_d(), num.mul(&den.invert()));
    }

    #[test]
    fn non_canonical_input_reduced() {
        // p + 1 encodes as 1.
        let p_plus_1 = &p() + &BigUint::one();
        let mut bytes = [0u8; 32];
        let le = p_plus_1.to_bytes_le();
        bytes[..le.len()].copy_from_slice(&le);
        let fe = Fe::from_bytes(&bytes);
        assert_eq!(fe.to_biguint(), BigUint::one());
    }
}
