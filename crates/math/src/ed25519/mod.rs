//! The Ed25519 (Curve25519, twisted Edwards) group and its scalar field.
//!
//! This is the discrete-log group used by the SG02 threshold cipher,
//! the KG20/FROST threshold signature and the CKS05 coin in the paper's
//! Table 3 (256-bit keys).
//!
//! # Example
//!
//! ```
//! use theta_math::ed25519::{Point, Scalar};
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let sk = Scalar::random(&mut rng);
//! let pk = Point::mul_base(&sk);
//! assert!(pk.is_in_prime_subgroup());
//! ```

mod fe;
mod point;
mod scalar;

pub use fe::{edwards_d, sqrt_m1, Fe};
pub use point::Point;
pub use scalar::Scalar;
