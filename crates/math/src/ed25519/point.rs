//! Twisted-Edwards points on Curve25519 (`-x² + y² = 1 + d·x²y²`).
//!
//! Extended homogeneous coordinates `(X : Y : Z : T)` with `x = X/Z`,
//! `y = Y/Z`, `xy = T/Z`. All group operations needed by the Ed25519-based
//! threshold schemes live here: unified addition, doubling, windowed scalar
//! multiplication, compression and prime-subgroup handling.

use super::fe::{edwards_d, Fe};
use super::scalar::Scalar;
use crate::BigUint;
use std::fmt;
use std::sync::OnceLock;

/// A point on the Ed25519 curve in extended coordinates.
#[derive(Clone, Copy)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

fn base_point() -> &'static Point {
    static B: OnceLock<Point> = OnceLock::new();
    B.get_or_init(|| {
        let x = Fe::from_dec(
            "15112221349535400772501151409588531511454012693041857206046113283949847762202",
        );
        let y = Fe::from_dec(
            "46316835694926478169428394003475163141307993866256225615783033603165251855960",
        );
        Point::from_affine(x, y).expect("base point is on the curve")
    })
}

impl Point {
    /// The neutral element (0, 1).
    pub fn identity() -> Point {
        Point { x: Fe::ZERO, y: Fe::ONE, z: Fe::ONE, t: Fe::ZERO }
    }

    /// The standard Ed25519 base point `B` (generates the prime-order subgroup).
    pub fn base() -> Point {
        *base_point()
    }

    /// Builds a point from affine coordinates, verifying the curve equation.
    pub fn from_affine(x: Fe, y: Fe) -> Option<Point> {
        let p = Point { x, y, z: Fe::ONE, t: x.mul(&y) };
        if p.satisfies_curve_equation() {
            Some(p)
        } else {
            None
        }
    }

    fn satisfies_curve_equation(&self) -> bool {
        // (-X² + Y²)·Z² == Z⁴ + d·X²Y²  (projective form)
        let xx = self.x.square();
        let yy = self.y.square();
        let zz = self.z.square();
        let lhs = yy.sub(&xx).mul(&zz);
        let rhs = zz.square().add(&edwards_d().mul(&xx).mul(&yy));
        lhs == rhs && self.t.mul(&self.z) == self.x.mul(&self.y)
    }

    /// Affine x-coordinate.
    pub fn affine_x(&self) -> Fe {
        self.x.mul(&self.z.invert())
    }

    /// Affine y-coordinate.
    pub fn affine_y(&self) -> Fe {
        self.y.mul(&self.z.invert())
    }

    /// True when this is the neutral element.
    pub fn is_identity(&self) -> bool {
        self.x.is_zero() && self.y == self.z
    }

    /// Point addition (unified formula, complete on the twisted Edwards curve).
    pub fn add(&self, rhs: &Point) -> Point {
        // Hisil–Wong–Carter–Dawson "add-2008-hwcd-3" for a = -1.
        let a = self.y.sub(&self.x).mul(&rhs.y.sub(&rhs.x));
        let b = self.y.add(&self.x).mul(&rhs.y.add(&rhs.x));
        let d2 = edwards_d().add(&edwards_d());
        let c = self.t.mul(&d2).mul(&rhs.t);
        let d = self.z.add(&self.z).mul(&rhs.z);
        let e = b.sub(&a);
        let f = d.sub(&c);
        let g = d.add(&c);
        let h = b.add(&a);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    /// Point doubling.
    pub fn double(&self) -> Point {
        // "dbl-2008-hwcd" for a = -1.
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(&self.z.square());
        let h = a.add(&b);
        let xy = self.x.add(&self.y);
        let e = h.sub(&xy.square());
        let g = a.sub(&b);
        let f = c.add(&g);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Point {
        Point { x: self.x.neg(), y: self.y, z: self.z, t: self.t.neg() }
    }

    /// Subtraction.
    pub fn sub(&self, rhs: &Point) -> Point {
        self.add(&rhs.neg())
    }

    /// Scalar multiplication with a 4-bit fixed window.
    pub fn mul(&self, scalar: &Scalar) -> Point {
        self.mul_biguint(scalar.to_biguint())
    }

    /// Scalar multiplication by an arbitrary non-negative integer.
    pub fn mul_biguint(&self, scalar: &BigUint) -> Point {
        if scalar.is_zero() {
            return Point::identity();
        }
        // Precompute 0P..15P.
        let mut table = [Point::identity(); 16];
        for i in 1..16 {
            table[i] = table[i - 1].add(self);
        }
        let bits = scalar.bits();
        let windows = bits.div_ceil(4);
        let mut acc = Point::identity();
        for w in (0..windows).rev() {
            for _ in 0..4 {
                acc = acc.double();
            }
            let mut nibble = 0usize;
            for b in 0..4 {
                let bit_idx = w * 4 + (3 - b);
                nibble = (nibble << 1) | scalar.bit(bit_idx) as usize;
            }
            if nibble != 0 {
                acc = acc.add(&table[nibble]);
            }
        }
        acc
    }

    /// `scalar · B` for the standard base point, via the process-wide
    /// fixed-base table (additions only — no doublings, no per-call
    /// table build).
    pub fn mul_base(scalar: &Scalar) -> Point {
        crate::precomp::ed25519_base_table().mul(scalar.to_biguint())
    }

    /// Multiplies by the cofactor 8 (clears any small-order component).
    pub fn mul_by_cofactor(&self) -> Point {
        self.double().double().double()
    }

    /// True when the point lies in the prime-order subgroup.
    pub fn is_in_prime_subgroup(&self) -> bool {
        self.mul_biguint(Scalar::order_biguint()).is_identity()
    }

    /// Compresses to the 32-byte Ed25519 wire format (y with the x-sign bit).
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses a 32-byte encoding; checks the curve equation.
    ///
    /// Returns `None` for encodings that do not correspond to a curve point.
    /// The result is *not* guaranteed to be in the prime subgroup; callers
    /// that need that must check [`Point::is_in_prime_subgroup`] or clear
    /// the cofactor.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let sign = bytes[31] >> 7 == 1;
        let mut ybytes = *bytes;
        ybytes[31] &= 0x7f;
        let y = Fe::from_bytes(&ybytes);
        // x² = (y² − 1) / (d·y² + 1)
        let yy = y.square();
        let u = yy.sub(&Fe::ONE);
        let v = edwards_d().mul(&yy).add(&Fe::ONE);
        let xx = u.mul(&v.invert());
        let mut x = xx.sqrt()?;
        if x.is_negative() != sign {
            x = x.neg();
        }
        if x.is_zero() && sign {
            // -0 is a non-canonical encoding.
            return None;
        }
        Point::from_affine(x, y)
    }

    /// Deterministically maps 32 uniform bytes to a curve point in the
    /// prime subgroup, or `None` when the candidate y is not on the curve
    /// (callers retry with a counter — "try-and-increment").
    pub fn from_uniform_bytes(bytes: &[u8; 32]) -> Option<Point> {
        let mut candidate = *bytes;
        candidate[31] &= 0x7f;
        let p = Point::decompress(&candidate)?;
        let cleared = p.mul_by_cofactor();
        if cleared.is_identity() {
            return None;
        }
        Some(cleared)
    }
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        // X1·Z2 == X2·Z1 and Y1·Z2 == Y2·Z1
        self.x.mul(&other.z) == other.x.mul(&self.z)
            && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}

impl Eq for Point {}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.compress();
        write!(f, "Point({})", hex(&c))
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xba5e)
    }

    #[test]
    fn base_point_on_curve() {
        assert!(Point::base().satisfies_curve_equation());
        assert!(Point::base().is_in_prime_subgroup());
        assert!(!Point::base().is_identity());
    }

    #[test]
    fn identity_laws() {
        let b = Point::base();
        assert_eq!(b.add(&Point::identity()), b);
        assert_eq!(Point::identity().add(&b), b);
        assert_eq!(b.add(&b.neg()), Point::identity());
        assert!(Point::identity().is_identity());
    }

    #[test]
    fn double_matches_add() {
        let mut r = rng();
        let p = Point::mul_base(&Scalar::random(&mut r));
        assert_eq!(p.double(), p.add(&p));
    }

    #[test]
    fn group_laws_random() {
        let mut r = rng();
        for _ in 0..10 {
            let p = Point::mul_base(&Scalar::random(&mut r));
            let q = Point::mul_base(&Scalar::random(&mut r));
            let s = Point::mul_base(&Scalar::random(&mut r));
            assert_eq!(p.add(&q), q.add(&p));
            assert_eq!(p.add(&q).add(&s), p.add(&q.add(&s)));
        }
    }

    #[test]
    fn scalar_mul_distributes() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Scalar::random(&mut r);
            let b = Scalar::random(&mut r);
            // (a+b)·B == a·B + b·B
            assert_eq!(
                Point::mul_base(&a.add(&b)),
                Point::mul_base(&a).add(&Point::mul_base(&b))
            );
            // (a·b)·B == a·(b·B)
            assert_eq!(Point::mul_base(&a.mul(&b)), Point::mul_base(&b).mul(&a));
        }
    }

    #[test]
    fn small_scalar_mults() {
        let b = Point::base();
        assert_eq!(b.mul(&Scalar::from_u64(0)), Point::identity());
        assert_eq!(b.mul(&Scalar::from_u64(1)), b);
        assert_eq!(b.mul(&Scalar::from_u64(2)), b.double());
        assert_eq!(b.mul(&Scalar::from_u64(3)), b.double().add(&b));
        let mut acc = Point::identity();
        for _ in 0..17 {
            acc = acc.add(&b);
        }
        assert_eq!(b.mul(&Scalar::from_u64(17)), acc);
    }

    #[test]
    fn order_annihilates_base() {
        let l = Scalar::order_biguint();
        assert!(Point::base().mul_biguint(l).is_identity());
        // ℓ−1 · B == −B
        let l_minus_1 = l - &BigUint::one();
        assert_eq!(Point::base().mul_biguint(&l_minus_1), Point::base().neg());
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let p = Point::mul_base(&Scalar::random(&mut r));
            let c = p.compress();
            let q = Point::decompress(&c).expect("valid encoding");
            assert_eq!(p, q);
            assert_eq!(q.compress(), c);
        }
    }

    #[test]
    fn identity_compresses_to_y1() {
        let c = Point::identity().compress();
        let mut expect = [0u8; 32];
        expect[0] = 1;
        assert_eq!(c, expect);
        assert_eq!(Point::decompress(&expect).unwrap(), Point::identity());
    }

    #[test]
    fn decompress_rejects_invalid() {
        // y = 2 gives x² a non-residue... find via loop to assert at least
        // one candidate in a small range fails (not all y are on the curve).
        let mut any_invalid = false;
        for y in 2u8..40 {
            let mut bytes = [0u8; 32];
            bytes[0] = y;
            if Point::decompress(&bytes).is_none() {
                any_invalid = true;
                break;
            }
        }
        assert!(any_invalid, "some small y must be off-curve");
    }

    #[test]
    fn from_uniform_bytes_lands_in_subgroup() {
        let mut found = 0;
        for i in 0u64..40 {
            let mut bytes = [0u8; 32];
            bytes[..8].copy_from_slice(&i.to_le_bytes());
            bytes[8] = 0x5a;
            if let Some(p) = Point::from_uniform_bytes(&bytes) {
                assert!(p.is_in_prime_subgroup());
                assert!(!p.is_identity());
                found += 1;
            }
        }
        assert!(found > 0, "roughly half of candidates should decode");
    }

    #[test]
    fn neg_of_identity_is_identity() {
        assert_eq!(Point::identity().neg(), Point::identity());
    }

    #[test]
    fn cofactor_times_base_nonzero() {
        assert!(!Point::base().mul_by_cofactor().is_identity());
    }
}
