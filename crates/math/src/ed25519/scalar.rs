//! The Ed25519 scalar field: integers modulo the prime group order
//! ℓ = 2^252 + 27742317777372353535851937790883648493.
//!
//! All Shamir sharing, Lagrange interpolation and Schnorr arithmetic for
//! the Ed25519-based schemes (SG02, KG20/FROST, CKS05) happens here.

use crate::{mod_inverse, BigUint};
use rand::RngCore;
use std::fmt;
use std::sync::OnceLock;

fn order() -> &'static BigUint {
    static L: OnceLock<BigUint> = OnceLock::new();
    L.get_or_init(|| {
        BigUint::from_dec(
            "7237005577332262213973186563042994240857116359379907606001950938285454250989",
        )
        .expect("constant")
    })
}

/// An element of the scalar field Z_ℓ.
///
/// # Examples
///
/// ```
/// use theta_math::ed25519::Scalar;
/// let a = Scalar::from_u64(3);
/// let inv = a.invert().unwrap();
/// assert_eq!(a.mul(&inv), Scalar::one());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Scalar(BigUint);

impl Scalar {
    /// Constant-time equality; use instead of `==` whenever either
    /// scalar is secret (key shares, nonces, DKG shares).
    #[must_use]
    pub fn ct_eq(&self, other: &Scalar) -> bool {
        self.0.ct_eq(&other.0)
    }

    /// Volatile-overwrites the underlying limbs with zero; for `Drop`
    /// impls of secret-bearing wrappers.
    pub fn wipe(&mut self) {
        self.0.wipe();
    }

    /// The group order ℓ.
    pub fn order_biguint() -> &'static BigUint {
        order()
    }

    /// The zero scalar.
    pub fn zero() -> Scalar {
        Scalar(BigUint::zero())
    }

    /// The one scalar.
    pub fn one() -> Scalar {
        Scalar(BigUint::one())
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar(BigUint::from_u64(v).rem(order()))
    }

    /// Builds from a [`BigUint`], reducing mod ℓ.
    pub fn from_biguint(v: &BigUint) -> Scalar {
        Scalar(v.rem(order()))
    }

    /// Reduces 64 uniform bytes (little-endian) mod ℓ; the standard way to
    /// derive a scalar from a hash without modular bias.
    pub fn from_bytes_wide(bytes: &[u8; 64]) -> Scalar {
        Scalar(BigUint::from_bytes_le(bytes).rem(order()))
    }

    /// Decodes a 32-byte little-endian encoding; reduces mod ℓ.
    pub fn from_bytes(bytes: &[u8; 32]) -> Scalar {
        Scalar(BigUint::from_bytes_le(bytes).rem(order()))
    }

    /// Encodes as 32 little-endian bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        let le = self.0.to_bytes_le();
        out[..le.len()].copy_from_slice(&le);
        out
    }

    /// The canonical integer representative in `[0, ℓ)`.
    pub fn to_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Uniformly random scalar.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Scalar {
        Scalar(BigUint::random_below(rng, order()))
    }

    /// Uniformly random *nonzero* scalar.
    pub fn random_nonzero<R: RngCore + ?Sized>(rng: &mut R) -> Scalar {
        loop {
            let s = Self::random(rng);
            if !s.is_zero() {
                return s;
            }
        }
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Addition mod ℓ.
    pub fn add(&self, rhs: &Scalar) -> Scalar {
        let sum = &self.0 + &rhs.0;
        Scalar(if &sum >= order() { &sum - order() } else { sum })
    }

    /// Subtraction mod ℓ.
    pub fn sub(&self, rhs: &Scalar) -> Scalar {
        if self.0 >= rhs.0 {
            Scalar(&self.0 - &rhs.0)
        } else {
            Scalar(&(&self.0 + order()) - &rhs.0)
        }
    }

    /// Negation mod ℓ.
    pub fn neg(&self) -> Scalar {
        if self.0.is_zero() {
            Scalar::zero()
        } else {
            Scalar(order() - &self.0)
        }
    }

    /// Multiplication mod ℓ.
    pub fn mul(&self, rhs: &Scalar) -> Scalar {
        Scalar((&self.0 * &rhs.0).rem(order()))
    }

    /// Multiplicative inverse, `None` for zero.
    pub fn invert(&self) -> Option<Scalar> {
        mod_inverse(&self.0, order()).map(Scalar)
    }

    /// `self^exp mod ℓ`.
    pub fn pow(&self, exp: &BigUint) -> Scalar {
        Scalar(self.0.pow_mod(exp, order()))
    }
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Scalar({})", self.0)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x5ca1a4)
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..50 {
            let a = Scalar::random(&mut r);
            let b = Scalar::random(&mut r);
            let c = Scalar::random(&mut r);
            // Commutativity
            assert_eq!(a.add(&b), b.add(&a));
            assert_eq!(a.mul(&b), b.mul(&a));
            // Associativity
            assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
            assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            // Distributivity
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            // Identities and inverses
            assert_eq!(a.add(&Scalar::zero()), a);
            assert_eq!(a.mul(&Scalar::one()), a);
            assert_eq!(a.sub(&a), Scalar::zero());
            assert_eq!(a.add(&a.neg()), Scalar::zero());
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Scalar::random_nonzero(&mut r);
            assert_eq!(a.mul(&a.invert().unwrap()), Scalar::one());
        }
        assert!(Scalar::zero().invert().is_none());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Scalar::random(&mut r);
            assert_eq!(Scalar::from_bytes(&a.to_bytes()), a);
        }
    }

    #[test]
    fn wide_reduction_consistent() {
        let mut wide = [0u8; 64];
        wide[0] = 5;
        assert_eq!(Scalar::from_bytes_wide(&wide), Scalar::from_u64(5));
    }

    #[test]
    fn order_is_prime_sized() {
        assert_eq!(Scalar::order_biguint().bits(), 253);
    }

    #[test]
    fn fermat_little_theorem() {
        let mut r = rng();
        let a = Scalar::random_nonzero(&mut r);
        let exp = Scalar::order_biguint() - &BigUint::one();
        assert_eq!(a.pow(&exp), Scalar::one());
    }
}
