//! Signed arbitrary-precision integers (sign + magnitude).
//!
//! Needed wherever intermediate values go negative: the extended Euclidean
//! algorithm (modular inverses), and Shoup's integer Lagrange coefficients
//! in the SH00 threshold-RSA combiner.

use crate::BigUint;
use std::cmp::Ordering;
use std::fmt;

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero (the magnitude is zero exactly when the sign is `Zero`).
    Zero,
    /// Strictly positive.
    Positive,
}

/// A signed arbitrary-precision integer.
///
/// # Examples
///
/// ```
/// use theta_math::BigInt;
/// let a = BigInt::from_i64(-5);
/// let b = BigInt::from_i64(3);
/// assert_eq!((&a + &b), BigInt::from_i64(-2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value zero.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, mag: BigUint::zero() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigInt { sign: Sign::Positive, mag: BigUint::one() }
    }

    /// Builds from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Self::zero(),
            Ordering::Greater => BigInt { sign: Sign::Positive, mag: BigUint::from_u64(v as u64) },
            Ordering::Less => BigInt {
                sign: Sign::Negative,
                mag: BigUint::from_u64(v.unsigned_abs()),
            },
        }
    }

    /// Builds a non-negative value from a [`BigUint`].
    pub fn from_biguint(mag: BigUint) -> Self {
        if mag.is_zero() {
            Self::zero()
        } else {
            BigInt { sign: Sign::Positive, mag }
        }
    }

    /// Builds a value with an explicit sign (the sign of a zero magnitude is forced to `Zero`).
    pub fn with_sign(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            Self::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (absolute value).
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True when strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        match self.sign {
            Sign::Zero => Self::zero(),
            Sign::Positive => BigInt { sign: Sign::Negative, mag: self.mag.clone() },
            Sign::Negative => BigInt { sign: Sign::Positive, mag: self.mag.clone() },
        }
    }

    /// Canonical representative `self mod modulus` in `[0, modulus)`.
    ///
    /// # Panics
    ///
    /// Panics when `modulus` is zero.
    pub fn mod_floor(&self, modulus: &BigUint) -> BigUint {
        let r = self.mag.rem(modulus);
        match self.sign {
            Sign::Negative if !r.is_zero() => modulus - &r,
            _ => r,
        }
    }

    /// True when `self` is even.
    pub fn is_even(&self) -> bool {
        self.mag.is_even()
    }

    /// Halves the value (exact division by two of the magnitude).
    pub fn half(&self) -> Self {
        Self::with_sign(self.sign, &self.mag >> 1)
    }
}

impl std::ops::Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::with_sign(a, &self.mag + &rhs.mag),
            (a, _) => match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::with_sign(a, &self.mag - &rhs.mag),
                Ordering::Less => BigInt::with_sign(rhs.sign, &rhs.mag - &self.mag),
            },
        }
    }
}

impl std::ops::Sub for &BigInt {
    type Output = BigInt;
    // Subtraction *is* addition of the negation here; not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &rhs.neg()
    }
}

impl std::ops::Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => return BigInt::zero(),
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        BigInt::with_sign(sign, &self.mag * &rhs.mag)
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Positive => self.mag.cmp(&other.mag),
                Sign::Negative => other.mag.cmp(&self.mag),
                Sign::Zero => Ordering::Equal,
            },
            ord => ord,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        Self::from_i64(v)
    }
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`.
pub fn ext_gcd(a: &BigUint, b: &BigUint) -> (BigUint, BigInt, BigInt) {
    let mut old_r = BigInt::from_biguint(a.clone());
    let mut r = BigInt::from_biguint(b.clone());
    let mut old_s = BigInt::one();
    let mut s = BigInt::zero();
    let mut old_t = BigInt::zero();
    let mut t = BigInt::one();
    while !r.is_zero() {
        let (q, rem) = old_r.magnitude().divrem(r.magnitude());
        // Signs: old_r and r stay non-negative throughout since inputs are.
        let q = BigInt::from_biguint(q);
        let new_r = BigInt::from_biguint(rem);
        old_r = std::mem::replace(&mut r, new_r);
        let new_s = &old_s - &(&q * &s);
        old_s = std::mem::replace(&mut s, new_s);
        let new_t = &old_t - &(&q * &t);
        old_t = std::mem::replace(&mut t, new_t);
    }
    (old_r.magnitude().clone(), old_s, old_t)
}

/// Modular inverse of `a` modulo `m`, or `None` when `gcd(a, m) != 1`.
///
/// # Examples
///
/// ```
/// use theta_math::{BigUint, mod_inverse};
/// let m = BigUint::from_u64(97);
/// let inv = mod_inverse(&BigUint::from_u64(3), &m).unwrap();
/// assert_eq!((&inv * &BigUint::from_u64(3)).rem(&m), BigUint::one());
/// ```
pub fn mod_inverse(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    let a = a.rem(m);
    if a.is_zero() {
        return None;
    }
    let (g, x, _) = ext_gcd(&a, m);
    if !g.is_one() {
        return None;
    }
    Some(x.mod_floor(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn signed_add_sub() {
        for a in -5i64..=5 {
            for b in -5i64..=5 {
                let ba = BigInt::from_i64(a);
                let bb = BigInt::from_i64(b);
                assert_eq!(&ba + &bb, BigInt::from_i64(a + b), "{a}+{b}");
                assert_eq!(&ba - &bb, BigInt::from_i64(a - b), "{a}-{b}");
                assert_eq!(&ba * &bb, BigInt::from_i64(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn ordering_matches_i64() {
        let vals = [-10i64, -1, 0, 1, 10];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    BigInt::from_i64(a).cmp(&BigInt::from_i64(b)),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn mod_floor_negative() {
        let m = BigUint::from_u64(7);
        assert_eq!(BigInt::from_i64(-1).mod_floor(&m), BigUint::from_u64(6));
        assert_eq!(BigInt::from_i64(-7).mod_floor(&m), BigUint::zero());
        assert_eq!(BigInt::from_i64(-15).mod_floor(&m), BigUint::from_u64(6));
        assert_eq!(BigInt::from_i64(15).mod_floor(&m), BigUint::from_u64(1));
    }

    #[test]
    fn ext_gcd_bezout_identity() {
        let mut r = rng();
        for _ in 0..50 {
            let a = BigUint::random_bits(&mut r, 200);
            let b = BigUint::random_bits(&mut r, 180);
            let (g, x, y) = ext_gcd(&a, &b);
            let lhs = &(&x * &BigInt::from_biguint(a.clone()))
                + &(&y * &BigInt::from_biguint(b.clone()));
            assert_eq!(lhs, BigInt::from_biguint(g.clone()));
            assert_eq!(g, a.gcd(&b));
        }
    }

    #[test]
    fn mod_inverse_multiplies_to_one() {
        let mut r = rng();
        let p = (BigUint::one() << 255) - BigUint::from_u64(19);
        for _ in 0..20 {
            let a = BigUint::random_below(&mut r, &p);
            if a.is_zero() {
                continue;
            }
            let inv = mod_inverse(&a, &p).expect("prime modulus, nonzero a");
            assert!((&inv * &a).rem(&p).is_one());
        }
    }

    #[test]
    fn mod_inverse_non_coprime() {
        assert!(mod_inverse(&BigUint::from_u64(6), &BigUint::from_u64(9)).is_none());
        assert!(mod_inverse(&BigUint::zero(), &BigUint::from_u64(9)).is_none());
        assert!(mod_inverse(&BigUint::from_u64(3), &BigUint::one()).is_none());
    }

    #[test]
    fn display_signed() {
        assert_eq!(format!("{}", BigInt::from_i64(-42)), "-42");
        assert_eq!(format!("{}", BigInt::zero()), "0");
    }
}
