//! Primality testing and prime generation.
//!
//! Provides Miller–Rabin testing plus generators for random primes and
//! *safe* primes (`p = 2p' + 1` with `p'` prime), which Shoup's threshold
//! RSA scheme (SH00) requires for its soundness argument.

use crate::{BigUint, Montgomery};
use rand::RngCore;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
];

/// Number of Miller–Rabin rounds; 2^-128 error bound for random candidates.
const MILLER_RABIN_ROUNDS: usize = 40;

/// Probabilistic primality test (trial division + Miller–Rabin).
///
/// # Examples
///
/// ```
/// use theta_math::{BigUint, is_probable_prime};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = (BigUint::one() << 255) - BigUint::from_u64(19);
/// assert!(is_probable_prime(&p, &mut rng));
/// ```
pub fn is_probable_prime<R: RngCore + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if let Some(small) = n.to_u64() {
        if small == 2 {
            return true;
        }
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let (_, r) = n.divrem_small(p);
        if r == 0 {
            return n.to_u64() == Some(p);
        }
    }
    miller_rabin(n, MILLER_RABIN_ROUNDS, rng)
}

/// Miller–Rabin with `rounds` random bases. `n` must be odd and > 3.
fn miller_rabin<R: RngCore + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    // n - 1 = d · 2^s with d odd
    let s = trailing_zeros(&n_minus_1);
    let d = &n_minus_1 >> s;
    let ctx = Montgomery::new(n.clone());
    let two = BigUint::from_u64(2);
    let bound = n - &BigUint::from_u64(3); // sample a in [2, n-2]
    'witness: for _ in 0..rounds {
        let a = &BigUint::random_below(rng, &bound) + &two;
        let mut x = ctx.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = (&x * &x).rem(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn trailing_zeros(n: &BigUint) -> usize {
    if n.is_zero() {
        return 0;
    }
    let mut count = 0;
    for (i, &limb) in n.limbs().iter().enumerate() {
        if limb == 0 {
            continue;
        }
        count = i * 64 + limb.trailing_zeros() as usize;
        break;
    }
    count
}

/// Generates a random prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics when `bits < 2`.
pub fn generate_prime<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = &candidate + &BigUint::one();
            if candidate.bits() != bits {
                continue;
            }
        }
        if is_probable_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generates a random *safe* prime `p = 2q + 1` (both `p` and `q` prime)
/// with exactly `bits` bits. Used by SH00 key generation.
///
/// This is expensive for large sizes (minutes at 2048 bits); tests use
/// 256–512 bits and benches cache generated keys.
///
/// # Panics
///
/// Panics when `bits < 3`.
pub fn generate_safe_prime<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 3, "safe primes need at least 3 bits");
    let one = BigUint::one();
    loop {
        // Generate candidate q of bits-1 bits with q ≡ 1 mod 2 and p = 2q+1.
        let q = BigUint::random_bits(rng, bits - 1);
        let q = if q.is_even() { &q + &one } else { q };
        if q.bits() != bits - 1 {
            continue;
        }
        let p = &(&q << 1) + &one;
        // Cheap screens on both before the expensive tests.
        if !passes_trial_division(&q) || !passes_trial_division(&p) {
            continue;
        }
        // Fermat base-2 screen on p first (cheapest useful filter).
        let two = BigUint::from_u64(2);
        if !two.pow_mod(&(&p - &one), &p).is_one() {
            continue;
        }
        if is_probable_prime(&q, rng) && is_probable_prime(&p, rng) {
            return p;
        }
    }
}

fn passes_trial_division(n: &BigUint) -> bool {
    for &p in &SMALL_PRIMES {
        let (_, r) = n.divrem_small(p);
        if r == 0 {
            return n.to_u64() == Some(p);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn small_primes_detected() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 97, 65537, 1_000_000_007] {
            assert!(is_probable_prime(&BigUint::from_u64(p), &mut r), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 9, 15, 91, 561, 41041, 1_000_000_000] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), &mut r), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut r = rng();
        // Carmichael numbers fool the Fermat test but not Miller–Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 825265] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), &mut r), "{c}");
        }
    }

    #[test]
    fn known_large_primes() {
        let mut r = rng();
        // 2^255 - 19 (Curve25519 field prime)
        let p = (BigUint::one() << 255) - BigUint::from_u64(19);
        assert!(is_probable_prime(&p, &mut r));
        // BN254 base field prime
        let p = BigUint::from_dec(
            "21888242871839275222246405745257275088696311157297823662689037894645226208583",
        )
        .unwrap();
        assert!(is_probable_prime(&p, &mut r));
        // BN254 group order
        let p = BigUint::from_dec(
            "21888242871839275222246405745257275088548364400416034343698204186575808495617",
        )
        .unwrap();
        assert!(is_probable_prime(&p, &mut r));
    }

    #[test]
    fn known_large_composite() {
        let mut r = rng();
        // (2^255 - 19) + 2 is even... use +4 (odd composite).
        let p = (BigUint::one() << 255) - BigUint::from_u64(15);
        assert!(!is_probable_prime(&p, &mut r));
    }

    #[test]
    fn generated_primes_have_exact_bits() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = generate_prime(bits, &mut r);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, &mut r));
        }
    }

    #[test]
    fn safe_prime_structure() {
        let mut r = rng();
        let p = generate_safe_prime(64, &mut r);
        assert_eq!(p.bits(), 64);
        assert!(is_probable_prime(&p, &mut r));
        let q = (&p - &BigUint::one()) >> 1;
        assert!(is_probable_prime(&q, &mut r));
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!(trailing_zeros(&BigUint::from_u64(8)), 3);
        assert_eq!(trailing_zeros(&BigUint::from_u64(1)), 0);
        assert_eq!(trailing_zeros(&(BigUint::one() << 100)), 100);
    }
}
