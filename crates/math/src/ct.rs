//! Constant-time comparison and best-effort zeroization for secret
//! material.
//!
//! Two rules for code that touches key shares, DKG shares or decoded
//! key files, enforced by `theta-lint`:
//!
//! - **compare with [`ct_eq_bytes`]/[`ct_eq_u64s`]** (or the `ct_eq`
//!   methods built on them), never `==`: a short-circuiting comparison
//!   leaks the position of the first differing limb through timing;
//! - **wipe on drop** with [`wipe_u64s`]/[`wipe_bytes`]: volatile
//!   writes the optimizer is not allowed to elide, followed by a
//!   compiler fence so the zeroing is not reordered past the free.
//!
//! The comparisons equalize work across *values* of equal length; the
//! operand length itself (the limb count of a `BigUint`) is treated as
//! public, which matches how the workspace stores secrets (fixed-width
//! field elements, fixed-size RSA moduli).

use std::sync::atomic::{compiler_fence, Ordering};

/// Constant-time equality over `u64` slices. Shorter operands are
/// implicitly zero-extended, so canonical and non-canonical encodings
/// of the same value compare equal; the running time depends only on
/// `max(a.len(), b.len())`, never on where the operands differ.
#[must_use]
pub fn ct_eq_u64s(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().max(b.len());
    let mut diff = 0u64;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= x ^ y;
    }
    diff == 0
}

/// Constant-time equality over byte slices (zero-extended, like
/// [`ct_eq_u64s`]).
#[must_use]
pub fn ct_eq_bytes(a: &[u8], b: &[u8]) -> bool {
    let n = a.len().max(b.len());
    let mut diff = 0u8;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= x ^ y;
    }
    diff == 0
}

/// Overwrites every limb with zero through volatile writes, then fences
/// so the compiler cannot sink or elide the stores ("the value is dead
/// anyway" is exactly the reasoning this defeats).
pub fn wipe_u64s(limbs: &mut [u64]) {
    for limb in limbs.iter_mut() {
        // SAFETY: `limb` is a valid, aligned, exclusive reference.
        unsafe { std::ptr::write_volatile(limb, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

/// Byte-slice variant of [`wipe_u64s`].
pub fn wipe_bytes(bytes: &mut [u8]) {
    for b in bytes.iter_mut() {
        // SAFETY: `b` is a valid, aligned, exclusive reference.
        unsafe { std::ptr::write_volatile(b, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_and_zero_extension() {
        assert!(ct_eq_u64s(&[1, 2], &[1, 2]));
        assert!(ct_eq_u64s(&[1, 2, 0], &[1, 2]), "trailing zeros are not a difference");
        assert!(!ct_eq_u64s(&[1, 2], &[1, 3]));
        assert!(!ct_eq_u64s(&[1, 2], &[1, 2, 9]));
        assert!(ct_eq_u64s(&[], &[0, 0]));
        assert!(ct_eq_bytes(b"abc", b"abc"));
        assert!(!ct_eq_bytes(b"abc", b"abd"));
        assert!(!ct_eq_bytes(b"abc", b"ab"));
        assert!(ct_eq_bytes(b"", b""));
    }

    #[test]
    fn wipe_zeroes_everything() {
        let mut limbs = [u64::MAX, 7, 1];
        wipe_u64s(&mut limbs);
        assert_eq!(limbs, [0, 0, 0]);
        let mut bytes = *b"secret";
        wipe_bytes(&mut bytes);
        assert_eq!(bytes, [0; 6]);
    }
}
