//! Multi-scalar multiplication (MSM) kernels.
//!
//! Computes `Σ sᵢ·Pᵢ` over any group exposing the [`CurveGroup`]
//! operations, with two strategies picked by problem size:
//!
//! - **Straus** (interleaved 4-bit windows) for small `n`: one shared
//!   chain of doublings, per-point 16-entry tables. This is the shape
//!   of every `combine()` in the threshold schemes, where `n = t + 1`
//!   is a handful of shares.
//! - **Pippenger** (bucket method) for large `n`: the window size is
//!   chosen to minimise the total addition count (bucket pass plus
//!   running-sum merge), so the per-point cost drops toward one
//!   addition per window.
//!
//! The naive alternative — `t` independent double-and-add runs — pays
//! the full doubling chain per point; Straus pays it once.

use crate::BigUint;

/// Minimal group interface needed by the MSM and fixed-base kernels.
///
/// Implemented by `ed25519::Point`, `bn254::G1` and `bn254::G2`; the
/// operations mirror the inherent methods those types already expose.
pub trait CurveGroup: Copy {
    fn identity() -> Self;
    fn add(&self, rhs: &Self) -> Self;
    fn double(&self) -> Self;
    fn is_identity(&self) -> bool;
}

impl CurveGroup for crate::ed25519::Point {
    fn identity() -> Self {
        crate::ed25519::Point::identity()
    }
    fn add(&self, rhs: &Self) -> Self {
        crate::ed25519::Point::add(self, rhs)
    }
    fn double(&self) -> Self {
        crate::ed25519::Point::double(self)
    }
    fn is_identity(&self) -> bool {
        crate::ed25519::Point::is_identity(self)
    }
}

impl CurveGroup for crate::bn254::G1 {
    fn identity() -> Self {
        crate::bn254::G1::identity()
    }
    fn add(&self, rhs: &Self) -> Self {
        crate::bn254::G1::add(self, rhs)
    }
    fn double(&self) -> Self {
        crate::bn254::G1::double(self)
    }
    fn is_identity(&self) -> bool {
        crate::bn254::G1::is_identity(self)
    }
}

impl CurveGroup for crate::bn254::G2 {
    fn identity() -> Self {
        crate::bn254::G2::identity()
    }
    fn add(&self, rhs: &Self) -> Self {
        crate::bn254::G2::add(self, rhs)
    }
    fn double(&self) -> Self {
        crate::bn254::G2::double(self)
    }
    fn is_identity(&self) -> bool {
        crate::bn254::G2::is_identity(self)
    }
}

/// Generic 4-bit-window scalar multiplication over the trait; the
/// fallback for single points and oversized scalars.
pub fn mul_point<G: CurveGroup>(point: &G, scalar: &BigUint) -> G {
    if scalar.is_zero() || point.is_identity() {
        return G::identity();
    }
    let mut table = [G::identity(); 16];
    for i in 1..16 {
        table[i] = table[i - 1].add(point);
    }
    let windows = scalar.bits().div_ceil(4);
    let mut acc = G::identity();
    for w in (0..windows).rev() {
        if !acc.is_identity() {
            acc = acc.double().double().double().double();
        }
        let nibble = nibble_at(scalar, w);
        if nibble != 0 {
            acc = acc.add(&table[nibble]);
        }
    }
    acc
}

#[inline]
fn nibble_at(scalar: &BigUint, window: usize) -> usize {
    let base = window * 4;
    scalar.bit(base) as usize
        | (scalar.bit(base + 1) as usize) << 1
        | (scalar.bit(base + 2) as usize) << 2
        | (scalar.bit(base + 3) as usize) << 3
}

/// Extracts the `c`-bit digit of `scalar` starting at bit `base`.
#[inline]
fn digit_at(scalar: &BigUint, base: usize, c: usize) -> usize {
    let mut v = 0usize;
    for b in (0..c).rev() {
        v = (v << 1) | scalar.bit(base + b) as usize;
    }
    v
}

/// Computes `Σ scalarsᵢ · pointsᵢ`, dispatching on problem size.
///
/// # Panics
///
/// Panics when `points.len() != scalars.len()`.
pub fn msm<G: CurveGroup>(points: &[G], scalars: &[&BigUint]) -> G {
    assert_eq!(
        points.len(),
        scalars.len(),
        "msm: points/scalars length mismatch"
    );
    match points.len() {
        0 => G::identity(),
        1 => mul_point(&points[0], scalars[0]),
        // Straus costs ~75 additions per point (15 table + ~60 window);
        // Pippenger's running-sum merge costs 2·2^c additions per window
        // on top of the bucket pass, which only amortises once n reaches
        // the mid-hundreds. Measured crossover on this host: ~160.
        n if n < 160 => msm_straus(points, scalars),
        _ => msm_pippenger(points, scalars),
    }
}

/// Straus: per-point 4-bit tables, one shared doubling chain.
fn msm_straus<G: CurveGroup>(points: &[G], scalars: &[&BigUint]) -> G {
    let tables: Vec<[G; 16]> = points
        .iter()
        .map(|p| {
            let mut t = [G::identity(); 16];
            for i in 1..16 {
                t[i] = t[i - 1].add(p);
            }
            t
        })
        .collect();
    let max_bits = scalars.iter().map(|s| s.bits()).max().unwrap_or(0);
    if max_bits == 0 {
        return G::identity();
    }
    let windows = max_bits.div_ceil(4);
    let mut acc = G::identity();
    for w in (0..windows).rev() {
        if !acc.is_identity() {
            acc = acc.double().double().double().double();
        }
        for (i, s) in scalars.iter().enumerate() {
            let nibble = nibble_at(s, w);
            if nibble != 0 {
                acc = acc.add(&tables[i][nibble]);
            }
        }
    }
    acc
}

/// Pippenger bucket method with a size-adaptive window.
fn msm_pippenger<G: CurveGroup>(points: &[G], scalars: &[&BigUint]) -> G {
    let n = points.len();
    let max_bits = scalars.iter().map(|s| s.bits()).max().unwrap_or(0);
    if max_bits == 0 {
        return G::identity();
    }
    // Pick the window size minimising the addition count directly:
    // windows(c) passes, each with n bucket insertions plus 2·(2^c − 1)
    // running-sum merges.
    let c = (4..=16)
        .min_by_key(|&c| {
            let windows = max_bits.div_ceil(c);
            windows * (n + (1 << (c + 1)))
        })
        .unwrap_or(4);
    let windows = max_bits.div_ceil(c);
    let mut acc = G::identity();
    let mut buckets: Vec<G> = vec![G::identity(); (1 << c) - 1];
    for w in (0..windows).rev() {
        if !acc.is_identity() {
            for _ in 0..c {
                acc = acc.double();
            }
        }
        for b in buckets.iter_mut() {
            *b = G::identity();
        }
        for (p, s) in points.iter().zip(scalars.iter()) {
            let d = digit_at(s, w * c, c);
            if d != 0 {
                buckets[d - 1] = buckets[d - 1].add(p);
            }
        }
        // Running-sum aggregation: Σ d·bucket_d with 2·(2^c−1) additions.
        let mut running = G::identity();
        let mut window_sum = G::identity();
        for b in buckets.iter().rev() {
            running = running.add(b);
            window_sum = window_sum.add(&running);
        }
        acc = acc.add(&window_sum);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn254::{Fr, G1, G2};
    use crate::ed25519::{Point, Scalar};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x357a)
    }

    fn naive<G: CurveGroup>(points: &[G], scalars: &[&BigUint]) -> G {
        let mut acc = G::identity();
        for (p, s) in points.iter().zip(scalars.iter()) {
            acc = acc.add(&mul_point(p, s));
        }
        acc
    }

    #[test]
    fn msm_matches_naive_ed25519() {
        let mut r = rng();
        for n in [0usize, 1, 2, 5, 9] {
            let scalars: Vec<Scalar> = (0..n).map(|_| Scalar::random(&mut r)).collect();
            let points: Vec<Point> =
                (0..n).map(|_| Point::mul_base(&Scalar::random(&mut r))).collect();
            let refs: Vec<&BigUint> = scalars.iter().map(|s| s.to_biguint()).collect();
            assert_eq!(msm(&points, &refs), naive(&points, &refs), "n={n}");
        }
    }

    #[test]
    fn msm_matches_naive_g1_both_strategies() {
        let mut r = rng();
        let n = 40;
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
        let points: Vec<G1> = (0..n).map(|_| G1::mul_generator(&Fr::random(&mut r))).collect();
        let refs: Vec<&BigUint> = scalars.iter().map(|s| s.to_biguint()).collect();
        let expected = naive(&points, &refs);
        // Exercise both kernels regardless of where the dispatch cutoff
        // sits.
        assert_eq!(msm_straus(&points, &refs), expected);
        assert_eq!(msm_pippenger(&points, &refs), expected);
        assert_eq!(msm(&points, &refs), expected);
    }

    #[test]
    fn msm_matches_naive_g2() {
        let mut r = rng();
        let n = 4;
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
        let points: Vec<G2> = (0..n).map(|_| G2::mul_generator(&Fr::random(&mut r))).collect();
        let refs: Vec<&BigUint> = scalars.iter().map(|s| s.to_biguint()).collect();
        assert_eq!(msm(&points, &refs), naive(&points, &refs));
    }

    #[test]
    fn msm_handles_zero_scalars_and_identity_points() {
        let zero = BigUint::zero();
        let one = BigUint::one();
        let points = [Point::base(), Point::identity(), Point::base()];
        let scalars = [&zero, &one, &one];
        assert_eq!(msm(&points, &scalars[..]), Point::base());
    }

    #[test]
    fn mul_point_matches_inherent() {
        let mut r = rng();
        for _ in 0..5 {
            let s = Scalar::random(&mut r);
            let p = Point::mul_base(&Scalar::random(&mut r));
            assert_eq!(mul_point(&p, s.to_biguint()), p.mul(&s));
        }
    }
}
