//! Chinese-remainder reconstruction and CRT-accelerated RSA
//! exponentiation (the dealer-side optimization: whoever knows the prime
//! factorization can exponentiate ~4× faster).

use crate::{mod_inverse, BigUint, Montgomery};

/// Combines residues `x ≡ r_i (mod m_i)` for pairwise-coprime moduli into
/// the unique `x mod Π m_i`.
///
/// # Errors
///
/// Returns `None` when fewer than one pair is given or moduli are not
/// pairwise coprime (an inverse fails to exist).
pub fn crt_combine(residues: &[(BigUint, BigUint)]) -> Option<BigUint> {
    let mut iter = residues.iter();
    let (first_r, first_m) = iter.next()?;
    let mut x = first_r.rem(first_m);
    let mut modulus = first_m.clone();
    for (r, m) in iter {
        // Solve x' ≡ x (mod modulus), x' ≡ r (mod m):
        // x' = x + modulus·k with k ≡ (r − x)·modulus⁻¹ (mod m).
        let inv = mod_inverse(&modulus, m)?;
        let x_mod_m = x.rem(m);
        let r_mod_m = r.rem(m);
        let diff = if r_mod_m >= x_mod_m {
            &r_mod_m - &x_mod_m
        } else {
            &(&r_mod_m + m) - &x_mod_m
        };
        let k = (&diff * &inv).rem(m);
        x = &x + &(&modulus * &k);
        modulus = &modulus * m;
    }
    Some(x.rem(&modulus))
}

/// RSA exponentiation with the CRT speedup: computes `base^d mod pq`
/// from the factorization, using half-size exponentiations mod `p` and
/// `q` plus Garner recombination.
///
/// # Panics
///
/// Panics when `p` or `q` is even (Montgomery precondition) — callers
/// pass primes.
pub fn rsa_crt_pow(base: &BigUint, d: &BigUint, p: &BigUint, q: &BigUint) -> BigUint {
    let one = BigUint::one();
    let d_p = d.rem(&(p - &one));
    let d_q = d.rem(&(q - &one));
    let m_p = Montgomery::new(p.clone()).pow(&base.rem(p), &d_p);
    let m_q = Montgomery::new(q.clone()).pow(&base.rem(q), &d_q);
    crt_combine(&[(m_p, p.clone()), (m_q, q.clone())])
        .expect("distinct primes are coprime")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xc47)
    }

    #[test]
    fn combine_small_known() {
        // x ≡ 2 mod 3, x ≡ 3 mod 5, x ≡ 2 mod 7 → x = 23 (Sunzi's classic).
        let x = crt_combine(&[
            (BigUint::from_u64(2), BigUint::from_u64(3)),
            (BigUint::from_u64(3), BigUint::from_u64(5)),
            (BigUint::from_u64(2), BigUint::from_u64(7)),
        ])
        .unwrap();
        assert_eq!(x, BigUint::from_u64(23));
    }

    #[test]
    fn combine_roundtrip_random() {
        let mut r = rng();
        let p = crate::generate_prime(96, &mut r);
        let q = crate::generate_prime(96, &mut r);
        let n = &p * &q;
        for _ in 0..10 {
            let x = BigUint::random_below(&mut r, &n);
            let back = crt_combine(&[(x.rem(&p), p.clone()), (x.rem(&q), q.clone())]).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn combine_rejects_non_coprime() {
        assert!(crt_combine(&[
            (BigUint::from_u64(1), BigUint::from_u64(6)),
            (BigUint::from_u64(2), BigUint::from_u64(9)),
        ])
        .is_none());
        assert!(crt_combine(&[]).is_none());
    }

    #[test]
    fn rsa_crt_matches_direct() {
        let mut r = rng();
        let p = crate::generate_safe_prime(96, &mut r);
        let q = crate::generate_safe_prime(96, &mut r);
        let n = &p * &q;
        let e = BigUint::from_u64(65537);
        let one = BigUint::one();
        let phi = &(&p - &one) * &(&q - &one);
        let d = mod_inverse(&e, &phi).expect("e coprime to phi");
        let ctx = Montgomery::new(n.clone());
        for _ in 0..5 {
            let m = BigUint::random_below(&mut r, &n);
            let direct = ctx.pow(&m, &d);
            let fast = rsa_crt_pow(&m, &d, &p, &q);
            assert_eq!(direct, fast);
            // And the signature verifies: (m^d)^e == m.
            assert_eq!(ctx.pow(&fast, &e), m);
        }
    }
}
