//! Montgomery modular arithmetic over arbitrary odd moduli.
//!
//! Used for every hot modular-exponentiation path: RSA (SH00 signing and
//! verification), prime testing, and the dynamically-sized scalar fields.

use crate::BigUint;
use std::cell::RefCell;

/// The thread-local window table, wrapped so thread exit volatile-wipes
/// whatever powers of the last base are still sitting in it — `pow` is
/// on the RSA signing path, where base and intermediates are derived
/// from key material that must not linger in freed heap pages.
struct PowScratch(Vec<BigUint>);

impl Drop for PowScratch {
    fn drop(&mut self) {
        for entry in &mut self.0 {
            entry.wipe();
        }
    }
}

thread_local! {
    /// Scratch table reused by every [`Montgomery::pow`] call on this
    /// thread, so the hot exponentiation path does not allocate a fresh
    /// window-table `Vec` per call. Wiped on thread exit (see
    /// [`PowScratch`]).
    static POW_SCRATCH: RefCell<PowScratch> = const { RefCell::new(PowScratch(Vec::new())) };
}

/// A fixed-base exponentiation table for one [`Montgomery`] context.
///
/// `windows[w][j]` holds `base^(j·16ʷ)` in Montgomery form, so
/// [`Montgomery::pow_precomputed`] needs only ~`bits/4` multiplications
/// and **zero squarings** per exponentiation. Build it once per
/// long-lived base (RSA verification bases, group elements of a key).
#[derive(Clone, Debug)]
pub struct MontTable {
    /// Plain (non-Montgomery) base, for the oversized-exponent fallback.
    base: BigUint,
    /// `windows[w][j] = base^(j·16ʷ)·R mod n`, `j ∈ 1..16`.
    windows: Vec<[BigUint; 15]>,
}

impl MontTable {
    /// Number of exponent bits the table covers.
    pub fn max_bits(&self) -> usize {
        self.windows.len() * 4
    }

    /// The plain-form base this table was built for.
    pub fn base(&self) -> &BigUint {
        &self.base
    }
}

/// A reusable Montgomery context for a fixed odd modulus.
///
/// # Examples
///
/// ```
/// use theta_math::{BigUint, Montgomery};
/// let n = BigUint::from_dec("1000000007").unwrap();
/// let ctx = Montgomery::new(n.clone());
/// let r = ctx.pow(&BigUint::from_u64(2), &BigUint::from_u64(100));
/// assert_eq!(r, BigUint::from_u64(2).pow_mod(&BigUint::from_u64(100), &n));
/// ```
#[derive(Clone, Debug)]
pub struct Montgomery {
    modulus: BigUint,
    /// Number of 64-bit limbs in the modulus.
    limbs: usize,
    /// `-modulus^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod modulus` where `R = 2^(64·limbs)`.
    r2: BigUint,
    /// `R mod modulus` (the Montgomery form of 1).
    r1: BigUint,
}

impl Montgomery {
    /// Creates a context for an odd `modulus > 1`.
    ///
    /// # Panics
    ///
    /// Panics when the modulus is even or ≤ 1.
    pub fn new(modulus: BigUint) -> Self {
        assert!(modulus.is_odd(), "Montgomery requires an odd modulus");
        assert!(!modulus.is_one(), "modulus must exceed 1");
        let limbs = modulus.limbs().len();
        let n0 = modulus.limb(0);
        // Newton iteration for the inverse of n0 mod 2^64.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        let r1 = (BigUint::one() << (64 * limbs)).rem(&modulus);
        let r2 = (&r1 * &r1).rem(&modulus);
        Montgomery {
            modulus,
            limbs,
            n_prime,
            r2,
            r1,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// The Montgomery form of 1 (`R mod n`).
    pub fn one_mont(&self) -> &BigUint {
        &self.r1
    }

    /// Montgomery reduction of a double-width value: returns `t·R^{-1} mod n`.
    fn redc(&self, t: &BigUint) -> BigUint {
        let n = self.limbs;
        let mut a: Vec<u64> = t.limbs().to_vec();
        a.resize(2 * n + 1, 0);
        let m_limbs = self.modulus.limbs();
        for i in 0..n {
            let u = a[i].wrapping_mul(self.n_prime);
            // a += u * m << (64*i)
            let mut carry = 0u128;
            for (j, &mj) in m_limbs.iter().enumerate() {
                let cur = a[i + j] as u128 + u as u128 * mj as u128 + carry;
                a[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + m_limbs.len();
            while carry != 0 {
                let cur = a[k] as u128 + carry;
                a[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let out = BigUint::from_limbs(a[n..].to_vec());
        if out >= self.modulus {
            &out - &self.modulus
        } else {
            out
        }
    }

    /// Converts `x` into Montgomery form (`x·R mod n`).
    pub fn to_mont(&self, x: &BigUint) -> BigUint {
        let x = if x >= &self.modulus { x.rem(&self.modulus) } else { x.clone() };
        self.redc(&(&x * &self.r2))
    }

    /// Converts a Montgomery-form value back to the plain representative.
    pub fn from_mont(&self, x: &BigUint) -> BigUint {
        self.redc(x)
    }

    /// Multiplies two Montgomery-form values.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.redc(&(a * b))
    }

    /// Squares a Montgomery-form value.
    pub fn square(&self, a: &BigUint) -> BigUint {
        self.redc(&(a * a))
    }

    /// Computes `base^exp mod n` with plain (non-Montgomery) inputs/outputs.
    ///
    /// Uses a 4-bit sliding window over the eight *odd* powers
    /// `base¹, base³, …, base¹⁵`, which halves the table size of the
    /// old fixed-window code, and keeps the table in a thread-local
    /// scratch `Vec` so no per-call heap allocation is made for it.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let base_m = self.to_mont(base);
        POW_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            let table = &mut scratch.0;
            table.clear();
            let b2 = self.square(&base_m);
            table.push(base_m);
            for i in 1..8 {
                let next = self.mul(&table[i - 1], &b2);
                table.push(next);
            }
            let acc = self.pow_windows(table, exp);
            self.from_mont(&acc)
        })
    }

    /// Sliding-window core over a table of odd powers in Montgomery
    /// form (`table[k] = base^(2k+1)·R`). Returns the Montgomery-form
    /// result; `exp` must be nonzero.
    fn pow_windows(&self, table: &[BigUint], exp: &BigUint) -> BigUint {
        let mut acc: Option<BigUint> = None;
        let mut i = exp.bits() as isize - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                if let Some(a) = acc.as_mut() {
                    *a = self.square(a);
                }
                i -= 1;
                continue;
            }
            // Longest window of ≤ 4 bits ending in a set bit.
            let mut j = (i - 3).max(0);
            while !exp.bit(j as usize) {
                j += 1;
            }
            let width = (i - j + 1) as usize;
            let mut val = 0usize;
            for k in (j..=i).rev() {
                val = (val << 1) | exp.bit(k as usize) as usize;
            }
            match acc.as_mut() {
                Some(a) => {
                    for _ in 0..width {
                        *a = self.square(a);
                    }
                    *a = self.mul(a, &table[val >> 1]);
                }
                None => acc = Some(table[val >> 1].clone()),
            }
            i = j - 1;
        }
        acc.expect("nonzero exponent produced no windows")
    }

    /// Builds a fixed-base table covering exponents up to `max_bits`
    /// bits, for use with [`Montgomery::pow_precomputed`].
    pub fn precompute_base(&self, base: &BigUint, max_bits: usize) -> MontTable {
        let base_m = self.to_mont(base);
        let nwin = max_bits.div_ceil(4);
        let mut windows = Vec::with_capacity(nwin);
        let mut cur = base_m; // base^(16ʷ) in Montgomery form
        for _ in 0..nwin {
            let mut row: Vec<BigUint> = Vec::with_capacity(15);
            row.push(cur.clone());
            for j in 1..15 {
                let next = self.mul(&row[j - 1], &cur);
                row.push(next);
            }
            // base^(16^{w+1}) = (base^(8·16ʷ))², and row[7] = base^(8·16ʷ).
            cur = self.square(&row[7]);
            let row: [BigUint; 15] = row.try_into().expect("15 entries");
            windows.push(row);
        }
        MontTable { base: base.clone(), windows }
    }

    /// `base^exp mod n` using a [`MontTable`]: one table lookup and
    /// multiplication per nonzero exponent nibble, no squarings.
    ///
    /// Exponents wider than the table fall back to [`Montgomery::pow`].
    pub fn pow_precomputed(&self, table: &MontTable, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        if exp.bits() > table.max_bits() {
            return self.pow(&table.base, exp);
        }
        let mut acc: Option<BigUint> = None;
        for (w, row) in table.windows.iter().enumerate() {
            let base_bit = w * 4;
            let nibble = exp.bit(base_bit) as usize
                | (exp.bit(base_bit + 1) as usize) << 1
                | (exp.bit(base_bit + 2) as usize) << 2
                | (exp.bit(base_bit + 3) as usize) << 3;
            if nibble != 0 {
                acc = Some(match acc {
                    Some(a) => self.mul(&a, &row[nibble - 1]),
                    None => row[nibble - 1].clone(),
                });
            }
        }
        self.from_mont(&acc.expect("nonzero exponent"))
    }

    /// Computes `Π basesᵢ^expsᵢ mod n` (plain inputs/outputs) with
    /// Straus interleaving: the squaring chain is shared across all
    /// bases, so k-term products cost one exponentiation's squarings
    /// plus one multiplication per nonzero nibble.
    pub fn multi_exp(&self, bases: &[BigUint], exps: &[&BigUint]) -> BigUint {
        assert_eq!(
            bases.len(),
            exps.len(),
            "multi_exp: bases/exps length mismatch"
        );
        let max_bits = exps.iter().map(|e| e.bits()).max().unwrap_or(0);
        if max_bits == 0 {
            return BigUint::one().rem(&self.modulus);
        }
        // tables[i][j] = basesᵢ^(j+1) in Montgomery form.
        let tables: Vec<Vec<BigUint>> = bases
            .iter()
            .map(|b| {
                let bm = self.to_mont(b);
                let mut t = Vec::with_capacity(15);
                t.push(bm.clone());
                for j in 1..15 {
                    let next = self.mul(&t[j - 1], &bm);
                    t.push(next);
                }
                t
            })
            .collect();
        let windows = max_bits.div_ceil(4);
        let mut acc: Option<BigUint> = None;
        for w in (0..windows).rev() {
            if let Some(a) = acc.as_mut() {
                for _ in 0..4 {
                    *a = self.square(a);
                }
            }
            for (i, e) in exps.iter().enumerate() {
                let base_bit = w * 4;
                let nibble = e.bit(base_bit) as usize
                    | (e.bit(base_bit + 1) as usize) << 1
                    | (e.bit(base_bit + 2) as usize) << 2
                    | (e.bit(base_bit + 3) as usize) << 3;
                if nibble != 0 {
                    acc = Some(match acc {
                        Some(a) => self.mul(&a, &tables[i][nibble - 1]),
                        None => tables[i][nibble - 1].clone(),
                    });
                }
            }
        }
        match acc {
            Some(a) => self.from_mont(&a),
            None => BigUint::one().rem(&self.modulus),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn roundtrip_mont_form() {
        let mut r = rng();
        let m = {
            let mut v = BigUint::random_bits(&mut r, 256);
            if v.is_even() {
                v = &v + &BigUint::one();
            }
            v
        };
        let ctx = Montgomery::new(m.clone());
        for _ in 0..50 {
            let x = BigUint::random_below(&mut r, &m);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mul_matches_naive() {
        let mut r = rng();
        let m = BigUint::from_dec("340282366920938463463374607431768211507").unwrap(); // odd
        let ctx = Montgomery::new(m.clone());
        for _ in 0..100 {
            let a = BigUint::random_below(&mut r, &m);
            let b = BigUint::random_below(&mut r, &m);
            let expect = (&a * &b).rem(&m);
            let got = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn pow_matches_naive_small() {
        let m = BigUint::from_u64(1_000_003);
        let ctx = Montgomery::new(m.clone());
        for base in [2u64, 3, 12345, 999_999] {
            for exp in [0u64, 1, 2, 17, 65537] {
                let expect = naive_pow(base, exp, 1_000_003);
                let got = ctx.pow(&BigUint::from_u64(base), &BigUint::from_u64(exp));
                assert_eq!(got.to_u64().unwrap(), expect, "base={base} exp={exp}");
            }
        }
    }

    fn naive_pow(mut b: u64, mut e: u64, m: u64) -> u64 {
        let mut acc = 1u128;
        let mut bb = b as u128 % m as u128;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * bb % m as u128;
            }
            bb = bb * bb % m as u128;
            e >>= 1;
        }
        let _ = &mut b;
        acc as u64
    }

    #[test]
    fn pow_fermat_large_prime() {
        // 2^255 - 19 is prime; check Fermat's little theorem.
        let p = (BigUint::one() << 255) - BigUint::from_u64(19);
        let ctx = Montgomery::new(p.clone());
        let a = BigUint::from_dec("123456789123456789123456789").unwrap();
        let r = ctx.pow(&a, &(&p - &BigUint::one()));
        assert!(r.is_one());
    }

    #[test]
    fn pow_zero_exponent() {
        let m = BigUint::from_u64(97);
        let ctx = Montgomery::new(m);
        assert!(ctx.pow(&BigUint::from_u64(5), &BigUint::zero()).is_one());
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_panics() {
        let _ = Montgomery::new(BigUint::from_u64(100));
    }

    #[test]
    fn precomputed_pow_matches_pow() {
        let mut r = rng();
        let m = {
            let mut v = BigUint::random_bits(&mut r, 512);
            if v.is_even() {
                v = &v + &BigUint::one();
            }
            v
        };
        let ctx = Montgomery::new(m.clone());
        let base = BigUint::random_below(&mut r, &m);
        let table = ctx.precompute_base(&base, 512);
        for bits in [0usize, 1, 17, 200, 512] {
            let exp = if bits == 0 {
                BigUint::zero()
            } else {
                BigUint::random_bits(&mut r, bits)
            };
            assert_eq!(
                ctx.pow_precomputed(&table, &exp),
                ctx.pow(&base, &exp),
                "bits={bits}"
            );
        }
        // Oversized exponent falls back to the generic path.
        let wide = BigUint::random_bits(&mut r, 600);
        assert_eq!(ctx.pow_precomputed(&table, &wide), ctx.pow(&base, &wide));
    }

    #[test]
    fn multi_exp_matches_product_of_pows() {
        let mut r = rng();
        let m = {
            let mut v = BigUint::random_bits(&mut r, 256);
            if v.is_even() {
                v = &v + &BigUint::one();
            }
            v
        };
        let ctx = Montgomery::new(m.clone());
        for k in [0usize, 1, 3, 6] {
            let bases: Vec<BigUint> =
                (0..k).map(|_| BigUint::random_below(&mut r, &m)).collect();
            let exps_owned: Vec<BigUint> =
                (0..k).map(|_| BigUint::random_bits(&mut r, 256)).collect();
            let exps: Vec<&BigUint> = exps_owned.iter().collect();
            let mut expect = BigUint::one().rem(&m);
            for (b, e) in bases.iter().zip(exps_owned.iter()) {
                expect = (&expect * &ctx.pow(b, e)).rem(&m);
            }
            assert_eq!(ctx.multi_exp(&bases, &exps), expect, "k={k}");
        }
    }

    #[test]
    fn multi_exp_zero_exponents() {
        let ctx = Montgomery::new(BigUint::from_u64(97));
        let bases = vec![BigUint::from_u64(5), BigUint::from_u64(7)];
        let zero = BigUint::zero();
        let exps = vec![&zero, &zero];
        assert!(ctx.multi_exp(&bases, &exps).is_one());
    }
}
