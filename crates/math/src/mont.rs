//! Montgomery modular arithmetic over arbitrary odd moduli.
//!
//! Used for every hot modular-exponentiation path: RSA (SH00 signing and
//! verification), prime testing, and the dynamically-sized scalar fields.

use crate::BigUint;

/// A reusable Montgomery context for a fixed odd modulus.
///
/// # Examples
///
/// ```
/// use theta_math::{BigUint, Montgomery};
/// let n = BigUint::from_dec("1000000007").unwrap();
/// let ctx = Montgomery::new(n.clone());
/// let r = ctx.pow(&BigUint::from_u64(2), &BigUint::from_u64(100));
/// assert_eq!(r, BigUint::from_u64(2).pow_mod(&BigUint::from_u64(100), &n));
/// ```
#[derive(Clone, Debug)]
pub struct Montgomery {
    modulus: BigUint,
    /// Number of 64-bit limbs in the modulus.
    limbs: usize,
    /// `-modulus^{-1} mod 2^64`.
    n_prime: u64,
    /// `R^2 mod modulus` where `R = 2^(64·limbs)`.
    r2: BigUint,
    /// `R mod modulus` (the Montgomery form of 1).
    r1: BigUint,
}

impl Montgomery {
    /// Creates a context for an odd `modulus > 1`.
    ///
    /// # Panics
    ///
    /// Panics when the modulus is even or ≤ 1.
    pub fn new(modulus: BigUint) -> Self {
        assert!(modulus.is_odd(), "Montgomery requires an odd modulus");
        assert!(!modulus.is_one(), "modulus must exceed 1");
        let limbs = modulus.limbs().len();
        let n0 = modulus.limb(0);
        // Newton iteration for the inverse of n0 mod 2^64.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        let r1 = (BigUint::one() << (64 * limbs)).rem(&modulus);
        let r2 = (&r1 * &r1).rem(&modulus);
        Montgomery {
            modulus,
            limbs,
            n_prime,
            r2,
            r1,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Montgomery reduction of a double-width value: returns `t·R^{-1} mod n`.
    fn redc(&self, t: &BigUint) -> BigUint {
        let n = self.limbs;
        let mut a: Vec<u64> = t.limbs().to_vec();
        a.resize(2 * n + 1, 0);
        let m_limbs = self.modulus.limbs();
        for i in 0..n {
            let u = a[i].wrapping_mul(self.n_prime);
            // a += u * m << (64*i)
            let mut carry = 0u128;
            for (j, &mj) in m_limbs.iter().enumerate() {
                let cur = a[i + j] as u128 + u as u128 * mj as u128 + carry;
                a[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + m_limbs.len();
            while carry != 0 {
                let cur = a[k] as u128 + carry;
                a[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let out = BigUint::from_limbs(a[n..].to_vec());
        if out >= self.modulus {
            &out - &self.modulus
        } else {
            out
        }
    }

    /// Converts `x` into Montgomery form (`x·R mod n`).
    pub fn to_mont(&self, x: &BigUint) -> BigUint {
        let x = if x >= &self.modulus { x.rem(&self.modulus) } else { x.clone() };
        self.redc(&(&x * &self.r2))
    }

    /// Converts a Montgomery-form value back to the plain representative.
    pub fn from_mont(&self, x: &BigUint) -> BigUint {
        self.redc(x)
    }

    /// Multiplies two Montgomery-form values.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.redc(&(a * b))
    }

    /// Squares a Montgomery-form value.
    pub fn square(&self, a: &BigUint) -> BigUint {
        self.redc(&(a * a))
    }

    /// Computes `base^exp mod n` with plain (non-Montgomery) inputs/outputs.
    ///
    /// Uses a fixed 4-bit window.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let base_m = self.to_mont(base);
        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.clone());
        for i in 1..16 {
            table.push(self.mul(&table[i - 1], &base_m));
        }
        let bits = exp.bits();
        let mut acc = self.r1.clone();
        let mut started = false;
        let mut i = bits;
        while i > 0 {
            let take = if i % 4 == 0 { 4 } else { i % 4 };
            let mut window = 0usize;
            for _ in 0..take {
                i -= 1;
                window = (window << 1) | exp.bit(i) as usize;
            }
            if started {
                for _ in 0..take {
                    acc = self.square(&acc);
                }
            }
            if window != 0 {
                acc = self.mul(&acc, &table[window]);
                started = true;
            } else if started {
                // acc already squared; nothing to multiply.
            } else {
                // Leading zero window: still nothing accumulated.
            }
        }
        if !started {
            // exp consisted solely of zero bits, impossible since exp != 0.
            unreachable!("nonzero exponent produced no windows");
        }
        self.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn roundtrip_mont_form() {
        let mut r = rng();
        let m = {
            let mut v = BigUint::random_bits(&mut r, 256);
            if v.is_even() {
                v = &v + &BigUint::one();
            }
            v
        };
        let ctx = Montgomery::new(m.clone());
        for _ in 0..50 {
            let x = BigUint::random_below(&mut r, &m);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mul_matches_naive() {
        let mut r = rng();
        let m = BigUint::from_dec("340282366920938463463374607431768211507").unwrap(); // odd
        let ctx = Montgomery::new(m.clone());
        for _ in 0..100 {
            let a = BigUint::random_below(&mut r, &m);
            let b = BigUint::random_below(&mut r, &m);
            let expect = (&a * &b).rem(&m);
            let got = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn pow_matches_naive_small() {
        let m = BigUint::from_u64(1_000_003);
        let ctx = Montgomery::new(m.clone());
        for base in [2u64, 3, 12345, 999_999] {
            for exp in [0u64, 1, 2, 17, 65537] {
                let expect = naive_pow(base, exp, 1_000_003);
                let got = ctx.pow(&BigUint::from_u64(base), &BigUint::from_u64(exp));
                assert_eq!(got.to_u64().unwrap(), expect, "base={base} exp={exp}");
            }
        }
    }

    fn naive_pow(mut b: u64, mut e: u64, m: u64) -> u64 {
        let mut acc = 1u128;
        let mut bb = b as u128 % m as u128;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * bb % m as u128;
            }
            bb = bb * bb % m as u128;
            e >>= 1;
        }
        let _ = &mut b;
        acc as u64
    }

    #[test]
    fn pow_fermat_large_prime() {
        // 2^255 - 19 is prime; check Fermat's little theorem.
        let p = (BigUint::one() << 255) - BigUint::from_u64(19);
        let ctx = Montgomery::new(p.clone());
        let a = BigUint::from_dec("123456789123456789123456789").unwrap();
        let r = ctx.pow(&a, &(&p - &BigUint::one()));
        assert!(r.is_one());
    }

    #[test]
    fn pow_zero_exponent() {
        let m = BigUint::from_u64(97);
        let ctx = Montgomery::new(m);
        assert!(ctx.pow(&BigUint::from_u64(5), &BigUint::zero()).is_one());
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_panics() {
        let _ = Montgomery::new(BigUint::from_u64(100));
    }
}
