//! Domain-separated hashing and key-derivation helpers.
//!
//! Every use of a random oracle in the schemes crate (Fiat–Shamir
//! challenges, hash-to-group candidates, coin values, symmetric keys)
//! goes through [`DomainHasher`] or [`expand`], so domains can never
//! collide across schemes.

use crate::sha2::{Sha256, Sha512};

/// A SHA-512 hasher with length-prefixed, domain-separated input framing.
///
/// Each appended item is prefixed by its 8-byte little-endian length, so
/// concatenation ambiguities are impossible.
///
/// # Examples
///
/// ```
/// use theta_primitives::DomainHasher;
/// let a = DomainHasher::new("example/v1").chain(b"ab").chain(b"c").finish();
/// let b = DomainHasher::new("example/v1").chain(b"a").chain(b"bc").finish();
/// assert_ne!(a, b); // framing distinguishes item boundaries
/// ```
#[derive(Clone, Debug)]
pub struct DomainHasher {
    inner: Sha512,
}

impl DomainHasher {
    /// Starts a hash under `domain` (itself length-prefixed).
    pub fn new(domain: &str) -> DomainHasher {
        let mut inner = Sha512::new();
        inner.update(&(domain.len() as u64).to_le_bytes());
        inner.update(domain.as_bytes());
        DomainHasher { inner }
    }

    /// Appends one length-prefixed item.
    pub fn chain(mut self, item: &[u8]) -> DomainHasher {
        self.inner.update(&(item.len() as u64).to_le_bytes());
        self.inner.update(item);
        self
    }

    /// Appends one length-prefixed item in place.
    pub fn update(&mut self, item: &[u8]) {
        self.inner.update(&(item.len() as u64).to_le_bytes());
        self.inner.update(item);
    }

    /// Returns the 64-byte digest.
    pub fn finish(self) -> [u8; 64] {
        self.inner.finalize()
    }

    /// Returns the first 32 bytes of the digest.
    pub fn finish32(self) -> [u8; 32] {
        let full = self.inner.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&full[..32]);
        out
    }
}

/// Expands `seed` into `len` output bytes with counter-mode SHA-256
/// (an HKDF-expand-like XOF; enough for key derivation from uniform seeds).
pub fn expand(domain: &str, seed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u32;
    while out.len() < len {
        let mut h = Sha256::new();
        h.update(&(domain.len() as u64).to_le_bytes());
        h.update(domain.as_bytes());
        h.update(&(seed.len() as u64).to_le_bytes());
        h.update(seed);
        h.update(&counter.to_be_bytes());
        let block = h.finalize();
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&block[..take]);
        counter += 1;
    }
    out
}

/// HMAC-SHA256 (FIPS 198-1 / RFC 2104).
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut block = [0u8; 64];
    if key.len() > 64 {
        block[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= block[i];
        opad[i] ^= block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-Extract (RFC 5869 §2.2): condenses input keying material `ikm`
/// under `salt` into a 32-byte pseudorandom key. Used by the transport
/// handshake as the chaining-key mixer: `ck' = extract(ck, dh_output)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand (RFC 5869 §2.3): stretches `prk` into `len` output bytes
/// bound to `info` (at most 255 × 32 bytes).
///
/// # Panics
///
/// Panics when `len > 255 * 32` (RFC 5869 bound).
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "hkdf-expand output too long");
    let mut out = Vec::with_capacity(len);
    let mut block: [u8; 32] = [0; 32];
    let mut counter = 1u8;
    while out.len() < len {
        let mut data = Vec::with_capacity(32 + info.len() + 1);
        if counter > 1 {
            data.extend_from_slice(&block);
        }
        data.extend_from_slice(info);
        data.push(counter);
        block = hmac_sha256(prk, &data);
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&block[..take]);
        counter += 1;
    }
    out
}

/// HKDF-Expand into a fixed 32-byte key (the transport's session-key
/// shape), avoiding a heap allocation on the handshake path.
pub fn hkdf_expand_key(prk: &[u8; 32], info: &[u8]) -> [u8; 32] {
    let mut data = Vec::with_capacity(info.len() + 1);
    data.extend_from_slice(info);
    data.push(1u8);
    hmac_sha256(prk, &data)
}

/// Lowercase hex encoding.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Hex decoding; `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_separation() {
        let a = DomainHasher::new("domain-a").chain(b"input").finish();
        let b = DomainHasher::new("domain-b").chain(b"input").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn framing_prevents_ambiguity() {
        let a = DomainHasher::new("d").chain(b"ab").chain(b"c").finish();
        let b = DomainHasher::new("d").chain(b"a").chain(b"bc").finish();
        let c = DomainHasher::new("d").chain(b"abc").finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn chain_matches_update() {
        let a = DomainHasher::new("d").chain(b"x").chain(b"y").finish();
        let mut h = DomainHasher::new("d");
        h.update(b"x");
        h.update(b"y");
        assert_eq!(a, h.finish());
    }

    #[test]
    fn finish32_is_prefix() {
        let h1 = DomainHasher::new("d").chain(b"data");
        let h2 = h1.clone();
        let full = h1.finish();
        let short = h2.finish32();
        assert_eq!(&full[..32], &short[..]);
    }

    #[test]
    fn expand_lengths() {
        for len in [0usize, 1, 31, 32, 33, 100] {
            let out = expand("kdf", b"seed", len);
            assert_eq!(out.len(), len);
        }
        // Prefix property: longer expansions extend shorter ones.
        let short = expand("kdf", b"seed", 16);
        let long = expand("kdf", b"seed", 64);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn expand_domain_and_seed_sensitivity() {
        assert_ne!(expand("a", b"s", 32), expand("b", b"s", 32));
        assert_ne!(expand("a", b"s", 32), expand("a", b"t", 32));
    }

    /// RFC 4231 test case 2 (short key, short data).
    #[test]
    fn hmac_sha256_rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 5869 A.1: basic HKDF-SHA256.
    #[test]
    fn hkdf_rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    /// RFC 5869 A.2: longer inputs, multi-block expand.
    #[test]
    fn hkdf_rfc5869_case2() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let prk = hkdf_extract(&salt, &ikm);
        let okm = hkdf_expand(&prk, &info, 82);
        assert_eq!(
            to_hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    #[test]
    fn hkdf_expand_key_matches_expand() {
        let prk = hkdf_extract(b"salt", b"ikm");
        let a = hkdf_expand_key(&prk, b"session");
        let b = hkdf_expand(&prk, b"session", 32);
        assert_eq!(a.to_vec(), b);
    }

    #[test]
    fn hex_roundtrip() {
        let data = vec![0x00, 0x01, 0xfe, 0xff];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
