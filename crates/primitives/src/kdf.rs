//! Domain-separated hashing and key-derivation helpers.
//!
//! Every use of a random oracle in the schemes crate (Fiat–Shamir
//! challenges, hash-to-group candidates, coin values, symmetric keys)
//! goes through [`DomainHasher`] or [`expand`], so domains can never
//! collide across schemes.

use crate::sha2::{Sha256, Sha512};

/// A SHA-512 hasher with length-prefixed, domain-separated input framing.
///
/// Each appended item is prefixed by its 8-byte little-endian length, so
/// concatenation ambiguities are impossible.
///
/// # Examples
///
/// ```
/// use theta_primitives::DomainHasher;
/// let a = DomainHasher::new("example/v1").chain(b"ab").chain(b"c").finish();
/// let b = DomainHasher::new("example/v1").chain(b"a").chain(b"bc").finish();
/// assert_ne!(a, b); // framing distinguishes item boundaries
/// ```
#[derive(Clone, Debug)]
pub struct DomainHasher {
    inner: Sha512,
}

impl DomainHasher {
    /// Starts a hash under `domain` (itself length-prefixed).
    pub fn new(domain: &str) -> DomainHasher {
        let mut inner = Sha512::new();
        inner.update(&(domain.len() as u64).to_le_bytes());
        inner.update(domain.as_bytes());
        DomainHasher { inner }
    }

    /// Appends one length-prefixed item.
    pub fn chain(mut self, item: &[u8]) -> DomainHasher {
        self.inner.update(&(item.len() as u64).to_le_bytes());
        self.inner.update(item);
        self
    }

    /// Appends one length-prefixed item in place.
    pub fn update(&mut self, item: &[u8]) {
        self.inner.update(&(item.len() as u64).to_le_bytes());
        self.inner.update(item);
    }

    /// Returns the 64-byte digest.
    pub fn finish(self) -> [u8; 64] {
        self.inner.finalize()
    }

    /// Returns the first 32 bytes of the digest.
    pub fn finish32(self) -> [u8; 32] {
        let full = self.inner.finalize();
        let mut out = [0u8; 32];
        out.copy_from_slice(&full[..32]);
        out
    }
}

/// Expands `seed` into `len` output bytes with counter-mode SHA-256
/// (an HKDF-expand-like XOF; enough for key derivation from uniform seeds).
pub fn expand(domain: &str, seed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u32;
    while out.len() < len {
        let mut h = Sha256::new();
        h.update(&(domain.len() as u64).to_le_bytes());
        h.update(domain.as_bytes());
        h.update(&(seed.len() as u64).to_le_bytes());
        h.update(seed);
        h.update(&counter.to_be_bytes());
        let block = h.finalize();
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&block[..take]);
        counter += 1;
    }
    out
}

/// Lowercase hex encoding.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Hex decoding; `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_separation() {
        let a = DomainHasher::new("domain-a").chain(b"input").finish();
        let b = DomainHasher::new("domain-b").chain(b"input").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn framing_prevents_ambiguity() {
        let a = DomainHasher::new("d").chain(b"ab").chain(b"c").finish();
        let b = DomainHasher::new("d").chain(b"a").chain(b"bc").finish();
        let c = DomainHasher::new("d").chain(b"abc").finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn chain_matches_update() {
        let a = DomainHasher::new("d").chain(b"x").chain(b"y").finish();
        let mut h = DomainHasher::new("d");
        h.update(b"x");
        h.update(b"y");
        assert_eq!(a, h.finish());
    }

    #[test]
    fn finish32_is_prefix() {
        let h1 = DomainHasher::new("d").chain(b"data");
        let h2 = h1.clone();
        let full = h1.finish();
        let short = h2.finish32();
        assert_eq!(&full[..32], &short[..]);
    }

    #[test]
    fn expand_lengths() {
        for len in [0usize, 1, 31, 32, 33, 100] {
            let out = expand("kdf", b"seed", len);
            assert_eq!(out.len(), len);
        }
        // Prefix property: longer expansions extend shorter ones.
        let short = expand("kdf", b"seed", 16);
        let long = expand("kdf", b"seed", 64);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn expand_domain_and_seed_sensitivity() {
        assert_ne!(expand("a", b"s", 32), expand("b", b"s", 32));
        assert_ne!(expand("a", b"s", 32), expand("a", b"t", 32));
    }

    #[test]
    fn hex_roundtrip() {
        let data = vec![0x00, 0x01, 0xfe, 0xff];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
