//! The Poly1305 one-time authenticator (RFC 8439), from scratch.
//!
//! Arithmetic is done over 2^130 − 5 using five 26-bit limbs with `u64`
//! accumulators — small enough to verify by hand, fast enough for the
//! hybrid payload path.

/// Computes the 16-byte Poly1305 tag of `msg` under the 32-byte one-time key.
pub fn poly1305(key: &[u8; 32], msg: &[u8]) -> [u8; 16] {
    // r with the RFC clamping; s is the final addend.
    let mut r_bytes = [0u8; 16];
    r_bytes.copy_from_slice(&key[..16]);
    r_bytes[3] &= 15;
    r_bytes[7] &= 15;
    r_bytes[11] &= 15;
    r_bytes[15] &= 15;
    r_bytes[4] &= 252;
    r_bytes[8] &= 252;
    r_bytes[12] &= 252;

    // r as five 26-bit limbs.
    let load32 = |b: &[u8]| -> u32 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) };
    let r0 = load32(&r_bytes[0..4]) & 0x3ffffff;
    let r1 = (load32(&r_bytes[3..7]) >> 2) & 0x3ffff03;
    let r2 = (load32(&r_bytes[6..10]) >> 4) & 0x3ffc0ff;
    let r3 = (load32(&r_bytes[9..13]) >> 6) & 0x3f03fff;
    let r4 = (load32(&r_bytes[12..16]) >> 8) & 0x00fffff;

    let s1 = r1 * 5;
    let s2 = r2 * 5;
    let s3 = r3 * 5;
    let s4 = r4 * 5;

    let mut h0 = 0u32;
    let mut h1 = 0u32;
    let mut h2 = 0u32;
    let mut h3 = 0u32;
    let mut h4 = 0u32;

    let mut chunks = msg.chunks_exact(16);
    let mut process = |block: &[u8], hibit: u32| {
        let mut padded = [0u8; 17];
        padded[..block.len()].copy_from_slice(block);
        // h += block (with the high bit appended)
        h0 = h0.wrapping_add(load32(&padded[0..4]) & 0x3ffffff);
        h1 = h1.wrapping_add((load32(&padded[3..7]) >> 2) & 0x3ffffff);
        h2 = h2.wrapping_add((load32(&padded[6..10]) >> 4) & 0x3ffffff);
        h3 = h3.wrapping_add((load32(&padded[9..13]) >> 6) & 0x3ffffff);
        h4 = h4.wrapping_add((load32(&padded[12..16]) >> 8) | hibit);

        // h *= r  (mod 2^130 − 5)
        let m = |a: u32, b: u32| a as u64 * b as u64;
        let d0 = m(h0, r0) + m(h1, s4) + m(h2, s3) + m(h3, s2) + m(h4, s1);
        let mut d1 = m(h0, r1) + m(h1, r0) + m(h2, s4) + m(h3, s3) + m(h4, s2);
        let mut d2 = m(h0, r2) + m(h1, r1) + m(h2, r0) + m(h3, s4) + m(h4, s3);
        let mut d3 = m(h0, r3) + m(h1, r2) + m(h2, r1) + m(h3, r0) + m(h4, s4);
        let mut d4 = m(h0, r4) + m(h1, r3) + m(h2, r2) + m(h3, r1) + m(h4, r0);

        let mut c = d0 >> 26;
        h0 = (d0 as u32) & 0x3ffffff;
        d1 += c;
        c = d1 >> 26;
        h1 = (d1 as u32) & 0x3ffffff;
        d2 += c;
        c = d2 >> 26;
        h2 = (d2 as u32) & 0x3ffffff;
        d3 += c;
        c = d3 >> 26;
        h3 = (d3 as u32) & 0x3ffffff;
        d4 += c;
        c = d4 >> 26;
        h4 = (d4 as u32) & 0x3ffffff;
        h0 = h0.wrapping_add((c as u32) * 5);
        let c2 = h0 >> 26;
        h0 &= 0x3ffffff;
        h1 = h1.wrapping_add(c2);
    };

    for block in &mut chunks {
        process(block, 1 << 24);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut padded = [0u8; 16];
        padded[..tail.len()].copy_from_slice(tail);
        padded[tail.len()] = 1;
        // hibit 0: the 1 is part of the padded block itself.
        process(&padded[..], 0);
    }

    // Full carry and conditional subtraction of p = 2^130 − 5.
    let mut c = h1 >> 26;
    h1 &= 0x3ffffff;
    h2 = h2.wrapping_add(c);
    c = h2 >> 26;
    h2 &= 0x3ffffff;
    h3 = h3.wrapping_add(c);
    c = h3 >> 26;
    h3 &= 0x3ffffff;
    h4 = h4.wrapping_add(c);
    c = h4 >> 26;
    h4 &= 0x3ffffff;
    h0 = h0.wrapping_add(c * 5);
    c = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 = h1.wrapping_add(c);

    // compute h + (-p)
    let mut g0 = h0.wrapping_add(5);
    c = g0 >> 26;
    g0 &= 0x3ffffff;
    let mut g1 = h1.wrapping_add(c);
    c = g1 >> 26;
    g1 &= 0x3ffffff;
    let mut g2 = h2.wrapping_add(c);
    c = g2 >> 26;
    g2 &= 0x3ffffff;
    let mut g3 = h3.wrapping_add(c);
    c = g3 >> 26;
    g3 &= 0x3ffffff;
    let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

    // Select h if h < p else g.
    let mask = if g4 >> 31 == 0 { u32::MAX } else { 0 };
    h0 = (h0 & !mask) | (g0 & mask);
    h1 = (h1 & !mask) | (g1 & mask);
    h2 = (h2 & !mask) | (g2 & mask);
    h3 = (h3 & !mask) | (g3 & mask);
    h4 = (h4 & !mask) | (g4 & mask);

    // h = h mod 2^128 as four u32 words.
    let w0 = h0 | (h1 << 26);
    let w1 = (h1 >> 6) | (h2 << 20);
    let w2 = (h2 >> 12) | (h3 << 14);
    let w3 = (h3 >> 18) | (h4 << 8);

    // tag = (h + s) mod 2^128
    let s0 = load32(&key[16..20]);
    let s1_ = load32(&key[20..24]);
    let s2_ = load32(&key[24..28]);
    let s3_ = load32(&key[28..32]);
    let mut f = w0 as u64 + s0 as u64;
    let t0 = f as u32;
    f = w1 as u64 + s1_ as u64 + (f >> 32);
    let t1 = f as u32;
    f = w2 as u64 + s2_ as u64 + (f >> 32);
    let t2 = f as u32;
    f = w3 as u64 + s3_ as u64 + (f >> 32);
    let t3 = f as u32;

    let mut tag = [0u8; 16];
    tag[0..4].copy_from_slice(&t0.to_le_bytes());
    tag[4..8].copy_from_slice(&t1.to_le_bytes());
    tag[8..12].copy_from_slice(&t2.to_le_bytes());
    tag[12..16].copy_from_slice(&t3.to_le_bytes());
    tag
}

/// Constant-time tag comparison.
pub fn tags_equal(a: &[u8; 16], b: &[u8; 16]) -> bool {
    let mut diff = 0u8;
    for i in 0..16 {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let msg = b"Cryptographic Forum Research Group";
        let tag = poly1305(&key, msg);
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn zero_key_zero_tag() {
        // r = 0 means the accumulator stays 0 and the tag is s = 0.
        let tag = poly1305(&[0u8; 32], b"whatever message content");
        assert_eq!(tag, [0u8; 16]);
    }

    #[test]
    fn tag_depends_on_message() {
        let key = [0x42u8; 32];
        let t1 = poly1305(&key, b"message one");
        let t2 = poly1305(&key, b"message two");
        assert_ne!(t1, t2);
    }

    #[test]
    fn tag_depends_on_every_byte() {
        let key = [0x42u8; 32];
        let msg: Vec<u8> = (0..100).collect();
        let base = poly1305(&key, &msg);
        for i in [0usize, 15, 16, 17, 50, 99] {
            let mut m = msg.clone();
            m[i] ^= 1;
            assert_ne!(poly1305(&key, &m), base, "flip at {i}");
        }
    }

    #[test]
    fn empty_message() {
        let key = [0x42u8; 32];
        // Must not panic and must equal s for r-clamped key... just check determinism.
        assert_eq!(poly1305(&key, b""), poly1305(&key, b""));
    }

    #[test]
    fn block_boundaries() {
        let key = [0x11u8; 32];
        let mut tags = Vec::new();
        for len in 14..=18 {
            tags.push(poly1305(&key, &vec![0x33u8; len]));
        }
        for i in 0..tags.len() {
            for j in i + 1..tags.len() {
                assert_ne!(tags[i], tags[j]);
            }
        }
    }

    #[test]
    fn constant_time_eq() {
        let a = [1u8; 16];
        let mut b = a;
        assert!(tags_equal(&a, &b));
        b[15] ^= 1;
        assert!(!tags_equal(&a, &b));
    }
}
