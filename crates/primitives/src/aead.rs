//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8), from scratch.
//!
//! This is the symmetric half of the paper's hybrid encryption: SG02/BZ03
//! threshold-protect a fresh 32-byte key, and the request payload is
//! sealed with this AEAD under that key.

use crate::chacha20::{chacha20_block, chacha20_xor};
use crate::poly1305::{poly1305, tags_equal};

/// Error returned when AEAD opening fails authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "authentication tag mismatch")
    }
}

impl std::error::Error for AeadError {}

fn poly_key(key: &[u8; 32], nonce: &[u8; 12]) -> [u8; 32] {
    let block = chacha20_block(key, 0, nonce);
    let mut out = [0u8; 32];
    out.copy_from_slice(&block[..32]);
    out
}

fn compute_tag(otk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
    let mut mac_data = Vec::with_capacity(aad.len() + ciphertext.len() + 32);
    mac_data.extend_from_slice(aad);
    mac_data.resize(mac_data.len().next_multiple_of(16), 0);
    mac_data.extend_from_slice(ciphertext);
    mac_data.resize(mac_data.len().next_multiple_of(16), 0);
    mac_data.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    mac_data.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    poly1305(otk, &mac_data)
}

/// Seals `plaintext` with associated data; returns `ciphertext || tag`.
///
/// # Examples
///
/// ```
/// use theta_primitives::aead::{seal, open};
/// let key = [7u8; 32];
/// let nonce = [1u8; 12];
/// let boxed = seal(&key, &nonce, b"metadata", b"secret");
/// let plain = open(&key, &nonce, b"metadata", &boxed).unwrap();
/// assert_eq!(plain, b"secret");
/// ```
pub fn seal(key: &[u8; 32], nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    chacha20_xor(key, 1, nonce, &mut out);
    let otk = poly_key(key, nonce);
    let tag = compute_tag(&otk, aad, &out);
    out.extend_from_slice(&tag);
    out
}

/// Opens `ciphertext || tag`; verifies the tag before returning plaintext.
///
/// # Errors
///
/// Returns [`AeadError`] when the input is shorter than a tag or the tag
/// does not verify (wrong key, nonce, AAD, or tampered ciphertext).
pub fn open(
    key: &[u8; 32],
    nonce: &[u8; 12],
    aad: &[u8],
    boxed: &[u8],
) -> Result<Vec<u8>, AeadError> {
    if boxed.len() < 16 {
        return Err(AeadError);
    }
    let (ciphertext, tag_bytes) = boxed.split_at(boxed.len() - 16);
    let mut tag = [0u8; 16];
    tag.copy_from_slice(tag_bytes);
    let otk = poly_key(key, nonce);
    let expect = compute_tag(&otk, aad, ciphertext);
    if !tags_equal(&expect, &tag) {
        return Err(AeadError);
    }
    let mut out = ciphertext.to_vec();
    chacha20_xor(key, 1, nonce, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let nonce: [u8; 12] = [0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47];
        let aad: [u8; 12] = [0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let boxed = seal(&key, &nonce, &aad, plaintext);
        let (ct, tag) = boxed.split_at(boxed.len() - 16);
        assert_eq!(hex(&ct[..16]), "d31a8d34648e60db7b86afbc53ef7ec2");
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        let opened = open(&key, &nonce, &aad, &boxed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn roundtrip_various_sizes() {
        let key = [0xabu8; 32];
        let nonce = [0x01u8; 12];
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 1000] {
            let plaintext: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let boxed = seal(&key, &nonce, b"aad", &plaintext);
            assert_eq!(boxed.len(), len + 16);
            assert_eq!(open(&key, &nonce, b"aad", &boxed).unwrap(), plaintext);
        }
    }

    #[test]
    fn tamper_detection() {
        let key = [0x55u8; 32];
        let nonce = [0x02u8; 12];
        let boxed = seal(&key, &nonce, b"hdr", b"payload data");
        for i in 0..boxed.len() {
            let mut bad = boxed.clone();
            bad[i] ^= 0x80;
            assert_eq!(open(&key, &nonce, b"hdr", &bad), Err(AeadError), "byte {i}");
        }
    }

    #[test]
    fn wrong_key_nonce_aad_fail() {
        let key = [0x55u8; 32];
        let nonce = [0x02u8; 12];
        let boxed = seal(&key, &nonce, b"hdr", b"payload");
        let mut other_key = key;
        other_key[0] ^= 1;
        assert!(open(&other_key, &nonce, b"hdr", &boxed).is_err());
        let mut other_nonce = nonce;
        other_nonce[0] ^= 1;
        assert!(open(&key, &other_nonce, b"hdr", &boxed).is_err());
        assert!(open(&key, &nonce, b"other", &boxed).is_err());
    }

    #[test]
    fn too_short_rejected() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        assert!(open(&key, &nonce, b"", &[0u8; 15]).is_err());
    }

    #[test]
    fn empty_plaintext_is_tag_only() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let boxed = seal(&key, &nonce, b"", b"");
        assert_eq!(boxed.len(), 16);
        assert_eq!(open(&key, &nonce, b"", &boxed).unwrap(), Vec::<u8>::new());
    }
}
