//! # theta-primitives
//!
//! Symmetric cryptographic primitives for the Thetacrypt reproduction,
//! all implemented from scratch and checked against RFC / FIPS vectors:
//!
//! - [`Sha256`] / [`Sha512`] (FIPS 180-4) — every random-oracle use in the
//!   threshold schemes bottoms out here.
//! - [`chacha20`] and [`poly1305`], composed into the RFC 8439
//!   [`aead`] used by the hybrid encryption of SG02 and BZ03.
//! - [`DomainHasher`] / [`expand`] — length-prefixed domain-separated
//!   hashing so no two schemes can collide on oracle inputs.
//!
//! ## Example
//!
//! ```
//! use theta_primitives::aead;
//! let key = [9u8; 32];
//! let nonce = [0u8; 12];
//! let sealed = aead::seal(&key, &nonce, b"ctx", b"hello");
//! assert_eq!(aead::open(&key, &nonce, b"ctx", &sealed).unwrap(), b"hello");
//! ```

pub mod aead;
pub mod chacha20;
pub mod kdf;
pub mod poly1305;
mod sha2;

pub use aead::AeadError;
pub use kdf::{
    expand, from_hex, hkdf_expand, hkdf_expand_key, hkdf_extract, hmac_sha256, to_hex,
    DomainHasher,
};
pub use sha2::{Sha256, Sha512};
