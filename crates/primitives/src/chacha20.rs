//! The ChaCha20 stream cipher (RFC 8439), from scratch.
//!
//! SG02 and BZ03 use the hybrid approach from the paper: the threshold
//! operation protects a symmetric key, and the payload itself is encrypted
//! with ChaCha20-Poly1305.

/// ChaCha20 block function state constants ("expand 32-byte k").
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes([
            key[i * 4],
            key[i * 4 + 1],
            key[i * 4 + 2],
            key[i * 4 + 3],
        ]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR keystream), starting at block
/// `initial_counter`.
pub fn chacha20_xor(key: &[u8; 32], initial_counter: u32, nonce: &[u8; 12], data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
        let counter = initial_counter.wrapping_add(block_idx as u32);
        let keystream = chacha20_block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        chacha20_xor(&key, 1, &nonce, &mut data);
        assert_eq!(
            hex(&data[..64]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
        );
    }

    #[test]
    fn xor_roundtrip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..300).map(|i| (i * 7 % 251) as u8).collect();
        let mut data = original.clone();
        chacha20_xor(&key, 0, &nonce, &mut data);
        assert_ne!(data, original);
        chacha20_xor(&key, 0, &nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let a = chacha20_block(&key, 0, &[0u8; 12]);
        let b = chacha20_block(&key, 0, &[1u8; 12]);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_advances_per_block() {
        let key = [9u8; 32];
        let nonce = [2u8; 12];
        let mut long = vec![0u8; 128];
        chacha20_xor(&key, 5, &nonce, &mut long);
        let mut first = vec![0u8; 64];
        chacha20_xor(&key, 5, &nonce, &mut first);
        let mut second = vec![0u8; 64];
        chacha20_xor(&key, 6, &nonce, &mut second);
        assert_eq!(&long[..64], &first[..]);
        assert_eq!(&long[64..], &second[..]);
    }
}
