//! Cross-instance vs per-instance batched share verification, recorded
//! in `BENCH_cross_batch.json` at the repository root.
//!
//! The PR-7 acceptance measurement: 8 concurrent BLS04 signing
//! instances, each holding a quorum's worth of pending
//! partial-signature checks. Per-instance lazy batching (PR 2) settles
//! each instance alone — one pairing-product equation per instance, as
//! `OneRoundProtocol`'s lazy mode does at quorum. Cross-instance
//! batching (this PR's pool aggregator) folds *all* instances' checks
//! into one RLC'd multi-Miller pairing product with a single shared
//! final exponentiation, via `theta_schemes::batch::settle_mixed`.
//!
//! Both paths verify the identical set of checks, so the aggregate
//! verify throughput (checks/s) is directly comparable; the bench
//! asserts the ≥ 1.5× acceptance gate on the BLS04 workload. A mixed
//! workload (BLS04 + BZ03 pairings + SG02/CKS05 DLEQ MSMs) is reported
//! alongside for context, unasserted.
//!
//! Timing is pure crypto (no network, no scheduling), so the numbers
//! are stable on a 1-core CI host. `--quick` / `CRITERION_QUICK=1`
//! shrinks the iteration count.

use rand::SeedableRng;
use std::io::Write;
use std::time::Instant;
use theta_schemes::batch::{settle_mixed, PendingCheck};
use theta_schemes::{bls04, bz03, cks05, sg02, ThresholdParams};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

const INSTANCES: usize = 8;
const SHARES_PER_INSTANCE: usize = 4;
const ACCEPTANCE_SPEEDUP: f64 = 1.5;

/// `INSTANCES` BLS04 instances (distinct messages), each with
/// `SHARES_PER_INSTANCE` pending partial-signature checks — the state
/// of a loaded worker pool the moment a batch flush fires.
fn bls04_instances(r: &mut rand::rngs::StdRng) -> Vec<Vec<PendingCheck>> {
    let params = ThresholdParams::new(SHARES_PER_INSTANCE as u16 - 1, 8).unwrap();
    let (pk, keys) = bls04::keygen(params, r);
    (0..INSTANCES)
        .map(|i| {
            let msg = format!("block {i}").into_bytes();
            let h = bls04::hash_message(&msg).unwrap();
            keys.iter()
                .take(SHARES_PER_INSTANCE)
                .map(|k| {
                    let share = bls04::sign_share(k, &msg).unwrap();
                    bls04::pending_check_with_hash(&pk, &h, &share)
                })
                .collect()
        })
        .collect()
}

/// A mixed pool: 2 instances each of BLS04, BZ03, SG02 and CKS05.
fn mixed_instances(r: &mut rand::rngs::StdRng) -> Vec<Vec<PendingCheck>> {
    let params = ThresholdParams::new(SHARES_PER_INSTANCE as u16 - 1, 8).unwrap();
    let mut instances = Vec::new();
    let (pk, keys) = bls04::keygen(params, r);
    for i in 0..2 {
        let msg = format!("mixed block {i}").into_bytes();
        let h = bls04::hash_message(&msg).unwrap();
        instances.push(
            keys.iter()
                .take(SHARES_PER_INSTANCE)
                .map(|k| {
                    bls04::pending_check_with_hash(&pk, &h, &bls04::sign_share(k, &msg).unwrap())
                })
                .collect(),
        );
    }
    let (pk, keys) = bz03::keygen(params, r);
    for i in 0..2usize {
        let ct = bz03::encrypt(&pk, format!("label {i}").as_bytes(), b"m", r);
        instances.push(
            keys.iter()
                .take(SHARES_PER_INSTANCE)
                .map(|k| {
                    bz03::pending_check(&pk, &ct, &bz03::create_decryption_share(k, &ct).unwrap())
                })
                .collect(),
        );
    }
    let (pk, keys) = sg02::keygen(params, r);
    for i in 0..2usize {
        let ct = sg02::encrypt(&pk, format!("label {i}").as_bytes(), b"m", r);
        instances.push(
            keys.iter()
                .take(SHARES_PER_INSTANCE)
                .map(|k| {
                    sg02::pending_check(&pk, &ct, &sg02::create_decryption_share(k, &ct, r).unwrap())
                })
                .collect(),
        );
    }
    let (pk, keys) = cks05::keygen(params, r);
    for i in 0..2usize {
        let name = format!("round {i}").into_bytes();
        instances.push(
            keys.iter()
                .take(SHARES_PER_INSTANCE)
                .map(|k| cks05::pending_check(&pk, &name, &cks05::create_coin_share(k, &name, r)))
                .collect(),
        );
    }
    instances
}

struct Comparison {
    per_instance_us: f64,
    cross_batch_us: f64,
    speedup: f64,
}

/// Times both settle strategies over the same pool of pending checks.
/// `iters` repetitions; returns the mean per sweep of the whole pool.
fn compare(instances: &[Vec<PendingCheck>], iters: usize) -> Comparison {
    // Per-instance lazy batching: one settle per instance.
    let start = Instant::now();
    for _ in 0..iters {
        for inst in instances {
            let refs: Vec<&PendingCheck> = inst.iter().collect();
            assert!(
                std::hint::black_box(settle_mixed(&refs)).iter().all(|&v| v),
                "valid per-instance batch must settle clean"
            );
        }
    }
    let per_instance_us = start.elapsed().as_micros() as f64 / iters as f64;

    // Cross-instance: the pool aggregator's view — every check, one settle.
    let all: Vec<&PendingCheck> = instances.iter().flatten().collect();
    let start = Instant::now();
    for _ in 0..iters {
        assert!(
            std::hint::black_box(settle_mixed(&all)).iter().all(|&v| v),
            "valid cross-instance batch must settle clean"
        );
    }
    let cross_batch_us = start.elapsed().as_micros() as f64 / iters as f64;

    Comparison { per_instance_us, cross_batch_us, speedup: per_instance_us / cross_batch_us }
}

fn main() {
    let iters = if quick() { 5 } else { 30 };
    let mut r = rand::rngs::StdRng::seed_from_u64(0xcb7c);
    let checks_total = INSTANCES * SHARES_PER_INSTANCE;

    // Warm-up (pairing tables, allocator).
    let warm = bls04_instances(&mut r);
    let refs: Vec<&PendingCheck> = warm.iter().flatten().collect();
    assert!(settle_mixed(&refs).iter().all(|&v| v));

    let bls = compare(&bls04_instances(&mut r), iters);
    println!(
        "bls04  {INSTANCES} instances x {SHARES_PER_INSTANCE} shares ({checks_total} checks)"
    );
    println!("  per-instance lazy: {:>9.1} µs/pool sweep", bls.per_instance_us);
    println!("  cross-instance:    {:>9.1} µs/pool sweep", bls.cross_batch_us);
    println!("  aggregate verify speedup: {:.2}x (gate {ACCEPTANCE_SPEEDUP}x)", bls.speedup);

    let mixed = compare(&mixed_instances(&mut r), iters);
    println!("mixed  8 instances across 4 schemes ({checks_total} checks)");
    println!("  per-instance lazy: {:>9.1} µs/pool sweep", mixed.per_instance_us);
    println!("  cross-instance:    {:>9.1} µs/pool sweep", mixed.cross_batch_us);
    println!("  aggregate verify speedup: {:.2}x (informational)", mixed.speedup);

    let json = format!(
        "{{\n  \"benchmark\": \"cross-instance vs per-instance batched share verification\",\n  \
         \"instances\": {INSTANCES},\n  \
         \"shares_per_instance\": {SHARES_PER_INSTANCE},\n  \
         \"checks_total\": {checks_total},\n  \
         \"iterations\": {iters},\n  \
         \"quick\": {},\n  \
         \"acceptance_gate_speedup\": {ACCEPTANCE_SPEEDUP},\n  \
         \"bls04\": {{ \"per_instance_us\": {:.1}, \"cross_batch_us\": {:.1}, \"speedup\": {:.3} }},\n  \
         \"mixed\": {{ \"per_instance_us\": {:.1}, \"cross_batch_us\": {:.1}, \"speedup\": {:.3} }}\n}}\n",
        quick(),
        bls.per_instance_us,
        bls.cross_batch_us,
        bls.speedup,
        mixed.per_instance_us,
        mixed.cross_batch_us,
        mixed.speedup,
    );
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cross_batch.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_cross_batch.json");
    f.write_all(json.as_bytes()).expect("write BENCH_cross_batch.json");
    println!("wrote {}", path.display());

    // The PR acceptance gate: fail loudly (CI-visible) on regression.
    assert!(
        bls.speedup >= ACCEPTANCE_SPEEDUP,
        "cross-instance batching regressed: {:.2}x < {ACCEPTANCE_SPEEDUP}x on BLS04",
        bls.speedup
    );
    println!("acceptance gate passed: {:.2}x >= {ACCEPTANCE_SPEEDUP}x", bls.speedup);
}
