//! Regenerates **Table 4**: knee capacity, residual delay factor δ_res
//! and latency fairness index η_θ per scheme on DO-31-G.
//!
//! Expected shape (paper): the cheap DH-based schemes (SG02, CKS05) show
//! the largest δ_res / smallest η_θ (fast quorum, long tail); pairing-
//! and RSA-based schemes sit near η_θ ≈ 0.5; KG20, which waits for the
//! full signing group, is the most balanced (η_θ ≈ 0.8).

use theta_bench::{cost_model, write_csv, EvalArgs};
use theta_schemes::registry::SchemeId;
use theta_sim::{capacity_sweep, deployment_by_name, knee_of, steady_state};

fn main() {
    let args = EvalArgs::parse();
    let cost = cost_model(&args);
    let deployment = deployment_by_name("DO-31-G").expect("table 2");
    println!("\nTable 4. Performance summary, using DO-31-G\n");
    println!(
        "{:<7} {:>14} {:>10} {:>8}",
        "Scheme", "Knee capacity", "δ_res", "η_θ"
    );

    // Paper's row order.
    let order = [
        SchemeId::Sg02,
        SchemeId::Bz03,
        SchemeId::Sh00,
        SchemeId::Bls04,
        SchemeId::Kg20,
        SchemeId::Cks05,
    ];
    let mut rows = Vec::new();
    for scheme in order {
        let sweep = capacity_sweep(&deployment, scheme, &cost, args.capacity_duration(), 256, 7);
        let knee = knee_of(&sweep).unwrap_or(1.0).max(1.0);
        let Some(out) =
            steady_state(&deployment, scheme, &cost, knee, args.steady_duration(), 256, 0x44)
        else {
            println!("{:<7} produced no completions", scheme.name());
            continue;
        };
        println!(
            "{:<7} {:>10.0} req/s {:>10.3} {:>8.3}",
            scheme.name(),
            knee,
            out.latency.delta_res,
            out.latency.eta_theta
        );
        rows.push(format!(
            "{},{},{:.4},{:.4}",
            scheme, knee, out.latency.delta_res, out.latency.eta_theta
        ));
    }
    write_csv("table4_summary.csv", "scheme,knee_req_s,delta_res,eta_theta", &rows);
}
