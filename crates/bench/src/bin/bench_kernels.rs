//! Measures each scalar-multiplication kernel against the serial path
//! it replaced and records the speedups in `BENCH_kernels.json` at the
//! repository root.
//!
//! The pairs mirror `benches/kernels.rs`; this binary exists so the
//! numbers land in a machine-readable artifact (consumed by DESIGN.md
//! and the smoke script) rather than only in Criterion's console
//! output. `--quick` or `CRITERION_QUICK=1` shrinks the measurement
//! budget for CI smoke runs.

use rand::SeedableRng;
use std::io::Write;
use std::time::{Duration, Instant};
use theta_schemes::{bls04, sg02, ThresholdParams};

struct Pair {
    name: &'static str,
    old_ns: f64,
    new_ns: f64,
}

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Runs `f` repeatedly inside a wall-clock budget and returns the mean
/// nanoseconds per iteration (one warm-up call first).
fn measure<O>(budget: Duration, mut f: impl FnMut() -> O) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        std::hint::black_box(f());
        iters += 1;
        if start.elapsed() >= budget && iters >= 3 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let budget = if quick() {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(400)
    };
    let mut r = rand::rngs::StdRng::seed_from_u64(0x6e51);
    let mut pairs: Vec<Pair> = Vec::new();

    // Fixed-base: generic double-and-add vs the comb/window tables.
    {
        use theta_math::ed25519::{Point, Scalar};
        let s = Scalar::random(&mut r);
        let g = Point::base();
        pairs.push(Pair {
            name: "fixed_base/ed25519",
            old_ns: measure(budget, || g.mul(&s)),
            new_ns: measure(budget, || Point::mul_base(&s)),
        });
    }
    {
        use theta_math::bn254::{Fr, G1};
        let s = Fr::random(&mut r);
        let g1 = G1::generator();
        pairs.push(Pair {
            name: "fixed_base/bn254_g1",
            old_ns: measure(budget, || g1.mul(&s)),
            new_ns: measure(budget, || G1::mul_generator(&s)),
        });
    }
    {
        use theta_math::{BigUint, Montgomery};
        let m = {
            let mut v = BigUint::random_bits(&mut r, 1024);
            if v.is_even() {
                v = &v + &BigUint::one();
            }
            v
        };
        let base = BigUint::random_below(&mut r, &m);
        let exp = BigUint::random_bits(&mut r, 1024);
        let ctx = Montgomery::new(m);
        let table = ctx.precompute_base(&base, 1024);
        pairs.push(Pair {
            name: "fixed_base/modexp_1024",
            old_ns: measure(budget, || ctx.pow(&base, &exp)),
            new_ns: measure(budget, || ctx.pow_precomputed(&table, &exp)),
        });
    }

    // MSM: naive Σ sᵢ·Pᵢ loop vs the Straus kernel at quorum size.
    {
        use theta_math::ed25519::{Point, Scalar};
        let scalars: Vec<Scalar> = (0..16).map(|_| Scalar::random(&mut r)).collect();
        let points: Vec<Point> = scalars.iter().map(Point::mul_base).collect();
        let coeffs: Vec<&theta_math::BigUint> = scalars.iter().map(|s| s.to_biguint()).collect();
        pairs.push(Pair {
            name: "msm/ed25519_16",
            old_ns: measure(budget, || {
                let mut acc = Point::identity();
                for (p, s) in points.iter().zip(&scalars) {
                    acc = acc.add(&p.mul(s));
                }
                acc
            }),
            new_ns: measure(budget, || theta_math::msm::msm(&points, &coeffs)),
        });
    }
    {
        use theta_math::{BigUint, Montgomery};
        let m = {
            let mut v = BigUint::random_bits(&mut r, 1024);
            if v.is_even() {
                v = &v + &BigUint::one();
            }
            v
        };
        let bases: Vec<BigUint> = (0..5).map(|_| BigUint::random_below(&mut r, &m)).collect();
        let exps: Vec<BigUint> = (0..5).map(|_| BigUint::random_bits(&mut r, 256)).collect();
        let exp_refs: Vec<&BigUint> = exps.iter().collect();
        let ctx = Montgomery::new(m.clone());
        pairs.push(Pair {
            name: "msm/rsa_multiexp_5",
            old_ns: measure(budget, || {
                let mut acc = BigUint::one();
                for (base, exp) in bases.iter().zip(&exps) {
                    acc = (&acc * &ctx.pow(base, exp)).rem(&m);
                }
                acc
            }),
            new_ns: measure(budget, || ctx.multi_exp(&bases, &exp_refs)),
        });
    }

    // Batched share verification at sixteen shares.
    let msg = b"kernel bench message".to_vec();
    let params16 = ThresholdParams::new(2, 16).unwrap();
    {
        let (pk, keys) = bls04::keygen(params16, &mut r);
        let shares: Vec<_> = keys.iter().map(|k| bls04::sign_share(k, &msg).unwrap()).collect();
        pairs.push(Pair {
            name: "verify_16/bls04",
            old_ns: measure(budget, || {
                for s in &shares {
                    assert!(bls04::verify_share(&pk, &msg, s));
                }
            }),
            new_ns: measure(budget, || bls04::verify_shares_batch(&pk, &msg, &shares).unwrap()),
        });
    }
    {
        let (pk, keys) = sg02::keygen(params16, &mut r);
        let ct = sg02::encrypt(&pk, b"bench", &msg, &mut r);
        let shares: Vec<_> = keys
            .iter()
            .map(|k| sg02::create_decryption_share(k, &ct, &mut r).unwrap())
            .collect();
        pairs.push(Pair {
            name: "verify_16/sg02",
            old_ns: measure(budget, || {
                for s in &shares {
                    assert!(sg02::verify_decryption_share(&pk, &ct, s));
                }
            }),
            new_ns: measure(budget, || {
                sg02::verify_decryption_shares_batch(&pk, &ct, &shares).unwrap()
            }),
        });
    }

    // Combine at a five-share quorum (t = 4): pre-PR serial path vs the
    // batched-verification + MSM path.
    let params5 = ThresholdParams::new(4, 9).unwrap();
    {
        let (pk, keys) = bls04::keygen(params5, &mut r);
        let shares: Vec<_> =
            keys[..5].iter().map(|k| bls04::sign_share(k, &msg).unwrap()).collect();
        pairs.push(Pair {
            name: "combine_t5/bls04",
            old_ns: measure(budget, || {
                bls04::combine_serial_baseline(&pk, &msg, &shares).unwrap()
            }),
            new_ns: measure(budget, || bls04::combine(&pk, &msg, &shares).unwrap()),
        });
    }
    {
        let (pk, keys) = sg02::keygen(params5, &mut r);
        let ct = sg02::encrypt(&pk, b"bench", &msg, &mut r);
        let shares: Vec<_> = keys[..5]
            .iter()
            .map(|k| sg02::create_decryption_share(k, &ct, &mut r).unwrap())
            .collect();
        pairs.push(Pair {
            name: "combine_t5/sg02",
            old_ns: measure(budget, || {
                sg02::combine_serial_baseline(&pk, &ct, &shares).unwrap()
            }),
            new_ns: measure(budget, || sg02::combine(&pk, &ct, &shares).unwrap()),
        });
    }

    let mut json = String::from("{\n  \"benchmark\": \"scalar-multiplication kernels\",\n");
    json.push_str(&format!("  \"quick\": {},\n  \"results\": [\n", quick()));
    for (i, p) in pairs.iter().enumerate() {
        let speedup = p.old_ns / p.new_ns;
        println!(
            "{:<24} old {:>12.1} ns   new {:>12.1} ns   speedup {:>5.2}x",
            p.name, p.old_ns, p.new_ns, speedup
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"old_ns\": {:.1}, \"new_ns\": {:.1}, \"speedup\": {:.2}}}{}\n",
            p.name,
            p.old_ns,
            p.new_ns,
            speedup,
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_kernels.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_kernels.json");
    f.write_all(json.as_bytes()).expect("write BENCH_kernels.json");
    println!("wrote {}", path.display());
}
