//! Regenerates **Figure 5b**: the impact of the request payload size
//! (256 B – 4 KiB) on L_θ for each scheme, DO-31-G at knee capacity.
//!
//! Expected outcome (paper §4.5): payload size does not significantly
//! affect latency, because signatures/randomness hash the message first
//! and the ciphers use hybrid encryption.

use theta_bench::{cost_model, fmt_ms, write_csv, EvalArgs};
use theta_schemes::registry::SchemeId;
use theta_sim::{capacity_sweep, deployment_by_name, knee_of, steady_state};

const PAYLOADS: [usize; 5] = [256, 512, 1024, 2048, 4096];

fn main() {
    let args = EvalArgs::parse();
    let cost = cost_model(&args);
    let deployment = deployment_by_name("DO-31-G").expect("table 2");
    let steady = args.steady_duration();
    println!(
        "\nFigure 5b: payload-size sweep on DO-31-G at knee capacity ({} s virtual)\n",
        steady.as_secs()
    );
    print!("{:<7} {:>12}", "scheme", "knee");
    for p in PAYLOADS {
        print!(" {:>9}", format!("{p}B Lθ"));
    }
    println!();

    let mut rows = Vec::new();
    for scheme in SchemeId::ALL {
        let sweep = capacity_sweep(&deployment, scheme, &cost, args.capacity_duration(), 256, 7);
        let knee = knee_of(&sweep).unwrap_or(1.0).max(1.0);
        print!("{:<7} {:>12.0}", scheme.name(), knee);
        for payload in PAYLOADS {
            match steady_state(&deployment, scheme, &cost, knee, steady, payload, 0xbb) {
                Some(out) => {
                    print!(" {:>9}", fmt_ms(out.latency.l_theta));
                    rows.push(format!("{},{},{},{}", scheme, knee, payload, out.latency.l_theta));
                }
                None => print!(" {:>9}", "-"),
            }
        }
        println!();
    }
    write_csv(
        "fig5b_payload.csv",
        "scheme,knee_req_s,payload_bytes,l_theta_s",
        &rows,
    );
    println!("\n(Flat rows confirm the paper's finding: payload size barely matters.)");
}
