//! Ablation: KG20/FROST with and without nonce precomputation — the
//! paper's §3.5 discussion point ("If precomputations are available, the
//! signing algorithm only needs one round of interaction"; the
//! evaluation measured the worst case across both rounds).
//!
//! Runs KG20 across the global deployments in both modes and reports
//! latency at low load plus the measured knee.

use std::time::Duration;
use theta_bench::{cost_model, fmt_ms, write_csv, EvalArgs};
use theta_schemes::registry::SchemeId;
use theta_sim::{knee_of, run_experiment, table2_deployments, ExperimentOutput, SimConfig};

fn sweep(
    deployment: &theta_sim::Deployment,
    cost: &theta_sim::CostModel,
    duration: Duration,
    precomputed: bool,
) -> Vec<ExperimentOutput> {
    let mut out = Vec::new();
    let mut rate = 1u64;
    while rate <= deployment.max_rate {
        let cfg = SimConfig {
            deployment: deployment.clone(),
            scheme: SchemeId::Kg20,
            rate: rate as f64,
            duration,
            payload_bytes: 256,
            drain: duration / 10,
            seed: 0xf2057 ^ rate,
            kg20_precomputed: precomputed,
            worker_lanes: 1,
        };
        if let Some(exp) = run_experiment(&cfg, cost) {
            out.push(exp);
        }
        rate *= 2;
    }
    out
}

fn main() {
    let args = EvalArgs::parse();
    let cost = cost_model(&args);
    let duration = args.capacity_duration();
    println!("\nAblation: FROST two-round vs precomputed single-round\n");
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "deployment", "Lθ 2-round", "Lθ 1-round", "knee 2r", "knee 1r"
    );

    let mut rows = Vec::new();
    for deployment in table2_deployments() {
        if deployment.is_local() {
            continue; // the round count matters where WAN hops dominate
        }
        let two_round = sweep(&deployment, &cost, duration, false);
        let one_round = sweep(&deployment, &cost, duration, true);
        let l2 = two_round.first().map(|e| e.latency.l_theta).unwrap_or(0.0);
        let l1 = one_round.first().map(|e| e.latency.l_theta).unwrap_or(0.0);
        let k2 = knee_of(&two_round).unwrap_or(0.0);
        let k1 = knee_of(&one_round).unwrap_or(0.0);
        println!(
            "{:<10} {:>11} ms {:>11} ms {:>12.0} {:>12.0}",
            deployment.name,
            fmt_ms(l2),
            fmt_ms(l1),
            k2,
            k1
        );
        rows.push(format!("{},{},{},{},{}", deployment.name, l2, l1, k2, k1));
    }
    write_csv(
        "ablation_frost_precompute.csv",
        "deployment,ltheta_2round_s,ltheta_1round_s,knee_2round,knee_1round",
        &rows,
    );
    println!(
        "\n(Precomputation removes one WAN round trip plus the TOB hop from\n\
         the critical path — roughly halving low-load latency globally.)"
    );
}
