//! Regenerates **Table 1**: the threshold schemes in Thetacrypt with
//! their reference, hardness assumption and verification strategy.

use theta_schemes::registry::all_schemes;

fn main() {
    println!("Table 1. Threshold schemes in Thetacrypt");
    println!("{:<22} {:<12} {:<15} Verification strategy", "Cryptographic scheme", "Reference", "Hardness");
    let mut rows = Vec::new();
    for info in all_schemes() {
        println!(
            "{:<22} {:<12} {:<15} {}",
            info.kind.to_string(),
            info.reference,
            info.hardness.to_string(),
            info.verification
        );
        rows.push(format!(
            "{},{},{},{}",
            info.kind, info.reference, info.hardness, info.verification
        ));
    }
    theta_bench::write_csv("table1_schemes.csv", "kind,reference,hardness,verification", &rows);
}
