//! Re-runs the Table 2 / Figure 4 capacity knees on **multi-core
//! nodes**: the same deployments, but each node serves its crypto queue
//! with `worker_lanes` ∈ {1, 2, 4} parallel lanes — the simulator
//! counterpart of `NodeConfig::worker_threads` in the live stack.
//!
//! ```text
//! cargo run -p theta-bench --release --bin table2_multicore [--full] [--reference-costs]
//! ```
//!
//! The paper's deployments are one-vCPU droplets, so its published
//! knees are the lanes=1 column. The knee is CPU-saturation-bound for
//! every scheme at these sizes, so W lanes move it up by ~W until a
//! deployment's max injection rate caps the sweep (SG02/CKS05 on the
//! small deployments) or until the serial router stage would bind
//! (~18 lanes for the cheapest scheme per `BENCH_parallel.json` —
//! outside this sweep, and therefore not modeled; see DESIGN.md).

use theta_bench::{cost_model, write_csv, EvalArgs};
use theta_schemes::registry::SchemeId;
use theta_sim::{capacity_sweep_lanes, knee_of, table2_deployments};

const LANES: [u16; 3] = [1, 2, 4];

fn main() {
    let args = EvalArgs::parse();
    let cost = cost_model(&args);
    let duration = args.capacity_duration();
    println!(
        "\nTable 2 knees on multi-core nodes: {} s virtual runs, crypto lanes in {LANES:?}\n",
        duration.as_secs()
    );

    let mut rows = Vec::new();
    for deployment in table2_deployments() {
        // The large global sweep adds nothing here (knees are already
        // network-shaped at n=127 rates of 1 req/s) and triples runtime.
        if deployment.n > 31 {
            continue;
        }
        println!("=== {} (n={}, t={}) ===", deployment.name, deployment.n, deployment.t);
        println!("{:<7} {:>10} {:>10} {:>10}", "scheme", "lanes=1", "lanes=2", "lanes=4");
        for scheme in SchemeId::ALL {
            let mut knees = Vec::new();
            for lanes in LANES {
                let series = capacity_sweep_lanes(
                    &deployment,
                    scheme,
                    &cost,
                    duration,
                    256,
                    0xf14 ^ lanes as u64,
                    lanes,
                );
                knees.push(knee_of(&series).unwrap_or(0.0));
            }
            println!(
                "{:<7} {:>10} {:>10} {:>10}",
                scheme.name(),
                knees[0],
                knees[1],
                knees[2]
            );
            rows.push(format!(
                "{},{},{},{},{}",
                deployment.name, scheme, knees[0], knees[1], knees[2]
            ));
        }
        println!();
    }
    write_csv(
        "table2_multicore_knees.csv",
        "deployment,scheme,knee_1lane_req_s,knee_2lane_req_s,knee_4lane_req_s",
        &rows,
    );
}
