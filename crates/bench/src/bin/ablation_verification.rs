//! Ablation: the cost of always-on share verification (the paper's §4.4
//! design choice — "every threshold protocol ... performs both a share
//! verification ... and a result verification ... to ensure a fair
//! comparison"). Runs DO-31-G at each scheme's knee with verification on
//! vs. off and reports the latency and capacity deltas.

use theta_bench::{cost_model, fmt_ms, write_csv, EvalArgs};
use theta_schemes::registry::SchemeId;
use theta_sim::{capacity_sweep, deployment_by_name, knee_of, steady_state};

fn main() {
    let args = EvalArgs::parse();
    let cost = cost_model(&args);
    let cost_off = cost.without_share_verification();
    let deployment = deployment_by_name("DO-31-G").expect("table 2");
    println!("\nAblation: share verification ON vs OFF (DO-31-G)\n");
    println!(
        "{:<7} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "scheme", "knee ON", "knee OFF", "Lθ ON (ms)", "Lθ OFF (ms)", "speedup"
    );

    let mut rows = Vec::new();
    for scheme in SchemeId::ALL {
        let sweep_on = capacity_sweep(&deployment, scheme, &cost, args.capacity_duration(), 256, 3);
        let sweep_off =
            capacity_sweep(&deployment, scheme, &cost_off, args.capacity_duration(), 256, 3);
        let knee_on = knee_of(&sweep_on).unwrap_or(1.0).max(1.0);
        let knee_off = knee_of(&sweep_off).unwrap_or(1.0).max(1.0);
        // Compare latency at the *same* (verification-on knee) rate.
        let on = steady_state(&deployment, scheme, &cost, knee_on, args.steady_duration(), 256, 9);
        let off =
            steady_state(&deployment, scheme, &cost_off, knee_on, args.steady_duration(), 256, 9);
        let (Some(on), Some(off)) = (on, off) else {
            println!("{:<7} produced no completions", scheme.name());
            continue;
        };
        let speedup = on.latency.l_theta / off.latency.l_theta.max(1e-9);
        println!(
            "{:<7} {:>10.0} {:>10.0} {:>12} {:>12} {:>8.2}x",
            scheme.name(),
            knee_on,
            knee_off,
            fmt_ms(on.latency.l_theta),
            fmt_ms(off.latency.l_theta),
            speedup
        );
        rows.push(format!(
            "{},{},{},{},{},{:.3}",
            scheme, knee_on, knee_off, on.latency.l_theta, off.latency.l_theta, speedup
        ));
    }
    write_csv(
        "ablation_verification.csv",
        "scheme,knee_on,knee_off,ltheta_on_s,ltheta_off_s,speedup",
        &rows,
    );
    println!(
        "\n(Share verification dominates the pairing/RSA combine paths — an\n\
         order of magnitude of both capacity and latency — and still costs\n\
         the ECDH schemes several-fold. The paper keeps it always-on for a\n\
         fair, robust comparison; this table is what that choice buys.)"
    );
}
