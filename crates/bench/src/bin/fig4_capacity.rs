//! Regenerates **Figure 4**: the capacity test — throughput-vs-L95 curves
//! for every scheme across all six deployments, with knee points.
//!
//! ```text
//! cargo run -p theta-bench --release --bin fig4_capacity [--full] [--reference-costs]
//! ```

use theta_bench::{cost_model, fmt_ms, write_csv, EvalArgs};
use theta_schemes::registry::SchemeId;
use theta_sim::{capacity_sweep, knee_of, table2_deployments, usable_of};

fn main() {
    let args = EvalArgs::parse();
    let cost = cost_model(&args);
    let duration = args.capacity_duration();
    println!(
        "\nFigure 4 capacity test: {} s virtual runs, rate doubling 1..max\n",
        duration.as_secs()
    );

    let mut rows = Vec::new();
    let mut knee_rows = Vec::new();
    for deployment in table2_deployments() {
        println!("=== {} (n={}, t={}) ===", deployment.name, deployment.n, deployment.t);
        println!(
            "{:<7} {:>8} {:>14} {:>12}",
            "scheme", "rate", "tput (req/s)", "L95 (ms)"
        );
        for scheme in SchemeId::ALL {
            let series = capacity_sweep(&deployment, scheme, &cost, duration, 256, 0xf14);
            for point in &series {
                println!(
                    "{:<7} {:>8.0} {:>14.2} {:>12}",
                    scheme.name(),
                    point.rate,
                    point.throughput,
                    fmt_ms(point.latency.l95)
                );
                rows.push(format!(
                    "{},{},{},{},{},{},{}",
                    deployment.name,
                    scheme,
                    point.rate,
                    point.throughput,
                    point.latency.l95,
                    point.injected,
                    point.completed
                ));
            }
            let knee = knee_of(&series).unwrap_or(0.0);
            let usable = usable_of(&series).unwrap_or(0.0);
            println!(
                "{:<7} knee capacity = {} req/s, usable capacity = {} req/s",
                scheme.name(),
                knee,
                usable
            );
            knee_rows.push(format!("{},{},{},{}", deployment.name, scheme, knee, usable));
        }
        println!();
    }
    write_csv(
        "fig4_capacity.csv",
        "deployment,scheme,offered_rate,throughput,l95_s,injected,completed",
        &rows,
    );
    write_csv(
        "fig4_knees.csv",
        "deployment,scheme,knee_req_s,usable_req_s",
        &knee_rows,
    );
}
