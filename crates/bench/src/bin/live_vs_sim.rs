//! Validation: cross-checks the discrete-event simulator against the
//! *real* stack (schemes + protocols + orchestration + in-memory network
//! with injected latency) at a small scale, where both can run.
//!
//! For each scheme: a live 7-node Θ-network with the DO-7 local link
//! profile serves a series of requests; the simulator runs the matching
//! DO-7-L configuration at the same rate. The two mean latencies should
//! agree to well within an order of magnitude (the live run uses real
//! wall-clock crypto on many cores; the simulator models one vCPU per
//! node with calibrated costs).

use std::time::{Duration, Instant};
use theta_bench::{fmt_ms, write_csv};
use theta_codec::Encode;
use theta_schemes::registry::SchemeId;
use theta_sim::{deployment_by_name, run_experiment, CostModel, SimConfig};
use theta_core::ThetaNetworkBuilder;
use theta_network::LinkProfile;
use theta_orchestration::Request;

const REQUESTS: usize = 12;

fn live_mean_latency(scheme: SchemeId) -> Option<f64> {
    let mut builder = ThetaNetworkBuilder::new(2, 7)
        .link_profile(LinkProfile::local())
        .seed(0x11fe);
    builder = match scheme {
        SchemeId::Sg02 => builder.with_sg02(),
        SchemeId::Bls04 => builder.with_bls04(),
        SchemeId::Cks05 => builder.with_cks05(),
        SchemeId::Kg20 => builder.with_kg20(0),
        _ => return None, // BZ03/SH00 live runs are slow; sim-only here
    };
    let net = builder.build().ok()?;
    let mut rng = rand::rngs::OsRng;
    let mut total = Duration::ZERO;
    for i in 0..REQUESTS {
        let request = match scheme {
            SchemeId::Sg02 => {
                let pk = net.public_keys().sg02.as_ref()?;
                let ct = theta_schemes::sg02::encrypt(
                    pk,
                    b"live",
                    format!("payload {i}").as_bytes(),
                    &mut rng,
                );
                Request::Sg02Decrypt(ct.encoded())
            }
            SchemeId::Bls04 => Request::Bls04Sign(format!("msg {i}").into_bytes()),
            SchemeId::Cks05 => Request::Cks05Coin(format!("coin {i}").into_bytes()),
            SchemeId::Kg20 => Request::Kg20Sign(format!("msg {i}").into_bytes()),
            _ => unreachable!(),
        };
        let start = Instant::now();
        net.submit_and_wait(1, request).ok()?;
        total += start.elapsed();
    }
    Some(total.as_secs_f64() / REQUESTS as f64)
}

fn main() {
    println!("calibrating the simulator's cost model on this host...");
    let cost = CostModel::calibrate(384);
    let deployment = deployment_by_name("DO-7-L").expect("table 2");
    println!("\nLive Θ-network vs discrete-event simulator (DO-7-L profile)\n");
    println!("{:<7} {:>14} {:>14} {:>8}", "scheme", "live mean (ms)", "sim Lθ (ms)", "ratio");

    let mut rows = Vec::new();
    for scheme in [SchemeId::Sg02, SchemeId::Bls04, SchemeId::Kg20, SchemeId::Cks05] {
        let Some(live) = live_mean_latency(scheme) else {
            continue;
        };
        let cfg = SimConfig {
            deployment: deployment.clone(),
            scheme,
            rate: 4.0,
            duration: Duration::from_secs(3),
            payload_bytes: 32,
            drain: Duration::from_secs(30),
            seed: 0x11fe,
            kg20_precomputed: false,
            worker_lanes: 1,
        };
        let sim = run_experiment(&cfg, &cost).expect("sim completes");
        let ratio = live / sim.latency.l50.max(1e-9);
        println!(
            "{:<7} {:>14} {:>14} {:>7.2}x",
            scheme.name(),
            fmt_ms(live),
            fmt_ms(sim.latency.l50),
            ratio
        );
        rows.push(format!("{},{},{},{:.3}", scheme, live, sim.latency.l50, ratio));
    }
    write_csv("live_vs_sim.csv", "scheme,live_mean_s,sim_l50_s,ratio", &rows);
    println!(
        "\n(Live runs include RPC/channel overhead and enjoy one OS thread per\n\
         node; agreement within a small constant factor validates the model.)"
    );
}
