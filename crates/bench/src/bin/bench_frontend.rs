//! Measures the event-driven RPC front-end under connection load and
//! records it in `BENCH_frontend.json` at the repository root.
//!
//! The thread-per-connection front-end this PR replaced held one OS
//! thread (and its stack) per client, so 10 000 idle subscribers meant
//! 10 000 threads. The poll(2) loop holds one thread total; this bench
//! proves the C10k claim and its cost:
//!
//! 1. opens as many idle connections as `RLIMIT_NOFILE` allows (target
//!    10 000, 5 000 under `--quick`), after raising the soft limit to
//!    the hard cap via hand-rolled getrlimit/setrlimit FFI;
//! 2. reports the accept rate, the resident-set growth per connection,
//!    and the service thread count before/while loaded (the loaded
//!    count must not grow with connections);
//! 3. measures the client-observed SG02 decrypt p99 on a quiet network
//!    versus the same requests with every idle connection still open.
//!    Each phase is the minimum p99 over three measurement batches —
//!    one-sided scheduler noise (a preempted request becomes the p99 of
//!    its batch on a one-core host) washes out of the min, a real
//!    per-connection poll cost raises every batch and survives it.
//!
//! `--gate` (CI) fails the run when fewer than 5 000 idle connections
//! could be opened, when the thread count grew with connections, or
//! when the loaded p99 exceeds the idle p99 by 10% or more. When the
//! file-descriptor hard limit cannot cover 5 000 connections the gate
//! SKIPs with an explicit note instead of failing: the machine, not the
//! front-end, is the bound.

use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use theta_codec::Encode;
use theta_core::ThetaNetworkBuilder;
use theta_orchestration::Request;
use theta_service::RpcClient;

/// Loaded p99 budget relative to idle p99, in percent.
const GATE_P99_PCT: f64 = 10.0;
/// Measurement batches per phase; each phase reports the MINIMUM batch
/// p99. On a single-core host the p99 of one batch is set by whichever
/// request the scheduler preempted — one-sided noise that min-of-k
/// removes, while a real per-connection poll cost would raise every
/// batch and survive the min.
const BATCHES: usize = 3;
/// Minimum idle connections the gate demands (when the fd limit allows).
const GATE_MIN_CONNS: usize = 5_000;
/// Descriptors reserved for everything that is not an idle subscriber:
/// the node, the service, stdio, procfs reads, and the measuring client.
const FD_MARGIN: u64 = 256;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn gate() -> bool {
    std::env::args().any(|a| a == "--gate")
}

// `RLIMIT_NOFILE` and the rlimit syscalls, hand-rolled: the workspace
// deliberately has no libc crate (see the front-end's poll FFI).
const RLIMIT_NOFILE: i32 = 7;

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Raises the soft fd limit to the hard cap; returns the resulting cap.
fn raise_nofile() -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: plain POSIX calls on a valid, initialized struct.
    unsafe {
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        if lim.cur < lim.max {
            let want = RLimit { cur: lim.max, max: lim.max };
            if setrlimit(RLIMIT_NOFILE, &want) == 0 {
                return lim.max;
            }
        }
        lim.cur
    }
}

/// A field from `/proc/self/status`, e.g. `VmRSS` in kB or `Threads`.
fn proc_status(field: &str) -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    text.lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn p99_micros(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[((samples.len() as f64 * 0.99) as usize).min(samples.len() - 1)]
}

fn main() {
    let nofile = raise_nofile();
    let target = if quick() { GATE_MIN_CONNS } else { 10_000 };
    // Each idle subscriber costs TWO descriptors here: its client socket
    // and the accepted server-side socket live in this one process.
    let budget = (nofile.saturating_sub(FD_MARGIN) / 2) as usize;
    let planned = target.min(budget);
    let requests = if quick() { 200 } else { 500 };

    // A 4-node Θ-network with SG02; node 1 serves RPC.
    let mut net = ThetaNetworkBuilder::new(1, 4)
        .with_sg02()
        .seed(0xf0e)
        .build()
        .expect("build network");
    let addr = net.serve_rpc(1, "127.0.0.1:0".parse().unwrap()).expect("serve");
    let mut client = RpcClient::connect(addr, Duration::from_secs(30)).expect("connect");

    // Pre-encrypt distinct payloads client-side so every request is a
    // fresh instance (the node caches finished instances by id).
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xf0e);
    let pk = net.public_keys().sg02.clone().expect("sg02 key");
    let mut payloads: Vec<Vec<u8>> = (0..requests * BATCHES * 2)
        .map(|i| {
            let ct = theta_schemes::sg02::encrypt(
                &pk,
                b"bench",
                format!("frontend-{i}").as_bytes(),
                &mut rng,
            );
            ct.encoded()
        })
        .collect();
    let mut loaded_payloads = payloads.split_off(requests * BATCHES);

    // Minimum batch p99 over `BATCHES` batches of `requests` each.
    let run_p99 = |client: &mut RpcClient, payloads: &mut Vec<Vec<u8>>| -> f64 {
        let mut best = f64::INFINITY;
        for batch in payloads.chunks(requests) {
            let mut samples = Vec::with_capacity(batch.len());
            for ct in batch {
                let t = Instant::now();
                client
                    .run_protocol(Request::Sg02Decrypt(ct.clone()))
                    .expect("decrypt");
                samples.push(t.elapsed().as_nanos() as f64 / 1000.0);
            }
            best = best.min(p99_micros(&mut samples));
        }
        payloads.clear();
        best
    };

    let threads_before = proc_status("Threads");
    let rss_before_kb = proc_status("VmRSS");
    let idle_p99_us = run_p99(&mut client, &mut payloads);
    println!("sg02 decrypt p99, quiet network:    {idle_p99_us:>9.0} us");

    // The C10k swarm: idle connections that never send a byte — the
    // cost is purely what the front-end pays to keep them registered.
    let accept_start = Instant::now();
    let mut swarm = Vec::with_capacity(planned);
    for i in 0..planned {
        match TcpStream::connect(addr) {
            Ok(s) => swarm.push(s),
            Err(e) => {
                println!("note: stopped at {i} connections: {e}");
                break;
            }
        }
    }
    let accept_secs = accept_start.elapsed().as_secs_f64();
    let opened = swarm.len();
    let accept_rate = opened as f64 / accept_secs;
    // Let the final accept burst settle into the loop's registry.
    std::thread::sleep(Duration::from_millis(200));
    let threads_loaded = proc_status("Threads");
    let rss_loaded_kb = proc_status("VmRSS");
    let rss_per_conn_kb = if opened > 0 {
        (rss_loaded_kb.saturating_sub(rss_before_kb)) as f64 / opened as f64
    } else {
        0.0
    };
    println!("idle connections opened:            {opened:>9} ({accept_rate:.0}/s)");
    println!("process threads before/loaded:      {threads_before:>9} / {threads_loaded}");
    println!("resident growth per connection:     {rss_per_conn_kb:>9.2} kB");

    let loaded_p99_us = run_p99(&mut client, &mut loaded_payloads);
    let delta_pct = (loaded_p99_us - idle_p99_us) / idle_p99_us * 100.0;
    println!("sg02 decrypt p99, {opened:>5} idle conns: {loaded_p99_us:>9.0} us");
    println!("p99 delta under connection load:    {delta_pct:>9.2} %");
    drop(swarm);

    let json = format!(
        "{{\n  \"quick\": {},\n  \
         \"nofile_limit\": {nofile},\n  \
         \"planned_connections\": {planned},\n  \
         \"idle_connections\": {opened},\n  \
         \"accept_rate_per_s\": {accept_rate:.0},\n  \
         \"threads_before\": {threads_before},\n  \
         \"threads_loaded\": {threads_loaded},\n  \
         \"rss_per_connection_kb\": {rss_per_conn_kb:.2},\n  \
         \"p99_batches_min_of\": {BATCHES},\n  \
         \"sg02_p99_idle_us\": {idle_p99_us:.1},\n  \
         \"sg02_p99_loaded_us\": {loaded_p99_us:.1},\n  \
         \"p99_delta_pct\": {delta_pct:.2},\n  \
         \"gate_min_connections\": {GATE_MIN_CONNS},\n  \
         \"gate_p99_pct\": {GATE_P99_PCT:.1}\n}}\n",
        quick()
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_frontend.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_frontend.json");
    f.write_all(json.as_bytes()).expect("write BENCH_frontend.json");
    println!("wrote {}", path.display());

    if gate() {
        if budget < GATE_MIN_CONNS {
            println!(
                "gate: SKIP — the fd hard limit ({nofile}) cannot cover \
                 {GATE_MIN_CONNS} connections plus the {FD_MARGIN}-fd margin"
            );
            return;
        }
        let mut failed = false;
        if opened < GATE_MIN_CONNS {
            eprintln!("FAIL: only {opened} of {GATE_MIN_CONNS} idle connections opened");
            failed = true;
        }
        // One accepted thread of slack: unrelated runtime threads may
        // come or go, but per-connection threads would add thousands.
        if threads_loaded > threads_before + 1 {
            eprintln!(
                "FAIL: thread count grew {threads_before} -> {threads_loaded} \
                 under connection load"
            );
            failed = true;
        }
        if delta_pct >= GATE_P99_PCT {
            eprintln!(
                "FAIL: p99 delta {delta_pct:.2}% breaches the {GATE_P99_PCT}% budget"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate: {opened} idle connections, p99 delta {delta_pct:.2}% < {GATE_P99_PCT}%"
        );
    }
}
