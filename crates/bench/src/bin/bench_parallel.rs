//! Worker-pool scaling benchmark: sg02 threshold-decryption throughput
//! on a 4-node in-memory mesh at `worker_threads` ∈ {1, 2, 4, cores},
//! recorded in `BENCH_parallel.json` at the repository root.
//!
//! Two views are reported side by side, in the same spirit as the
//! live-vs-sim cross-check (`live_vs_sim.rs`):
//!
//! - **live**: wall-clock throughput of the real stack (schemes +
//!   driver + router/worker pool + in-memory network). On a host with
//!   as many cores as workers this shows the scaling directly; on a
//!   smaller host (CI containers are often 1-core — see `host_cores`)
//!   all workers time-share the same CPU and live numbers flatten.
//! - **modeled**: a measured-cost pipeline bound, built from the busy
//!   counters the router and workers maintain about themselves
//!   (`theta_router_busy_nanos_total`, `theta_worker_busy_nanos_total`).
//!   From the single-worker live run, `S` = router busy ns / instance
//!   (the serial stage) and `C` = worker busy ns / instance (the stage
//!   that divides across the pool). A node's throughput is then bounded
//!   by its slowest pipeline stage: `rps(W) = 1 / max(S, C / W)`.
//!   Because protocol crypto dominates (`C ≫ S`), the modeled speedup
//!   at 4 workers is ≈4×.
//!
//! `--quick` or `CRITERION_QUICK=1` shrinks the request counts for CI
//! smoke runs.

use rand::SeedableRng;
use std::io::Write;
use std::time::{Duration, Instant};
use theta_codec::Encode;
use theta_core::ThetaNetworkBuilder;
use theta_orchestration::Request;
use theta_schemes::{sg02, ThresholdParams};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// One live sweep point: wall-clock throughput plus node 1's in-situ
/// busy accounting (router and worker nanoseconds per instance).
struct LivePoint {
    rps: f64,
    router_ns_per_instance: f64,
    worker_ns_per_instance: f64,
}

/// Live throughput (requests/s) of a 4-node mesh with `workers` crypto
/// workers per node: `n` distinct sg02 decryptions submitted
/// back-to-back at node 1, timed to the last result.
fn live_throughput(workers: usize, n: usize, seed: u64) -> LivePoint {
    let net = ThetaNetworkBuilder::new(1, 4)
        .with_sg02()
        .worker_threads(workers)
        .seed(seed)
        .instance_timeout(Duration::from_secs(120))
        .build()
        .expect("build 4-node mesh");
    let pk = net.public_keys().sg02.clone().expect("sg02 provisioned");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let requests: Vec<Request> = (0..n)
        .map(|i| {
            let ct =
                sg02::encrypt(&pk, b"bench", format!("payload {i}").as_bytes(), &mut rng);
            Request::Sg02Decrypt(ct.encoded())
        })
        .collect();

    // Warm-up: one request end to end so lazy initialization (tables,
    // thread spawn-up) is outside the timed window.
    net.submit_and_wait(1, requests[0].clone()).expect("warm-up completes");

    let node = net.node(1).clone();
    let obs = net.node_observability(1);
    let busy_at = |name: &str| obs.registry.counter_value(name, &[]).unwrap_or(0) as f64;
    let (router0, worker0) = (
        busy_at(theta_metrics::observability::ROUTER_BUSY_NANOS_COUNTER),
        busy_at(theta_metrics::observability::WORKER_BUSY_NANOS_COUNTER),
    );

    let start = Instant::now();
    let pending: Vec<_> = requests.iter().skip(1).map(|r| node.submit(r.clone())).collect();
    for p in pending {
        p.wait_timeout(Duration::from_secs(120))
            .expect("node alive")
            .outcome
            .expect("decryption succeeds");
    }
    let timed = (n - 1) as f64;
    LivePoint {
        rps: timed / start.elapsed().as_secs_f64(),
        router_ns_per_instance: (busy_at(theta_metrics::observability::ROUTER_BUSY_NANOS_COUNTER) - router0)
            / timed,
        worker_ns_per_instance: (busy_at(theta_metrics::observability::WORKER_BUSY_NANOS_COUNTER) - worker0)
            / timed,
    }
}

/// Measures the per-instance worker-side crypto cost `C` for one node:
/// its own share computation plus the verified combine over a quorum —
/// exactly the work the router hands to the pool per sg02 instance.
fn crypto_cost_ns(samples: usize) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9a11);
    let params = ThresholdParams::new(1, 4).unwrap();
    let (pk, keys) = sg02::keygen(params, &mut rng);
    let ct = sg02::encrypt(&pk, b"bench", b"worker-side cost", &mut rng);
    let quorum: Vec<_> = keys
        .iter()
        .take(2)
        .map(|k| sg02::create_decryption_share(k, &ct, &mut rng).unwrap())
        .collect();
    // Warm-up.
    std::hint::black_box(sg02::create_decryption_share(&keys[2], &ct, &mut rng).unwrap());
    std::hint::black_box(sg02::combine(&pk, &ct, &quorum).unwrap());
    let start = Instant::now();
    for _ in 0..samples {
        std::hint::black_box(sg02::create_decryption_share(&keys[2], &ct, &mut rng).unwrap());
        std::hint::black_box(sg02::combine(&pk, &ct, &quorum).unwrap());
    }
    start.elapsed().as_nanos() as f64 / samples as f64
}

fn main() {
    let (n_requests, crypto_samples) = if quick() { (9, 8) } else { (25, 40) };
    let host_cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // worker_threads sweep: 1, 2, 4, and the host's core count, deduped.
    let mut sweep = vec![1usize, 2, 4, host_cores];
    sweep.sort_unstable();
    sweep.dedup();

    println!("host cores: {host_cores}");
    let micro_crypto_ns = crypto_cost_ns(crypto_samples);
    println!("micro-benched crypto cost:  {:>9.1} µs/instance", micro_crypto_ns / 1e3);

    let mut live = Vec::new();
    for &w in &sweep {
        let point = live_throughput(w, n_requests, 0x9a11 + w as u64);
        println!("live   workers={w:<2} {:>9.1} req/s", point.rps);
        live.push(point);
    }

    // The model's inputs come from the single-worker live run's own
    // busy accounting: S is what the router thread actually spent per
    // instance (the serial stage), C what the worker spent (the stage
    // that divides across the pool). Floors keep measurement noise from
    // degenerating the bound.
    let router_ns = live[0].router_ns_per_instance.max(100.0);
    let crypto_ns = live[0].worker_ns_per_instance.max(1_000.0);
    println!("in-situ router stage S:     {:>9.1} µs/instance", router_ns / 1e3);
    println!("in-situ worker stage C:     {:>9.1} µs/instance", crypto_ns / 1e3);

    let modeled_rps = |w: usize| 1e9 / router_ns.max(crypto_ns / w as f64);
    let modeled: Vec<f64> = sweep.iter().map(|&w| modeled_rps(w)).collect();
    for (&w, rps) in sweep.iter().zip(&modeled) {
        println!("model  workers={w:<2} {rps:>9.1} req/s ({:.2}x)", rps / modeled[0]);
    }
    let speedup_at_4 = modeled_rps(4) / modeled[0];
    println!("modeled speedup at 4 workers: {speedup_at_4:.2}x");

    let results: Vec<String> = sweep
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            format!(
                "    {{ \"workers\": {w}, \"live_rps\": {:.2}, \"modeled_rps\": {:.2}, \
                 \"modeled_speedup\": {:.3} }}",
                live[i].rps,
                modeled[i],
                modeled[i] / modeled[0]
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"worker-pool scaling, sg02 threshold decryption\",\n  \
         \"mesh\": \"4 nodes in-memory, t=1\",\n  \
         \"host_cores\": {host_cores},\n  \
         \"quick\": {},\n  \
         \"requests_per_config\": {},\n  \
         \"router_ns_per_instance\": {router_ns:.1},\n  \
         \"worker_ns_per_instance\": {crypto_ns:.1},\n  \
         \"microbench_crypto_ns\": {micro_crypto_ns:.1},\n  \
         \"model\": \"rps(W) = 1 / max(S, C/W); S = in-situ router busy ns, C = in-situ worker busy ns, C/W with W workers\",\n  \
         \"results\": [\n{}\n  ],\n  \
         \"modeled_speedup_at_4_workers\": {speedup_at_4:.3}\n}}\n",
        quick(),
        n_requests - 1,
        results.join(",\n")
    );
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_parallel.json");
    f.write_all(json.as_bytes()).expect("write BENCH_parallel.json");
    println!("wrote {}", path.display());
}
