//! Worker-pool scaling benchmark: sg02 threshold-decryption throughput
//! on a 4-node in-memory mesh at `worker_threads` ∈ {1, 2, 4, 8, cores},
//! recorded in `BENCH_parallel.json` at the repository root.
//!
//! Two views are reported side by side, in the same spirit as the
//! live-vs-sim cross-check (`live_vs_sim.rs`):
//!
//! - **live**: wall-clock throughput of the real stack (schemes +
//!   driver + router/worker pool + in-memory network), with the
//!   speedup over the 1-worker run (`live_speedup`). On a host with as
//!   many cores as workers this shows the scaling directly; on a
//!   smaller host (CI containers are often 1-core — see `host_cores`)
//!   all workers time-share the same CPU and live numbers flatten, so
//!   `model_validated` is `false` and the trajectory must not be read
//!   as a scaling result.
//! - **modeled**: a measured-cost pipeline bound, built from the busy
//!   counters the router and workers maintain about themselves
//!   (`theta_router_busy_nanos_total`, `theta_worker_busy_nanos_total`).
//!   From the single-worker live run, `S` = router busy ns / instance
//!   (the serial stage) and `C` = worker busy ns / instance (the stage
//!   that divides across the pool). A node's throughput is then bounded
//!   by its slowest pipeline stage: `rps(W) = 1 / max(S, C / W)`.
//!
//! Every sweep point where `workers ≤ host_cores` is a *validation
//! point*: the model's prediction error against the live number is
//! reported per point and aggregated into `model_validated` (true iff
//! the host can actually run ≥ 2 workers in parallel and every
//! validation point lands within the error budget).
//!
//! `--quick` or `CRITERION_QUICK=1` shrinks the request counts for CI
//! smoke runs. In quick mode the process additionally acts as the CI
//! scaling gate: with `host_cores ≥ 2` it *asserts* that live rps at 2
//! workers reaches ≥ 1.5× of 1 worker (exiting nonzero on regression);
//! on a single-core host it prints and records an explicit skip note
//! instead.

use rand::SeedableRng;
use std::io::Write;
use std::time::{Duration, Instant};
use theta_codec::Encode;
use theta_core::ThetaNetworkBuilder;
use theta_orchestration::Request;
use theta_schemes::sg02;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Relative-error budget for a validation point: live throughput within
/// ±35% of the pipeline bound. The bound ignores scheduling overhead
/// and cache effects, so live lands below it; much further off means
/// the model (or the pool) is wrong.
const MODEL_ERROR_BUDGET: f64 = 0.35;

/// The CI scaling gate: 2 workers must reach this multiple of the
/// 1-worker live throughput on a host that can run them in parallel.
const SMOKE_MIN_SPEEDUP_2W: f64 = 1.5;

/// One live sweep point: wall-clock throughput plus node 1's in-situ
/// busy accounting (router and worker nanoseconds per instance).
struct LivePoint {
    rps: f64,
    router_ns_per_instance: f64,
    worker_ns_per_instance: f64,
}

/// Live throughput (requests/s) of a 4-node mesh with `workers` crypto
/// workers per node: `n` distinct sg02 decryptions submitted
/// back-to-back at node 1, timed to the last result.
fn live_throughput(workers: usize, n: usize, seed: u64) -> LivePoint {
    let net = ThetaNetworkBuilder::new(1, 4)
        .with_sg02()
        .worker_threads(workers)
        .seed(seed)
        .instance_timeout(Duration::from_secs(120))
        .build()
        .expect("build 4-node mesh");
    let pk = net.public_keys().sg02.clone().expect("sg02 provisioned");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let requests: Vec<Request> = (0..n)
        .map(|i| {
            let ct =
                sg02::encrypt(&pk, b"bench", format!("payload {i}").as_bytes(), &mut rng);
            Request::Sg02Decrypt(ct.encoded())
        })
        .collect();

    // Warm-up: one request end to end so lazy initialization (tables,
    // thread spawn-up) is outside the timed window.
    net.submit_and_wait(1, requests[0].clone()).expect("warm-up completes");

    let node = net.node(1).clone();
    let obs = net.node_observability(1);
    let busy_at = |name: &str| obs.registry.counter_value(name, &[]).unwrap_or(0) as f64;
    let (router0, worker0) = (
        busy_at(theta_metrics::observability::ROUTER_BUSY_NANOS_COUNTER),
        busy_at(theta_metrics::observability::WORKER_BUSY_NANOS_COUNTER),
    );

    let start = Instant::now();
    let pending: Vec<_> = requests.iter().skip(1).map(|r| node.submit(r.clone())).collect();
    for p in pending {
        p.wait_timeout(Duration::from_secs(120))
            .expect("node alive")
            .outcome
            .expect("decryption succeeds");
    }
    let timed = (n - 1) as f64;
    LivePoint {
        rps: timed / start.elapsed().as_secs_f64(),
        router_ns_per_instance: (busy_at(theta_metrics::observability::ROUTER_BUSY_NANOS_COUNTER) - router0)
            / timed,
        worker_ns_per_instance: (busy_at(theta_metrics::observability::WORKER_BUSY_NANOS_COUNTER) - worker0)
            / timed,
    }
}

fn main() {
    let n_requests = if quick() { 9 } else { 25 };
    let host_cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // worker_threads sweep: 1, 2, 4, 8 and the host's core count, deduped.
    let mut sweep = vec![1usize, 2, 4, 8, host_cores];
    sweep.sort_unstable();
    sweep.dedup();

    println!("host cores: {host_cores}");
    let mut live = Vec::new();
    for &w in &sweep {
        let point = live_throughput(w, n_requests, 0x9a11 + w as u64);
        println!("live   workers={w:<2} {:>9.1} req/s", point.rps);
        live.push(point);
    }

    // The model's inputs come from the single-worker live run's own
    // busy accounting: S is what the router thread actually spent per
    // instance (the serial stage), C what the worker spent (the stage
    // that divides across the pool). Floors keep measurement noise from
    // degenerating the bound.
    let router_ns = live[0].router_ns_per_instance.max(100.0);
    let crypto_ns = live[0].worker_ns_per_instance.max(1_000.0);
    println!("in-situ router stage S:     {:>9.1} µs/instance", router_ns / 1e3);
    println!("in-situ worker stage C:     {:>9.1} µs/instance", crypto_ns / 1e3);

    let modeled_rps = |w: usize| 1e9 / router_ns.max(crypto_ns / w as f64);
    let modeled: Vec<f64> = sweep.iter().map(|&w| modeled_rps(w)).collect();

    // Validation: every point the host can genuinely parallelize is
    // compared against the pipeline bound; the rest are reported but
    // cannot validate (or falsify) the model.
    let mut max_validated_error: Option<f64> = None;
    let mut rows = Vec::new();
    for (i, &w) in sweep.iter().enumerate() {
        let live_speedup = live[i].rps / live[0].rps;
        let model_error = (live[i].rps - modeled[i]).abs() / modeled[i];
        let validatable = w <= host_cores;
        if validatable {
            max_validated_error =
                Some(max_validated_error.map_or(model_error, |m: f64| m.max(model_error)));
        }
        println!(
            "model  workers={w:<2} {:>9.1} req/s ({:.2}x) | live speedup {live_speedup:.2}x, \
             error {:.1}%{}",
            modeled[i],
            modeled[i] / modeled[0],
            model_error * 100.0,
            if validatable { "" } else { "  [workers > host_cores: not a validation point]" },
        );
        rows.push(format!(
            "    {{ \"workers\": {w}, \"live_rps\": {:.2}, \"live_speedup\": {:.3}, \
             \"modeled_rps\": {:.2}, \"modeled_speedup\": {:.3}, \
             \"model_error\": {:.3}, \"validation_point\": {validatable} }}",
            live[i].rps,
            live_speedup,
            modeled[i],
            modeled[i] / modeled[0],
            model_error,
        ));
    }

    // The model is validated only when the host can actually run ≥ 2
    // workers in parallel AND every validatable point is inside the
    // error budget; a 1-core host can never validate the scaling claim.
    let model_validated = host_cores >= 2
        && max_validated_error.is_some_and(|e| e <= MODEL_ERROR_BUDGET);
    let validation_note = if host_cores < 2 {
        format!(
            "single-core host: live numbers time-share one CPU; \
             only the workers=1 point is meaningful (error {:.1}%)",
            max_validated_error.unwrap_or(f64::NAN) * 100.0
        )
    } else if model_validated {
        format!(
            "all validation points within {:.0}% of the pipeline bound (max error {:.1}%)",
            MODEL_ERROR_BUDGET * 100.0,
            max_validated_error.unwrap_or(0.0) * 100.0
        )
    } else {
        format!(
            "model error {:.1}% exceeds the {:.0}% budget",
            max_validated_error.unwrap_or(f64::NAN) * 100.0,
            MODEL_ERROR_BUDGET * 100.0
        )
    };
    println!("model validated: {model_validated} ({validation_note})");

    // CI scaling smoke (quick mode): 2 workers must beat 1 worker by
    // 1.5× live — when the host can actually run them in parallel.
    let speedup_2w = sweep
        .iter()
        .position(|&w| w == 2)
        .map(|i| live[i].rps / live[0].rps);
    let scaling_smoke = if host_cores < 2 {
        let note = format!("skipped: host_cores={host_cores} < 2, live scaling unmeasurable");
        println!("scaling smoke: {note}");
        note
    } else {
        let s = speedup_2w.expect("sweep always contains workers=2");
        println!("scaling smoke: live 2-worker speedup {s:.2}x (gate {SMOKE_MIN_SPEEDUP_2W}x)");
        if quick() {
            assert!(
                s >= SMOKE_MIN_SPEEDUP_2W,
                "scaling regression: live 2-worker speedup {s:.2}x < {SMOKE_MIN_SPEEDUP_2W}x \
                 on a {host_cores}-core host"
            );
        }
        format!("ok: 2-worker live speedup {s:.2}x >= gate when asserted")
    };

    let json = format!(
        "{{\n  \"benchmark\": \"worker-pool scaling, sg02 threshold decryption\",\n  \
         \"mesh\": \"4 nodes in-memory, t=1\",\n  \
         \"host_cores\": {host_cores},\n  \
         \"quick\": {},\n  \
         \"requests_per_config\": {},\n  \
         \"router_ns_per_instance\": {router_ns:.1},\n  \
         \"worker_ns_per_instance\": {crypto_ns:.1},\n  \
         \"model\": \"rps(W) = 1 / max(S, C/W); S = in-situ router busy ns, C = in-situ worker busy ns, C/W with W workers\",\n  \
         \"model_validated\": {model_validated},\n  \
         \"validation_note\": \"{validation_note}\",\n  \
         \"scaling_smoke\": \"{scaling_smoke}\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        quick(),
        n_requests - 1,
        rows.join(",\n")
    );
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_parallel.json");
    f.write_all(json.as_bytes()).expect("write BENCH_parallel.json");
    println!("wrote {}", path.display());
}
