//! Regenerates **Table 2**: the deployment configurations with their
//! region sets, network latencies and maximum request rates.

use theta_sim::{rtt, table2_deployments, Region};

fn main() {
    println!("Table 2. Deployment configurations");
    println!(
        "{:<10} {:<8} {:<28} {:<22} Max rate",
        "Acronym", "Size", "Region(s)", "Network latency (ms)"
    );
    let mut rows = Vec::new();
    for d in table2_deployments() {
        let size = match d.n {
            7 => "small",
            31 => "medium",
            _ => "large",
        };
        let regions: Vec<&str> = d.regions.iter().map(|r| r.name()).collect();
        let latency = if d.is_local() {
            format!("≈ {:.2}", rtt(Region::Fra1, Region::Fra1).as_secs_f64() * 1e3)
        } else {
            format!(
                "≈ {:.0}, {:.0}",
                rtt(Region::Fra1, Region::Syd1).as_secs_f64() * 1e3,
                rtt(Region::Fra1, Region::Tor1).as_secs_f64() * 1e3
            )
        };
        println!(
            "{:<10} {:<8} {:<28} {:<22} {} req/s",
            d.name,
            size,
            regions.join(", "),
            latency,
            d.max_rate
        );
        rows.push(format!(
            "{},{},{},{},\"{}\",{}",
            d.name,
            d.n,
            d.t,
            size,
            regions.join(" "),
            d.max_rate
        ));
    }
    theta_bench::write_csv(
        "table2_deployments.csv",
        "acronym,n,t,size,regions,max_rate_req_s",
        &rows,
    );
}
