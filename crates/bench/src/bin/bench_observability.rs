//! Measures the overhead the observability subsystem adds to a protocol
//! hot path and records it in `BENCH_observability.json` at the
//! repository root.
//!
//! The measured path is the SG02 share computation (ciphertext validity
//! check + `u^{x_i}` + DLEQ proof) — the per-request work every node
//! performs — run bare versus wrapped in exactly the instrumentation
//! the instance manager adds per share: one histogram `record` of the
//! timed phase plus two trace-journal events (`InstanceStarted`,
//! `ShareComputed`). `--quick` or `CRITERION_QUICK=1` shrinks the
//! measurement budget for CI smoke runs.

use rand::SeedableRng;
use std::io::Write;
use std::time::{Duration, Instant};
use theta_metrics::{NodeObservability, TraceEventKind};
use theta_schemes::{sg02, ThresholdParams};

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Interleaves single iterations of `a` and `b` inside a wall-clock
/// budget and returns their median per-iteration nanoseconds. Pairing
/// the samples in time cancels machine-level noise (frequency scaling,
/// co-tenants) that would dominate a sequential A/B comparison at this
/// granularity.
fn measure_paired<O>(
    budget: Duration,
    mut a: impl FnMut() -> O,
    mut b: impl FnMut() -> O,
) -> (f64, f64) {
    std::hint::black_box(a());
    std::hint::black_box(b());
    let mut samples_a = Vec::new();
    let mut samples_b = Vec::new();
    let start = Instant::now();
    loop {
        let t = Instant::now();
        std::hint::black_box(a());
        samples_a.push(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        std::hint::black_box(b());
        samples_b.push(t.elapsed().as_nanos() as f64);
        if start.elapsed() >= budget && samples_a.len() >= 25 {
            break;
        }
    }
    (median(&mut samples_a), median(&mut samples_b))
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let budget = if quick() {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(1000)
    };
    let mut r = rand::rngs::StdRng::seed_from_u64(0x0b5e);
    let params = ThresholdParams::new(1, 4).unwrap();
    let (pk, shares) = sg02::keygen(params, &mut r);
    let ct = sg02::encrypt(&pk, b"bench", b"instrumentation overhead", &mut r);
    let key = &shares[0];

    // Bare hot path (what the node did before this PR) versus the same
    // work plus exactly what the manager records per share: phase
    // timing into a histogram and two trace-journal events. Two RNGs so
    // both sides draw the identical randomness stream.
    let obs = NodeObservability::new();
    let instance = [0x42u8; 32];
    let mut r2 = rand::rngs::StdRng::seed_from_u64(0x0b5e);
    let (bare_ns, instrumented_ns) = measure_paired(
        budget,
        || sg02::create_decryption_share(key, &ct, &mut r).unwrap(),
        || {
            let t0 = Instant::now();
            let share = sg02::create_decryption_share(key, &ct, &mut r2).unwrap();
            obs.journal.record(instance, TraceEventKind::InstanceStarted);
            obs.phases.share_compute.record(t0.elapsed());
            obs.journal.record(instance, TraceEventKind::ShareComputed);
            share
        },
    );

    let overhead_pct = (instrumented_ns - bare_ns) / bare_ns * 100.0;
    println!("sg02 share compute, bare:         {bare_ns:>10.0} ns");
    println!("sg02 share compute, instrumented: {instrumented_ns:>10.0} ns");
    println!("instrumentation overhead:         {overhead_pct:>10.2} %");

    let json = format!(
        "{{\n  \"benchmark\": \"observability instrumentation overhead\",\n  \
         \"hot_path\": \"sg02 create_decryption_share\",\n  \
         \"quick\": {},\n  \
         \"bare_ns\": {bare_ns:.1},\n  \
         \"instrumented_ns\": {instrumented_ns:.1},\n  \
         \"overhead_pct\": {overhead_pct:.3}\n}}\n",
        quick()
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_observability.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_observability.json");
    f.write_all(json.as_bytes()).expect("write BENCH_observability.json");
    println!("wrote {}", path.display());
}
