//! Measures the overhead the observability subsystem adds to a protocol
//! hot path and records it in `BENCH_observability.json` at the
//! repository root.
//!
//! The measured path is the SG02 share computation (ciphertext validity
//! check + `u^{x_i}` + DLEQ proof) — the per-request work every node
//! performs — run bare versus wrapped in instrumentation:
//!
//! 1. what the instance manager records per share: one histogram
//!    `record` of the timed phase plus two trace-journal events
//!    (`InstanceStarted`, `ShareComputed`);
//! 2. what the cross-node tracing plane adds on top: span stamping plus
//!    `PeerSend`/`PeerRecv` journal entries (the wire-envelope context)
//!    and a worker-profiler phase attribution.
//!
//! `--quick` or `CRITERION_QUICK=1` shrinks the measurement budget for
//! CI smoke runs; `--gate` exits nonzero when either overhead reaches
//! 5%, which is how `scripts/ci.sh` enforces the hot-path budget.

use rand::SeedableRng;
use std::io::Write;
use std::time::{Duration, Instant};
use theta_metrics::profiler::WorkerPhase;
use theta_metrics::{NodeObservability, TraceEventKind};
use theta_network::demux::{span_hex, span_of};
use theta_schemes::{sg02, ThresholdParams};

/// Hot-path overhead budget enforced by `--gate`, in percent.
const GATE_PCT: f64 = 5.0;

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn gate() -> bool {
    std::env::args().any(|a| a == "--gate")
}

/// Interleaves single iterations of `a` and `b` inside a wall-clock
/// budget and returns their median per-iteration nanoseconds. Pairing
/// the samples in time cancels machine-level noise (frequency scaling,
/// co-tenants) that would dominate a sequential A/B comparison at this
/// granularity.
fn measure_paired<O>(
    budget: Duration,
    mut a: impl FnMut() -> O,
    mut b: impl FnMut() -> O,
) -> (f64, f64) {
    std::hint::black_box(a());
    std::hint::black_box(b());
    let mut samples_a = Vec::new();
    let mut samples_b = Vec::new();
    let start = Instant::now();
    loop {
        let t = Instant::now();
        std::hint::black_box(a());
        samples_a.push(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        std::hint::black_box(b());
        samples_b.push(t.elapsed().as_nanos() as f64);
        if start.elapsed() >= budget && samples_a.len() >= 25 {
            break;
        }
    }
    (median(&mut samples_a), median(&mut samples_b))
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let budget = if quick() {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(1000)
    };
    let mut r = rand::rngs::StdRng::seed_from_u64(0x0b5e);
    let params = ThresholdParams::new(1, 4).unwrap();
    let (pk, shares) = sg02::keygen(params, &mut r);
    let ct = sg02::encrypt(&pk, b"bench", b"instrumentation overhead", &mut r);
    let key = &shares[0];

    // Bare hot path (what the node did before this PR) versus the same
    // work plus exactly what the manager records per share: phase
    // timing into a histogram and two trace-journal events. Two RNGs so
    // both sides draw the identical randomness stream.
    let obs = NodeObservability::new();
    let instance = [0x42u8; 32];
    let mut r2 = rand::rngs::StdRng::seed_from_u64(0x0b5e);
    let (bare_ns, instrumented_ns) = measure_paired(
        budget,
        || sg02::create_decryption_share(key, &ct, &mut r).unwrap(),
        || {
            let t0 = Instant::now();
            let share = sg02::create_decryption_share(key, &ct, &mut r2).unwrap();
            obs.journal.record(instance, TraceEventKind::InstanceStarted);
            obs.phases.share_compute.record(t0.elapsed());
            obs.journal.record(instance, TraceEventKind::ShareComputed);
            share
        },
    );

    let overhead_pct = (instrumented_ns - bare_ns) / bare_ns * 100.0;
    println!("sg02 share compute, bare:         {bare_ns:>10.0} ns");
    println!("sg02 share compute, instrumented: {instrumented_ns:>10.0} ns");
    println!("instrumentation overhead:         {overhead_pct:>10.2} %");

    // Second pairing: this PR's cross-node additions. Per share the
    // tracing plane stamps the 8-byte span into the envelope and
    // journals a PeerSend on the way out and a PeerRecv on the way in;
    // the worker profiler attributes the elapsed time to a phase
    // through the thread-local sink (installed here exactly as a pool
    // worker does at startup).
    let obs2 = NodeObservability::new();
    theta_metrics::profiler::install_worker_phases(
        theta_metrics::profiler::WorkerPhases::register(&obs2.registry, 0),
    );
    let mut r3 = rand::rngs::StdRng::seed_from_u64(0x0b5f);
    let mut r4 = rand::rngs::StdRng::seed_from_u64(0x0b5f);
    let (traced_bare_ns, traced_ns) = measure_paired(
        budget,
        || sg02::create_decryption_share(key, &ct, &mut r3).unwrap(),
        || {
            let t0 = Instant::now();
            let share = sg02::create_decryption_share(key, &ct, &mut r4).unwrap();
            let span = span_of(&instance);
            obs2.journal.record_full(
                instance,
                TraceEventKind::PeerSend,
                0,
                format!("span={}", span_hex(&span)),
            );
            obs2.journal.record_full(
                instance,
                TraceEventKind::PeerRecv,
                2,
                format!("span={} hop=1", span_hex(&span)),
            );
            theta_metrics::profiler::record_phase(WorkerPhase::ShareVerify, t0.elapsed());
            share
        },
    );
    let traced_overhead_pct = (traced_ns - traced_bare_ns) / traced_bare_ns * 100.0;
    println!("sg02 share compute, traced+profiled: {traced_ns:>7.0} ns");
    println!("tracing+profiler overhead:        {traced_overhead_pct:>10.2} %");

    let json = format!(
        "{{\n  \"benchmark\": \"observability instrumentation overhead\",\n  \
         \"hot_path\": \"sg02 create_decryption_share\",\n  \
         \"quick\": {},\n  \
         \"bare_ns\": {bare_ns:.1},\n  \
         \"instrumented_ns\": {instrumented_ns:.1},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \
         \"traced_bare_ns\": {traced_bare_ns:.1},\n  \
         \"traced_ns\": {traced_ns:.1},\n  \
         \"traced_overhead_pct\": {traced_overhead_pct:.3},\n  \
         \"gate_pct\": {GATE_PCT:.1}\n}}\n",
        quick()
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../BENCH_observability.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_observability.json");
    f.write_all(json.as_bytes()).expect("write BENCH_observability.json");
    println!("wrote {}", path.display());

    if gate() {
        let worst = overhead_pct.max(traced_overhead_pct);
        if worst >= GATE_PCT {
            eprintln!("FAIL: hot-path overhead {worst:.2}% breaches the {GATE_PCT}% budget");
            std::process::exit(1);
        }
        println!("gate: worst overhead {worst:.2}% < {GATE_PCT}%");
    }
}
