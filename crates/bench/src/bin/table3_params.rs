//! Regenerates **Table 3**: per-scheme benchmark parameters — arithmetic
//! structure, key length and communication complexity.

use theta_schemes::registry::all_schemes;

fn main() {
    println!("Table 3. Schemes' parameters benchmark setup");
    println!(
        "{:<8} {:<16} {:<18} Communication complexity",
        "Scheme", "Arithmetic", "Key length (bit)"
    );
    let mut rows = Vec::new();
    // Paper order for Table 3: SG02, BZ03, SH00, BLS04, KG20, CKS05.
    let order = ["sg02", "bz03", "sh00", "bls04", "kg20", "cks05"];
    for name in order {
        let info = all_schemes()
            .iter()
            .find(|i| i.id.name() == name)
            .expect("registered");
        println!(
            "{:<8} {:<16} {:<18} {}",
            info.id.name().to_uppercase(),
            info.arithmetic,
            info.key_bits,
            info.comm_complexity()
        );
        rows.push(format!(
            "{},{},{},{}",
            info.id,
            info.arithmetic,
            info.key_bits,
            info.comm_complexity()
        ));
    }
    theta_bench::write_csv(
        "table3_params.csv",
        "scheme,arithmetic,key_bits,comm_complexity",
        &rows,
    );
}
