//! Regenerates **Figure 5a**: the steady-state experiment on DO-31-G at
//! each scheme's knee capacity, reporting the per-node latency
//! distribution (L_θ, L50, L95).
//!
//! ```text
//! cargo run -p theta-bench --release --bin fig5a_steady_state [--full]
//! ```

use theta_bench::{cost_model, fmt_ms, write_csv, EvalArgs};
use theta_schemes::registry::SchemeId;
use theta_sim::{capacity_sweep, deployment_by_name, knee_of, steady_state};

fn main() {
    let args = EvalArgs::parse();
    let cost = cost_model(&args);
    let deployment = deployment_by_name("DO-31-G").expect("table 2");
    let steady = args.steady_duration();
    println!(
        "\nFigure 5a: steady state on DO-31-G at knee capacity ({} s virtual)\n",
        steady.as_secs()
    );
    println!(
        "{:<7} {:>12} {:>10} {:>10} {:>10}",
        "scheme", "knee (req/s)", "Lθ (ms)", "L50 (ms)", "L95 (ms)"
    );

    let mut rows = Vec::new();
    for scheme in SchemeId::ALL {
        // Knee from a short sweep on this deployment.
        let sweep = capacity_sweep(&deployment, scheme, &cost, args.capacity_duration(), 256, 7);
        let knee = knee_of(&sweep).unwrap_or(1.0).max(1.0);
        let Some(out) = steady_state(&deployment, scheme, &cost, knee, steady, 256, 0x5a5a)
        else {
            println!("{:<7} produced no completions", scheme.name());
            continue;
        };
        println!(
            "{:<7} {:>12.0} {:>10} {:>10} {:>10}",
            scheme.name(),
            knee,
            fmt_ms(out.latency.l_theta),
            fmt_ms(out.latency.l50),
            fmt_ms(out.latency.l95)
        );
        rows.push(format!(
            "{},{},{},{},{}",
            scheme, knee, out.latency.l_theta, out.latency.l50, out.latency.l95
        ));
    }
    write_csv(
        "fig5a_steady_state.csv",
        "scheme,knee_req_s,l_theta_s,l50_s,l95_s",
        &rows,
    );
    println!("\n(The paper's Fig. 5a shows these three percentiles as grouped bars.)");
}
