//! # theta-bench
//!
//! The evaluation harness: one binary per table/figure of the paper
//! (see DESIGN.md's experiment index) plus Criterion micro-benchmarks.
//!
//! Binaries write CSV into `target/eval/` and print the table that
//! mirrors the paper's presentation. Common flags:
//!
//! - `--reference-costs` — skip live calibration and use the recorded
//!   reference cost table (fast, machine-independent shape);
//! - `--full` — paper-length experiment durations (60 s capacity runs,
//!   300 s steady state) instead of the trimmed defaults.

use std::io::Write;
use std::path::PathBuf;
use theta_sim::CostModel;

/// Parsed command-line options shared by all evaluation binaries.
#[derive(Clone, Copy, Debug)]
pub struct EvalArgs {
    /// Use the reference cost table instead of calibrating.
    pub reference_costs: bool,
    /// Paper-length durations.
    pub full: bool,
}

impl EvalArgs {
    /// Parses `std::env::args` (unknown flags are ignored with a note).
    pub fn parse() -> EvalArgs {
        let mut out = EvalArgs { reference_costs: false, full: false };
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--reference-costs" => out.reference_costs = true,
                "--full" => out.full = true,
                other => eprintln!("note: ignoring unknown flag {other}"),
            }
        }
        out
    }

    /// Capacity-test duration per run (virtual seconds).
    pub fn capacity_duration(&self) -> std::time::Duration {
        if self.full {
            std::time::Duration::from_secs(60)
        } else {
            std::time::Duration::from_secs(10)
        }
    }

    /// Steady-state duration (virtual seconds).
    pub fn steady_duration(&self) -> std::time::Duration {
        if self.full {
            std::time::Duration::from_secs(300)
        } else {
            std::time::Duration::from_secs(30)
        }
    }
}

/// Obtains the cost model per the flags, printing what was done.
pub fn cost_model(args: &EvalArgs) -> CostModel {
    if args.reference_costs {
        println!("cost model: recorded reference table (--reference-costs)");
        CostModel::reference()
    } else {
        println!("cost model: live calibration of the real schemes on this host...");
        let start = std::time::Instant::now();
        let m = CostModel::calibrate(if args.full { 512 } else { 384 });
        println!("calibration done in {:.1?}", start.elapsed());
        print_cost_model(&m);
        m
    }
}

/// Prints the calibrated per-operation costs (µs).
pub fn print_cost_model(m: &CostModel) {
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    println!("  scheme  create(µs)  verify(µs)  combine_fixed(µs)  combine/share(µs)");
    for (name, c) in [
        ("sg02", m.sg02),
        ("bz03", m.bz03),
        ("sh00", m.sh00),
        ("bls04", m.bls04),
        ("cks05", m.cks05),
    ] {
        println!(
            "  {name:<7} {:>9.0}  {:>9.0}  {:>16.0}  {:>16.0}",
            us(c.create),
            us(c.verify),
            us(c.combine_fixed),
            us(c.combine_per_share)
        );
    }
    let k = m.kg20;
    println!(
        "  kg20    r1 {:>6.0}  r2 {:>6.0}+{:>4.0}/member  verify {:>6.0}",
        us(k.round1),
        us(k.round2_fixed),
        us(k.round2_per_member),
        us(k.verify)
    );
}

/// The output directory `target/eval/` (created on demand).
pub fn eval_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/eval");
    std::fs::create_dir_all(&dir).expect("create target/eval");
    dir
}

/// Writes a CSV file into `target/eval/` and reports the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = eval_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    println!("wrote {}", path.display());
}

/// Formats seconds as engineering-friendly milliseconds.
pub fn fmt_ms(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_by_mode() {
        let quick = EvalArgs { reference_costs: true, full: false };
        let full = EvalArgs { reference_costs: true, full: true };
        assert!(quick.capacity_duration() < full.capacity_duration());
        assert_eq!(full.capacity_duration().as_secs(), 60);
        assert_eq!(full.steady_duration().as_secs(), 300);
    }

    #[test]
    fn eval_dir_exists() {
        let d = eval_dir();
        assert!(d.exists());
    }

    #[test]
    fn fmt_ms_rounds() {
        assert_eq!(fmt_ms(0.1234), "123.4");
    }
}
