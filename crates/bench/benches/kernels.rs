//! Criterion micro-benchmarks for the scalar-multiplication kernels:
//! each pair puts the pre-optimization serial path next to the kernel
//! that replaced it.
//!
//! Groups:
//!
//! - `fixed_base/*` — generic double-and-add vs the comb/window tables
//!   behind `Point::mul_base`, `G1::mul_generator` and
//!   `Montgomery::pow_precomputed`;
//! - `msm/*` — naive `Σ sᵢ·Pᵢ` loops vs the Straus/Pippenger kernel;
//! - `verify_16/*` — sixteen per-share verifications vs one batched
//!   random-linear-combination check;
//! - `combine_t5/*` — the pre-PR serial combine (per-share verify +
//!   per-share Lagrange) vs the batched MSM combine at a 5-share quorum.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use theta_schemes::{bls04, sg02, ThresholdParams};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0x6e51)
}

fn bench_fixed_base(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixed_base");
    group.sample_size(20);

    {
        use theta_math::ed25519::{Point, Scalar};
        let mut r = rng();
        let s = Scalar::random(&mut r);
        let g = Point::base();
        group.bench_function("ed25519_double_and_add", |b| b.iter(|| g.mul(black_box(&s))));
        group.bench_function("ed25519_comb_table", |b| b.iter(|| Point::mul_base(black_box(&s))));
    }

    {
        use theta_math::bn254::{Fr, G1, G2};
        let mut r = rng();
        let s = Fr::random(&mut r);
        let g1 = G1::generator();
        group.bench_function("bn254_g1_double_and_add", |b| b.iter(|| g1.mul(black_box(&s))));
        group.bench_function("bn254_g1_comb_table", |b| b.iter(|| G1::mul_generator(black_box(&s))));
        let g2 = G2::generator();
        group.bench_function("bn254_g2_double_and_add", |b| b.iter(|| g2.mul(black_box(&s))));
        group.bench_function("bn254_g2_comb_table", |b| b.iter(|| G2::mul_generator(black_box(&s))));
    }

    {
        use theta_math::{BigUint, Montgomery};
        let mut r = rng();
        let m = {
            let mut v = BigUint::random_bits(&mut r, 1024);
            if v.is_even() {
                v = &v + &BigUint::one();
            }
            v
        };
        let base = BigUint::random_below(&mut r, &m);
        let exp = BigUint::random_bits(&mut r, 1024);
        let ctx = Montgomery::new(m);
        let table = ctx.precompute_base(&base, 1024);
        group.bench_function("modexp_1024_sliding_window", |b| {
            b.iter(|| ctx.pow(black_box(&base), black_box(&exp)))
        });
        group.bench_function("modexp_1024_fixed_base_table", |b| {
            b.iter(|| ctx.pow_precomputed(black_box(&table), black_box(&exp)))
        });
    }
    group.finish();
}

fn bench_msm(c: &mut Criterion) {
    let mut group = c.benchmark_group("msm");
    group.sample_size(10);

    {
        use theta_math::ed25519::{Point, Scalar};
        let mut r = rng();
        let scalars: Vec<Scalar> = (0..16).map(|_| Scalar::random(&mut r)).collect();
        let points: Vec<Point> = scalars.iter().map(Point::mul_base).collect();
        let coeffs: Vec<&theta_math::BigUint> = scalars.iter().map(|s| s.to_biguint()).collect();
        group.bench_function("ed25519_16_naive", |b| {
            b.iter(|| {
                let mut acc = Point::identity();
                for (p, s) in points.iter().zip(&scalars) {
                    acc = acc.add(&p.mul(s));
                }
                acc
            })
        });
        group.bench_function("ed25519_16_straus", |b| {
            b.iter(|| theta_math::msm::msm(black_box(&points), black_box(&coeffs)))
        });
        let scalars_64: Vec<Scalar> = (0..64).map(|_| Scalar::random(&mut r)).collect();
        let points_64: Vec<Point> = scalars_64.iter().map(Point::mul_base).collect();
        let coeffs_64: Vec<&theta_math::BigUint> =
            scalars_64.iter().map(|s| s.to_biguint()).collect();
        group.bench_function("ed25519_64_straus", |b| {
            b.iter(|| theta_math::msm::msm(black_box(&points_64), black_box(&coeffs_64)))
        });
        let scalars_256: Vec<Scalar> = (0..256).map(|_| Scalar::random(&mut r)).collect();
        let points_256: Vec<Point> = scalars_256.iter().map(Point::mul_base).collect();
        let coeffs_256: Vec<&theta_math::BigUint> =
            scalars_256.iter().map(|s| s.to_biguint()).collect();
        group.bench_function("ed25519_256_pippenger", |b| {
            b.iter(|| theta_math::msm::msm(black_box(&points_256), black_box(&coeffs_256)))
        });
    }

    {
        use theta_math::bn254::{Fr, G1};
        let mut r = rng();
        let scalars: Vec<Fr> = (0..16).map(|_| Fr::random(&mut r)).collect();
        let points: Vec<G1> = scalars.iter().map(G1::mul_generator).collect();
        let coeffs: Vec<&theta_math::BigUint> = scalars.iter().map(|s| s.to_biguint()).collect();
        group.bench_function("bn254_g1_16_naive", |b| {
            b.iter(|| {
                let mut acc = G1::identity();
                for (p, s) in points.iter().zip(&scalars) {
                    acc = acc.add(&p.mul(s));
                }
                acc
            })
        });
        group.bench_function("bn254_g1_16_straus", |b| {
            b.iter(|| theta_math::msm::msm(black_box(&points), black_box(&coeffs)))
        });
    }

    {
        use theta_math::{BigUint, Montgomery};
        let mut r = rng();
        let m = {
            let mut v = BigUint::random_bits(&mut r, 1024);
            if v.is_even() {
                v = &v + &BigUint::one();
            }
            v
        };
        let bases: Vec<BigUint> =
            (0..5).map(|_| BigUint::random_below(&mut r, &m)).collect();
        let exps: Vec<BigUint> = (0..5).map(|_| BigUint::random_bits(&mut r, 256)).collect();
        let exp_refs: Vec<&BigUint> = exps.iter().collect();
        let ctx = Montgomery::new(m.clone());
        group.bench_function("rsa_multiexp_5_serial", |b| {
            b.iter(|| {
                let mut acc = BigUint::one();
                for (base, exp) in bases.iter().zip(&exps) {
                    acc = (&acc * &ctx.pow(base, exp)).rem(&m);
                }
                acc
            })
        });
        group.bench_function("rsa_multiexp_5_straus", |b| {
            b.iter(|| ctx.multi_exp(black_box(&bases), black_box(&exp_refs)))
        });
    }
    group.finish();
}

fn bench_verify_16(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_16");
    group.sample_size(10);
    let params = ThresholdParams::new(2, 16).unwrap();
    let msg = b"kernel bench message".to_vec();

    {
        let mut r = rng();
        let (pk, keys) = bls04::keygen(params, &mut r);
        let shares: Vec<_> = keys.iter().map(|k| bls04::sign_share(k, &msg).unwrap()).collect();
        group.bench_function("bls04_serial", |b| {
            b.iter(|| {
                for s in &shares {
                    assert!(bls04::verify_share(&pk, &msg, s));
                }
            })
        });
        group.bench_function("bls04_batch", |b| {
            b.iter(|| bls04::verify_shares_batch(&pk, &msg, &shares).unwrap())
        });
    }

    {
        let mut r = rng();
        let (pk, keys) = sg02::keygen(params, &mut r);
        let ct = sg02::encrypt(&pk, b"bench", &msg, &mut r);
        let shares: Vec<_> = keys
            .iter()
            .map(|k| sg02::create_decryption_share(k, &ct, &mut r).unwrap())
            .collect();
        group.bench_function("sg02_serial", |b| {
            b.iter(|| {
                for s in &shares {
                    assert!(sg02::verify_decryption_share(&pk, &ct, s));
                }
            })
        });
        group.bench_function("sg02_batch", |b| {
            b.iter(|| sg02::verify_decryption_shares_batch(&pk, &ct, &shares).unwrap())
        });
    }
    group.finish();
}

fn bench_combine_t5(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine_t5");
    group.sample_size(10);
    // t = 4, so a quorum is five shares.
    let params = ThresholdParams::new(4, 9).unwrap();
    let msg = b"kernel bench message".to_vec();

    {
        let mut r = rng();
        let (pk, keys) = bls04::keygen(params, &mut r);
        let shares: Vec<_> =
            keys[..5].iter().map(|k| bls04::sign_share(k, &msg).unwrap()).collect();
        group.bench_function("bls04_serial", |b| {
            b.iter(|| bls04::combine_serial_baseline(&pk, &msg, &shares).unwrap())
        });
        group.bench_function("bls04_batched", |b| {
            b.iter(|| bls04::combine(&pk, &msg, &shares).unwrap())
        });
    }

    {
        let mut r = rng();
        let (pk, keys) = sg02::keygen(params, &mut r);
        let ct = sg02::encrypt(&pk, b"bench", &msg, &mut r);
        let shares: Vec<_> = keys[..5]
            .iter()
            .map(|k| sg02::create_decryption_share(k, &ct, &mut r).unwrap())
            .collect();
        group.bench_function("sg02_serial", |b| {
            b.iter(|| sg02::combine_serial_baseline(&pk, &ct, &shares).unwrap())
        });
        group.bench_function("sg02_batched", |b| {
            b.iter(|| sg02::combine(&pk, &ct, &shares).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixed_base, bench_msm, bench_verify_16, bench_combine_t5);
criterion_main!(benches);
