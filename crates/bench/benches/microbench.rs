//! Criterion micro-benchmarks: the "traditional micro-benchmarking
//! approach" the paper's system-level evaluation complements (§1, §5).
//!
//! Two groups:
//!
//! - `primitives/*` — the substrates (bigint modexp, Ed25519 scalar
//!   multiplication, BN254 pairing, SHA-256, ChaCha20-Poly1305);
//! - `<scheme>/*` — per-scheme share create / verify / combine, the
//!   numbers that feed the simulator's cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use theta_schemes::{bls04, bz03, cks05, kg20, sg02, sh00, ThresholdParams};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0xbe7c)
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);

    // Arbitrary-precision modular exponentiation (RSA-shaped, 2048-bit).
    {
        use theta_math::{BigUint, Montgomery};
        let mut r = rng();
        let m = {
            let mut v = BigUint::random_bits(&mut r, 2048);
            if v.is_even() {
                v = &v + &BigUint::one();
            }
            v
        };
        let base = BigUint::random_below(&mut r, &m);
        let exp = BigUint::random_bits(&mut r, 2048);
        let ctx = Montgomery::new(m);
        group.bench_function("modexp_2048", |b| b.iter(|| ctx.pow(&base, &exp)));
    }

    // Ed25519 base-point multiplication.
    {
        use theta_math::ed25519::{Point, Scalar};
        let mut r = rng();
        let s = Scalar::random(&mut r);
        group.bench_function("ed25519_mul_base", |b| b.iter(|| Point::mul_base(&s)));
    }

    // BN254 G1 multiplication and full pairing.
    {
        use theta_math::bn254::{pairing, Fr, G1, G2};
        let mut r = rng();
        let s = Fr::random(&mut r);
        group.bench_function("bn254_g1_mul", |b| b.iter(|| G1::mul_generator(&s)));
        let p = G1::mul_generator(&s);
        let q = G2::generator();
        group.sample_size(10);
        group.bench_function("bn254_pairing", |b| b.iter(|| pairing(&p, &q)));
    }

    // Symmetric primitives.
    {
        use theta_primitives::{aead, Sha256};
        let data = vec![0xa5u8; 4096];
        group.bench_function("sha256_4k", |b| b.iter(|| Sha256::digest(&data)));
        let key = [7u8; 32];
        let nonce = [1u8; 12];
        let sealed = aead::seal(&key, &nonce, b"", &data);
        group.bench_function("chacha20poly1305_open_4k", |b| {
            b.iter(|| aead::open(&key, &nonce, b"", &sealed).unwrap())
        });
    }
    group.finish();
}

fn bench_sg02(c: &mut Criterion) {
    let mut group = c.benchmark_group("sg02");
    group.sample_size(20);
    let mut r = rng();
    let params = ThresholdParams::new(2, 7).unwrap();
    let (pk, keys) = sg02::keygen(params, &mut r);
    let msg = vec![0x42u8; 256];
    group.bench_function("encrypt_256B", |b| {
        b.iter(|| sg02::encrypt(&pk, b"bench", &msg, &mut r))
    });
    let ct = sg02::encrypt(&pk, b"bench", &msg, &mut r);
    group.bench_function("create_share", |b| {
        b.iter(|| sg02::create_decryption_share(&keys[0], &ct, &mut r).unwrap())
    });
    let share = sg02::create_decryption_share(&keys[1], &ct, &mut r).unwrap();
    group.bench_function("verify_share", |b| {
        b.iter(|| assert!(sg02::verify_decryption_share(&pk, &ct, &share)))
    });
    let shares: Vec<_> = keys[..3]
        .iter()
        .map(|k| sg02::create_decryption_share(k, &ct, &mut r).unwrap())
        .collect();
    group.bench_function("combine_t3", |b| {
        b.iter(|| sg02::combine(&pk, &ct, &shares).unwrap())
    });
    group.finish();
}

fn bench_bz03(c: &mut Criterion) {
    let mut group = c.benchmark_group("bz03");
    group.sample_size(10);
    let mut r = rng();
    let params = ThresholdParams::new(2, 7).unwrap();
    let (pk, keys) = bz03::keygen(params, &mut r);
    let msg = vec![0x42u8; 256];
    let ct = bz03::encrypt(&pk, b"bench", &msg, &mut r);
    group.bench_function("create_share", |b| {
        b.iter(|| bz03::create_decryption_share(&keys[0], &ct).unwrap())
    });
    let share = bz03::create_decryption_share(&keys[1], &ct).unwrap();
    group.bench_function("verify_share", |b| {
        b.iter(|| assert!(bz03::verify_decryption_share(&pk, &ct, &share)))
    });
    let shares: Vec<_> = keys[..3]
        .iter()
        .map(|k| bz03::create_decryption_share(k, &ct).unwrap())
        .collect();
    group.bench_function("combine_t3", |b| {
        b.iter(|| bz03::combine(&pk, &ct, &shares).unwrap())
    });
    group.finish();
}

fn bench_sh00(c: &mut Criterion) {
    let mut group = c.benchmark_group("sh00_512");
    group.sample_size(10);
    let mut r = rng();
    let params = ThresholdParams::new(2, 7).unwrap();
    // 512-bit modulus keeps the benchmark runnable; the paper's Table 3
    // uses 2048 (see the cubic extrapolation in theta-sim's cost model).
    let (pk, keys) = sh00::keygen(params, 512, &mut r).unwrap();
    let msg = b"bench message".to_vec();
    group.bench_function("create_share", |b| {
        b.iter(|| sh00::sign_share(&keys[0], &msg, &mut r))
    });
    let share = sh00::sign_share(&keys[1], &msg, &mut r);
    group.bench_function("verify_share", |b| {
        b.iter(|| assert!(sh00::verify_share(&pk, &msg, &share)))
    });
    let shares: Vec<_> = keys[..3]
        .iter()
        .map(|k| sh00::sign_share(k, &msg, &mut r))
        .collect();
    group.bench_function("combine_t3", |b| {
        b.iter(|| sh00::combine(&pk, &msg, &shares).unwrap())
    });
    group.finish();
}

fn bench_bls04(c: &mut Criterion) {
    let mut group = c.benchmark_group("bls04");
    group.sample_size(10);
    let mut r = rng();
    let params = ThresholdParams::new(2, 7).unwrap();
    let (pk, keys) = bls04::keygen(params, &mut r);
    let msg = b"bench message".to_vec();
    group.bench_function("create_share", |b| {
        b.iter(|| bls04::sign_share(&keys[0], &msg).unwrap())
    });
    let share = bls04::sign_share(&keys[1], &msg).unwrap();
    group.bench_function("verify_share", |b| {
        b.iter(|| assert!(bls04::verify_share(&pk, &msg, &share)))
    });
    let shares: Vec<_> = keys[..3]
        .iter()
        .map(|k| bls04::sign_share(k, &msg).unwrap())
        .collect();
    group.bench_function("combine_t3", |b| {
        b.iter(|| bls04::combine(&pk, &msg, &shares).unwrap())
    });
    group.finish();
}

fn bench_kg20(c: &mut Criterion) {
    let mut group = c.benchmark_group("kg20");
    group.sample_size(20);
    let mut r = rng();
    let params = ThresholdParams::new(2, 7).unwrap();
    let (pk, keys) = kg20::keygen(params, &mut r);
    let msg = b"bench message".to_vec();
    group.bench_function("round1_nonce", |b| {
        b.iter(|| kg20::generate_nonce(&keys[0], &mut r))
    });
    // A 3-signer round 2.
    group.bench_function("round2_sign_3", |b| {
        b.iter(|| {
            let nonces: Vec<_> = keys[..3]
                .iter()
                .map(|k| kg20::generate_nonce(k, &mut r))
                .collect();
            let commits: Vec<_> = nonces.iter().map(|n| n.commitment().clone()).collect();
            let mut iter = nonces.into_iter();
            kg20::sign_share(&keys[0], iter.next().unwrap(), &msg, &commits).unwrap()
        })
    });
    group.bench_function("full_signing_3", |b| {
        b.iter(|| {
            let nonces: Vec<_> = keys[..3]
                .iter()
                .map(|k| kg20::generate_nonce(k, &mut r))
                .collect();
            let commits: Vec<_> = nonces.iter().map(|n| n.commitment().clone()).collect();
            let shares: Vec<_> = keys[..3]
                .iter()
                .zip(nonces)
                .map(|(k, n)| kg20::sign_share(k, n, &msg, &commits).unwrap())
                .collect();
            kg20::combine(&pk, &msg, &commits, &shares).unwrap()
        })
    });
    group.finish();
}

fn bench_cks05(c: &mut Criterion) {
    let mut group = c.benchmark_group("cks05");
    group.sample_size(20);
    let mut r = rng();
    let params = ThresholdParams::new(2, 7).unwrap();
    let (pk, keys) = cks05::keygen(params, &mut r);
    group.bench_function("create_share", |b| {
        b.iter(|| cks05::create_coin_share(&keys[0], b"bench", &mut r))
    });
    let share = cks05::create_coin_share(&keys[1], b"bench", &mut r);
    group.bench_function("verify_share", |b| {
        b.iter(|| assert!(cks05::verify_coin_share(&pk, b"bench", &share)))
    });
    let shares: Vec<_> = keys[..3]
        .iter()
        .map(|k| cks05::create_coin_share(k, b"bench", &mut r))
        .collect();
    group.bench_function("combine_t3", |b| {
        b.iter(|| cks05::combine(&pk, b"bench", &shares).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_sg02,
    bench_bz03,
    bench_sh00,
    bench_bls04,
    bench_kg20,
    bench_cks05
);
criterion_main!(benches);
