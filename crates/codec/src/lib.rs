//! # theta-codec
//!
//! A small deterministic binary wire format used by every Thetacrypt
//! message type (network envelopes, protocol messages, RPC frames,
//! serialized keys and ciphertexts).
//!
//! The paper's implementation uses Protocol Buffers; this reproduction
//! replaces it with an explicit, canonical encoding:
//!
//! - fixed-width little-endian integers,
//! - `u32`-length-prefixed byte strings and sequences,
//! - no padding, no optional field reordering — encoding is a pure
//!   function of the value, so hashes of encodings are stable.
//!
//! ## Example
//!
//! ```
//! use theta_codec::{Decode, Encode, Reader, Writer};
//!
//! #[derive(Debug, PartialEq)]
//! struct Ping { seq: u64, payload: Vec<u8> }
//!
//! impl Encode for Ping {
//!     fn encode(&self, w: &mut Writer) {
//!         self.seq.encode(w);
//!         self.payload.encode(w);
//!     }
//! }
//! impl Decode for Ping {
//!     fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
//!         Ok(Ping { seq: Decode::decode(r)?, payload: Decode::decode(r)? })
//!     }
//! }
//!
//! let ping = Ping { seq: 7, payload: vec![1, 2, 3] };
//! let bytes = ping.encoded();
//! assert_eq!(Ping::decoded(&bytes).unwrap(), ping);
//! ```

use std::fmt;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEnd {
        /// Bytes needed to continue.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A length prefix exceeded the configured sanity bound.
    LengthOverflow(u64),
    /// An enum discriminant or tag byte was not recognised.
    InvalidTag(u32),
    /// The value violated a domain constraint (bad point, bad UTF-8, ...).
    InvalidValue(String),
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { needed, remaining } => {
                write!(f, "unexpected end of input: needed {needed}, had {remaining}")
            }
            CodecError::LengthOverflow(len) => write!(f, "length prefix {len} too large"),
            CodecError::InvalidTag(tag) => write!(f, "invalid tag {tag}"),
            CodecError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Codec result alias.
pub type Result<T> = std::result::Result<T, CodecError>;

/// Maximum accepted length prefix (guards against hostile inputs).
pub const MAX_LENGTH: usize = 64 << 20; // 64 MiB

/// An append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer { buf: Vec::with_capacity(cap) }
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32`-length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics when `bytes` exceeds [`MAX_LENGTH`].
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        assert!(bytes.len() <= MAX_LENGTH, "value exceeds MAX_LENGTH");
        (bytes.len() as u32).encode(self);
        self.buf.extend_from_slice(bytes);
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd { needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a fixed-size array.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] when fewer than `N` bytes remain.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Reads a `u32`-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CodecError::LengthOverflow`] for prefixes above [`MAX_LENGTH`],
    /// or [`CodecError::UnexpectedEnd`] when the body is truncated.
    pub fn take_bytes(&mut self) -> Result<&'a [u8]> {
        let len = u32::decode(self)? as usize;
        if len > MAX_LENGTH {
            return Err(CodecError::LengthOverflow(len as u64));
        }
        self.take(len)
    }
}

/// Serialization into the canonical wire format.
pub trait Encode {
    /// Appends this value to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh byte vector.
    fn encoded(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Deserialization from the canonical wire format.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    fn decode(r: &mut Reader) -> Result<Self>;

    /// Convenience: decodes a complete value, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] when input is longer than the value.
    fn decoded(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_at_end() {
            return Err(CodecError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, w: &mut Writer) {
                w.put_raw(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader) -> Result<Self> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                let mut arr = [0u8; std::mem::size_of::<$t>()];
                arr.copy_from_slice(bytes);
                Ok(<$t>::from_le_bytes(arr))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i64);

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        (*self as u8).encode(w);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader) -> Result<Self> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidTag(other as u32)),
        }
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader) -> Result<Self> {
        let bytes = r.take_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::InvalidValue(format!("invalid utf-8: {e}")))
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader) -> Result<Self> {
        r.take_array::<N>()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => false.encode(w),
            Some(v) => {
                true.encode(w);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader) -> Result<Self> {
        if bool::decode(r)? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

/// Sequences are `u32` count-prefixed. (Count, not byte length: elements
/// may be variable-size.)
impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut Writer) {
        assert!(self.len() <= MAX_LENGTH, "sequence exceeds MAX_LENGTH");
        (self.len() as u32).encode(w);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.as_slice().encode(w);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader) -> Result<Self> {
        let count = u32::decode(r)? as usize;
        if count > MAX_LENGTH {
            return Err(CodecError::LengthOverflow(count as u64));
        }
        // Guard allocation: each element consumes at least one byte.
        if count > r.remaining() {
            return Err(CodecError::UnexpectedEnd { needed: count, remaining: r.remaining() });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encoded();
        assert_eq!(T::decoded(&bytes).unwrap(), v);
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdeadu16);
        roundtrip(0xdeadbeefu32);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(-42i64);
    }

    #[test]
    fn little_endian_layout() {
        assert_eq!(0x0102030405060708u64.encoded(), vec![8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn bool_strict() {
        roundtrip(true);
        roundtrip(false);
        assert_eq!(bool::decoded(&[2]), Err(CodecError::InvalidTag(2)));
    }

    #[test]
    fn bytes_and_strings() {
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![1u8, 2, 3]);
        roundtrip("hello world".to_string());
        roundtrip(String::new());
        assert!(String::decoded(&[2, 0, 0, 0, 0xff, 0xfe]).is_err());
    }

    #[test]
    fn fixed_arrays() {
        roundtrip([7u8; 32]);
        roundtrip([0u8; 0]);
        // Fixed arrays carry no length prefix.
        assert_eq!([1u8, 2, 3].encoded(), vec![1, 2, 3]);
    }

    #[test]
    fn options_and_tuples() {
        roundtrip(Option::<u32>::None);
        roundtrip(Some(17u32));
        roundtrip((1u8, 2u16));
        roundtrip((1u8, "x".to_string(), vec![9u8]));
    }

    #[test]
    fn nested_vectors() {
        roundtrip(vec![vec![1u8, 2], vec![], vec![3]]);
        roundtrip(vec!["a".to_string(), "bb".to_string()]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u32.encoded();
        bytes.push(0);
        assert_eq!(u32::decoded(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = vec![10u8, 0, 0, 0, 1, 2]; // claims 10 bytes, has 2
        assert!(Vec::<u8>::decoded(&bytes).is_err());
        assert!(u64::decoded(&[1, 2, 3]).is_err());
    }

    #[test]
    fn hostile_count_rejected() {
        // A count of u32::MAX with a tiny body must not allocate.
        let bytes = u32::MAX.encoded();
        let err = Vec::<u64>::decoded(&bytes).unwrap_err();
        assert!(matches!(
            err,
            CodecError::LengthOverflow(_) | CodecError::UnexpectedEnd { .. }
        ));
    }

    #[test]
    fn deterministic_encoding() {
        let v = (vec![3u8; 10], Some(7u64), "abc".to_string());
        assert_eq!(v.encoded(), v.encoded());
    }

    #[test]
    fn reader_take_bounds() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.take(2).unwrap(), &[1, 2]);
        assert_eq!(r.remaining(), 1);
        assert!(r.take(2).is_err());
        assert_eq!(r.take(1).unwrap(), &[3]);
        assert!(r.is_at_end());
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<CodecError> = vec![
            CodecError::UnexpectedEnd { needed: 4, remaining: 1 },
            CodecError::LengthOverflow(1 << 40),
            CodecError::InvalidTag(9),
            CodecError::InvalidValue("x".into()),
            CodecError::TrailingBytes(3),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
