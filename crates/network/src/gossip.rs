//! Gossip/flood overlay: O(degree) encrypted links per node instead of
//! a full mesh.
//!
//! The TCP full mesh of [`crate::tcp`] needs `n-1` connections per node
//! — fine for the paper's 4–16 node fleets, wasteful beyond. This
//! overlay gives each node a bounded set of neighbors on a circulant
//! graph and **floods** messages: every frame carries a
//! `(origin, counter)` message id; a node delivers/processes the first
//! copy it sees and relays it to every neighbor except the link it
//! arrived on, so a message crosses each link at most once in each
//! direction and still reaches all nodes in O(diameter) hops.
//!
//! **Topology.** Neighbor *offsets* are the powers of two strictly
//! below `n/2`, truncated to `ceil(mesh_degree / 2)` entries: node `i`
//! dials `(i-1+o) mod n + 1` for each offset `o` and accepts from the
//! mirror set, giving a connected circulant graph `C(n; 1, 2, 4, ...)`
//! of total degree ≈ `mesh_degree` whose diameter shrinks as offsets
//! are added. The offset-1 ring alone keeps the graph connected, so any
//! single dropped link leaves flooding intact whenever `mesh_degree`
//! admits a second offset.
//!
//! **Link security.** Every link runs the same Noise-IK handshake and
//! AEAD framing as the full mesh ([`crate::handshake`]): neighbors are
//! mutually authenticated against the roster and every byte after the
//! hello is encrypted. The *first hop* of a message is therefore
//! cryptographically attributed; relayed hops necessarily carry the
//! origin id inside the (authenticated, encrypted) frame on the word
//! of the relaying neighbor. A non-member cannot inject or read
//! anything; a *member* relaying forged origins is outside this PR's
//! threat model (the full mesh remains the deployment answer when
//! insider attribution is required, and is noted in DESIGN.md).
//!
//! TOB rides the same flood: submits are flooded until they reach the
//! sequencer (node 1), which assigns sequence numbers and floods the
//! deliveries; each node's [`TobReorderBuffer`] releases them gap-free
//! in order, so all nodes observe the identical TOB sequence.

use crate::demux::{peek_key, span_hex, span_of, SPAN_LEN};
use crate::handshake::{self, MeshAuth, RecvCipher, SendCipher, Session};
use crate::tcp::{dial_with_retry, LinkHealth, HANDSHAKE_TIMEOUT, SEQUENCER};
use crate::{Network, NetworkError, NetworkEvent, NodeId, PeerTraffic, TobReorderBuffer};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use theta_metrics::{TraceEventKind, TraceJournal};

/// Inner message kinds carried by a flood frame.
const KIND_P2P_BCAST: u8 = 0;
const KIND_P2P_DIRECT: u8 = 1;
const KIND_TOB_SUBMIT: u8 = 2;
const KIND_TOB_DELIVER: u8 = 3;

/// Flood frame header:
/// `origin (2) | counter (8) | span (8) | hop (1) | kind (1)`.
///
/// `span`/`hop` are the trace context: the span id of the protocol
/// instance the payload belongs to and the number of links the frame
/// has traversed along this path. The origin stamps `hop = 1`; every
/// relay increments the byte in place before re-flooding, so the first
/// copy arriving at a node `d` links away carries `hop = d`.
const HEADER_LEN: usize = 2 + 8 + SPAN_LEN + 1 + 1;
/// Byte offset of the hop counter inside the header (mutated by relays).
const HOP_OFF: usize = 2 + 8 + SPAN_LEN;

/// Bound on the dedup window (message ids remembered per node).
const SEEN_CAP: usize = 1 << 16;

/// Sentinel "link index" for locally-originated traffic routed through
/// the demux thread (the sequencer's own TOB submissions).
const LOCAL: usize = usize::MAX;

/// Neighbor offsets for an `n`-node circulant graph of total degree
/// ≈ `mesh_degree`: powers of two strictly below `n/2` (so an offset
/// and its mirror never coincide), truncated to `ceil(mesh_degree/2)`.
/// Always at least one offset — the ring keeps the graph connected.
pub fn flood_offsets(n: usize, mesh_degree: usize) -> Vec<usize> {
    if n <= 1 {
        return Vec::new();
    }
    let mut offsets = Vec::new();
    let mut o = 1;
    while o * 2 < n {
        offsets.push(o);
        o *= 2;
    }
    if offsets.is_empty() {
        offsets.push(1); // n == 2 or 3: the ring is the whole graph
    }
    offsets.truncate(mesh_degree.div_ceil(2).max(1));
    offsets
}

struct LinkConn {
    stream: TcpStream,
    cipher: SendCipher,
}

/// One established, encrypted neighbor link.
struct Link {
    peer: NodeId,
    conn: Mutex<LinkConn>,
}

struct GossipMetrics {
    sent: PeerTraffic,
    recv: PeerTraffic,
    send_errors: Arc<theta_metrics::Counter>,
    reader_exits: Arc<theta_metrics::Counter>,
    aead_failures: Arc<theta_metrics::Counter>,
    relayed: Arc<theta_metrics::Counter>,
    duplicates: Arc<theta_metrics::Counter>,
}

struct GossipShared {
    links: Vec<Link>,
    id: NodeId,
    /// Message-id counter for frames this node originates.
    msg_counter: AtomicU64,
    /// Sequencer state (used only on node 1's demux thread).
    tob_seq: AtomicU64,
    connects_established: AtomicU64,
    health: LinkHealth,
    metrics: OnceLock<GossipMetrics>,
    /// Estimated wall-clock offset to each node (µs to *add* to our
    /// wall clock to land on theirs); only neighbor slots are probed,
    /// the rest stay 0.
    clock_offsets: Vec<AtomicI64>,
    journal: OnceLock<Arc<TraceJournal>>,
}

impl GossipShared {
    /// Seals and sends `body` on link `idx`, counting failures.
    fn send_on_link(&self, idx: usize, body: &[u8]) {
        let link = &self.links[idx];
        let mut conn = link.conn.lock();
        let result = {
            let LinkConn { stream, cipher } = &mut *conn;
            handshake::write_sealed(stream, cipher, body)
        };
        match result {
            Ok(()) => {
                if let Some(m) = self.metrics.get() {
                    m.sent.count(link.peer, body.len() + 16);
                }
            }
            Err(_) => {
                self.health.send_errors.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.metrics.get() {
                    m.send_errors.inc();
                }
            }
        }
    }

    /// Sends `body` on every link except `except` (use [`LOCAL`] for
    /// "all links": the initial flood of an own message).
    fn flood(&self, body: &[u8], except: usize) {
        for idx in 0..self.links.len() {
            if idx != except {
                self.send_on_link(idx, body);
            }
        }
    }

    /// Builds a flood frame this node originates (fresh message id),
    /// stamping the trace context. `hop` is 1 for frames about to
    /// traverse their first link, 0 for a sequencer-local submit that
    /// has not travelled yet.
    fn own_frame(&self, kind: u8, span: &[u8; SPAN_LEN], hop: u8, rest: &[u8]) -> Vec<u8> {
        let counter = self.msg_counter.fetch_add(1, Ordering::Relaxed);
        let mut body = Vec::with_capacity(HEADER_LEN + rest.len());
        body.extend_from_slice(&self.id.to_le_bytes());
        body.extend_from_slice(&counter.to_le_bytes());
        body.extend_from_slice(span);
        body.push(hop);
        body.push(kind);
        body.extend_from_slice(rest);
        body
    }

    /// Journals an envelope leaving this node (`peer` 0 = broadcast).
    fn trace_send(&self, peer: NodeId, payload: &[u8]) {
        if let (Some(j), Some(key)) = (self.journal.get(), peek_key(payload)) {
            let span = span_of(payload);
            j.record_full(key, TraceEventKind::PeerSend, peer, format!("span={}", span_hex(&span)));
        }
    }

    /// Journals an envelope delivered to this node's event channel.
    fn trace_recv(&self, peer: NodeId, span: &[u8; SPAN_LEN], hop: u8, payload: &[u8]) {
        if let (Some(j), Some(key)) = (self.journal.get(), peek_key(payload)) {
            j.record_full(
                key,
                TraceEventKind::PeerRecv,
                peer,
                format!("span={} hop={hop}", span_hex(span)),
            );
        }
    }

    fn count_reader_exit(&self) {
        self.health.reader_exits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.reader_exits.inc();
        }
    }

    fn count_aead_failure(&self) {
        self.health.aead_failures.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.aead_failures.inc();
        }
    }
}

/// A node of the gossip overlay. Implements [`Network`] with the same
/// semantics as the full mesh — P2P broadcast/direct plus TOB — over
/// O(degree) connections.
pub struct GossipMeshNode {
    shared: Arc<GossipShared>,
    n: usize,
    events: Receiver<NetworkEvent>,
    raw_tx: Sender<(usize, Vec<u8>)>,
}

/// Builder for the gossip overlay.
pub struct GossipMesh;

impl GossipMesh {
    /// Connects node `id` into an `n`-node gossip overlay of total
    /// degree ≈ `mesh_degree` (see [`flood_offsets`]), binding the
    /// listener at `addrs[id-1]`.
    ///
    /// # Errors
    ///
    /// [`NetworkError`] when binding, dialing or a handshake fail.
    pub fn connect(
        id: NodeId,
        addrs: &[SocketAddr],
        auth: MeshAuth,
        mesh_degree: usize,
    ) -> Result<GossipMeshNode, NetworkError> {
        let n = addrs.len();
        if id == 0 || id as usize > n {
            return Err(NetworkError::Setup(format!("node id {id} outside 1..={n}")));
        }
        let listener = TcpListener::bind(addrs[id as usize - 1])?;
        Self::connect_listener(id, listener, addrs, auth, mesh_degree)
    }

    /// Like [`GossipMesh::connect`], but with a pre-bound listener
    /// (the OS-assigned-port pattern; `addrs[id-1]` is ignored).
    ///
    /// Dialing and accepting run concurrently — the overlay graph has
    /// cycles, so a node must be able to accept its in-neighbors while
    /// its own dials are still in flight.
    ///
    /// # Errors
    ///
    /// [`NetworkError`] on bind/dial/handshake failure, an unexpected
    /// or duplicate in-neighbor, or a mute dialer timing out setup.
    pub fn connect_listener(
        id: NodeId,
        listener: TcpListener,
        addrs: &[SocketAddr],
        auth: MeshAuth,
        mesh_degree: usize,
    ) -> Result<GossipMeshNode, NetworkError> {
        let n = addrs.len();
        if id == 0 || id as usize > n {
            return Err(NetworkError::Setup(format!("node id {id} outside 1..={n}")));
        }
        if auth.roster.len() != n {
            return Err(NetworkError::Setup(format!(
                "roster has {} entries for a {n}-node mesh",
                auth.roster.len()
            )));
        }
        let auth = Arc::new(auth);
        let offsets = flood_offsets(n, mesh_degree);
        let out_peers: Vec<NodeId> = offsets
            .iter()
            .map(|o| ((id as usize - 1 + o) % n + 1) as NodeId)
            .collect();
        let in_peers: HashSet<NodeId> = offsets
            .iter()
            .map(|o| ((id as usize - 1 + n - o) % n + 1) as NodeId)
            .collect();

        // Dial out-neighbors on a separate thread while accepting
        // in-neighbors here: the ring has cycles, so doing these
        // sequentially would deadlock the whole overlay.
        let dialer = {
            let addrs = addrs.to_vec();
            let auth = auth.clone();
            std::thread::spawn(
                move || -> Result<Vec<(NodeId, TcpStream, Session, i64)>, NetworkError> {
                    let mut out = Vec::new();
                    for peer in out_peers {
                        let mut stream = dial_with_retry(addrs[peer as usize - 1])?;
                        // Flood frames and clock probes are small and
                        // latency-sensitive; Nagle would hold them for
                        // the previous frame's ACK.
                        stream.set_nodelay(true).ok();
                        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
                        let responder_static = auth.roster.get(peer).ok_or_else(|| {
                            NetworkError::Setup(format!("no roster entry for {peer}"))
                        })?;
                        let mut session =
                            handshake::initiate(&mut stream, id, &auth.identity, responder_static)?;
                        let offset = handshake::offset_probe_initiate(&mut stream, &mut session)?;
                        stream.set_read_timeout(None)?;
                        out.push((peer, stream, session, offset));
                    }
                    Ok(out)
                },
            )
        };

        let mut accepted = HashSet::new();
        let mut inbound = Vec::new();
        while accepted.len() < in_peers.len() {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
            let (peer_id, mut session) =
                handshake::respond(&mut stream, &auth.identity, &auth.roster)?;
            if !in_peers.contains(&peer_id) {
                return Err(NetworkError::Setup(format!(
                    "unexpected in-neighbor {peer_id} (expected one of {in_peers:?})"
                )));
            }
            if !accepted.insert(peer_id) {
                return Err(NetworkError::Setup(format!(
                    "duplicate hello from peer {peer_id}: a connection for that id is already \
                     established"
                )));
            }
            let offset = handshake::offset_probe_respond(&mut stream, &mut session)?;
            stream.set_read_timeout(None)?;
            inbound.push((peer_id, stream, session, offset));
        }
        let outbound = dialer
            .join()
            .map_err(|_| NetworkError::Setup("dialer thread panicked".into()))??;

        let (raw_tx, raw_rx) = unbounded::<(usize, Vec<u8>)>();
        let mut links = Vec::new();
        let mut readers = Vec::new();
        let mut offsets = vec![0i64; n];
        for (peer, stream, session, offset) in outbound.into_iter().chain(inbound) {
            readers.push((stream.try_clone()?, links.len(), peer, session.recv));
            links.push(Link {
                peer,
                conn: Mutex::new(LinkConn { stream, cipher: session.send }),
            });
            offsets[peer as usize - 1] = offset;
        }
        let connects = links.len() as u64;
        let shared = Arc::new(GossipShared {
            links,
            id,
            msg_counter: AtomicU64::new(0),
            tob_seq: AtomicU64::new(0),
            connects_established: AtomicU64::new(connects),
            health: LinkHealth::default(),
            metrics: OnceLock::new(),
            clock_offsets: offsets.into_iter().map(AtomicI64::new).collect(),
            journal: OnceLock::new(),
        });
        shared.health.handshakes.store(connects, Ordering::Relaxed);
        for (stream, idx, peer, recv) in readers {
            spawn_link_reader(stream, idx, peer, recv, raw_tx.clone(), shared.clone());
        }
        let (events_tx, events_rx) = unbounded::<NetworkEvent>();
        spawn_flood_demux(raw_rx, events_tx, shared.clone());
        Ok(GossipMeshNode { shared, n, events: events_rx, raw_tx })
    }
}

impl GossipMeshNode {
    /// Number of live-at-setup neighbor links (the node's degree).
    pub fn degree(&self) -> usize {
        self.shared.links.len()
    }

    /// The distinct neighbor ids this node is linked to.
    pub fn neighbors(&self) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = self.shared.links.iter().map(|l| l.peer).collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// Failure injection: tears down every link to `peer` (both sides'
    /// readers see the shutdown). The overlay keeps routing around the
    /// lost edge as long as the remaining graph is connected.
    pub fn drop_link(&self, peer: NodeId) {
        for link in &self.shared.links {
            if link.peer == peer {
                let _ = link.conn.lock().stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// A detached failure-injection handle, usable after the node itself
    /// has been boxed into the orchestration layer (integration tests
    /// drop or corrupt links *mid-protocol* through this).
    pub fn link_controller(&self) -> GossipLinkController {
        GossipLinkController { shared: self.shared.clone() }
    }
}

/// Failure injection for a gossip node whose [`GossipMeshNode`] has been
/// handed off (e.g. to `spawn_node`): drop links or corrupt frames on
/// the wire to exercise partition and tamper handling.
pub struct GossipLinkController {
    shared: Arc<GossipShared>,
}

impl GossipLinkController {
    /// See [`GossipMeshNode::drop_link`].
    pub fn drop_link(&self, peer: NodeId) {
        for link in &self.shared.links {
            if link.peer == peer {
                let _ = link.conn.lock().stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Writes a garbage frame (valid length prefix, unauthenticated
    /// bytes) directly onto the first link to `peer`, bypassing the
    /// session cipher — the peer's AEAD open must fail and tear the
    /// link down.
    pub fn corrupt_link(&self, peer: NodeId) {
        use std::io::Write;
        if let Some(link) = self.shared.links.iter().find(|l| l.peer == peer) {
            let mut conn = link.conn.lock();
            let garbage = [0x5au8; 24];
            let _ = conn.stream.write_all(&(garbage.len() as u32).to_le_bytes());
            let _ = conn.stream.write_all(&garbage);
        }
    }

    /// The node's link-health tallies `(send_errors, reader_exits,
    /// aead_failures)` — lets tests observe teardown without a registry.
    pub fn health(&self) -> (u64, u64, u64) {
        (
            self.shared.health.send_errors.load(Ordering::Relaxed),
            self.shared.health.reader_exits.load(Ordering::Relaxed),
            self.shared.health.aead_failures.load(Ordering::Relaxed),
        )
    }
}

/// Parsed flood-frame header. Owned (no borrow of the frame), so the
/// demux can increment the hop byte in the frame buffer before
/// re-flooding it.
struct FloodMsg {
    origin: NodeId,
    counter: u64,
    span: [u8; SPAN_LEN],
    hop: u8,
    kind: u8,
}

fn parse_flood(body: &[u8]) -> Option<FloodMsg> {
    if body.len() < HEADER_LEN {
        return None;
    }
    let origin = NodeId::from_le_bytes([body[0], body[1]]);
    let mut counter_bytes = [0u8; 8];
    counter_bytes.copy_from_slice(&body[2..10]);
    let mut span = [0u8; SPAN_LEN];
    span.copy_from_slice(&body[10..10 + SPAN_LEN]);
    Some(FloodMsg {
        origin,
        counter: u64::from_le_bytes(counter_bytes),
        span,
        hop: body[HOP_OFF],
        kind: body[HOP_OFF + 1],
    })
}

/// The protocol payload inside a flood frame's `rest`, for journal
/// keying: what [`peek_key`] should look at per message kind.
fn inner_payload(kind: u8, rest: &[u8]) -> Option<&[u8]> {
    match kind {
        KIND_P2P_BCAST | KIND_TOB_SUBMIT => Some(rest),
        KIND_P2P_DIRECT => rest.get(2..),
        KIND_TOB_DELIVER => rest.get(10..),
        _ => None,
    }
}

/// Reads AEAD frames off one link and feeds them (tagged with the link
/// index, for relay exclusion) into the demux. Same teardown rules as
/// the full mesh: AEAD failure kills the link, every exit is counted.
// theta: event-loop
fn spawn_link_reader(
    mut stream: TcpStream,
    link_idx: usize,
    peer: NodeId,
    mut cipher: RecvCipher,
    tx: Sender<(usize, Vec<u8>)>,
    shared: Arc<GossipShared>,
) {
    std::thread::Builder::new()
        .name(format!("theta-gossip-reader-{peer}"))
        .spawn(move || {
            loop {
                let body = match handshake::read_sealed(&mut stream, &mut cipher) {
                    Ok(body) => body,
                    Err(e) => {
                        if e.kind() == std::io::ErrorKind::InvalidData {
                            shared.count_aead_failure();
                            let _ = stream.shutdown(std::net::Shutdown::Both);
                        }
                        break;
                    }
                };
                if let Some(m) = shared.metrics.get() {
                    m.recv.count(peer, body.len() + 16);
                }
                if tx.send((link_idx, body)).is_err() {
                    break;
                }
            }
            shared.count_reader_exit();
        })
        .expect("spawn gossip reader");
}

/// The flood engine: dedups by message id (remembering the best hop
/// count seen per message), relays fresh frames — and shorter-path
/// duplicates — to every other link, and demultiplexes P2P/TOB into the
/// ordered event channel. Single-threaded by construction, so the dedup
/// window, the reorder buffer and (on node 1) the sequencer state need
/// no further locking.
// theta: event-loop
// theta: entrypoint(network)
fn spawn_flood_demux(
    raw_rx: Receiver<(usize, Vec<u8>)>,
    events_tx: Sender<NetworkEvent>,
    shared: Arc<GossipShared>,
) {
    std::thread::Builder::new()
        .name(format!("theta-gossip-demux-{}", shared.id))
        .spawn(move || {
            let sequencing = shared.id == SEQUENCER;
            let mut reorder = TobReorderBuffer::new();
            // Message id → smallest hop count any copy arrived with.
            let mut seen: HashMap<(NodeId, u64), u8> = HashMap::new();
            let mut seen_fifo: VecDeque<(NodeId, u64)> = VecDeque::new();
            // theta: allow(blocking): the demux thread's designated wait — it owns this queue and has nothing else to do
            while let Ok((link_idx, mut body)) = raw_rx.recv() {
                let Some(msg) = parse_flood(&body) else {
                    continue; // malformed (but authenticated) frame
                };
                let from_local = link_idx == LOCAL;
                if !from_local {
                    if msg.origin == shared.id {
                        continue; // echo of our own flood
                    }
                    let dedup_key = (msg.origin, msg.counter);
                    let best = seen.get(&dedup_key).copied();
                    if let Some(best) = best {
                        // A duplicate copy. It still crossed a link, so
                        // journal it (for the kinds every node journals
                        // on first sight) — then, if it witnesses a
                        // *shorter* path than the copy that won the
                        // arrival race, relay the improvement onward
                        // (asynchronous distance relaxation): without
                        // this a node whose first copy came the long
                        // way poisons every downstream hop count, and
                        // per-pair minimum hops would only match the
                        // topology's shortest paths probabilistically.
                        // Hops strictly decrease per improvement, so
                        // the extra relays are bounded by the graph
                        // diameter per message. The payload itself is
                        // never re-delivered.
                        if matches!(msg.kind, KIND_P2P_BCAST | KIND_TOB_DELIVER) {
                            if let Some(inner) = inner_payload(msg.kind, &body[HEADER_LEN..]) {
                                shared.trace_recv(msg.origin, &msg.span, msg.hop, inner);
                            }
                        }
                        if msg.hop < best {
                            seen.insert(dedup_key, msg.hop);
                            body[HOP_OFF] = msg.hop.saturating_add(1);
                            shared.flood(&body, link_idx);
                            if let Some(m) = shared.metrics.get() {
                                m.relayed.inc();
                            }
                        } else if let Some(m) = shared.metrics.get() {
                            m.duplicates.inc();
                        }
                        continue;
                    }
                    seen.insert(dedup_key, msg.hop);
                    seen_fifo.push_back(dedup_key);
                    if seen_fifo.len() > SEEN_CAP {
                        if let Some(old) = seen_fifo.pop_front() {
                            seen.remove(&old);
                        }
                    }
                    // First sight: increment the hop count (the copies
                    // we forward have crossed one more link) and relay
                    // to everyone except the arrival link *before*
                    // local processing, to keep the flood front moving.
                    body[HOP_OFF] = msg.hop.saturating_add(1);
                    shared.flood(&body, link_idx);
                    body[HOP_OFF] = msg.hop;
                    if let Some(m) = shared.metrics.get() {
                        m.relayed.inc();
                    }
                    if let Some(j) = shared.journal.get() {
                        if let Some(key) =
                            inner_payload(msg.kind, &body[HEADER_LEN..]).and_then(peek_key)
                        {
                            j.record_full(
                                key,
                                TraceEventKind::RelayHop,
                                shared.links[link_idx].peer,
                                format!(
                                    "origin={} span={} hop={}",
                                    msg.origin,
                                    span_hex(&msg.span),
                                    msg.hop.saturating_add(1)
                                ),
                            );
                        }
                    }
                }
                let rest = &body[HEADER_LEN..];
                let released = match msg.kind {
                    KIND_P2P_BCAST => {
                        shared.trace_recv(msg.origin, &msg.span, msg.hop, rest);
                        vec![NetworkEvent::P2p { from: msg.origin, payload: rest.to_vec() }]
                    }
                    KIND_P2P_DIRECT => {
                        if rest.len() < 2 {
                            continue;
                        }
                        let to = NodeId::from_le_bytes([rest[0], rest[1]]);
                        if to != shared.id {
                            continue; // relayed above; not for us
                        }
                        shared.trace_recv(msg.origin, &msg.span, msg.hop, &rest[2..]);
                        vec![NetworkEvent::P2p {
                            from: msg.origin,
                            payload: rest[2..].to_vec(),
                        }]
                    }
                    KIND_TOB_SUBMIT => {
                        if !sequencing {
                            continue; // relayed above; the sequencer acts
                        }
                        if !from_local {
                            shared.trace_recv(msg.origin, &msg.span, msg.hop, rest);
                        }
                        let seq = shared.tob_seq.fetch_add(1, Ordering::SeqCst);
                        let mut deliver_rest = Vec::with_capacity(8 + 2 + rest.len());
                        deliver_rest.extend_from_slice(&seq.to_le_bytes());
                        deliver_rest.extend_from_slice(&msg.origin.to_le_bytes());
                        deliver_rest.extend_from_slice(rest);
                        // The delivery continues the submit's causal
                        // chain: it leaves here having crossed the
                        // submit's hops plus the link it is about to
                        // take (a local submit has crossed none yet).
                        let out_hop = msg.hop.saturating_add(1);
                        let deliver =
                            shared.own_frame(KIND_TOB_DELIVER, &msg.span, out_hop, &deliver_rest);
                        if let Some(j) = shared.journal.get() {
                            if let Some(key) = peek_key(rest) {
                                if from_local {
                                    j.record_full(
                                        key,
                                        TraceEventKind::PeerSend,
                                        0,
                                        format!("span={}", span_hex(&msg.span)),
                                    );
                                } else {
                                    j.record_full(
                                        key,
                                        TraceEventKind::RelayHop,
                                        msg.origin,
                                        format!(
                                            "origin={} span={} hop={out_hop}",
                                            msg.origin,
                                            span_hex(&msg.span)
                                        ),
                                    );
                                }
                            }
                        }
                        shared.flood(&deliver, LOCAL);
                        reorder.insert(seq, msg.origin, rest.to_vec())
                    }
                    KIND_TOB_DELIVER => {
                        if rest.len() < 10 {
                            continue;
                        }
                        let mut seq_bytes = [0u8; 8];
                        seq_bytes.copy_from_slice(&rest[..8]);
                        let seq = u64::from_le_bytes(seq_bytes);
                        let from = NodeId::from_le_bytes([rest[8], rest[9]]);
                        shared.trace_recv(msg.origin, &msg.span, msg.hop, &rest[10..]);
                        reorder.insert(seq, from, rest[10..].to_vec())
                    }
                    _ => continue,
                };
                for ev in released {
                    if events_tx.send(ev).is_err() {
                        return;
                    }
                }
            }
        })
        .expect("spawn gossip demux");
}

impl Drop for GossipMeshNode {
    fn drop(&mut self) {
        for link in &self.shared.links {
            let _ = link.conn.lock().stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Network for GossipMeshNode {
    fn node_id(&self) -> NodeId {
        self.shared.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn broadcast_p2p(&self, payload: Vec<u8>) {
        self.shared.trace_send(0, &payload);
        let body = self.shared.own_frame(KIND_P2P_BCAST, &span_of(&payload), 1, &payload);
        self.shared.flood(&body, LOCAL);
    }

    fn send_to(&self, peer: NodeId, payload: Vec<u8>) {
        if peer == self.shared.id {
            return;
        }
        self.shared.trace_send(peer, &payload);
        let mut rest = Vec::with_capacity(2 + payload.len());
        rest.extend_from_slice(&peer.to_le_bytes());
        rest.extend_from_slice(&payload);
        let body = self.shared.own_frame(KIND_P2P_DIRECT, &span_of(&payload), 1, &rest);
        self.shared.flood(&body, LOCAL);
    }

    fn submit_tob(&self, payload: Vec<u8>) {
        let span = span_of(&payload);
        if self.shared.id == SEQUENCER {
            // Route through the demux thread: a single owner serializes
            // local submissions with the flooded ones. Hop 0: the frame
            // has not traversed a link yet (the delivery it turns into
            // records the PeerSend).
            let body = self.shared.own_frame(KIND_TOB_SUBMIT, &span, 0, &payload);
            let _ = self.raw_tx.send((LOCAL, body));
        } else {
            self.shared.trace_send(SEQUENCER, &payload);
            let body = self.shared.own_frame(KIND_TOB_SUBMIT, &span, 1, &payload);
            self.shared.flood(&body, LOCAL);
        }
    }

    fn events(&self) -> &Receiver<NetworkEvent> {
        &self.events
    }

    fn attach_registry(&mut self, registry: &Arc<theta_metrics::MetricsRegistry>) {
        let metrics = GossipMetrics {
            sent: PeerTraffic::register(
                registry,
                "theta_net_messages_sent_total",
                "theta_net_bytes_sent_total",
                self.n,
            ),
            recv: PeerTraffic::register(
                registry,
                "theta_net_messages_received_total",
                "theta_net_bytes_received_total",
                self.n,
            ),
            send_errors: registry.counter("theta_tcp_send_errors_total"),
            reader_exits: registry.counter("theta_tcp_reader_exits_total"),
            aead_failures: registry.counter("theta_net_aead_failures_total"),
            relayed: registry.counter("theta_gossip_relayed_total"),
            duplicates: registry.counter("theta_gossip_duplicates_total"),
        };
        registry
            .counter("theta_net_connects_total")
            .add(self.shared.connects_established.load(Ordering::Relaxed));
        registry
            .counter("theta_net_handshakes_total")
            .add(self.shared.health.handshakes.load(Ordering::Relaxed));
        metrics
            .send_errors
            .add(self.shared.health.send_errors.load(Ordering::Relaxed));
        metrics
            .reader_exits
            .add(self.shared.health.reader_exits.load(Ordering::Relaxed));
        metrics
            .aead_failures
            .add(self.shared.health.aead_failures.load(Ordering::Relaxed));
        // Pairwise clock offsets for probed (neighbor) links.
        let neighbors: HashSet<NodeId> = self.shared.links.iter().map(|l| l.peer).collect();
        for peer in neighbors {
            let off = self.shared.clock_offsets[peer as usize - 1].load(Ordering::Relaxed);
            registry
                .gauge_with("theta_clock_offset_micros", &[("peer", &peer.to_string())])
                .set(off);
        }
        let _ = self.shared.metrics.set(metrics);
    }

    fn attach_journal(&mut self, journal: &Arc<TraceJournal>) {
        let _ = self.shared.journal.set(journal.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{IpAddr, Ipv4Addr};
    use std::time::Duration;

    const TICK: Duration = Duration::from_secs(5);

    fn build_gossip(n: u16, degree: usize, seed: u64) -> Vec<GossipMeshNode> {
        let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind(loopback).expect("bind ephemeral"))
            .collect();
        let addrs: Vec<SocketAddr> =
            listeners.iter().map(|l| l.local_addr().expect("local addr")).collect();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let list = addrs.clone();
                std::thread::spawn(move || {
                    let auth = MeshAuth::insecure_dev(i as u16 + 1, n, seed);
                    GossipMesh::connect_listener(i as u16 + 1, listener, &list, auth, degree)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn offsets_are_powers_of_two_truncated_by_degree() {
        assert_eq!(flood_offsets(20, 6), vec![1, 2, 4]);
        assert_eq!(flood_offsets(20, 2), vec![1]);
        assert_eq!(flood_offsets(20, 100), vec![1, 2, 4, 8]);
        assert_eq!(flood_offsets(2, 4), vec![1]);
        assert_eq!(flood_offsets(3, 4), vec![1]);
        assert_eq!(flood_offsets(1, 4), Vec::<usize>::new());
        // Offsets stay strictly below n/2: no offset collides with its
        // mirror, so dialing and accepting never race on the same edge.
        for off in flood_offsets(64, 100) {
            assert!(off * 2 < 64);
        }
    }

    #[test]
    fn degree_is_sublinear() {
        let nodes = build_gossip(8, 4, 21);
        for node in &nodes {
            assert!(
                node.degree() < 7,
                "degree {} is not sublinear for n=8",
                node.degree()
            );
            assert_eq!(node.degree(), 4); // offsets {1,2}: 2 out + 2 in
        }
    }

    #[test]
    fn broadcast_floods_to_all_nodes() {
        let nodes = build_gossip(8, 4, 22);
        nodes[2].broadcast_p2p(b"flood hello".to_vec());
        for (i, node) in nodes.iter().enumerate() {
            if i == 2 {
                continue;
            }
            let ev = node.recv_timeout(TICK).expect("flood delivery");
            assert_eq!(ev, NetworkEvent::P2p { from: 3, payload: b"flood hello".to_vec() });
        }
        // The origin must not see its own broadcast echoed back.
        assert!(nodes[2].recv_timeout(Duration::from_millis(100)).is_none());
    }

    #[test]
    fn direct_send_reaches_only_the_target() {
        let nodes = build_gossip(6, 2, 23);
        // Node 2 → node 5: several ring hops away, so the frame is
        // relayed through nodes that must not deliver it.
        nodes[1].send_to(5, b"for five".to_vec());
        let ev = nodes[4].recv_timeout(TICK).expect("direct delivery");
        assert_eq!(ev, NetworkEvent::P2p { from: 2, payload: b"for five".to_vec() });
        for (i, node) in nodes.iter().enumerate() {
            if i == 4 {
                continue;
            }
            assert!(
                node.recv_timeout(Duration::from_millis(100)).is_none(),
                "node {} saw a frame addressed to node 5",
                i + 1
            );
        }
    }

    #[test]
    fn tob_total_order_over_gossip() {
        let nodes = build_gossip(5, 2, 24);
        nodes[1].submit_tob(b"x".to_vec());
        nodes[4].submit_tob(b"y".to_vec());
        nodes[0].submit_tob(b"z".to_vec());
        let mut views = Vec::new();
        for node in &nodes {
            let mut seen = Vec::new();
            for _ in 0..3 {
                match node.recv_timeout(TICK) {
                    Some(NetworkEvent::Tob { seq, payload, .. }) => seen.push((seq, payload)),
                    other => panic!("expected tob, got {other:?}"),
                }
            }
            views.push(seen);
        }
        for v in &views[1..] {
            assert_eq!(*v, views[0]);
        }
    }

    #[test]
    fn flood_survives_a_dropped_link() {
        // Degree 4 (offsets {1,2}) on 6 nodes: dropping one edge leaves
        // the graph connected, so broadcasts still reach everyone.
        let nodes = build_gossip(6, 4, 25);
        nodes[0].drop_link(2);
        nodes[1].drop_link(1);
        std::thread::sleep(Duration::from_millis(50)); // let readers die
        nodes[0].broadcast_p2p(b"around the gap".to_vec());
        for node in &nodes[1..] {
            let ev = node.recv_timeout(TICK).expect("delivery despite dropped link");
            assert_eq!(
                ev,
                NetworkEvent::P2p { from: 1, payload: b"around the gap".to_vec() }
            );
        }
    }

    #[test]
    fn tampered_frame_tears_the_link_down_without_crashing() {
        let mut nodes = build_gossip(4, 2, 26);
        let registry = Arc::new(theta_metrics::MetricsRegistry::new());
        nodes[1].attach_registry(&registry);

        // Corrupt bytes injected on node 1's link toward node 2.
        {
            let link = nodes[0]
                .shared
                .links
                .iter()
                .find(|l| l.peer == 2)
                .expect("ring link 1→2");
            let mut conn = link.conn.lock();
            let garbage = [7u8; 8];
            conn.stream.write_all(&(garbage.len() as u32).to_le_bytes()).unwrap();
            conn.stream.write_all(&garbage).unwrap();
        }

        let deadline = std::time::Instant::now() + TICK;
        loop {
            let aead = registry
                .counter_value("theta_net_aead_failures_total", &[])
                .unwrap_or(0);
            if aead >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "aead failure never surfaced on the tampered link"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // The victim stays up, and the flood routes around the dead
        // edge (ring direction 2→3→4→1 still works).
        nodes[1].broadcast_p2p(b"still alive".to_vec());
        for (i, node) in nodes.iter().enumerate() {
            if i == 1 {
                continue;
            }
            let ev = node.recv_timeout(TICK).expect("flood after teardown");
            assert_eq!(
                ev,
                NetworkEvent::P2p { from: 2, payload: b"still alive".to_vec() }
            );
        }
    }

    /// The trace context rides the flood: a direct send three ring hops
    /// away arrives with `hop = 3` journaled, and intermediate nodes
    /// journal the relay.
    #[test]
    fn hop_count_reflects_ring_distance() {
        let mut nodes = build_gossip(6, 2, 28); // offsets [1]: a pure ring
        let journals: Vec<Arc<TraceJournal>> =
            (0..6).map(|_| Arc::new(TraceJournal::new(256))).collect();
        for (node, j) in nodes.iter_mut().zip(&journals) {
            node.attach_journal(j);
        }

        let mut instance = [0u8; 32];
        instance[..4].copy_from_slice(&[0xca, 0xfe, 0xf0, 0x0d]);
        let payload = instance.to_vec();
        nodes[0].send_to(4, payload); // 1 → 4: three links either way
        let ev = nodes[3].recv_timeout(TICK).expect("direct delivery");
        assert!(matches!(ev, NetworkEvent::P2p { from: 1, .. }));

        let deadline = std::time::Instant::now() + TICK;
        let recv = loop {
            if let Some(ev) = journals[3]
                .events_for(&instance)
                .into_iter()
                .find(|e| e.kind == TraceEventKind::PeerRecv)
            {
                break ev;
            }
            assert!(std::time::Instant::now() < deadline, "receive never journaled");
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(recv.peer, 1, "PeerRecv must carry the origin");
        assert!(recv.detail.contains("span=cafef00d00000000"), "detail: {}", recv.detail);
        assert!(recv.detail.contains("hop=3"), "detail: {}", recv.detail);

        // An intermediate ring node (2 or 6, one hop from the origin)
        // journaled the relay with the incremented hop.
        let relay = journals[1]
            .events_for(&instance)
            .into_iter()
            .chain(journals[5].events_for(&instance))
            .find(|e| e.kind == TraceEventKind::RelayHop)
            .expect("an adjacent node must have relayed");
        assert!(relay.detail.contains("origin=1"), "detail: {}", relay.detail);
        assert!(relay.detail.contains("hop=2"), "detail: {}", relay.detail);
    }

    #[test]
    fn duplicate_floods_are_counted_not_delivered() {
        let mut nodes = build_gossip(4, 4, 27);
        // All four nodes share one registry (same counter names resolve
        // to the same counter), because *which* node sees the duplicate
        // is a race: n=4 floods over the ring 1-2-3-4, and the cycle
        // guarantees some node receives a second copy, but relay timing
        // decides whether that is node 3 (one copy via each neighbor)
        // or a neighbor whose direct copy lost to the ring relay.
        let registry = Arc::new(theta_metrics::MetricsRegistry::new());
        for node in nodes.iter_mut() {
            node.attach_registry(&registry);
        }
        nodes[0].broadcast_p2p(b"dup me".to_vec());
        for node in &mut nodes[1..] {
            let ev = node.recv_timeout(TICK).expect("delivery");
            assert_eq!(ev, NetworkEvent::P2p { from: 1, payload: b"dup me".to_vec() });
        }
        // The redundant copy arrives on its own schedule: poll the
        // counter rather than sleeping a fixed interval.
        let deadline = std::time::Instant::now() + TICK;
        loop {
            let dups = registry
                .counter_value("theta_gossip_duplicates_total", &[])
                .unwrap_or(0);
            if dups >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "a flood around a cycle must produce a counted duplicate"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Exactly one delivery per node despite multiple arrival paths.
        for node in &mut nodes[1..] {
            assert!(node.recv_timeout(Duration::from_millis(100)).is_none());
        }
    }
}
