//! In-process mesh with latency injection, loss and partitions.
//!
//! The hub owns one delivery-scheduler thread: every sent message is
//! stamped with a delivery deadline drawn from its link's
//! [`LinkProfile`] and released to the destination's channel when due.
//! This is what lets integration tests and the live benchmarks replay
//! the paper's local (0.65 ms) and global (43–100 ms) RTT regimes on one
//! machine.

use crate::demux::{peek_key, span_hex, span_of};
use crate::{LinkProfile, Network, NetworkEvent, NodeId, PeerTraffic, TobReorderBuffer};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use theta_metrics::{TraceEventKind, TraceJournal};

/// Configuration of the simulated mesh.
#[derive(Clone, Debug)]
pub struct InMemoryConfig {
    /// Latency profile applied to every (ordered) node pair. The function
    /// receives 1-based ids.
    pub default_link: LinkProfile,
    /// Probability that a P2P message is silently dropped (0.0 = reliable).
    pub drop_probability: f64,
    /// RNG seed for jitter/loss reproducibility.
    pub seed: u64,
}

impl Default for InMemoryConfig {
    fn default() -> Self {
        InMemoryConfig {
            default_link: LinkProfile::fixed(Duration::ZERO),
            drop_probability: 0.0,
            seed: 0,
        }
    }
}

struct ScheduledDelivery {
    due: Instant,
    target: usize,
    event: Delivery,
}

enum Delivery {
    P2p { from: NodeId, payload: Vec<u8> },
    Tob { seq: u64, from: NodeId, payload: Vec<u8> },
}

impl PartialEq for ScheduledDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for ScheduledDelivery {}
impl PartialOrd for ScheduledDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScheduledDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on `due`.
        other.due.cmp(&self.due)
    }
}

struct HubInner {
    outboxes: Vec<Sender<NetworkEvent>>,
    links: Mutex<Vec<Vec<LinkProfile>>>,
    blocked: Mutex<HashSet<(NodeId, NodeId)>>,
    drop_probability: Mutex<f64>,
    rng: Mutex<rand::rngs::StdRng>,
    tob_seq: AtomicU64,
    scheduler_tx: Sender<ScheduledDelivery>,
    shutdown: Arc<AtomicBool>,
    /// Per-target receive counters, registered lazily by each node's
    /// `attach_registry` and read by the scheduler on delivery.
    recv_counters: Mutex<Vec<Option<Arc<PeerTraffic>>>>,
    /// Per-target trace journals, registered lazily by each node's
    /// `attach_journal`; the scheduler records `PeerRecv` on delivery
    /// (in-process links are single-hop, so `hop` is always 1).
    journals: Mutex<Vec<Option<Arc<TraceJournal>>>>,
}

impl HubInner {
    fn link(&self, from: NodeId, to: NodeId) -> LinkProfile {
        self.links.lock()[from as usize - 1][to as usize - 1]
    }

    fn delay(&self, from: NodeId, to: NodeId) -> Duration {
        let profile = self.link(from, to);
        let mut rng = self.rng.lock();
        let jitter_us = profile.jitter.as_micros() as u64;
        let extra = if jitter_us == 0 { 0 } else { rng.gen_range(0..=jitter_us) };
        profile.latency + Duration::from_micros(extra)
    }

    fn should_drop(&self, from: NodeId, to: NodeId) -> bool {
        if self.blocked.lock().contains(&(from, to)) {
            return true;
        }
        let p = *self.drop_probability.lock();
        p > 0.0 && self.rng.lock().gen_bool(p)
    }

    fn schedule(&self, target: NodeId, due: Instant, event: Delivery) {
        let _ = self.scheduler_tx.send(ScheduledDelivery {
            due,
            target: target as usize - 1,
            event,
        });
    }
}

/// The shared in-memory network hub; create one per Θ-network.
pub struct InMemoryHub {
    inner: Arc<HubInner>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl InMemoryHub {
    /// Builds a hub for `n` nodes and returns one [`Network`] handle per
    /// node (index `i` holds node id `i + 1`).
    pub fn build(n: u16, config: InMemoryConfig) -> (InMemoryHub, Vec<InMemoryNode>) {
        assert!(n >= 1, "need at least one node");
        let mut outboxes = Vec::with_capacity(n as usize);
        let mut inboxes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (tx, rx) = unbounded::<NetworkEvent>();
            outboxes.push(tx);
            inboxes.push(rx);
        }
        let links = vec![vec![config.default_link; n as usize]; n as usize];
        let (scheduler_tx, scheduler_rx) = bounded::<ScheduledDelivery>(65536);
        let shutdown = Arc::new(AtomicBool::new(false));
        let inner = Arc::new(HubInner {
            outboxes,
            links: Mutex::new(links),
            blocked: Mutex::new(HashSet::new()),
            drop_probability: Mutex::new(config.drop_probability),
            rng: Mutex::new(rand::rngs::StdRng::seed_from_u64(config.seed)),
            tob_seq: AtomicU64::new(0),
            scheduler_tx,
            shutdown: shutdown.clone(),
            recv_counters: Mutex::new(vec![None; n as usize]),
            journals: Mutex::new(vec![None; n as usize]),
        });

        let scheduler_inner = inner.clone();
        let handle = std::thread::Builder::new()
            .name("theta-net-scheduler".into())
            .spawn(move || scheduler_loop(scheduler_inner, scheduler_rx, shutdown))
            .expect("spawn scheduler");

        let nodes = (1..=n)
            .map(|id| InMemoryNode {
                id,
                n: n as usize,
                hub: inner.clone(),
                inbox: inboxes[id as usize - 1].clone(),
                sent: None,
                journal: None,
            })
            .collect();
        (InMemoryHub { inner, handle: Some(handle) }, nodes)
    }

    /// Overrides the latency profile of the directed link `from → to`.
    pub fn set_link(&self, from: NodeId, to: NodeId, profile: LinkProfile) {
        self.inner.links.lock()[from as usize - 1][to as usize - 1] = profile;
    }

    /// Blocks (partitions) or unblocks the directed link `from → to`.
    pub fn set_link_blocked(&self, from: NodeId, to: NodeId, blocked: bool) {
        let mut set = self.inner.blocked.lock();
        if blocked {
            set.insert((from, to));
        } else {
            set.remove(&(from, to));
        }
    }

    /// Isolates a node entirely (both directions, all peers).
    pub fn isolate_node(&self, node: NodeId, isolated: bool) {
        let n = self.inner.outboxes.len() as u16;
        for peer in 1..=n {
            if peer != node {
                self.set_link_blocked(node, peer, isolated);
                self.set_link_blocked(peer, node, isolated);
            }
        }
    }

    /// Updates the P2P drop probability at runtime.
    pub fn set_drop_probability(&self, p: f64) {
        *self.inner.drop_probability.lock() = p;
    }
}

impl Drop for InMemoryHub {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn scheduler_loop(
    inner: Arc<HubInner>,
    rx: Receiver<ScheduledDelivery>,
    shutdown: Arc<AtomicBool>,
) {
    let mut heap: BinaryHeap<ScheduledDelivery> = BinaryHeap::new();
    // TOB reordering is centralized here (one buffer per target node) so
    // each node's event channel already carries gap-free sequence order.
    let mut reorder: Vec<TobReorderBuffer> = (0..inner.outboxes.len())
        .map(|_| TobReorderBuffer::new())
        .collect();
    while !shutdown.load(Ordering::SeqCst) {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|d| d.due <= now) {
            let d = heap.pop().expect("peeked");
            let recv = inner.recv_counters.lock()[d.target].clone();
            let journal = inner.journals.lock()[d.target].clone();
            match d.event {
                Delivery::P2p { from, payload } => {
                    if let Some(recv) = recv {
                        recv.count(from, payload.len());
                    }
                    trace_delivery(journal.as_deref(), from, &payload);
                    let _ = inner.outboxes[d.target].send(NetworkEvent::P2p { from, payload });
                }
                Delivery::Tob { seq, from, payload } => {
                    if let Some(recv) = recv {
                        recv.count(from, payload.len());
                    }
                    trace_delivery(journal.as_deref(), from, &payload);
                    for ev in reorder[d.target].insert(seq, from, payload) {
                        let _ = inner.outboxes[d.target].send(ev);
                    }
                }
            }
        }
        // Wait for the next item or the next deadline.
        let wait = heap
            .peek()
            .map(|d| d.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(5))
            .min(Duration::from_millis(5));
        match rx.recv_timeout(wait) {
            Ok(item) => heap.push(item),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Records a `PeerRecv` for an in-memory delivery (single hop, shared
/// clock — the trace context degenerates to span + `hop=1`).
fn trace_delivery(journal: Option<&TraceJournal>, from: NodeId, payload: &[u8]) {
    if let (Some(j), Some(key)) = (journal, peek_key(payload)) {
        let span = span_of(payload);
        j.record_full(
            key,
            TraceEventKind::PeerRecv,
            from,
            format!("span={} hop=1", span_hex(&span)),
        );
    }
}

/// One node's handle onto the in-memory mesh.
pub struct InMemoryNode {
    id: NodeId,
    n: usize,
    hub: Arc<HubInner>,
    inbox: Receiver<NetworkEvent>,
    /// Per-peer send counters; `None` until `attach_registry`.
    sent: Option<PeerTraffic>,
    /// This node's trace journal; `None` until `attach_journal`.
    journal: Option<Arc<TraceJournal>>,
}

impl Network for InMemoryNode {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn broadcast_p2p(&self, payload: Vec<u8>) {
        for peer in 1..=self.n as u16 {
            if peer != self.id {
                self.send_to(peer, payload.clone());
            }
        }
    }

    fn send_to(&self, peer: NodeId, payload: Vec<u8>) {
        if peer == self.id || peer == 0 || peer as usize > self.n {
            return;
        }
        // Sends are counted before the loss/partition roll: the counter
        // reflects what this node handed to the transport.
        if let Some(sent) = &self.sent {
            sent.count(peer, payload.len());
        }
        if let (Some(j), Some(key)) = (&self.journal, peek_key(&payload)) {
            let span = span_of(&payload);
            j.record_full(
                key,
                TraceEventKind::PeerSend,
                peer,
                format!("span={}", span_hex(&span)),
            );
        }
        if self.hub.should_drop(self.id, peer) {
            return;
        }
        let due = Instant::now() + self.hub.delay(self.id, peer);
        self.hub
            .schedule(peer, due, Delivery::P2p { from: self.id, payload });
    }

    fn submit_tob(&self, payload: Vec<u8>) {
        // The TOB service is modeled as reliable (the paper treats it as a
        // black box provided by the host platform): no drops, but latency
        // still applies per destination.
        if let (Some(j), Some(key)) = (&self.journal, peek_key(&payload)) {
            let span = span_of(&payload);
            j.record_full(
                key,
                TraceEventKind::PeerSend,
                0,
                format!("span={}", span_hex(&span)),
            );
        }
        let seq = self.hub.tob_seq.fetch_add(1, Ordering::SeqCst);
        for peer in 1..=self.n as u16 {
            if let Some(sent) = &self.sent {
                sent.count(peer, payload.len());
            }
            let delay = if peer == self.id {
                Duration::ZERO
            } else {
                self.hub.delay(self.id, peer)
            };
            self.hub.schedule(
                peer,
                Instant::now() + delay,
                Delivery::Tob { seq, from: self.id, payload: payload.clone() },
            );
        }
    }

    fn events(&self) -> &Receiver<NetworkEvent> {
        &self.inbox
    }

    fn attach_registry(&mut self, registry: &Arc<theta_metrics::MetricsRegistry>) {
        self.sent = Some(PeerTraffic::register(
            registry,
            "theta_net_messages_sent_total",
            "theta_net_bytes_sent_total",
            self.n,
        ));
        let recv = Arc::new(PeerTraffic::register(
            registry,
            "theta_net_messages_received_total",
            "theta_net_bytes_received_total",
            self.n,
        ));
        self.hub.recv_counters.lock()[self.id as usize - 1] = Some(recv);
    }

    fn attach_journal(&mut self, journal: &Arc<TraceJournal>) {
        self.journal = Some(journal.clone());
        self.hub.journals.lock()[self.id as usize - 1] = Some(journal.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: u16) -> (InMemoryHub, Vec<InMemoryNode>) {
        InMemoryHub::build(n, InMemoryConfig::default())
    }

    const TICK: Duration = Duration::from_millis(500);

    #[test]
    fn p2p_broadcast_reaches_all_others() {
        let (_hub, nodes) = mesh(3);
        nodes[0].broadcast_p2p(b"hello".to_vec());
        for node in &nodes[1..] {
            let ev = node.recv_timeout(TICK).expect("delivery");
            assert_eq!(ev, NetworkEvent::P2p { from: 1, payload: b"hello".to_vec() });
        }
        // Sender does not hear its own broadcast.
        assert!(nodes[0].recv_timeout(Duration::from_millis(50)).is_none());
    }

    #[test]
    fn send_to_specific_peer() {
        let (_hub, nodes) = mesh(3);
        nodes[1].send_to(3, b"direct".to_vec());
        let ev = nodes[2].recv_timeout(TICK).unwrap();
        assert_eq!(ev, NetworkEvent::P2p { from: 2, payload: b"direct".to_vec() });
        assert!(nodes[0].recv_timeout(Duration::from_millis(50)).is_none());
    }

    #[test]
    fn tob_same_order_everywhere() {
        let (_hub, nodes) = mesh(4);
        // Concurrent submissions from several nodes.
        nodes[0].submit_tob(b"a".to_vec());
        nodes[1].submit_tob(b"b".to_vec());
        nodes[2].submit_tob(b"c".to_vec());
        let mut orders = Vec::new();
        for node in &nodes {
            let mut seen = Vec::new();
            for _ in 0..3 {
                match node.recv_timeout(TICK) {
                    Some(NetworkEvent::Tob { seq, payload, .. }) => seen.push((seq, payload)),
                    other => panic!("expected tob, got {other:?}"),
                }
            }
            orders.push(seen);
        }
        for o in &orders[1..] {
            assert_eq!(*o, orders[0], "all nodes must see the same TOB order");
        }
        // Sequence numbers are gap-free from 0.
        for (i, (seq, _)) in orders[0].iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
    }

    #[test]
    fn events_channel_delivers_in_order_without_polling() {
        use crate::Network as _;
        let (_hub, nodes) = mesh(2);
        nodes[0].submit_tob(b"first".to_vec());
        nodes[0].submit_tob(b"second".to_vec());
        // Blocking directly on the exposed receiver must yield the TOB
        // stream already reordered (seq 0, then 1).
        let rx = nodes[1].events();
        match rx.recv_timeout(TICK) {
            Ok(NetworkEvent::Tob { seq: 0, from: 1, payload }) => {
                assert_eq!(payload, b"first")
            }
            other => panic!("expected seq 0, got {other:?}"),
        }
        match rx.recv_timeout(TICK) {
            Ok(NetworkEvent::Tob { seq: 1, from: 1, payload }) => {
                assert_eq!(payload, b"second")
            }
            other => panic!("expected seq 1, got {other:?}"),
        }
    }

    #[test]
    fn latency_is_applied() {
        let (hub, nodes) = mesh(2);
        hub.set_link(1, 2, LinkProfile::fixed(Duration::from_millis(80)));
        let start = Instant::now();
        nodes[0].send_to(2, b"slow".to_vec());
        let ev = nodes[1].recv_timeout(Duration::from_secs(2)).unwrap();
        let elapsed = start.elapsed();
        assert!(matches!(ev, NetworkEvent::P2p { .. }));
        assert!(elapsed >= Duration::from_millis(75), "elapsed {elapsed:?}");
    }

    #[test]
    fn blocked_link_drops() {
        let (hub, nodes) = mesh(2);
        hub.set_link_blocked(1, 2, true);
        nodes[0].send_to(2, b"lost".to_vec());
        assert!(nodes[1].recv_timeout(Duration::from_millis(100)).is_none());
        hub.set_link_blocked(1, 2, false);
        nodes[0].send_to(2, b"found".to_vec());
        assert!(nodes[1].recv_timeout(TICK).is_some());
    }

    #[test]
    fn isolated_node_cut_off_both_ways() {
        let (hub, nodes) = mesh(3);
        hub.isolate_node(2, true);
        nodes[0].broadcast_p2p(b"x".to_vec());
        nodes[1].broadcast_p2p(b"y".to_vec());
        // Node 2 hears nothing; node 3 hears only node 1.
        assert!(nodes[1].recv_timeout(Duration::from_millis(100)).is_none());
        let ev = nodes[2].recv_timeout(TICK).unwrap();
        assert_eq!(ev, NetworkEvent::P2p { from: 1, payload: b"x".to_vec() });
        assert!(nodes[2].recv_timeout(Duration::from_millis(100)).is_none());
    }

    #[test]
    fn lossy_network_drops_some() {
        let (_hub, nodes) = InMemoryHub::build(
            2,
            InMemoryConfig { drop_probability: 0.5, seed: 42, ..Default::default() },
        );
        let total = 200;
        for i in 0..total {
            nodes[0].send_to(2, vec![i as u8]);
        }
        let mut received = 0;
        while nodes[1].recv_timeout(Duration::from_millis(50)).is_some() {
            received += 1;
        }
        assert!(received > 50 && received < 150, "received {received}");
    }

    #[test]
    fn per_peer_counters_track_traffic() {
        let (_hub, mut nodes) = mesh(3);
        let registry = Arc::new(theta_metrics::MetricsRegistry::new());
        for node in nodes.iter_mut() {
            node.attach_registry(&registry);
        }
        nodes[0].broadcast_p2p(vec![0u8; 10]); // to peers 2 and 3
        nodes[1].send_to(1, vec![0u8; 4]);
        // Wait for deliveries so receive counters settle.
        assert!(nodes[1].recv_timeout(TICK).is_some());
        assert!(nodes[2].recv_timeout(TICK).is_some());
        assert!(nodes[0].recv_timeout(TICK).is_some());
        assert_eq!(
            registry.counter_value("theta_net_messages_sent_total", &[("peer", "2")]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("theta_net_bytes_sent_total", &[("peer", "3")]),
            Some(10)
        );
        // Node 1 received node 2's direct send. (All three nodes share
        // one registry here, so received{peer=1} pools deliveries *from*
        // node 1 at nodes 2 and 3: 2 messages of 10 bytes each.)
        assert_eq!(
            registry.counter_value("theta_net_messages_received_total", &[("peer", "2")]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("theta_net_bytes_received_total", &[("peer", "1")]),
            Some(20)
        );
    }

    #[test]
    fn journals_record_send_and_receive() {
        let (_hub, mut nodes) = mesh(2);
        let j1 = Arc::new(TraceJournal::new(64));
        let j2 = Arc::new(TraceJournal::new(64));
        nodes[0].attach_journal(&j1);
        nodes[1].attach_journal(&j2);

        let mut instance = [9u8; 32];
        instance[0] = 0x11;
        nodes[0].send_to(2, instance.to_vec());
        assert!(nodes[1].recv_timeout(TICK).is_some());

        let sends = j1.events_for(&instance);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].kind, TraceEventKind::PeerSend);
        assert_eq!(sends[0].peer, 2);
        let recvs = j2.events_for(&instance);
        assert_eq!(recvs.len(), 1);
        assert_eq!(recvs[0].kind, TraceEventKind::PeerRecv);
        assert_eq!(recvs[0].peer, 1);
        assert!(recvs[0].detail.contains("hop=1"));
        // Sub-32-byte payloads are untraced, not a crash.
        nodes[0].send_to(2, b"short".to_vec());
        assert!(nodes[1].recv_timeout(TICK).is_some());
        assert_eq!(j1.len(), 1);
    }

    #[test]
    fn tob_survives_loss_setting() {
        // TOB is modeled reliable even when P2P is lossy.
        let (_hub, nodes) = InMemoryHub::build(
            3,
            InMemoryConfig { drop_probability: 0.9, seed: 1, ..Default::default() },
        );
        nodes[0].submit_tob(b"ordered".to_vec());
        for node in &nodes {
            match node.recv_timeout(TICK) {
                Some(NetworkEvent::Tob { seq: 0, from: 1, payload }) => {
                    assert_eq!(payload, b"ordered");
                }
                other => panic!("expected tob delivery, got {other:?}"),
            }
        }
    }
}
