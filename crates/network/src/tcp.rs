//! Real TCP full-mesh transport with a leader-sequencer TOB.
//!
//! Replaces the libp2p overlay of the original system for standalone
//! deployments: every node dials every higher-id node and accepts from
//! every lower-id node, frames are `u32`-length-prefixed, and node 1
//! doubles as the TOB sequencer (the "proxy to a replicated service"
//! collapsed to its simplest faithful form: a single ordering point).
//!
//! Frame layout after the length prefix:
//! `tag(u8) | fields... | payload` with tags
//! `0` = P2P message (`from: u16`),
//! `1` = TOB submit (`from: u16`) — only sent *to* the sequencer,
//! `2` = TOB deliver (`seq: u64, from: u16`) — only sent *by* it.

use crate::{Network, NetworkError, NetworkEvent, NodeId, TobReorderBuffer};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TAG_P2P: u8 = 0;
const TAG_TOB_SUBMIT: u8 = 1;
const TAG_TOB_DELIVER: u8 = 2;

/// Maximum accepted frame size (matches the codec bound).
const MAX_FRAME: u32 = 64 << 20;

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds limit",
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(body)
}

enum Inbound {
    P2p { from: NodeId, payload: Vec<u8> },
    TobSubmit { from: NodeId, payload: Vec<u8> },
    TobDeliver { seq: u64, from: NodeId, payload: Vec<u8> },
}

fn parse_frame(body: &[u8]) -> Option<Inbound> {
    match *body.first()? {
        TAG_P2P => {
            let from = u16::from_le_bytes([*body.get(1)?, *body.get(2)?]);
            Some(Inbound::P2p { from, payload: body[3..].to_vec() })
        }
        TAG_TOB_SUBMIT => {
            let from = u16::from_le_bytes([*body.get(1)?, *body.get(2)?]);
            Some(Inbound::TobSubmit { from, payload: body[3..].to_vec() })
        }
        TAG_TOB_DELIVER => {
            if body.len() < 11 {
                return None;
            }
            let mut seq_bytes = [0u8; 8];
            seq_bytes.copy_from_slice(&body[1..9]);
            let seq = u64::from_le_bytes(seq_bytes);
            let from = u16::from_le_bytes([body[9], body[10]]);
            Some(Inbound::TobDeliver { seq, from, payload: body[11..].to_vec() })
        }
        _ => None,
    }
}

struct Shared {
    /// Write halves, indexed by node id − 1 (`None` at our own slot).
    peers: Vec<Option<Mutex<TcpStream>>>,
    id: NodeId,
    /// Sequencer state (used only on node 1).
    tob_seq: AtomicU64,
}

impl Shared {
    fn send_raw(&self, peer: NodeId, body: &[u8]) {
        if let Some(Some(stream)) = self.peers.get(peer as usize - 1) {
            let _ = write_frame(&mut stream.lock(), body);
        }
    }
}

/// A node of the TCP mesh. Build a whole mesh with [`TcpMesh::connect`].
pub struct TcpMeshNode {
    shared: Arc<Shared>,
    n: usize,
    events: Receiver<Inbound>,
    reorder: Mutex<TobReorderBuffer>,
    ready: Mutex<std::collections::VecDeque<NetworkEvent>>,
    /// Keeps reader threads' sender alive exactly as long as the node.
    _tx: Sender<Inbound>,
}

/// Builder for a full TCP mesh on one or more machines.
pub struct TcpMesh;

impl TcpMesh {
    /// Connects node `id` (1-based) into the mesh described by `addrs`
    /// (address `i` belongs to node `i + 1`; `addrs[id-1]` is the local
    /// bind address).
    ///
    /// Dial direction: node `a` dials node `b` iff `a < b`. The dialer
    /// sends its id as a 2-byte hello.
    ///
    /// # Errors
    ///
    /// [`NetworkError`] when binding, dialing or the hello handshake fail.
    pub fn connect(id: NodeId, addrs: &[SocketAddr]) -> Result<TcpMeshNode, NetworkError> {
        let n = addrs.len();
        if id == 0 || id as usize > n {
            return Err(NetworkError::Setup(format!("node id {id} outside 1..={n}")));
        }
        let listener = TcpListener::bind(addrs[id as usize - 1])?;
        let (tx, rx) = unbounded::<Inbound>();

        let mut peers: Vec<Option<Mutex<TcpStream>>> = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(None);
        }

        // Accept connections from all lower-id nodes.
        let expected_inbound = id as usize - 1;
        let mut accepted = 0;
        let mut inbound_streams = Vec::new();
        listener.set_nonblocking(false)?;
        while accepted < expected_inbound {
            let (mut stream, _) = listener.accept()?;
            let mut hello = [0u8; 2];
            stream.read_exact(&mut hello)?;
            let peer_id = u16::from_le_bytes(hello);
            if peer_id == 0 || peer_id >= id {
                return Err(NetworkError::Setup(format!("unexpected hello from {peer_id}")));
            }
            inbound_streams.push((peer_id, stream));
            accepted += 1;
        }

        // Dial all higher-id nodes (with retries while they come up).
        let mut outbound_streams = Vec::new();
        for peer in (id + 1)..=(n as u16) {
            let addr = addrs[peer as usize - 1];
            let stream = dial_with_retry(addr)?;
            outbound_streams.push((peer, stream));
        }

        for (peer, mut stream) in outbound_streams {
            stream.write_all(&id.to_le_bytes())?;
            let reader = stream.try_clone()?;
            spawn_reader(reader, tx.clone());
            peers[peer as usize - 1] = Some(Mutex::new(stream));
        }
        for (peer, stream) in inbound_streams {
            let reader = stream.try_clone()?;
            spawn_reader(reader, tx.clone());
            peers[peer as usize - 1] = Some(Mutex::new(stream));
        }

        let shared = Arc::new(Shared { peers, id, tob_seq: AtomicU64::new(0) });
        Ok(TcpMeshNode {
            shared,
            n,
            events: rx,
            reorder: Mutex::new(TobReorderBuffer::new()),
            ready: Mutex::new(std::collections::VecDeque::new()),
            _tx: tx,
        })
    }
}

fn dial_with_retry(addr: SocketAddr) -> Result<TcpStream, NetworkError> {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                return Ok(s);
            }
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(NetworkError::Setup(format!("dial {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn spawn_reader(mut stream: TcpStream, tx: Sender<Inbound>) {
    std::thread::Builder::new()
        .name("theta-tcp-reader".into())
        .spawn(move || {
            while let Ok(body) = read_frame(&mut stream) {
                match parse_frame(&body) {
                    Some(inbound) => {
                        if tx.send(inbound).is_err() {
                            break;
                        }
                    }
                    None => break, // malformed frame: drop the connection
                }
            }
        })
        .expect("spawn reader");
}

impl TcpMeshNode {
    /// True when this node is the TOB sequencer (node 1).
    fn is_sequencer(&self) -> bool {
        self.shared.id == 1
    }

    fn sequence_and_deliver(&self, from: NodeId, payload: Vec<u8>) -> NetworkEvent {
        debug_assert!(self.is_sequencer());
        let seq = self.shared.tob_seq.fetch_add(1, Ordering::SeqCst);
        let mut body = Vec::with_capacity(11 + payload.len());
        body.push(TAG_TOB_DELIVER);
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&from.to_le_bytes());
        body.extend_from_slice(&payload);
        for peer in 1..=self.n as u16 {
            if peer != self.shared.id {
                self.shared.send_raw(peer, &body);
            }
        }
        NetworkEvent::Tob { seq, from, payload }
    }
}

impl Network for TcpMeshNode {
    fn node_id(&self) -> NodeId {
        self.shared.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn broadcast_p2p(&self, payload: Vec<u8>) {
        let mut body = Vec::with_capacity(3 + payload.len());
        body.push(TAG_P2P);
        body.extend_from_slice(&self.shared.id.to_le_bytes());
        body.extend_from_slice(&payload);
        for peer in 1..=self.n as u16 {
            if peer != self.shared.id {
                self.shared.send_raw(peer, &body);
            }
        }
    }

    fn send_to(&self, peer: NodeId, payload: Vec<u8>) {
        if peer == self.shared.id {
            return;
        }
        let mut body = Vec::with_capacity(3 + payload.len());
        body.push(TAG_P2P);
        body.extend_from_slice(&self.shared.id.to_le_bytes());
        body.extend_from_slice(&payload);
        self.shared.send_raw(peer, &body);
    }

    fn submit_tob(&self, payload: Vec<u8>) {
        if self.is_sequencer() {
            let ev = self.sequence_and_deliver(self.shared.id, payload);
            // Self-delivery goes straight to the ready queue in order.
            if let NetworkEvent::Tob { seq, from, payload } = ev {
                let released = self.reorder.lock().insert(seq, from, payload);
                let mut ready = self.ready.lock();
                for e in released {
                    ready.push_back(e);
                }
            }
        } else {
            let mut body = Vec::with_capacity(3 + payload.len());
            body.push(TAG_TOB_SUBMIT);
            body.extend_from_slice(&self.shared.id.to_le_bytes());
            body.extend_from_slice(&payload);
            self.shared.send_raw(1, &body);
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<NetworkEvent> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(ev) = self.ready.lock().pop_front() {
                return Some(ev);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match self.events.recv_timeout(remaining) {
                Ok(Inbound::P2p { from, payload }) => {
                    return Some(NetworkEvent::P2p { from, payload });
                }
                Ok(Inbound::TobSubmit { from, payload }) => {
                    if self.is_sequencer() {
                        let ev = self.sequence_and_deliver(from, payload);
                        if let NetworkEvent::Tob { seq, from, payload } = ev {
                            let released = self.reorder.lock().insert(seq, from, payload);
                            let mut ready = self.ready.lock();
                            for e in released {
                                ready.push_back(e);
                            }
                        }
                    }
                    // Non-sequencers ignore stray submits.
                }
                Ok(Inbound::TobDeliver { seq, from, payload }) => {
                    let released = self.reorder.lock().insert(seq, from, payload);
                    let mut ready = self.ready.lock();
                    for e in released {
                        ready.push_back(e);
                    }
                }
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};
    use std::sync::atomic::{AtomicU16, Ordering as AtomicOrdering};

    static NEXT_PORT: AtomicU16 = AtomicU16::new(39000);

    fn addrs(n: u16) -> Vec<SocketAddr> {
        (0..n)
            .map(|_| {
                let port = NEXT_PORT.fetch_add(1, AtomicOrdering::SeqCst);
                SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), port)
            })
            .collect()
    }

    fn build_mesh(n: u16) -> Vec<TcpMeshNode> {
        let addr_list = addrs(n);
        let handles: Vec<_> = (1..=n)
            .map(|id| {
                let list = addr_list.clone();
                std::thread::spawn(move || TcpMesh::connect(id, &list).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    const TICK: Duration = Duration::from_secs(3);

    #[test]
    fn p2p_over_tcp() {
        let nodes = build_mesh(3);
        nodes[0].broadcast_p2p(b"tcp hello".to_vec());
        for node in &nodes[1..] {
            let ev = node.recv_timeout(TICK).expect("delivery");
            assert_eq!(ev, NetworkEvent::P2p { from: 1, payload: b"tcp hello".to_vec() });
        }
    }

    #[test]
    fn direct_send_over_tcp() {
        let nodes = build_mesh(3);
        nodes[2].send_to(1, b"up".to_vec());
        let ev = nodes[0].recv_timeout(TICK).unwrap();
        assert_eq!(ev, NetworkEvent::P2p { from: 3, payload: b"up".to_vec() });
    }

    #[test]
    fn tob_total_order_over_tcp() {
        let nodes = build_mesh(3);
        nodes[1].submit_tob(b"x".to_vec());
        nodes[2].submit_tob(b"y".to_vec());
        nodes[0].submit_tob(b"z".to_vec());
        let mut views = Vec::new();
        for node in &nodes {
            let mut seen = Vec::new();
            for _ in 0..3 {
                match node.recv_timeout(TICK) {
                    Some(NetworkEvent::Tob { seq, payload, .. }) => seen.push((seq, payload)),
                    other => panic!("expected tob, got {other:?}"),
                }
            }
            views.push(seen);
        }
        for v in &views[1..] {
            assert_eq!(*v, views[0]);
        }
    }

    #[test]
    fn bad_node_id_rejected() {
        let list = addrs(2);
        assert!(TcpMesh::connect(0, &list).is_err());
        assert!(TcpMesh::connect(3, &list).is_err());
    }
}
