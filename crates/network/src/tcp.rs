//! Real TCP full-mesh transport with a leader-sequencer TOB, over
//! authenticated encrypted links.
//!
//! Replaces the libp2p overlay of the original system for standalone
//! deployments: every node dials every higher-id node and accepts from
//! every lower-id node, and node 1 doubles as the TOB sequencer (the
//! "proxy to a replicated service" collapsed to its simplest faithful
//! form: a single ordering point).
//!
//! **Link security.** Connection setup runs the Noise-IK-style
//! handshake of [`crate::handshake`]: the dialer's first bytes are
//! handshake message A (its node id in the clear plus an ephemeral key
//! and an authentication tag), the accepter answers with message B, and
//! both sides derive per-direction ChaCha20-Poly1305 session keys. From
//! then on every frame on the wire is a `u32`-length-prefixed AEAD
//! ciphertext; a frame that fails authentication tears the connection
//! down. Handshake reads carry a timeout so a mute or stalled dialer
//! cannot wedge mesh setup, and a second connection claiming an
//! already-connected peer id is rejected instead of clobbering the
//! live link.
//!
//! Frame layout *inside* the AEAD plaintext:
//! `tag(u8) | fields... | span([u8;8]) | hop(u8) | payload` with tags
//! `0` = P2P message (`from: u16`),
//! `1` = TOB submit (`from: u16`) — only sent *to* the sequencer,
//! `2` = TOB deliver (`seq: u64, from: u16`) — only sent *by* it.
//!
//! `span`/`hop` are the **trace context**: the 8-byte span id of the
//! protocol instance the payload belongs to (see
//! [`crate::demux::span_of`]) and the number of links the frame has
//! traversed. The full mesh is single-hop, so senders stamp `hop = 1`;
//! the only relay is the sequencer turning a TOB submit into a
//! delivery, which increments the hop (and records a `RelayHop` journal
//! event). Because the context sits inside the AEAD plaintext, any
//! tampering with it is indistinguishable from tampering with the
//! payload: the frame fails authentication and the link is torn down.
//!
//! Directly after each link's handshake, the dialer runs the
//! [`handshake::offset_probe_initiate`] ping-pong so both ends hold an
//! estimate of the pairwise wall-clock offset; the estimates surface as
//! `theta_clock_offset_micros{peer=...}` gauges and feed the
//! cluster-trace merge.
//!
//! Sender identity is **connection-derived and cryptographically
//! verified**: each reader thread knows which peer its socket belongs
//! to (proved by the handshake, not merely claimed by a hello byte) and
//! stamps/validates every frame against it. A peer cannot impersonate
//! another node in P2P traffic, cannot submit TOB messages under a
//! foreign id, and cannot forge TOB deliveries unless it *is* the
//! sequencer connection.
//!
//! Per node, one demultiplexer thread owns the TOB reorder buffer (and,
//! on node 1, the sequencer state) and feeds a single ordered event
//! channel, which [`Network::events`] exposes for `select!`-style
//! consumption.
//!
//! Link-health observability: write failures no longer vanish into
//! `let _ =` — they count into `theta_tcp_send_errors_total` — and a
//! reader thread ending (EOF, I/O error, malformed or tampered frame)
//! counts into `theta_tcp_reader_exits_total` (AEAD failures also into
//! `theta_net_aead_failures_total`), so a dead link is visible in the
//! metrics instead of silently eating traffic.

use crate::demux::{span_hex, span_of, SPAN_LEN};
use crate::handshake::{self, MeshAuth, RecvCipher, SendCipher};
use crate::{Network, NetworkError, NetworkEvent, NodeId, PeerTraffic, TobReorderBuffer};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use theta_metrics::{TraceEventKind, TraceJournal};

pub(crate) const TAG_P2P: u8 = 0;
pub(crate) const TAG_TOB_SUBMIT: u8 = 1;
pub(crate) const TAG_TOB_DELIVER: u8 = 2;

/// Trace context carried by every frame: span id + hop count.
pub(crate) const CTX_LEN: usize = SPAN_LEN + 1;

/// The fixed TOB sequencer node.
pub(crate) const SEQUENCER: NodeId = 1;

/// Read timeout applied while a connection is mid-handshake, so a
/// dialer that connects and never speaks cannot stall mesh setup.
pub(crate) const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(3);

enum Inbound {
    P2p { from: NodeId, span: [u8; SPAN_LEN], hop: u8, payload: Vec<u8> },
    TobSubmit { from: NodeId, span: [u8; SPAN_LEN], hop: u8, payload: Vec<u8> },
    TobDeliver { seq: u64, from: NodeId, span: [u8; SPAN_LEN], hop: u8, payload: Vec<u8> },
}

/// Header length for P2P / TOB-submit frames:
/// `tag(1) | from(2) | span(8) | hop(1)`.
const P2P_HEADER_LEN: usize = 1 + 2 + CTX_LEN;
/// Header length for TOB-deliver frames:
/// `tag(1) | seq(8) | from(2) | span(8) | hop(1)`.
const DELIVER_HEADER_LEN: usize = 1 + 8 + 2 + CTX_LEN;

fn read_span(body: &[u8], at: usize) -> [u8; SPAN_LEN] {
    let mut span = [0u8; SPAN_LEN];
    span.copy_from_slice(&body[at..at + SPAN_LEN]);
    span
}

fn parse_frame(body: &[u8]) -> Option<Inbound> {
    match *body.first()? {
        tag @ (TAG_P2P | TAG_TOB_SUBMIT) => {
            if body.len() < P2P_HEADER_LEN {
                return None;
            }
            let from = u16::from_le_bytes([body[1], body[2]]);
            let span = read_span(body, 3);
            let hop = body[11];
            let payload = body[P2P_HEADER_LEN..].to_vec();
            Some(if tag == TAG_P2P {
                Inbound::P2p { from, span, hop, payload }
            } else {
                Inbound::TobSubmit { from, span, hop, payload }
            })
        }
        TAG_TOB_DELIVER => {
            if body.len() < DELIVER_HEADER_LEN {
                return None;
            }
            let mut seq_bytes = [0u8; 8];
            seq_bytes.copy_from_slice(&body[1..9]);
            let seq = u64::from_le_bytes(seq_bytes);
            let from = u16::from_le_bytes([body[9], body[10]]);
            let span = read_span(body, 11);
            let hop = body[19];
            Some(Inbound::TobDeliver {
                seq,
                from,
                span,
                hop,
                payload: body[DELIVER_HEADER_LEN..].to_vec(),
            })
        }
        _ => None,
    }
}

/// Builds a P2P / TOB-submit frame: sender-stamped trace context with
/// `hop = 1` (the frame is about to traverse its first link).
fn p2p_frame(tag: u8, from: NodeId, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(P2P_HEADER_LEN + payload.len());
    body.push(tag);
    body.extend_from_slice(&from.to_le_bytes());
    body.extend_from_slice(&span_of(payload));
    body.push(1);
    body.extend_from_slice(payload);
    body
}

/// Traffic counters attached to a mesh node after setup. Reader and
/// writer paths check the `OnceLock` per frame — a relaxed pointer load
/// when attached, a no-op when not.
struct TcpMetrics {
    sent: PeerTraffic,
    recv: PeerTraffic,
    send_errors: Arc<theta_metrics::Counter>,
    reader_exits: Arc<theta_metrics::Counter>,
    aead_failures: Arc<theta_metrics::Counter>,
}

/// Link-health tallies accumulated before (and after) a registry is
/// attached; the pre-attach values are transferred into the registry
/// counters at attach time, mirroring `connects_established`.
#[derive(Default)]
pub(crate) struct LinkHealth {
    pub(crate) send_errors: AtomicU64,
    pub(crate) reader_exits: AtomicU64,
    pub(crate) aead_failures: AtomicU64,
    pub(crate) handshakes: AtomicU64,
}

/// One established, encrypted write half.
struct Conn {
    stream: TcpStream,
    cipher: SendCipher,
}

struct Shared {
    /// Write halves, indexed by node id − 1 (`None` at our own slot).
    peers: Vec<Option<Mutex<Conn>>>,
    id: NodeId,
    /// Sequencer state (used only on node 1's demux thread).
    tob_seq: AtomicU64,
    /// Connections established during mesh setup (dials + accepts),
    /// transferred into the registry when metrics are attached.
    connects_established: AtomicU64,
    health: LinkHealth,
    metrics: OnceLock<TcpMetrics>,
    /// Estimated wall-clock offset to each peer (µs to *add* to our
    /// wall clock to land on theirs), measured by the post-handshake
    /// ping-pong probe; 0 at our own slot and for unprobed peers.
    clock_offsets: Vec<AtomicI64>,
    journal: OnceLock<Arc<TraceJournal>>,
}

impl Shared {
    /// Journals an envelope leaving this node (`peer` 0 = broadcast).
    fn trace_send(&self, peer: NodeId, payload: &[u8]) {
        if let (Some(j), Some(key)) = (self.journal.get(), crate::demux::peek_key(payload)) {
            let span = span_of(payload);
            j.record_full(key, TraceEventKind::PeerSend, peer, format!("span={}", span_hex(&span)));
        }
    }

    /// Journals an envelope arriving from `peer` with its trace context.
    fn trace_recv(&self, peer: NodeId, span: &[u8; SPAN_LEN], hop: u8, payload: &[u8]) {
        if let (Some(j), Some(key)) = (self.journal.get(), crate::demux::peek_key(payload)) {
            j.record_full(
                key,
                TraceEventKind::PeerRecv,
                peer,
                format!("span={} hop={hop}", span_hex(span)),
            );
        }
    }
    fn send_raw(&self, peer: NodeId, body: &[u8]) {
        if let Some(Some(conn)) = self.peers.get(peer as usize - 1) {
            let mut conn = conn.lock();
            let result = {
                let Conn { stream, cipher } = &mut *conn;
                handshake::write_sealed(stream, cipher, body)
            };
            match result {
                Ok(()) => {
                    if let Some(m) = self.metrics.get() {
                        // Count wire bytes (ciphertext + tag), what the
                        // peer's receive counter will also see.
                        m.sent.count(peer, body.len() + 16);
                    }
                }
                Err(_) => {
                    self.health.send_errors.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = self.metrics.get() {
                        m.send_errors.inc();
                    }
                }
            }
        }
    }

    fn count_reader_exit(&self) {
        self.health.reader_exits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.reader_exits.inc();
        }
    }

    fn count_aead_failure(&self) {
        self.health.aead_failures.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.aead_failures.inc();
        }
    }
}

/// A node of the TCP mesh. Build a whole mesh with [`TcpMesh::connect`]
/// or [`TcpMesh::connect_listener`].
pub struct TcpMeshNode {
    shared: Arc<Shared>,
    n: usize,
    /// Ordered, demultiplexed events (what [`Network::events`] exposes).
    events: Receiver<NetworkEvent>,
    /// Raw inbound channel into the demux thread; also used for the
    /// sequencer's own TOB submissions so all ordering happens in one
    /// place. Held here to keep the demux alive as long as the node.
    raw_tx: Sender<Inbound>,
}

/// Builder for a full TCP mesh on one or more machines.
pub struct TcpMesh;

impl TcpMesh {
    /// Connects node `id` (1-based) into the mesh described by `addrs`
    /// (address `i` belongs to node `i + 1`; `addrs[id-1]` is the local
    /// bind address), authenticating every link with `auth`.
    ///
    /// Dial direction: node `a` dials node `b` iff `a < b`. The dialer
    /// opens with handshake message A (which carries its id).
    ///
    /// # Errors
    ///
    /// [`NetworkError`] when binding, dialing or the handshake fail.
    pub fn connect(
        id: NodeId,
        addrs: &[SocketAddr],
        auth: MeshAuth,
    ) -> Result<TcpMeshNode, NetworkError> {
        let n = addrs.len();
        if id == 0 || id as usize > n {
            return Err(NetworkError::Setup(format!("node id {id} outside 1..={n}")));
        }
        let listener = TcpListener::bind(addrs[id as usize - 1])?;
        Self::connect_listener(id, listener, addrs, auth)
    }

    /// Like [`TcpMesh::connect`], but with a pre-bound listener — the
    /// pattern for OS-assigned (port 0) addresses: bind every listener
    /// first, exchange the real addresses, then connect the mesh. The
    /// entry `addrs[id-1]` is ignored (the listener stands in for it).
    ///
    /// # Errors
    ///
    /// [`NetworkError`] when accepting, dialing or the handshake fail —
    /// including a peer id claimed twice (the duplicate is rejected
    /// rather than allowed to clobber the live peer's slot) and a
    /// dialer that connects but never completes its handshake within
    /// [`HANDSHAKE_TIMEOUT`].
    pub fn connect_listener(
        id: NodeId,
        listener: TcpListener,
        addrs: &[SocketAddr],
        auth: MeshAuth,
    ) -> Result<TcpMeshNode, NetworkError> {
        let n = addrs.len();
        if id == 0 || id as usize > n {
            return Err(NetworkError::Setup(format!("node id {id} outside 1..={n}")));
        }
        if auth.roster.len() != n {
            return Err(NetworkError::Setup(format!(
                "roster has {} entries for a {n}-node mesh",
                auth.roster.len()
            )));
        }
        let (raw_tx, raw_rx) = unbounded::<Inbound>();

        let mut peers: Vec<Option<Mutex<Conn>>> = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(None);
        }

        // Accept connections from all lower-id nodes. Each accepted
        // socket must complete the authentication handshake within
        // HANDSHAKE_TIMEOUT, and each peer id may appear only once.
        let expected_inbound = id as usize - 1;
        let mut accepted = HashSet::new();
        let mut inbound_streams = Vec::new();
        let mut offsets = vec![0i64; n];
        listener.set_nonblocking(false)?;
        while accepted.len() < expected_inbound {
            let (mut stream, _) = listener.accept()?;
            stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
            let (peer_id, mut session) =
                handshake::respond(&mut stream, &auth.identity, &auth.roster)?;
            if peer_id == 0 || peer_id >= id {
                return Err(NetworkError::Setup(format!("unexpected hello from {peer_id}")));
            }
            if !accepted.insert(peer_id) {
                return Err(NetworkError::Setup(format!(
                    "duplicate hello from peer {peer_id}: a connection for that id is already \
                     established"
                )));
            }
            // Clock-offset probe, responder side, while the handshake
            // read timeout is still armed (a mute initiator cannot
            // wedge setup here either).
            offsets[peer_id as usize - 1] = handshake::offset_probe_respond(&mut stream, &mut session)?;
            stream.set_read_timeout(None)?;
            inbound_streams.push((peer_id, stream, session));
        }

        // Dial all higher-id nodes (with retries while they come up).
        let mut outbound_streams = Vec::new();
        for peer in (id + 1)..=(n as u16) {
            let addr = addrs[peer as usize - 1];
            let mut stream = dial_with_retry(addr)?;
            stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
            let responder_static = auth
                .roster
                .get(peer)
                .ok_or_else(|| NetworkError::Setup(format!("no roster entry for {peer}")))?;
            let mut session =
                handshake::initiate(&mut stream, id, &auth.identity, responder_static)?;
            offsets[peer as usize - 1] =
                handshake::offset_probe_initiate(&mut stream, &mut session)?;
            stream.set_read_timeout(None)?;
            outbound_streams.push((peer, stream, session));
        }

        let mut readers = Vec::new();
        let mut connects = 0u64;
        for (peer, stream, session) in outbound_streams.into_iter().chain(inbound_streams) {
            readers.push((stream.try_clone()?, peer, session.recv));
            peers[peer as usize - 1] =
                Some(Mutex::new(Conn { stream, cipher: session.send }));
            connects += 1;
        }

        let shared = Arc::new(Shared {
            peers,
            id,
            tob_seq: AtomicU64::new(0),
            connects_established: AtomicU64::new(connects),
            health: LinkHealth::default(),
            metrics: OnceLock::new(),
            clock_offsets: offsets.into_iter().map(AtomicI64::new).collect(),
            journal: OnceLock::new(),
        });
        shared.health.handshakes.store(connects, Ordering::Relaxed);
        for (stream, peer, recv) in readers {
            spawn_reader(stream, peer, recv, raw_tx.clone(), shared.clone());
        }
        let (events_tx, events_rx) = unbounded::<NetworkEvent>();
        spawn_demux(raw_rx, events_tx, shared.clone(), n);
        Ok(TcpMeshNode { shared, n, events: events_rx, raw_tx })
    }
}

pub(crate) fn dial_with_retry(addr: SocketAddr) -> Result<TcpStream, NetworkError> {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                return Ok(s);
            }
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(NetworkError::Setup(format!("dial {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Reads AEAD frames from one connection, enforcing the connection
/// identity `conn_peer` proved during the handshake:
///
/// - P2P frames are **stamped** with `conn_peer`, whatever they claim;
/// - TOB submits claiming a different sender are dropped (spoofing);
/// - TOB deliveries are accepted only from the sequencer's connection;
/// - a frame failing AEAD authentication tears the connection down
///   (and the exit is counted, so dead links are observable).
// theta: event-loop
// theta: entrypoint(network)
fn spawn_reader(
    mut stream: TcpStream,
    conn_peer: NodeId,
    mut cipher: RecvCipher,
    tx: Sender<Inbound>,
    shared: Arc<Shared>,
) {
    std::thread::Builder::new()
        .name(format!("theta-tcp-reader-{conn_peer}"))
        .spawn(move || {
            loop {
                let body = match handshake::read_sealed(&mut stream, &mut cipher) {
                    Ok(body) => body,
                    Err(e) => {
                        if e.kind() == std::io::ErrorKind::InvalidData {
                            // Tampered/forged traffic: kill the link so
                            // the peer (or the attacker splicing into
                            // it) cannot keep probing the stream state.
                            shared.count_aead_failure();
                            let _ = stream.shutdown(std::net::Shutdown::Both);
                        }
                        break;
                    }
                };
                if let Some(m) = shared.metrics.get() {
                    m.recv.count(conn_peer, body.len() + 16);
                }
                let inbound = match parse_frame(&body) {
                    Some(Inbound::P2p { span, hop, payload, .. }) => {
                        shared.trace_recv(conn_peer, &span, hop, &payload);
                        Inbound::P2p { from: conn_peer, span, hop, payload }
                    }
                    Some(Inbound::TobSubmit { from, span, hop, payload }) => {
                        if from != conn_peer {
                            continue; // spoofed submit: drop it
                        }
                        shared.trace_recv(conn_peer, &span, hop, &payload);
                        Inbound::TobSubmit { from, span, hop, payload }
                    }
                    Some(Inbound::TobDeliver { seq, from, span, hop, payload }) => {
                        if conn_peer != SEQUENCER {
                            continue; // only the sequencer delivers
                        }
                        shared.trace_recv(conn_peer, &span, hop, &payload);
                        Inbound::TobDeliver { seq, from, span, hop, payload }
                    }
                    None => break, // malformed frame: drop the connection
                };
                if tx.send(inbound).is_err() {
                    break;
                }
            }
            shared.count_reader_exit();
        })
        .expect("spawn reader");
}

/// The per-node demultiplexer: single owner of the TOB reorder buffer
/// (and of the sequencer state on node 1), turning the raw inbound
/// stream into one ordered [`NetworkEvent`] channel.
// theta: event-loop
fn spawn_demux(
    raw_rx: Receiver<Inbound>,
    events_tx: Sender<NetworkEvent>,
    shared: Arc<Shared>,
    n: usize,
) {
    std::thread::Builder::new()
        .name(format!("theta-tcp-demux-{}", shared.id))
        .spawn(move || {
            let sequencing = shared.id == SEQUENCER;
            let mut reorder = TobReorderBuffer::new();
            // theta: allow(blocking): the demux thread's designated wait — it owns this queue and has nothing else to do
            while let Ok(inbound) = raw_rx.recv() {
                let released = match inbound {
                    Inbound::P2p { from, payload, .. } => {
                        vec![NetworkEvent::P2p { from, payload }]
                    }
                    Inbound::TobSubmit { from, span, hop, payload } => {
                        if !sequencing {
                            continue; // stray submit at a non-sequencer
                        }
                        let seq = shared.tob_seq.fetch_add(1, Ordering::SeqCst);
                        // The sequencer relays the submit as a delivery:
                        // the context travels on, one hop further.
                        let out_hop = hop.saturating_add(1);
                        let mut body =
                            Vec::with_capacity(DELIVER_HEADER_LEN + payload.len());
                        body.push(TAG_TOB_DELIVER);
                        body.extend_from_slice(&seq.to_le_bytes());
                        body.extend_from_slice(&from.to_le_bytes());
                        body.extend_from_slice(&span);
                        body.push(out_hop);
                        body.extend_from_slice(&payload);
                        if let (Some(j), Some(key)) =
                            (shared.journal.get(), crate::demux::peek_key(&payload))
                        {
                            if from == shared.id {
                                j.record_full(
                                    key,
                                    TraceEventKind::PeerSend,
                                    0,
                                    format!("span={}", span_hex(&span)),
                                );
                            } else {
                                j.record_full(
                                    key,
                                    TraceEventKind::RelayHop,
                                    from,
                                    format!(
                                        "origin={from} span={} hop={out_hop}",
                                        span_hex(&span)
                                    ),
                                );
                            }
                        }
                        for peer in 1..=n as u16 {
                            if peer != shared.id {
                                shared.send_raw(peer, &body);
                            }
                        }
                        reorder.insert(seq, from, payload)
                    }
                    Inbound::TobDeliver { seq, from, payload, .. } => {
                        reorder.insert(seq, from, payload)
                    }
                };
                for ev in released {
                    if events_tx.send(ev).is_err() {
                        return; // node handle gone
                    }
                }
            }
        })
        .expect("spawn demux");
}

impl Drop for TcpMeshNode {
    fn drop(&mut self) {
        // Reader threads hold cloned fds of every connection, so merely
        // dropping the write halves would leave the sockets open (and
        // peers none the wiser). Shut them down so both sides' readers
        // see EOF promptly.
        for conn in self.shared.peers.iter().flatten() {
            let _ = conn.lock().stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Network for TcpMeshNode {
    fn node_id(&self) -> NodeId {
        self.shared.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn broadcast_p2p(&self, payload: Vec<u8>) {
        self.shared.trace_send(0, &payload);
        let body = p2p_frame(TAG_P2P, self.shared.id, &payload);
        for peer in 1..=self.n as u16 {
            if peer != self.shared.id {
                self.shared.send_raw(peer, &body);
            }
        }
    }

    fn send_to(&self, peer: NodeId, payload: Vec<u8>) {
        if peer == self.shared.id {
            return;
        }
        self.shared.trace_send(peer, &payload);
        let body = p2p_frame(TAG_P2P, self.shared.id, &payload);
        self.shared.send_raw(peer, &body);
    }

    fn submit_tob(&self, payload: Vec<u8>) {
        if self.shared.id == SEQUENCER {
            // Route through the demux thread so local submissions are
            // serialized with remote ones by a single sequencing owner.
            // No link traversed yet: hop 0 (the deliver fan-out stamps
            // hop 1 and records the PeerSend).
            let span = span_of(&payload);
            let _ = self.raw_tx.send(Inbound::TobSubmit {
                from: self.shared.id,
                span,
                hop: 0,
                payload,
            });
        } else {
            self.shared.trace_send(SEQUENCER, &payload);
            let body = p2p_frame(TAG_TOB_SUBMIT, self.shared.id, &payload);
            self.shared.send_raw(SEQUENCER, &body);
        }
    }

    fn events(&self) -> &Receiver<NetworkEvent> {
        &self.events
    }

    fn attach_registry(&mut self, registry: &Arc<theta_metrics::MetricsRegistry>) {
        let metrics = TcpMetrics {
            sent: PeerTraffic::register(
                registry,
                "theta_net_messages_sent_total",
                "theta_net_bytes_sent_total",
                self.n,
            ),
            recv: PeerTraffic::register(
                registry,
                "theta_net_messages_received_total",
                "theta_net_bytes_received_total",
                self.n,
            ),
            send_errors: registry.counter("theta_tcp_send_errors_total"),
            reader_exits: registry.counter("theta_tcp_reader_exits_total"),
            aead_failures: registry.counter("theta_net_aead_failures_total"),
        };
        // Events from before the registry existed (setup connects, early
        // failures) are transferred so the counters stay cumulative.
        registry
            .counter("theta_net_connects_total")
            .add(self.shared.connects_established.load(Ordering::Relaxed));
        registry
            .counter("theta_net_handshakes_total")
            .add(self.shared.health.handshakes.load(Ordering::Relaxed));
        metrics
            .send_errors
            .add(self.shared.health.send_errors.load(Ordering::Relaxed));
        metrics
            .reader_exits
            .add(self.shared.health.reader_exits.load(Ordering::Relaxed));
        metrics
            .aead_failures
            .add(self.shared.health.aead_failures.load(Ordering::Relaxed));
        // Pairwise clock offsets measured by the post-handshake probe,
        // for the cluster-trace merge and operator inspection.
        for peer in 1..=self.n as u16 {
            if peer != self.shared.id {
                let off = self.shared.clock_offsets[peer as usize - 1].load(Ordering::Relaxed);
                registry
                    .gauge_with("theta_clock_offset_micros", &[("peer", &peer.to_string())])
                    .set(off);
            }
        }
        let _ = self.shared.metrics.set(metrics);
    }

    fn attach_journal(&mut self, journal: &Arc<TraceJournal>) {
        let _ = self.shared.journal.set(journal.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{IpAddr, Ipv4Addr};

    /// Shared dev-mode auth domain for mesh tests.
    const DEV_SEED: u64 = 42;

    /// Binds `n` ephemeral-port listeners and connects the full mesh —
    /// no fixed port ranges, so parallel test binaries cannot collide.
    fn build_mesh(n: u16) -> Vec<TcpMeshNode> {
        let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind(loopback).expect("bind ephemeral"))
            .collect();
        let addr_list: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("local addr"))
            .collect();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let list = addr_list.clone();
                std::thread::spawn(move || {
                    let auth = MeshAuth::insecure_dev(i as u16 + 1, n, DEV_SEED);
                    TcpMesh::connect_listener(i as u16 + 1, listener, &list, auth).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    const TICK: Duration = Duration::from_secs(3);

    #[test]
    fn p2p_over_tcp() {
        let nodes = build_mesh(3);
        nodes[0].broadcast_p2p(b"tcp hello".to_vec());
        for node in &nodes[1..] {
            let ev = node.recv_timeout(TICK).expect("delivery");
            assert_eq!(ev, NetworkEvent::P2p { from: 1, payload: b"tcp hello".to_vec() });
        }
    }

    #[test]
    fn direct_send_over_tcp() {
        let nodes = build_mesh(3);
        nodes[2].send_to(1, b"up".to_vec());
        let ev = nodes[0].recv_timeout(TICK).unwrap();
        assert_eq!(ev, NetworkEvent::P2p { from: 3, payload: b"up".to_vec() });
    }

    #[test]
    fn tob_total_order_over_tcp() {
        let nodes = build_mesh(3);
        nodes[1].submit_tob(b"x".to_vec());
        nodes[2].submit_tob(b"y".to_vec());
        nodes[0].submit_tob(b"z".to_vec());
        let mut views = Vec::new();
        for node in &nodes {
            let mut seen = Vec::new();
            for _ in 0..3 {
                match node.recv_timeout(TICK) {
                    Some(NetworkEvent::Tob { seq, payload, .. }) => seen.push((seq, payload)),
                    other => panic!("expected tob, got {other:?}"),
                }
            }
            views.push(seen);
        }
        for v in &views[1..] {
            assert_eq!(*v, views[0]);
        }
    }

    #[test]
    fn bad_node_id_rejected() {
        let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
        let list = vec![
            TcpListener::bind(loopback).unwrap().local_addr().unwrap(),
            TcpListener::bind(loopback).unwrap().local_addr().unwrap(),
        ];
        assert!(TcpMesh::connect(0, &list, MeshAuth::insecure_dev(1, 2, DEV_SEED)).is_err());
        assert!(TcpMesh::connect(3, &list, MeshAuth::insecure_dev(3, 2, DEV_SEED)).is_err());
    }

    #[test]
    fn p2p_sender_is_stamped_from_connection() {
        // Node 3 claims to be node 9 inside the frame; the receiver must
        // see the connection-derived sender instead.
        let nodes = build_mesh(3);
        let body = p2p_frame(TAG_P2P, 9, b"who am i");
        nodes[2].shared.send_raw(1, &body);
        let ev = nodes[0].recv_timeout(TICK).expect("delivery");
        assert_eq!(ev, NetworkEvent::P2p { from: 3, payload: b"who am i".to_vec() });
    }

    #[test]
    fn spoofed_tob_submit_is_dropped() {
        // Node 3 submits to the sequencer claiming to be node 2: the
        // frame must be discarded, and honest traffic keeps flowing.
        let nodes = build_mesh(3);
        let body = p2p_frame(TAG_TOB_SUBMIT, 2, b"forged");
        nodes[2].shared.send_raw(1, &body);
        // An honest submit afterwards is the only delivery anyone sees.
        nodes[2].submit_tob(b"honest".to_vec());
        for node in &nodes {
            match node.recv_timeout(TICK) {
                Some(NetworkEvent::Tob { seq: 0, from: 3, payload }) => {
                    assert_eq!(payload, b"honest");
                }
                other => panic!("expected the honest submit first, got {other:?}"),
            }
            assert!(node.recv_timeout(Duration::from_millis(100)).is_none());
        }
    }

    #[test]
    fn forged_tob_deliver_from_non_sequencer_is_dropped() {
        // Only node 1's connection may carry TOB deliveries; node 3
        // pushing a fake delivery to node 2 must be ignored.
        let nodes = build_mesh(3);
        let mut body = vec![TAG_TOB_DELIVER];
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes());
        body.extend_from_slice(&[0u8; SPAN_LEN]);
        body.push(1); // hop
        body.extend_from_slice(b"fake");
        nodes[2].shared.send_raw(2, &body);
        assert!(nodes[1].recv_timeout(Duration::from_millis(200)).is_none());
    }

    #[test]
    fn tcp_counters_track_traffic() {
        let mut nodes = build_mesh(2);
        let registry = Arc::new(theta_metrics::MetricsRegistry::new());
        nodes[1].attach_registry(&registry); // node 2 only
        assert_eq!(registry.counter_value("theta_net_connects_total", &[]), Some(1));
        assert_eq!(registry.counter_value("theta_net_handshakes_total", &[]), Some(1));

        nodes[0].send_to(2, b"abcd".to_vec());
        let ev = nodes[1].recv_timeout(TICK).expect("delivery");
        assert!(matches!(ev, NetworkEvent::P2p { from: 1, .. }));
        // Received: one frame from peer 1 — 12-byte header (tag, from,
        // span, hop) + 4-byte payload + 16-byte AEAD tag on the wire.
        assert_eq!(
            registry.counter_value("theta_net_messages_received_total", &[("peer", "1")]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("theta_net_bytes_received_total", &[("peer", "1")]),
            Some(32)
        );

        nodes[1].send_to(1, b"xy".to_vec());
        let _ = nodes[0].recv_timeout(TICK).expect("delivery back");
        assert_eq!(
            registry.counter_value("theta_net_messages_sent_total", &[("peer", "1")]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("theta_net_bytes_sent_total", &[("peer", "1")]),
            Some(30)
        );

        // The post-handshake probe left a pairwise offset gauge; both
        // processes share one clock, so it must be (near) zero.
        let off = registry
            .gauge_value("theta_clock_offset_micros", &[("peer", "1")])
            .expect("offset gauge registered");
        assert!(off.abs() < 1_000_000, "same-host offset too large: {off}µs");
    }

    /// The trace context survives AEAD framing end to end: a payload
    /// whose leading 32 bytes are an instance id yields PeerSend at the
    /// sender and PeerRecv (with span and hop=1) at the receiver.
    #[test]
    fn trace_context_travels_with_the_frame() {
        let mut nodes = build_mesh(2);
        let j1 = Arc::new(TraceJournal::new(64));
        let j2 = Arc::new(TraceJournal::new(64));
        nodes[0].attach_journal(&j1);
        nodes[1].attach_journal(&j2);

        let mut instance = [0u8; 32];
        instance[..8].copy_from_slice(&[0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4]);
        let mut payload = instance.to_vec();
        payload.extend_from_slice(b"envelope body");
        nodes[0].send_to(2, payload.clone());
        let ev = nodes[1].recv_timeout(TICK).expect("delivery");
        assert!(matches!(ev, NetworkEvent::P2p { from: 1, .. }));

        let sends = j1.events_for(&instance);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].kind, TraceEventKind::PeerSend);
        assert_eq!(sends[0].peer, 2);
        assert!(sends[0].detail.contains("span=deadbeef01020304"));

        // The receive is journaled off the reader thread; give it a tick.
        let deadline = std::time::Instant::now() + TICK;
        loop {
            let recvs = j2.events_for(&instance);
            if !recvs.is_empty() {
                assert_eq!(recvs[0].kind, TraceEventKind::PeerRecv);
                assert_eq!(recvs[0].peer, 1);
                assert!(recvs[0].detail.contains("span=deadbeef01020304"));
                assert!(recvs[0].detail.contains("hop=1"));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "receive never journaled");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// The sequencer relaying a TOB submit into a delivery increments
    /// the hop count and records the relay in its journal.
    #[test]
    fn sequencer_relay_increments_hop_and_journals() {
        let mut nodes = build_mesh(3);
        let journals: Vec<Arc<TraceJournal>> =
            (0..3).map(|_| Arc::new(TraceJournal::new(64))).collect();
        for (node, j) in nodes.iter_mut().zip(&journals) {
            node.attach_journal(j);
        }

        let mut instance = [7u8; 32];
        instance[0] = 0xab;
        let payload = instance.to_vec();
        nodes[2].submit_tob(payload); // node 3 → sequencer → everyone
        for node in &nodes {
            let ev = node.recv_timeout(TICK).expect("tob delivery");
            assert!(matches!(ev, NetworkEvent::Tob { from: 3, .. }));
        }

        let wait_for = |j: &TraceJournal, kind: TraceEventKind| -> theta_metrics::TraceEvent {
            let deadline = std::time::Instant::now() + TICK;
            loop {
                if let Some(ev) =
                    j.events_for(&instance).into_iter().find(|e| e.kind == kind)
                {
                    return ev;
                }
                assert!(std::time::Instant::now() < deadline, "no {kind:?} journaled");
                std::thread::sleep(Duration::from_millis(5));
            }
        };

        // Sequencer: received the submit at hop 1, relayed at hop 2.
        let relay = wait_for(&journals[0], TraceEventKind::RelayHop);
        assert_eq!(relay.peer, 3);
        assert!(relay.detail.contains("hop=2"), "relay detail: {}", relay.detail);
        // Node 2 (pure bystander): delivery arrived having crossed two
        // links — submitter→sequencer, sequencer→node 2.
        let recv = wait_for(&journals[1], TraceEventKind::PeerRecv);
        assert_eq!(recv.peer, SEQUENCER);
        assert!(recv.detail.contains("hop=2"), "recv detail: {}", recv.detail);
    }

    /// Regression (PR 6): a second connection claiming an already-seen
    /// peer id used to overwrite the live peer's slot and leave the
    /// original half-dead; it must be rejected at setup instead.
    #[test]
    fn duplicate_hello_is_rejected() {
        let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
        let listener = TcpListener::bind(loopback).unwrap();
        let addr = listener.local_addr().unwrap();
        // Node 3 of a 3-mesh expects inbound from nodes 1 and 2.
        let addrs = vec![addr, addr, addr];
        let accepter = std::thread::spawn(move || {
            TcpMesh::connect_listener(3, listener, &addrs, MeshAuth::insecure_dev(3, 3, 77))
        });
        // Two dialers, both with node 1's (valid!) identity. A real
        // dialer follows the handshake with the offset probe, so these
        // do too (the accepter's probe would otherwise time out before
        // it ever sees the duplicate).
        let dial = |_| {
            let auth = MeshAuth::insecure_dev(1, 3, 77);
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(TICK)).unwrap();
            let target = *auth.roster.get(3).unwrap();
            let result = handshake::initiate(&mut stream, 1, &auth.identity, &target);
            if let Ok(mut session) = result {
                let _ = handshake::offset_probe_initiate(&mut stream, &mut session);
            }
            stream
        };
        let _first = dial(0);
        let _second = dial(1);
        let err = accepter.join().unwrap();
        match err {
            Err(NetworkError::Setup(msg)) => {
                assert!(msg.contains("duplicate"), "unexpected message: {msg}")
            }
            Err(other) => panic!("expected duplicate-hello rejection, got {other:?}"),
            Ok(_) => panic!("expected duplicate-hello rejection, got a mesh"),
        }
    }

    /// Regression (PR 6): a dialer that connects and never speaks used
    /// to stall mesh setup forever on the blocking hello read; the
    /// handshake read timeout must fail setup instead.
    #[test]
    fn mute_dialer_cannot_stall_mesh_setup() {
        let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
        let listener = TcpListener::bind(loopback).unwrap();
        let addr = listener.local_addr().unwrap();
        let addrs = vec![addr, addr];
        let accepter = std::thread::spawn(move || {
            TcpMesh::connect_listener(2, listener, &addrs, MeshAuth::insecure_dev(2, 2, 78))
        });
        // Connect and say nothing, keeping the socket open.
        let mute = TcpStream::connect(addr).unwrap();
        let start = std::time::Instant::now();
        let result = accepter.join().unwrap();
        assert!(result.is_err(), "mesh setup must fail on a mute dialer");
        assert!(
            start.elapsed() < HANDSHAKE_TIMEOUT + Duration::from_secs(5),
            "setup took too long: {:?}",
            start.elapsed()
        );
        drop(mute);
    }

    /// Regression (PR 6): write errors used to vanish into `let _ =` and
    /// reader-thread deaths were invisible; both must count.
    #[test]
    fn dead_link_is_observable_in_counters() {
        let mut nodes = build_mesh(2);
        let registry = Arc::new(theta_metrics::MetricsRegistry::new());
        let node2 = nodes.pop().unwrap();
        let mut node1 = nodes.pop().unwrap();
        node1.attach_registry(&registry);
        drop(node2); // closes its sockets: node 1's link is now dead

        // The reader sees EOF and its exit is counted.
        let deadline = std::time::Instant::now() + TICK;
        loop {
            if registry
                .counter_value("theta_tcp_reader_exits_total", &[])
                .unwrap_or(0)
                >= 1
            {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "reader exit never counted");
            std::thread::sleep(Duration::from_millis(10));
        }

        // Writes to the dead link eventually fail (first ones may land
        // in the kernel buffer) and the failures are counted.
        let deadline = std::time::Instant::now() + TICK;
        loop {
            node1.send_to(2, vec![0u8; 4096]);
            if registry
                .counter_value("theta_tcp_send_errors_total", &[])
                .unwrap_or(0)
                >= 1
            {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "send error never counted");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// A man-in-the-middle recording the wire must see only handshake
    /// material and ciphertext: the acceptance bar for "every inter-node
    /// byte after the hello is AEAD-protected".
    #[test]
    fn wire_carries_no_plaintext() {
        let captured: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        fn pipe(mut from: TcpStream, mut to: TcpStream, cap: Arc<Mutex<Vec<u8>>>) {
            let mut buf = [0u8; 4096];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        cap.lock().extend_from_slice(&buf[..n]);
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        }

        let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
        let node2_listener = TcpListener::bind(loopback).unwrap();
        let node2_addr = node2_listener.local_addr().unwrap();
        // The forwarder takes node 2's place in node 1's address list.
        let mitm_listener = TcpListener::bind(loopback).unwrap();
        let mitm_addr = mitm_listener.local_addr().unwrap();
        let cap = captured.clone();
        std::thread::spawn(move || {
            let (client, _) = mitm_listener.accept().unwrap();
            let server = TcpStream::connect(node2_addr).unwrap();
            let c2 = client.try_clone().unwrap();
            let s2 = server.try_clone().unwrap();
            let cap2 = cap.clone();
            std::thread::spawn(move || pipe(c2, server, cap));
            std::thread::spawn(move || pipe(s2, client, cap2));
        });

        let node1_listener = TcpListener::bind(loopback).unwrap();
        let node1_addrs = vec![node1_listener.local_addr().unwrap(), mitm_addr];
        let node2_addrs = vec![node1_addrs[0], node2_addr];
        let node2 = std::thread::spawn(move || {
            TcpMesh::connect_listener(
                2,
                node2_listener,
                &node2_addrs,
                MeshAuth::insecure_dev(2, 2, 79),
            )
            .unwrap()
        });
        let node1 = TcpMesh::connect_listener(
            1,
            node1_listener,
            &node1_addrs,
            MeshAuth::insecure_dev(1, 2, 79),
        )
        .unwrap();
        let node2 = node2.join().unwrap();

        let secret = b"ATTACK AT DAWN: distinctive plaintext marker 5f2c9a";
        node1.broadcast_p2p(secret.to_vec());
        let ev = node2.recv_timeout(TICK).expect("delivery through the mitm");
        assert_eq!(ev, NetworkEvent::P2p { from: 1, payload: secret.to_vec() });
        node2.send_to(1, secret.to_vec());
        let _ = node1.recv_timeout(TICK).expect("reverse delivery");

        let wire = captured.lock().clone();
        assert!(!wire.is_empty(), "the mitm saw no traffic at all");
        assert!(
            !wire
                .windows(secret.len())
                .any(|w| w == &secret[..]),
            "plaintext payload leaked onto the wire"
        );
        // Not even a fragment of the payload may appear.
        assert!(
            !wire.windows(16).any(|w| secret.windows(16).any(|s| s == w)),
            "plaintext fragment leaked onto the wire"
        );
    }

    /// Tampering with a frame in flight must kill the link, not crash or
    /// desync the node.
    #[test]
    fn tampered_frame_tears_the_link_down() {
        let mut nodes = build_mesh(2);
        let registry = Arc::new(theta_metrics::MetricsRegistry::new());
        nodes[1].attach_registry(&registry);

        // Honest traffic first, to prove the link works.
        nodes[0].send_to(2, b"before".to_vec());
        assert!(nodes[1].recv_timeout(TICK).is_some());

        // Write garbage directly into node 1's write half: node 2's
        // AEAD open fails and its reader tears the connection down.
        {
            let conn = nodes[0].shared.peers[1].as_ref().unwrap();
            let mut conn = conn.lock();
            let garbage = [9u8, 9, 9, 9];
            conn.stream
                .write_all(&(garbage.len() as u32).to_le_bytes())
                .unwrap();
            conn.stream.write_all(&garbage).unwrap();
        }

        let deadline = std::time::Instant::now() + TICK;
        loop {
            let aead = registry
                .counter_value("theta_net_aead_failures_total", &[])
                .unwrap_or(0);
            let exits = registry
                .counter_value("theta_tcp_reader_exits_total", &[])
                .unwrap_or(0);
            if aead >= 1 && exits >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "tampering never tore the link down (aead={aead}, exits={exits})"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // The victim node is still alive (its event channel works).
        assert!(nodes[1].recv_timeout(Duration::from_millis(50)).is_none());
    }
}
