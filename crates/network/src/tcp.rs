//! Real TCP full-mesh transport with a leader-sequencer TOB.
//!
//! Replaces the libp2p overlay of the original system for standalone
//! deployments: every node dials every higher-id node and accepts from
//! every lower-id node, frames are `u32`-length-prefixed, and node 1
//! doubles as the TOB sequencer (the "proxy to a replicated service"
//! collapsed to its simplest faithful form: a single ordering point).
//!
//! Frame layout after the length prefix:
//! `tag(u8) | fields... | payload` with tags
//! `0` = P2P message (`from: u16`),
//! `1` = TOB submit (`from: u16`) — only sent *to* the sequencer,
//! `2` = TOB deliver (`seq: u64, from: u16`) — only sent *by* it.
//!
//! Sender identity is **connection-derived**: each reader thread knows
//! which peer its socket belongs to (from the 2-byte hello handshake) and
//! stamps/validates every frame against it. A peer cannot impersonate
//! another node in P2P traffic, cannot submit TOB messages under a
//! foreign id, and cannot forge TOB deliveries unless it *is* the
//! sequencer connection.
//!
//! Per node, one demultiplexer thread owns the TOB reorder buffer (and,
//! on node 1, the sequencer state) and feeds a single ordered event
//! channel, which [`Network::events`] exposes for `select!`-style
//! consumption.

use crate::{Network, NetworkError, NetworkEvent, NodeId, PeerTraffic, TobReorderBuffer};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const TAG_P2P: u8 = 0;
const TAG_TOB_SUBMIT: u8 = 1;
const TAG_TOB_DELIVER: u8 = 2;

/// The fixed TOB sequencer node.
const SEQUENCER: NodeId = 1;

/// Maximum accepted frame size (matches the codec bound).
const MAX_FRAME: u32 = 64 << 20;

/// Frame bodies are read in chunks of this size, so a hostile length
/// prefix never triggers one giant upfront allocation.
const READ_CHUNK: usize = 64 << 10;

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds limit",
        ));
    }
    // Grow the buffer chunk by chunk: memory use tracks bytes actually
    // received, not the (attacker-controlled) claimed length.
    let mut body = Vec::with_capacity(len.min(READ_CHUNK));
    let mut chunk = [0u8; READ_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        stream.read_exact(&mut chunk[..take])?;
        body.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(body)
}

enum Inbound {
    P2p { from: NodeId, payload: Vec<u8> },
    TobSubmit { from: NodeId, payload: Vec<u8> },
    TobDeliver { seq: u64, from: NodeId, payload: Vec<u8> },
}

fn parse_frame(body: &[u8]) -> Option<Inbound> {
    match *body.first()? {
        TAG_P2P => {
            let from = u16::from_le_bytes([*body.get(1)?, *body.get(2)?]);
            Some(Inbound::P2p { from, payload: body[3..].to_vec() })
        }
        TAG_TOB_SUBMIT => {
            let from = u16::from_le_bytes([*body.get(1)?, *body.get(2)?]);
            Some(Inbound::TobSubmit { from, payload: body[3..].to_vec() })
        }
        TAG_TOB_DELIVER => {
            if body.len() < 11 {
                return None;
            }
            let mut seq_bytes = [0u8; 8];
            seq_bytes.copy_from_slice(&body[1..9]);
            let seq = u64::from_le_bytes(seq_bytes);
            let from = u16::from_le_bytes([body[9], body[10]]);
            Some(Inbound::TobDeliver { seq, from, payload: body[11..].to_vec() })
        }
        _ => None,
    }
}

/// Traffic counters attached to a mesh node after setup. Reader and
/// writer paths check the `OnceLock` per frame — a relaxed pointer load
/// when attached, a no-op when not.
struct TcpMetrics {
    sent: PeerTraffic,
    recv: PeerTraffic,
}

struct Shared {
    /// Write halves, indexed by node id − 1 (`None` at our own slot).
    peers: Vec<Option<Mutex<TcpStream>>>,
    id: NodeId,
    /// Sequencer state (used only on node 1's demux thread).
    tob_seq: AtomicU64,
    /// Connections established during mesh setup (dials + accepts),
    /// transferred into the registry when metrics are attached.
    connects_established: AtomicU64,
    metrics: OnceLock<TcpMetrics>,
}

impl Shared {
    fn send_raw(&self, peer: NodeId, body: &[u8]) {
        if let Some(Some(stream)) = self.peers.get(peer as usize - 1) {
            if let Some(m) = self.metrics.get() {
                m.sent.count(peer, body.len());
            }
            let _ = write_frame(&mut stream.lock(), body);
        }
    }
}

/// A node of the TCP mesh. Build a whole mesh with [`TcpMesh::connect`]
/// or [`TcpMesh::connect_listener`].
pub struct TcpMeshNode {
    shared: Arc<Shared>,
    n: usize,
    /// Ordered, demultiplexed events (what [`Network::events`] exposes).
    events: Receiver<NetworkEvent>,
    /// Raw inbound channel into the demux thread; also used for the
    /// sequencer's own TOB submissions so all ordering happens in one
    /// place. Held here to keep the demux alive as long as the node.
    raw_tx: Sender<Inbound>,
}

/// Builder for a full TCP mesh on one or more machines.
pub struct TcpMesh;

impl TcpMesh {
    /// Connects node `id` (1-based) into the mesh described by `addrs`
    /// (address `i` belongs to node `i + 1`; `addrs[id-1]` is the local
    /// bind address).
    ///
    /// Dial direction: node `a` dials node `b` iff `a < b`. The dialer
    /// sends its id as a 2-byte hello.
    ///
    /// # Errors
    ///
    /// [`NetworkError`] when binding, dialing or the hello handshake fail.
    pub fn connect(id: NodeId, addrs: &[SocketAddr]) -> Result<TcpMeshNode, NetworkError> {
        let n = addrs.len();
        if id == 0 || id as usize > n {
            return Err(NetworkError::Setup(format!("node id {id} outside 1..={n}")));
        }
        let listener = TcpListener::bind(addrs[id as usize - 1])?;
        Self::connect_listener(id, listener, addrs)
    }

    /// Like [`TcpMesh::connect`], but with a pre-bound listener — the
    /// pattern for OS-assigned (port 0) addresses: bind every listener
    /// first, exchange the real addresses, then connect the mesh. The
    /// entry `addrs[id-1]` is ignored (the listener stands in for it).
    ///
    /// # Errors
    ///
    /// [`NetworkError`] when accepting, dialing or the hello handshake
    /// fail.
    pub fn connect_listener(
        id: NodeId,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> Result<TcpMeshNode, NetworkError> {
        let n = addrs.len();
        if id == 0 || id as usize > n {
            return Err(NetworkError::Setup(format!("node id {id} outside 1..={n}")));
        }
        let (raw_tx, raw_rx) = unbounded::<Inbound>();

        let mut peers: Vec<Option<Mutex<TcpStream>>> = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(None);
        }

        // Accept connections from all lower-id nodes.
        let expected_inbound = id as usize - 1;
        let mut accepted = 0;
        let mut inbound_streams = Vec::new();
        listener.set_nonblocking(false)?;
        while accepted < expected_inbound {
            let (mut stream, _) = listener.accept()?;
            let mut hello = [0u8; 2];
            stream.read_exact(&mut hello)?;
            let peer_id = u16::from_le_bytes(hello);
            if peer_id == 0 || peer_id >= id {
                return Err(NetworkError::Setup(format!("unexpected hello from {peer_id}")));
            }
            inbound_streams.push((peer_id, stream));
            accepted += 1;
        }

        // Dial all higher-id nodes (with retries while they come up).
        let mut outbound_streams = Vec::new();
        for peer in (id + 1)..=(n as u16) {
            let addr = addrs[peer as usize - 1];
            let stream = dial_with_retry(addr)?;
            outbound_streams.push((peer, stream));
        }

        let mut readers = Vec::new();
        let mut connects = 0u64;
        for (peer, mut stream) in outbound_streams {
            stream.write_all(&id.to_le_bytes())?;
            readers.push((stream.try_clone()?, peer));
            peers[peer as usize - 1] = Some(Mutex::new(stream));
            connects += 1;
        }
        for (peer, stream) in inbound_streams {
            readers.push((stream.try_clone()?, peer));
            peers[peer as usize - 1] = Some(Mutex::new(stream));
            connects += 1;
        }

        let shared = Arc::new(Shared {
            peers,
            id,
            tob_seq: AtomicU64::new(0),
            connects_established: AtomicU64::new(connects),
            metrics: OnceLock::new(),
        });
        for (stream, peer) in readers {
            spawn_reader(stream, peer, raw_tx.clone(), shared.clone());
        }
        let (events_tx, events_rx) = unbounded::<NetworkEvent>();
        spawn_demux(raw_rx, events_tx, shared.clone(), n);
        Ok(TcpMeshNode { shared, n, events: events_rx, raw_tx })
    }
}

fn dial_with_retry(addr: SocketAddr) -> Result<TcpStream, NetworkError> {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                return Ok(s);
            }
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(NetworkError::Setup(format!("dial {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Reads frames from one connection, enforcing the connection identity
/// `conn_peer` learned during the hello handshake:
///
/// - P2P frames are **stamped** with `conn_peer`, whatever they claim;
/// - TOB submits claiming a different sender are dropped (spoofing);
/// - TOB deliveries are accepted only from the sequencer's connection.
fn spawn_reader(
    mut stream: TcpStream,
    conn_peer: NodeId,
    tx: Sender<Inbound>,
    shared: Arc<Shared>,
) {
    std::thread::Builder::new()
        .name(format!("theta-tcp-reader-{conn_peer}"))
        .spawn(move || {
            while let Ok(body) = read_frame(&mut stream) {
                if let Some(m) = shared.metrics.get() {
                    m.recv.count(conn_peer, body.len());
                }
                let inbound = match parse_frame(&body) {
                    Some(Inbound::P2p { payload, .. }) => {
                        Inbound::P2p { from: conn_peer, payload }
                    }
                    Some(Inbound::TobSubmit { from, payload }) => {
                        if from != conn_peer {
                            continue; // spoofed submit: drop it
                        }
                        Inbound::TobSubmit { from, payload }
                    }
                    Some(Inbound::TobDeliver { seq, from, payload }) => {
                        if conn_peer != SEQUENCER {
                            continue; // only the sequencer delivers
                        }
                        Inbound::TobDeliver { seq, from, payload }
                    }
                    None => break, // malformed frame: drop the connection
                };
                if tx.send(inbound).is_err() {
                    break;
                }
            }
        })
        .expect("spawn reader");
}

/// The per-node demultiplexer: single owner of the TOB reorder buffer
/// (and of the sequencer state on node 1), turning the raw inbound
/// stream into one ordered [`NetworkEvent`] channel.
fn spawn_demux(
    raw_rx: Receiver<Inbound>,
    events_tx: Sender<NetworkEvent>,
    shared: Arc<Shared>,
    n: usize,
) {
    std::thread::Builder::new()
        .name(format!("theta-tcp-demux-{}", shared.id))
        .spawn(move || {
            let sequencing = shared.id == SEQUENCER;
            let mut reorder = TobReorderBuffer::new();
            while let Ok(inbound) = raw_rx.recv() {
                let released = match inbound {
                    Inbound::P2p { from, payload } => {
                        vec![NetworkEvent::P2p { from, payload }]
                    }
                    Inbound::TobSubmit { from, payload } => {
                        if !sequencing {
                            continue; // stray submit at a non-sequencer
                        }
                        let seq = shared.tob_seq.fetch_add(1, Ordering::SeqCst);
                        let mut body = Vec::with_capacity(11 + payload.len());
                        body.push(TAG_TOB_DELIVER);
                        body.extend_from_slice(&seq.to_le_bytes());
                        body.extend_from_slice(&from.to_le_bytes());
                        body.extend_from_slice(&payload);
                        for peer in 1..=n as u16 {
                            if peer != shared.id {
                                shared.send_raw(peer, &body);
                            }
                        }
                        reorder.insert(seq, from, payload)
                    }
                    Inbound::TobDeliver { seq, from, payload } => {
                        reorder.insert(seq, from, payload)
                    }
                };
                for ev in released {
                    if events_tx.send(ev).is_err() {
                        return; // node handle gone
                    }
                }
            }
        })
        .expect("spawn demux");
}

impl Network for TcpMeshNode {
    fn node_id(&self) -> NodeId {
        self.shared.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn broadcast_p2p(&self, payload: Vec<u8>) {
        let mut body = Vec::with_capacity(3 + payload.len());
        body.push(TAG_P2P);
        body.extend_from_slice(&self.shared.id.to_le_bytes());
        body.extend_from_slice(&payload);
        for peer in 1..=self.n as u16 {
            if peer != self.shared.id {
                self.shared.send_raw(peer, &body);
            }
        }
    }

    fn send_to(&self, peer: NodeId, payload: Vec<u8>) {
        if peer == self.shared.id {
            return;
        }
        let mut body = Vec::with_capacity(3 + payload.len());
        body.push(TAG_P2P);
        body.extend_from_slice(&self.shared.id.to_le_bytes());
        body.extend_from_slice(&payload);
        self.shared.send_raw(peer, &body);
    }

    fn submit_tob(&self, payload: Vec<u8>) {
        if self.shared.id == SEQUENCER {
            // Route through the demux thread so local submissions are
            // serialized with remote ones by a single sequencing owner.
            let _ = self
                .raw_tx
                .send(Inbound::TobSubmit { from: self.shared.id, payload });
        } else {
            let mut body = Vec::with_capacity(3 + payload.len());
            body.push(TAG_TOB_SUBMIT);
            body.extend_from_slice(&self.shared.id.to_le_bytes());
            body.extend_from_slice(&payload);
            self.shared.send_raw(SEQUENCER, &body);
        }
    }

    fn events(&self) -> &Receiver<NetworkEvent> {
        &self.events
    }

    fn attach_registry(&mut self, registry: &Arc<theta_metrics::MetricsRegistry>) {
        let metrics = TcpMetrics {
            sent: PeerTraffic::register(
                registry,
                "theta_net_messages_sent_total",
                "theta_net_bytes_sent_total",
                self.n,
            ),
            recv: PeerTraffic::register(
                registry,
                "theta_net_messages_received_total",
                "theta_net_bytes_received_total",
                self.n,
            ),
        };
        // Connections made during setup predate the registry; transfer
        // the accumulated count so reconnect logic added later only has
        // to keep incrementing the same counter.
        registry
            .counter("theta_net_connects_total")
            .add(self.shared.connects_established.load(Ordering::Relaxed));
        let _ = self.shared.metrics.set(metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    /// Binds `n` ephemeral-port listeners and connects the full mesh —
    /// no fixed port ranges, so parallel test binaries cannot collide.
    fn build_mesh(n: u16) -> Vec<TcpMeshNode> {
        let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind(loopback).expect("bind ephemeral"))
            .collect();
        let addr_list: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("local addr"))
            .collect();
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let list = addr_list.clone();
                std::thread::spawn(move || {
                    TcpMesh::connect_listener(i as u16 + 1, listener, &list).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    const TICK: Duration = Duration::from_secs(3);

    #[test]
    fn p2p_over_tcp() {
        let nodes = build_mesh(3);
        nodes[0].broadcast_p2p(b"tcp hello".to_vec());
        for node in &nodes[1..] {
            let ev = node.recv_timeout(TICK).expect("delivery");
            assert_eq!(ev, NetworkEvent::P2p { from: 1, payload: b"tcp hello".to_vec() });
        }
    }

    #[test]
    fn direct_send_over_tcp() {
        let nodes = build_mesh(3);
        nodes[2].send_to(1, b"up".to_vec());
        let ev = nodes[0].recv_timeout(TICK).unwrap();
        assert_eq!(ev, NetworkEvent::P2p { from: 3, payload: b"up".to_vec() });
    }

    #[test]
    fn tob_total_order_over_tcp() {
        let nodes = build_mesh(3);
        nodes[1].submit_tob(b"x".to_vec());
        nodes[2].submit_tob(b"y".to_vec());
        nodes[0].submit_tob(b"z".to_vec());
        let mut views = Vec::new();
        for node in &nodes {
            let mut seen = Vec::new();
            for _ in 0..3 {
                match node.recv_timeout(TICK) {
                    Some(NetworkEvent::Tob { seq, payload, .. }) => seen.push((seq, payload)),
                    other => panic!("expected tob, got {other:?}"),
                }
            }
            views.push(seen);
        }
        for v in &views[1..] {
            assert_eq!(*v, views[0]);
        }
    }

    #[test]
    fn bad_node_id_rejected() {
        let loopback = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);
        let list = vec![
            TcpListener::bind(loopback).unwrap().local_addr().unwrap(),
            TcpListener::bind(loopback).unwrap().local_addr().unwrap(),
        ];
        assert!(TcpMesh::connect(0, &list).is_err());
        assert!(TcpMesh::connect(3, &list).is_err());
    }

    #[test]
    fn p2p_sender_is_stamped_from_connection() {
        // Node 3 claims to be node 9 inside the frame; the receiver must
        // see the connection-derived sender instead.
        let nodes = build_mesh(3);
        let mut body = vec![TAG_P2P];
        body.extend_from_slice(&9u16.to_le_bytes());
        body.extend_from_slice(b"who am i");
        nodes[2].shared.send_raw(1, &body);
        let ev = nodes[0].recv_timeout(TICK).expect("delivery");
        assert_eq!(ev, NetworkEvent::P2p { from: 3, payload: b"who am i".to_vec() });
    }

    #[test]
    fn spoofed_tob_submit_is_dropped() {
        // Node 3 submits to the sequencer claiming to be node 2: the
        // frame must be discarded, and honest traffic keeps flowing.
        let nodes = build_mesh(3);
        let mut body = vec![TAG_TOB_SUBMIT];
        body.extend_from_slice(&2u16.to_le_bytes());
        body.extend_from_slice(b"forged");
        nodes[2].shared.send_raw(1, &body);
        // An honest submit afterwards is the only delivery anyone sees.
        nodes[2].submit_tob(b"honest".to_vec());
        for node in &nodes {
            match node.recv_timeout(TICK) {
                Some(NetworkEvent::Tob { seq: 0, from: 3, payload }) => {
                    assert_eq!(payload, b"honest");
                }
                other => panic!("expected the honest submit first, got {other:?}"),
            }
            assert!(node.recv_timeout(Duration::from_millis(100)).is_none());
        }
    }

    #[test]
    fn forged_tob_deliver_from_non_sequencer_is_dropped() {
        // Only node 1's connection may carry TOB deliveries; node 3
        // pushing a fake delivery to node 2 must be ignored.
        let nodes = build_mesh(3);
        let mut body = vec![TAG_TOB_DELIVER];
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&1u16.to_le_bytes());
        body.extend_from_slice(b"fake");
        nodes[2].shared.send_raw(2, &body);
        assert!(nodes[1].recv_timeout(Duration::from_millis(200)).is_none());
    }

    #[test]
    fn tcp_counters_track_traffic() {
        let mut nodes = build_mesh(2);
        let registry = Arc::new(theta_metrics::MetricsRegistry::new());
        nodes[1].attach_registry(&registry); // node 2 only
        assert_eq!(registry.counter_value("theta_net_connects_total", &[]), Some(1));

        nodes[0].send_to(2, b"abcd".to_vec());
        let ev = nodes[1].recv_timeout(TICK).expect("delivery");
        assert!(matches!(ev, NetworkEvent::P2p { from: 1, .. }));
        // Received: one frame from peer 1 (3-byte header + 4-byte payload).
        assert_eq!(
            registry.counter_value("theta_net_messages_received_total", &[("peer", "1")]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("theta_net_bytes_received_total", &[("peer", "1")]),
            Some(7)
        );

        nodes[1].send_to(1, b"xy".to_vec());
        let _ = nodes[0].recv_timeout(TICK).expect("delivery back");
        assert_eq!(
            registry.counter_value("theta_net_messages_sent_total", &[("peer", "1")]),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("theta_net_bytes_sent_total", &[("peer", "1")]),
            Some(5)
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut writer = TcpStream::connect(addr).unwrap();
        let (mut reader, _) = listener.accept().unwrap();
        // Claim a frame bigger than the cap: rejected before any body read.
        writer
            .write_all(&(MAX_FRAME + 1).to_le_bytes())
            .unwrap();
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_giant_frame_fails_without_upfront_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut writer = TcpStream::connect(addr).unwrap();
        let (mut reader, _) = listener.accept().unwrap();
        // Claim the maximum allowed size but send only a sliver and hang
        // up: chunked reading must surface EOF instead of sitting on a
        // 64 MiB buffer waiting for bytes that never come.
        writer.write_all(&MAX_FRAME.to_le_bytes()).unwrap();
        writer.write_all(&[0u8; 128]).unwrap();
        drop(writer);
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn chunked_read_reassembles_large_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut writer = TcpStream::connect(addr).unwrap();
        let (mut reader, _) = listener.accept().unwrap();
        // Larger than one read chunk, so reassembly spans several reads.
        let body: Vec<u8> = (0..READ_CHUNK * 3 + 17).map(|i| i as u8).collect();
        let body_clone = body.clone();
        let w = std::thread::spawn(move || write_frame(&mut writer, &body_clone).unwrap());
        let got = read_frame(&mut reader).unwrap();
        w.join().unwrap();
        assert_eq!(got, body);
    }
}
