//! # theta-network
//!
//! The paper's *network layer* (§3.6): peer-to-peer communication plus an
//! optional total-order broadcast (TOB) channel, behind one [`Network`]
//! interface so the orchestration layer never cares which transport
//! backs it.
//!
//! Two implementations ship, mirroring the paper's deployment modes:
//!
//! - [`inmemory`] — an in-process mesh with configurable per-link latency,
//!   jitter, loss and partitions. This plays the role of the paper's
//!   DigitalOcean fleets for tests and the evaluation harness (the RTTs
//!   of Table 2 become [`LinkProfile`]s), and doubles as the failure
//!   injection harness.
//! - [`tcp`] — a real TCP full mesh (length-prefixed frames over
//!   `std::net`) with a leader-sequencer TOB, standing in for the
//!   libp2p overlay / TOB proxy of the original system.
//!
//! TOB semantics: every submitted message is delivered to **all** nodes
//! (including the submitter) in one global sequence order. P2P broadcast
//! excludes the sender (a node already knows its own protocol messages).

pub mod demux;
pub mod gossip;
pub mod handshake;
pub mod inmemory;
pub mod tcp;

use std::time::Duration;

/// A node identifier on the network layer (1-based, aligning with the
/// scheme layer's party ids).
pub type NodeId = u16;

/// An event delivered by the network to its node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkEvent {
    /// A peer-to-peer message.
    P2p {
        /// Sending node.
        from: NodeId,
        /// Opaque payload.
        payload: Vec<u8>,
    },
    /// A totally-ordered broadcast delivery.
    Tob {
        /// Global sequence number (0-based, gap-free per node).
        seq: u64,
        /// Submitting node.
        from: NodeId,
        /// Opaque payload.
        payload: Vec<u8>,
    },
}

/// Errors surfaced by network implementations.
#[derive(Debug)]
pub enum NetworkError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The mesh could not be established (bad peer list, handshake...).
    Setup(String),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Io(e) => write!(f, "network i/o error: {e}"),
            NetworkError::Setup(msg) => write!(f, "network setup failed: {msg}"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<std::io::Error> for NetworkError {
    fn from(e: std::io::Error) -> Self {
        NetworkError::Io(e)
    }
}

/// The transport abstraction handed to each Thetacrypt instance
/// (the paper's *network manager* view: P2P plus optional TOB).
pub trait Network: Send {
    /// This node's identifier.
    fn node_id(&self) -> NodeId;

    /// Total number of nodes in the Θ-network.
    fn num_nodes(&self) -> usize;

    /// Sends `payload` to every *other* node (gossip-style broadcast).
    fn broadcast_p2p(&self, payload: Vec<u8>);

    /// Sends `payload` to one specific peer.
    fn send_to(&self, peer: NodeId, payload: Vec<u8>);

    /// Submits `payload` to the total-order broadcast channel; it will be
    /// delivered to all nodes (including this one) in sequence order.
    fn submit_tob(&self, payload: Vec<u8>);

    /// The channel on which this node's events arrive, fully demultiplexed
    /// and (for TOB) already released in gap-free sequence order.
    ///
    /// Exposing the receiver — rather than only a polling call — lets the
    /// orchestration layer park in a `select!` across its command channel
    /// and the network instead of busy-polling.
    fn events(&self) -> &crossbeam::channel::Receiver<NetworkEvent>;

    /// Waits up to `timeout` for the next event. `None` on timeout or
    /// when the network has shut down.
    fn recv_timeout(&self, timeout: Duration) -> Option<NetworkEvent> {
        self.events().recv_timeout(timeout).ok()
    }

    /// Attaches a metrics registry: implementations register their
    /// per-peer traffic counters (`theta_net_messages_sent_total`,
    /// `theta_net_bytes_sent_total`, receive equivalents, connect
    /// counts) against it. Called once by the orchestration layer before
    /// the event loop starts; the default is a no-op so transports
    /// without instrumentation keep working.
    fn attach_registry(&mut self, registry: &std::sync::Arc<theta_metrics::MetricsRegistry>) {
        let _ = registry;
    }

    /// Attaches the node's trace journal: implementations record
    /// `PeerSend` / `PeerRecv` (and, on relaying overlays, `RelayHop`)
    /// events for envelope traffic, keyed by the instance id peeked
    /// from the payload (see [`demux::peek_key`]). Called once by the
    /// orchestration layer alongside [`Network::attach_registry`]; the
    /// default is a no-op.
    fn attach_journal(&mut self, journal: &std::sync::Arc<theta_metrics::TraceJournal>) {
        let _ = journal;
    }
}

/// Per-peer traffic counters (messages + bytes), resolved once at
/// registration so the send/receive hot paths touch only atomics.
/// Shared by both transport implementations.
pub(crate) struct PeerTraffic {
    msgs: Vec<std::sync::Arc<theta_metrics::Counter>>,
    bytes: Vec<std::sync::Arc<theta_metrics::Counter>>,
}

impl PeerTraffic {
    /// Registers one `{peer="i"}` series pair per node.
    pub(crate) fn register(
        registry: &theta_metrics::MetricsRegistry,
        msgs_name: &str,
        bytes_name: &str,
        n: usize,
    ) -> PeerTraffic {
        let mut msgs = Vec::with_capacity(n);
        let mut bytes = Vec::with_capacity(n);
        for peer in 1..=n {
            let label = peer.to_string();
            msgs.push(registry.counter_with(msgs_name, &[("peer", &label)]));
            bytes.push(registry.counter_with(bytes_name, &[("peer", &label)]));
        }
        PeerTraffic { msgs, bytes }
    }

    /// Counts one message of `nbytes` for `peer` (1-based; out-of-range
    /// ids are ignored).
    pub(crate) fn count(&self, peer: NodeId, nbytes: usize) {
        if peer >= 1 && (peer as usize) <= self.msgs.len() {
            self.msgs[peer as usize - 1].inc();
            self.bytes[peer as usize - 1].add(nbytes as u64);
        }
    }
}

/// Per-link latency description (one direction).
#[derive(Clone, Copy, Debug)]
pub struct LinkProfile {
    /// Mean one-way latency.
    pub latency: Duration,
    /// Uniform jitter added in `[0, jitter]`.
    pub jitter: Duration,
}

impl LinkProfile {
    /// A link with fixed latency and no jitter.
    pub fn fixed(latency: Duration) -> LinkProfile {
        LinkProfile { latency, jitter: Duration::ZERO }
    }

    /// The paper's local (same-datacenter) profile: ≈0.65 ms RTT.
    pub fn local() -> LinkProfile {
        LinkProfile {
            latency: Duration::from_micros(325),
            jitter: Duration::from_micros(50),
        }
    }
}

/// Reorder buffer releasing TOB deliveries in gap-free sequence order.
///
/// Shared by both network implementations: physical arrival order may
/// differ per node, but each node must observe the identical sequence.
#[derive(Debug, Default)]
pub struct TobReorderBuffer {
    next_seq: u64,
    pending: std::collections::BTreeMap<u64, (NodeId, Vec<u8>)>,
}

impl TobReorderBuffer {
    /// Creates an empty buffer expecting sequence number 0 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an arrival; returns every delivery now releasable in order.
    pub fn insert(&mut self, seq: u64, from: NodeId, payload: Vec<u8>) -> Vec<NetworkEvent> {
        if seq >= self.next_seq {
            self.pending.insert(seq, (from, payload));
        }
        let mut out = Vec::new();
        while let Some((from, payload)) = self.pending.remove(&self.next_seq) {
            out.push(NetworkEvent::Tob { seq: self.next_seq, from, payload });
            self.next_seq += 1;
        }
        out
    }

    /// Number of buffered out-of-order deliveries.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_buffer_releases_in_order() {
        let mut buf = TobReorderBuffer::new();
        assert!(buf.insert(1, 2, vec![1]).is_empty());
        assert!(buf.insert(2, 3, vec![2]).is_empty());
        assert_eq!(buf.pending_len(), 2);
        let released = buf.insert(0, 1, vec![0]);
        assert_eq!(released.len(), 3);
        for (i, ev) in released.iter().enumerate() {
            match ev {
                NetworkEvent::Tob { seq, .. } => assert_eq!(*seq, i as u64),
                _ => panic!("expected tob"),
            }
        }
    }

    #[test]
    fn reorder_buffer_ignores_duplicates_below_cursor() {
        let mut buf = TobReorderBuffer::new();
        let r = buf.insert(0, 1, vec![9]);
        assert_eq!(r.len(), 1);
        // Replay of an already-released sequence number is dropped.
        assert!(buf.insert(0, 1, vec![9]).is_empty());
        assert_eq!(buf.pending_len(), 0);
    }

    #[test]
    fn link_profile_constructors() {
        let l = LinkProfile::fixed(Duration::from_millis(5));
        assert_eq!(l.latency, Duration::from_millis(5));
        assert_eq!(l.jitter, Duration::ZERO);
        assert!(LinkProfile::local().latency < Duration::from_millis(1));
    }

    #[test]
    fn error_display() {
        let e = NetworkError::Setup("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
