//! Instance-id demultiplexing helpers.
//!
//! The orchestration layer's envelope wire format (`theta-orchestration`'s
//! `Envelope`) encodes the 32-byte instance id *first* and *raw* — the
//! codec writes fixed-size byte arrays with no length prefix — so the
//! first [`KEY_LEN`] bytes of every protocol payload double as a routing
//! key. A router thread can pull that key out of an incoming payload and
//! decide which per-instance mailbox the event belongs to (or that the
//! instance is already finished and the payload can be dropped) *without*
//! running the full envelope decoder on its hot path.
//!
//! This module only pins down the convention; it deliberately knows
//! nothing about envelopes, requests or schemes, so the network crate
//! stays below the orchestration crate in the dependency order.

/// Length of the routing key: the 32-byte instance id that leads every
/// envelope payload.
pub const KEY_LEN: usize = 32;

/// Extracts the instance routing key from a raw payload.
///
/// Returns `None` when the payload is too short to carry a key — such
/// payloads can never decode into a valid envelope and callers should
/// drop them as malformed.
pub fn peek_key(payload: &[u8]) -> Option<[u8; KEY_LEN]> {
    let head = payload.get(..KEY_LEN)?;
    let mut key = [0u8; KEY_LEN];
    key.copy_from_slice(head);
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peeks_leading_32_bytes() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&[7u8; KEY_LEN]);
        payload.extend_from_slice(b"rest of the envelope");
        assert_eq!(peek_key(&payload), Some([7u8; KEY_LEN]));
    }

    #[test]
    fn exact_length_payload_is_a_key() {
        let payload = [3u8; KEY_LEN];
        assert_eq!(peek_key(&payload), Some([3u8; KEY_LEN]));
    }

    #[test]
    fn short_payload_has_no_key() {
        assert_eq!(peek_key(&[]), None);
        assert_eq!(peek_key(&[1u8; KEY_LEN - 1]), None);
    }

    #[test]
    fn key_matches_codec_fixed_array_encoding() {
        // The convention relies on the codec writing `[u8; 32]` raw with
        // no length prefix; lock that in here so a codec change breaks
        // this test rather than silently mis-routing envelopes.
        use theta_codec::Encode;
        let id = [9u8; KEY_LEN];
        let mut w = theta_codec::Writer::new();
        id.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), KEY_LEN);
        assert_eq!(peek_key(&bytes), Some(id));
    }
}
