//! Instance-id demultiplexing helpers.
//!
//! The orchestration layer's envelope wire format (`theta-orchestration`'s
//! `Envelope`) encodes the 32-byte instance id *first* and *raw* — the
//! codec writes fixed-size byte arrays with no length prefix — so the
//! first [`KEY_LEN`] bytes of every protocol payload double as a routing
//! key. A router thread can pull that key out of an incoming payload and
//! decide which per-instance mailbox the event belongs to (or that the
//! instance is already finished and the payload can be dropped) *without*
//! running the full envelope decoder on its hot path.
//!
//! This module only pins down the convention; it deliberately knows
//! nothing about envelopes, requests or schemes, so the network crate
//! stays below the orchestration crate in the dependency order.

/// Length of the routing key: the 32-byte instance id that leads every
/// envelope payload.
pub const KEY_LEN: usize = 32;

/// Extracts the instance routing key from a raw payload.
///
/// Returns `None` when the payload is too short to carry a key — such
/// payloads can never decode into a valid envelope and callers should
/// drop them as malformed.
pub fn peek_key(payload: &[u8]) -> Option<[u8; KEY_LEN]> {
    let head = payload.get(..KEY_LEN)?;
    let mut key = [0u8; KEY_LEN];
    key.copy_from_slice(head);
    Some(key)
}

/// Length of the span id carried in trace contexts.
pub const SPAN_LEN: usize = 8;

/// Derives the 8-byte trace span id for a payload: the leading bytes of
/// the instance routing key. The instance id is content-derived, so
/// every node computes the *same* span for the same instance — which is
/// what lets per-node journals be joined into one cross-node timeline
/// without a span-exchange protocol. Payloads too short to carry a key
/// get the all-zero span ("untraced").
pub fn span_of(payload: &[u8]) -> [u8; SPAN_LEN] {
    let mut span = [0u8; SPAN_LEN];
    if let Some(key) = peek_key(payload) {
        span.copy_from_slice(&key[..SPAN_LEN]);
    }
    span
}

/// Renders a span id the way journal details and the CLI print it.
pub fn span_hex(span: &[u8; SPAN_LEN]) -> String {
    let mut s = String::with_capacity(SPAN_LEN * 2);
    for b in span {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peeks_leading_32_bytes() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&[7u8; KEY_LEN]);
        payload.extend_from_slice(b"rest of the envelope");
        assert_eq!(peek_key(&payload), Some([7u8; KEY_LEN]));
    }

    #[test]
    fn exact_length_payload_is_a_key() {
        let payload = [3u8; KEY_LEN];
        assert_eq!(peek_key(&payload), Some([3u8; KEY_LEN]));
    }

    #[test]
    fn short_payload_has_no_key() {
        assert_eq!(peek_key(&[]), None);
        assert_eq!(peek_key(&[1u8; KEY_LEN - 1]), None);
    }

    #[test]
    fn key_matches_codec_fixed_array_encoding() {
        // The convention relies on the codec writing `[u8; 32]` raw with
        // no length prefix; lock that in here so a codec change breaks
        // this test rather than silently mis-routing envelopes.
        use theta_codec::Encode;
        let id = [9u8; KEY_LEN];
        let mut w = theta_codec::Writer::new();
        id.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), KEY_LEN);
        assert_eq!(peek_key(&bytes), Some(id));
    }
}
