//! Noise-IK-style authenticated key agreement for the TCP transports.
//!
//! Every mesh node holds a long-term Ed25519 **static identity**
//! (deterministically derived from a 32-byte seed in its key file) and
//! knows the full **roster** of peer static public keys. A dialer
//! authenticates to an accepter — and vice versa — with a two-message
//! handshake patterned after Noise IK (the initiator already knows the
//! responder's static key), built entirely from primitives this
//! workspace owns: Ed25519 scalar multiplication for Diffie–Hellman,
//! SHA-256 for the running transcript hash, HKDF (HMAC-SHA256) as the
//! chaining-key mixer, and ChaCha20-Poly1305 for the authentication
//! tags and the session frames.
//!
//! ```text
//!   pre   :  h ← H(PROTOCOL) ; mix(h, S_r)           (responder static)
//!   A → B :  id_i (2, clear) | E_i (32) | tag_i (16)
//!            ck ← extract(ck, DH(e_i, S_r))          "es"
//!            ck ← extract(ck, DH(s_i, S_r))          "ss"
//!            tag_i = AEAD(expand(ck, "msg-a"), n=0, aad=h, ∅)
//!   B → A :  E_r (32) | tag_r (16)
//!            ck ← extract(ck, DH(e_r, E_i))          "ee"
//!            ck ← extract(ck, DH(e_r, S_i))          "se"
//!            tag_r = AEAD(expand(ck, "msg-b"), n=0, aad=h, ∅)
//!   keys  :  k_{i→r} = expand(ck, "sess-i2r"),  k_{r→i} = expand(ck, "sess-r2i")
//! ```
//!
//! Every handshake byte (and the responder's static, via the
//! pre-message) is absorbed into `h`, and both tags authenticate `h` as
//! AEAD associated data, so the two sides agree on the entire transcript
//! before any session traffic flows. The initiator's node id travels in
//! the clear — ids and their static keys are public roster data (the
//! plaintext hello already exposed them) — but the *proof* of the id
//! is the `ss`/`es` mix: only the holder of `s_i` can produce `tag_i`
//! toward an honest responder, and only the holder of `s_r` can answer
//! with a valid `tag_r`. A third party can neither impersonate a roster
//! member nor replay a recorded message 1 to any effect: the response
//! keys mix the fresh `ee`/`se` outputs, so a replayed initiation yields
//! a session the replayer cannot read or speak on.
//!
//! After the handshake, each direction carries length-prefixed AEAD
//! frames under its own session key with a monotone 64-bit nonce
//! counter ([`SendCipher`] / [`RecvCipher`]): tampering, truncation,
//! reordering or replay of any frame fails authentication and tears
//! the connection down.

use crate::{NetworkError, NodeId};
use std::io::{Read, Write};
use std::net::TcpStream;
use theta_math::ed25519::{Point, Scalar};
use theta_primitives::{aead, hkdf_expand_key, hkdf_extract, Sha256};

/// Domain string that seeds the transcript hash and chaining key.
const PROTOCOL: &str = "theta/noise-ik/v1";

/// Maximum accepted frame size (matches the plaintext transport bound).
pub(crate) const MAX_FRAME: u32 = 64 << 20;

/// Frame bodies are read in chunks of this size, so a hostile length
/// prefix never triggers one giant upfront allocation.
pub(crate) const READ_CHUNK: usize = 64 << 10;

/// Wire size of handshake message A: `id (2) | E (32) | tag (16)`.
const MSG_A_LEN: usize = 2 + 32 + 16;
/// Wire size of handshake message B: `E (32) | tag (16)`.
const MSG_B_LEN: usize = 32 + 16;

/// A 32-byte seed from which a node's static identity is derived.
///
/// This is the secret that key files persist; everything else (the
/// static scalar, the roster entry) is derived from it.
pub struct IdentitySeed(pub(crate) [u8; 32]);

impl IdentitySeed {
    /// Wraps raw seed bytes.
    pub fn new(bytes: [u8; 32]) -> IdentitySeed {
        IdentitySeed(bytes)
    }

    /// The raw bytes (for key-file serialization only).
    pub fn bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl Clone for IdentitySeed {
    fn clone(&self) -> IdentitySeed {
        IdentitySeed(self.0)
    }
}

impl std::fmt::Debug for IdentitySeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("IdentitySeed(redacted)")
    }
}

impl Drop for IdentitySeed {
    fn drop(&mut self) {
        theta_math::wipe_bytes(&mut self.0);
    }
}

/// A node's long-term Ed25519 identity keypair.
pub struct StaticIdentity {
    secret_key: Scalar,
    public: Point,
}

impl StaticIdentity {
    /// Derives the identity from its persisted seed (domain-separated,
    /// wide reduction, so the scalar is uniform in the group order).
    pub fn from_seed(seed: &IdentitySeed) -> StaticIdentity {
        let wide = theta_primitives::expand("theta/identity/v1", &seed.0, 64);
        let mut bytes = [0u8; 64];
        bytes.copy_from_slice(&wide);
        let secret_key = Scalar::from_bytes_wide(&bytes);
        let public = Point::mul_base(&secret_key);
        StaticIdentity { secret_key, public }
    }

    /// The public half, compressed (what the roster distributes).
    pub fn public_bytes(&self) -> [u8; 32] {
        self.public.compress()
    }
}

impl std::fmt::Debug for StaticIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StaticIdentity {{ secret_key: redacted, public: {} }}",
            theta_primitives::to_hex(&self.public.compress())
        )
    }
}

impl Drop for StaticIdentity {
    fn drop(&mut self) {
        self.secret_key.wipe();
    }
}

/// The roster of static public keys, indexed by node id (1-based).
#[derive(Clone, Debug)]
pub struct Roster {
    keys: Vec<Point>,
}

impl Roster {
    /// Validates and decompresses a roster of static public keys.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Setup`] when an entry is not a valid prime-order
    /// Ed25519 point (identity and small-subgroup points are rejected —
    /// a malicious roster entry must not be able to zero out a DH).
    pub fn from_bytes(entries: &[[u8; 32]]) -> Result<Roster, NetworkError> {
        let mut keys = Vec::with_capacity(entries.len());
        for (i, bytes) in entries.iter().enumerate() {
            let point = Point::decompress(bytes)
                .filter(|p| p.is_in_prime_subgroup() && !p.is_identity())
                .ok_or_else(|| {
                    NetworkError::Setup(format!("roster entry {} is not a valid point", i + 1))
                })?;
            keys.push(point);
        }
        Ok(Roster { keys })
    }

    /// Builds the roster for a list of identities (dealer-side).
    pub fn from_identities(identities: &[StaticIdentity]) -> Roster {
        Roster { keys: identities.iter().map(|id| id.public).collect() }
    }

    /// Number of nodes in the roster.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the roster is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The static public key of node `id` (1-based).
    pub fn get(&self, id: NodeId) -> Option<&Point> {
        (id >= 1).then(|| self.keys.get(id as usize - 1)).flatten()
    }

    /// Compressed entries, in id order (what the public key file stores).
    pub fn to_bytes(&self) -> Vec<[u8; 32]> {
        self.keys.iter().map(|p| p.compress()).collect()
    }
}

/// A node's full authentication material for joining a mesh: its own
/// identity plus the roster of everyone's static public keys.
pub struct MeshAuth {
    /// This node's static identity.
    pub identity: StaticIdentity,
    /// All nodes' static public keys, indexed by id.
    pub roster: Roster,
}

impl MeshAuth {
    /// **Test/dev only**: derives every node's identity from the public
    /// pair `(domain_seed, id)`, so a whole mesh can authenticate
    /// without a dealer. The seeds are guessable by construction —
    /// real deployments must use `theta-keygen`-provisioned seeds.
    pub fn insecure_dev(id: NodeId, n: u16, domain_seed: u64) -> MeshAuth {
        let ident = |i: u16| {
            let mut seed = [0u8; 32];
            seed[..8].copy_from_slice(&domain_seed.to_le_bytes());
            seed[8..10].copy_from_slice(&i.to_le_bytes());
            StaticIdentity::from_seed(&IdentitySeed(seed))
        };
        let identities: Vec<StaticIdentity> = (1..=n).map(ident).collect();
        let roster = Roster::from_identities(&identities);
        MeshAuth { identity: ident(id), roster }
    }
}

/// The sending half of an established session: key + nonce counter.
pub struct SendCipher {
    key: [u8; 32],
    counter: u64,
}

/// The receiving half of an established session: key + nonce counter.
pub struct RecvCipher {
    key: [u8; 32],
    counter: u64,
}

fn nonce_for(counter: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[4..].copy_from_slice(&counter.to_le_bytes());
    nonce
}

impl SendCipher {
    /// Seals one frame body; the nonce counter advances per frame.
    pub fn seal(&mut self, body: &[u8]) -> Vec<u8> {
        let nonce = nonce_for(self.counter);
        self.counter += 1;
        aead::seal(&self.key, &nonce, &[], body)
    }
}

impl std::fmt::Debug for SendCipher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendCipher {{ key: redacted, counter: {} }}", self.counter)
    }
}

impl Drop for SendCipher {
    fn drop(&mut self) {
        theta_math::wipe_bytes(&mut self.key);
    }
}

impl RecvCipher {
    /// Opens one frame body; a failure means the link is compromised
    /// (tampered, truncated, replayed or reordered) and must be torn
    /// down — the counter is *not* advanced past a bad frame.
    pub fn open(&mut self, boxed: &[u8]) -> Result<Vec<u8>, aead::AeadError> {
        let nonce = nonce_for(self.counter);
        let body = aead::open(&self.key, &nonce, &[], boxed)?;
        self.counter += 1;
        Ok(body)
    }
}

impl std::fmt::Debug for RecvCipher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RecvCipher {{ key: redacted, counter: {} }}", self.counter)
    }
}

impl Drop for RecvCipher {
    fn drop(&mut self) {
        theta_math::wipe_bytes(&mut self.key);
    }
}

/// Both directions of an established session.
pub struct Session {
    /// Cipher for frames this node sends.
    pub send: SendCipher,
    /// Cipher for frames this node receives.
    pub recv: RecvCipher,
}

/// Running SHA-256 transcript hash.
fn mix_hash(h: &[u8; 32], data: &[u8]) -> [u8; 32] {
    let mut s = Sha256::new();
    s.update(h);
    s.update(data);
    s.finalize()
}

/// One DH between a secret scalar and a validated public point.
fn dh(secret: &Scalar, public: &Point) -> [u8; 32] {
    public.mul(secret).compress()
}

/// Decompresses and validates a peer-supplied curve point.
fn parse_point(bytes: &[u8; 32]) -> Result<Point, NetworkError> {
    Point::decompress(bytes)
        .filter(|p| p.is_in_prime_subgroup() && !p.is_identity())
        .ok_or_else(|| NetworkError::Setup("handshake: invalid curve point".into()))
}

fn transcript_start(responder_static: &Point) -> ([u8; 32], [u8; 32]) {
    let h = Sha256::digest(PROTOCOL.as_bytes());
    let h = mix_hash(&h, &responder_static.compress());
    let ck = Sha256::digest(format!("{PROTOCOL}/ck").as_bytes());
    (h, ck)
}

fn session_keys(ck: &[u8; 32]) -> ([u8; 32], [u8; 32]) {
    (hkdf_expand_key(ck, b"sess-i2r"), hkdf_expand_key(ck, b"sess-r2i"))
}

/// Random ephemeral scalar from OS entropy.
fn ephemeral() -> Scalar {
    use rand::RngCore;
    let mut bytes = [0u8; 64];
    rand::rngs::OsRng.fill_bytes(&mut bytes);
    Scalar::from_bytes_wide(&bytes)
}

fn handshake_io_err(e: std::io::Error) -> NetworkError {
    if matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ) {
        NetworkError::Setup("handshake timed out waiting for the peer".into())
    } else {
        NetworkError::Io(e)
    }
}

/// Runs the initiator side of the handshake over `stream`: sends message
/// A (claiming `local_id`), reads message B, verifies it against
/// `responder_static` and returns the session ciphers.
///
/// The caller is responsible for setting a read timeout on the stream
/// for the duration of the handshake.
///
/// # Errors
///
/// [`NetworkError::Setup`] when the responder fails to authenticate or
/// the handshake times out; [`NetworkError::Io`] on transport failures.
pub fn initiate(
    stream: &mut TcpStream,
    local_id: NodeId,
    identity: &StaticIdentity,
    responder_static: &Point,
) -> Result<Session, NetworkError> {
    let (mut h, mut ck) = transcript_start(responder_static);

    let mut e = ephemeral();
    let eph_pub = Point::mul_base(&e).compress();
    h = mix_hash(&h, &local_id.to_le_bytes());
    h = mix_hash(&h, &eph_pub);

    let mut es = dh(&e, responder_static);
    ck = hkdf_extract(&ck, &es);
    let mut ss = dh(&identity.secret_key, responder_static);
    ck = hkdf_extract(&ck, &ss);
    theta_math::wipe_bytes(&mut es);
    theta_math::wipe_bytes(&mut ss);

    let mut ka = hkdf_expand_key(&ck, b"msg-a");
    let tag_a = aead::seal(&ka, &nonce_for(0), &h, &[]);
    theta_math::wipe_bytes(&mut ka);
    h = mix_hash(&h, &tag_a);

    let mut msg_a = Vec::with_capacity(MSG_A_LEN);
    msg_a.extend_from_slice(&local_id.to_le_bytes());
    msg_a.extend_from_slice(&eph_pub);
    msg_a.extend_from_slice(&tag_a);
    stream.write_all(&msg_a).map_err(handshake_io_err)?;

    let mut msg_b = [0u8; MSG_B_LEN];
    stream.read_exact(&mut msg_b).map_err(handshake_io_err)?;
    let mut re_bytes = [0u8; 32];
    re_bytes.copy_from_slice(&msg_b[..32]);
    let responder_eph = parse_point(&re_bytes)?;
    h = mix_hash(&h, &re_bytes);

    let mut ee = dh(&e, &responder_eph);
    ck = hkdf_extract(&ck, &ee);
    let mut se = dh(&identity.secret_key, &responder_eph);
    ck = hkdf_extract(&ck, &se);
    theta_math::wipe_bytes(&mut ee);
    theta_math::wipe_bytes(&mut se);
    e.wipe();

    let mut kb = hkdf_expand_key(&ck, b"msg-b");
    let tag_ok = aead::open(&kb, &nonce_for(0), &h, &msg_b[32..]).is_ok();
    theta_math::wipe_bytes(&mut kb);
    if !tag_ok {
        return Err(NetworkError::Setup(
            "handshake: responder failed to authenticate".into(),
        ));
    }

    let (k_i2r, k_r2i) = session_keys(&ck);
    theta_math::wipe_bytes(&mut ck);
    Ok(Session {
        send: SendCipher { key: k_i2r, counter: 0 },
        recv: RecvCipher { key: k_r2i, counter: 0 },
    })
}

/// Runs the responder side of the handshake over `stream`: reads message
/// A, authenticates the claimed initiator against the roster, answers
/// with message B and returns the initiator's id plus session ciphers.
///
/// The caller is responsible for setting a read timeout on the stream
/// for the duration of the handshake (a mute dialer must not stall
/// mesh setup).
///
/// # Errors
///
/// [`NetworkError::Setup`] when the initiator is unknown or fails to
/// authenticate, or the handshake times out; [`NetworkError::Io`] on
/// transport failures.
pub fn respond(
    stream: &mut TcpStream,
    identity: &StaticIdentity,
    roster: &Roster,
) -> Result<(NodeId, Session), NetworkError> {
    let mut msg_a = [0u8; MSG_A_LEN];
    stream.read_exact(&mut msg_a).map_err(handshake_io_err)?;
    let claimed = NodeId::from_le_bytes([msg_a[0], msg_a[1]]);
    let initiator_static = roster
        .get(claimed)
        .ok_or_else(|| NetworkError::Setup(format!("handshake: unknown peer id {claimed}")))?;
    let mut ie_bytes = [0u8; 32];
    ie_bytes.copy_from_slice(&msg_a[2..34]);
    let initiator_eph = parse_point(&ie_bytes)?;

    let (mut h, mut ck) = transcript_start(&identity.public);
    h = mix_hash(&h, &claimed.to_le_bytes());
    h = mix_hash(&h, &ie_bytes);

    let mut es = dh(&identity.secret_key, &initiator_eph);
    ck = hkdf_extract(&ck, &es);
    let mut ss = dh(&identity.secret_key, initiator_static);
    ck = hkdf_extract(&ck, &ss);
    theta_math::wipe_bytes(&mut es);
    theta_math::wipe_bytes(&mut ss);

    let mut ka = hkdf_expand_key(&ck, b"msg-a");
    let tag_ok = aead::open(&ka, &nonce_for(0), &h, &msg_a[34..]).is_ok();
    theta_math::wipe_bytes(&mut ka);
    if !tag_ok {
        return Err(NetworkError::Setup(format!(
            "handshake: peer claiming id {claimed} failed to authenticate"
        )));
    }
    h = mix_hash(&h, &msg_a[34..]);

    let mut e = ephemeral();
    let eph_pub = Point::mul_base(&e).compress();
    h = mix_hash(&h, &eph_pub);

    let mut ee = dh(&e, &initiator_eph);
    ck = hkdf_extract(&ck, &ee);
    let mut se = dh(&e, initiator_static);
    ck = hkdf_extract(&ck, &se);
    theta_math::wipe_bytes(&mut ee);
    theta_math::wipe_bytes(&mut se);
    e.wipe();

    let mut kb = hkdf_expand_key(&ck, b"msg-b");
    let tag_b = aead::seal(&kb, &nonce_for(0), &h, &[]);
    theta_math::wipe_bytes(&mut kb);

    let mut msg_b = Vec::with_capacity(MSG_B_LEN);
    msg_b.extend_from_slice(&eph_pub);
    msg_b.extend_from_slice(&tag_b);
    stream.write_all(&msg_b).map_err(handshake_io_err)?;

    let (k_i2r, k_r2i) = session_keys(&ck);
    theta_math::wipe_bytes(&mut ck);
    Ok((
        claimed,
        Session {
            send: SendCipher { key: k_r2i, counter: 0 },
            recv: RecvCipher { key: k_i2r, counter: 0 },
        },
    ))
}

/// Writes one AEAD-sealed, `u32`-length-prefixed frame.
///
/// # Errors
///
/// Transport errors from the underlying writes.
pub fn write_sealed(
    stream: &mut TcpStream,
    cipher: &mut SendCipher,
    body: &[u8],
) -> std::io::Result<()> {
    let sealed = cipher.seal(body);
    stream.write_all(&(sealed.len() as u32).to_le_bytes())?;
    stream.write_all(&sealed)
}

/// Reads one length-prefixed AEAD frame and opens it.
///
/// # Errors
///
/// Transport errors, `InvalidData` for an oversized length prefix, and
/// [`std::io::ErrorKind::InvalidData`] with an "aead" message when
/// authentication fails (the caller must tear the link down).
pub fn read_sealed(stream: &mut TcpStream, cipher: &mut RecvCipher) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds limit",
        ));
    }
    // Grow the buffer chunk by chunk: memory use tracks bytes actually
    // received, not the (attacker-controlled) claimed length.
    let mut sealed = Vec::with_capacity(len.min(READ_CHUNK));
    let mut chunk = [0u8; READ_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        stream.read_exact(&mut chunk[..take])?;
        sealed.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    cipher.open(&sealed).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "aead authentication failed")
    })
}

/// UNIX-epoch microseconds right now (0 for a clock before 1970).
pub fn wall_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

fn probe_err(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Rounds per clock-offset probe. The NTP formula's error is bounded by
/// half the round-trip delay of the sample it came from, so the probe
/// runs several exchanges and keeps the minimum-delay one — a single
/// round descheduled mid-flight (easy during a noisy mesh bring-up,
/// when every node is spawning threads and running key agreement) would
/// otherwise leak tens of milliseconds into the estimate.
const PROBE_ROUNDS: usize = 5;

/// Clock-offset probe, initiator side — the first sealed frames of a
/// session, run immediately after [`initiate`] while the handshake read
/// timeout is still armed.
///
/// NTP-style four-timestamp exchange, [`PROBE_ROUNDS`] times over: each
/// round the initiator sends its wall clock `t0`, the responder answers
/// with its receive/send stamps `(t1, t2)`, and on receipt at `t3` the
/// initiator forms `offset = ((t1 − t0) + (t2 − t3)) / 2` —
/// microseconds to *add* to the local wall clock to land on the
/// responder's — and `delay = (t3 − t0) − (t2 − t1)`. The offset from
/// the minimum-delay round wins and is shared back, so the responder
/// learns the negated offset without a second round trip (both frames
/// ride the authenticated session, so within the mesh trust model the
/// echo is as good as measuring).
///
/// # Errors
///
/// Transport errors, or `InvalidData` for malformed probe frames.
pub fn offset_probe_initiate(
    stream: &mut TcpStream,
    session: &mut Session,
) -> std::io::Result<i64> {
    let mut best: Option<(i64, i64)> = None; // (delay, offset)
    for _ in 0..PROBE_ROUNDS {
        let t0 = wall_micros() as i64;
        write_sealed(stream, &mut session.send, &(t0 as u64).to_le_bytes())?;
        let reply = read_sealed(stream, &mut session.recv)?;
        let t3 = wall_micros() as i64;
        if reply.len() != 16 {
            return Err(probe_err("malformed offset-probe reply"));
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&reply[..8]);
        let t1 = u64::from_le_bytes(b) as i64;
        b.copy_from_slice(&reply[8..]);
        let t2 = u64::from_le_bytes(b) as i64;
        let delay = (t3 - t0) - (t2 - t1);
        let offset = ((t1 - t0) + (t2 - t3)) / 2;
        if best.is_none_or(|(d, _)| delay < d) {
            best = Some((delay, offset));
        }
    }
    let offset = best.expect("PROBE_ROUNDS >= 1").1;
    write_sealed(stream, &mut session.send, &offset.to_le_bytes())?;
    Ok(offset)
}

/// Clock-offset probe, responder side (see [`offset_probe_initiate`]).
/// Returns this node's estimated offset to the *initiator* (the
/// negation of the initiator's estimate).
///
/// # Errors
///
/// Transport errors, or `InvalidData` for malformed probe frames.
pub fn offset_probe_respond(
    stream: &mut TcpStream,
    session: &mut Session,
) -> std::io::Result<i64> {
    for _ in 0..PROBE_ROUNDS {
        let ping = read_sealed(stream, &mut session.recv)?;
        if ping.len() != 8 {
            return Err(probe_err("malformed offset-probe ping"));
        }
        let t1 = wall_micros();
        let mut reply = [0u8; 16];
        reply[..8].copy_from_slice(&t1.to_le_bytes());
        let t2 = wall_micros();
        reply[8..].copy_from_slice(&t2.to_le_bytes());
        write_sealed(stream, &mut session.send, &reply)?;
    }
    let echoed = read_sealed(stream, &mut session.recv)?;
    if echoed.len() != 8 {
        return Err(probe_err("malformed offset-probe echo"));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&echoed);
    Ok(-(i64::from_le_bytes(b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        for s in [&client, &server] {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        }
        (client, server)
    }

    fn run_handshake(
        init_auth: MeshAuth,
        resp_auth: MeshAuth,
        init_id: NodeId,
        resp_id: NodeId,
    ) -> (Result<Session, NetworkError>, Result<(NodeId, Session), NetworkError>) {
        let (mut a, mut b) = pair();
        let resp = std::thread::spawn(move || respond(&mut b, &resp_auth.identity, &resp_auth.roster));
        let target = *init_auth.roster.get(resp_id).unwrap();
        let init = initiate(&mut a, init_id, &init_auth.identity, &target);
        (init, resp.join().unwrap())
    }

    #[test]
    fn handshake_derives_matching_session_keys() {
        let (init, resp) = run_handshake(
            MeshAuth::insecure_dev(1, 2, 7),
            MeshAuth::insecure_dev(2, 2, 7),
            1,
            2,
        );
        let mut init = init.unwrap();
        let (claimed, mut resp) = resp.unwrap();
        assert_eq!(claimed, 1);

        // Initiator → responder and back, multiple frames (counters track).
        for msg in [&b"alpha"[..], &b"beta"[..], &b""[..]] {
            let sealed = init.send.seal(msg);
            assert_eq!(resp.recv.open(&sealed).unwrap(), msg);
            let sealed = resp.send.seal(msg);
            assert_eq!(init.recv.open(&sealed).unwrap(), msg);
        }
    }

    #[test]
    fn offset_probe_agrees_between_loopback_peers() {
        let (mut a, mut b) = pair();
        let resp_auth = MeshAuth::insecure_dev(2, 2, 11);
        let resp = std::thread::spawn(move || {
            let (_, mut session) = respond(&mut b, &resp_auth.identity, &resp_auth.roster).unwrap();
            let off = offset_probe_respond(&mut b, &mut session).unwrap();
            (off, session)
        });
        let init_auth = MeshAuth::insecure_dev(1, 2, 11);
        let target = *init_auth.roster.get(2).unwrap();
        let mut session = initiate(&mut a, 1, &init_auth.identity, &target).unwrap();
        let init_off = offset_probe_initiate(&mut a, &mut session).unwrap();
        let (resp_off, mut resp_session) = resp.join().unwrap();

        // Same host, same clock: the measured skew is bounded by the
        // loopback round trip, and the responder sees the negation.
        assert!(init_off.abs() < 1_000_000, "offset {init_off}µs on loopback");
        assert_eq!(resp_off, -init_off);

        // The probe consumed matching nonces on both sides: ordinary
        // traffic still flows afterwards.
        let sealed = session.send.seal(b"after-probe");
        assert_eq!(resp_session.recv.open(&sealed).unwrap(), b"after-probe");
        let sealed = resp_session.send.seal(b"reply");
        assert_eq!(session.recv.open(&sealed).unwrap(), b"reply");
    }

    #[test]
    fn sealed_frames_are_direction_separated_and_replay_proof() {
        let (init, resp) = run_handshake(
            MeshAuth::insecure_dev(1, 2, 8),
            MeshAuth::insecure_dev(2, 2, 8),
            1,
            2,
        );
        let mut init = init.unwrap();
        let (_, mut resp) = resp.unwrap();
        let sealed = init.send.seal(b"one");
        // Reflecting a frame back to its sender fails (distinct keys).
        assert!(init.recv.open(&sealed).is_err());
        // Delivery works once...
        assert_eq!(resp.recv.open(&sealed).unwrap(), b"one");
        // ...and replay fails (the nonce counter moved on).
        assert!(resp.recv.open(&sealed).is_err());
    }

    #[test]
    fn impostor_initiator_is_rejected() {
        // The initiator claims id 1 but holds a different (wrong-seed)
        // identity: the responder must refuse.
        let impostor = MeshAuth {
            identity: MeshAuth::insecure_dev(1, 2, 999).identity,
            roster: MeshAuth::insecure_dev(1, 2, 9).roster,
        };
        let (init, resp) = run_handshake(impostor, MeshAuth::insecure_dev(2, 2, 9), 1, 2);
        assert!(resp.is_err(), "responder accepted an impostor");
        // The initiator never gets a message B (or gets a dead socket).
        assert!(init.is_err());
    }

    #[test]
    fn impostor_responder_is_rejected() {
        // The responder holds a different identity than the roster entry
        // the initiator pins: the initiator must refuse message B.
        let impostor = MeshAuth {
            identity: MeshAuth::insecure_dev(2, 2, 999).identity,
            roster: MeshAuth::insecure_dev(2, 2, 10).roster,
        };
        let (mut a, mut b) = pair();
        let resp = std::thread::spawn(move || {
            // The impostor *thinks* it is node 2 of mesh 999, and uses
            // its own (mismatched) roster to check the initiator — to
            // drive its side far enough to send message B, give it the
            // initiator's real roster... it still cannot forge tag_b
            // without the real s_2.
            let roster = MeshAuth::insecure_dev(2, 2, 10).roster;
            respond(&mut b, &impostor.identity, &roster)
        });
        let real = MeshAuth::insecure_dev(1, 2, 10);
        let target = *real.roster.get(2).unwrap();
        let init = initiate(&mut a, 1, &real.identity, &target);
        let _ = resp.join().unwrap();
        assert!(init.is_err(), "initiator accepted an impostor responder");
    }

    #[test]
    fn unknown_peer_id_is_rejected() {
        let (mut a, mut b) = pair();
        let resp_auth = MeshAuth::insecure_dev(2, 2, 11);
        let resp =
            std::thread::spawn(move || respond(&mut b, &resp_auth.identity, &resp_auth.roster));
        let init_auth = MeshAuth::insecure_dev(1, 2, 11);
        let target = *init_auth.roster.get(2).unwrap();
        // Claim id 9: outside the 2-node roster.
        let _ = initiate(&mut a, 9, &init_auth.identity, &target);
        let err = resp.join().unwrap();
        assert!(matches!(err, Err(NetworkError::Setup(ref m)) if m.contains("unknown peer")));
    }

    #[test]
    fn mute_dialer_times_out_the_responder() {
        let (a, mut b) = pair();
        b.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        let auth = MeshAuth::insecure_dev(2, 2, 12);
        let start = std::time::Instant::now();
        let err = respond(&mut b, &auth.identity, &auth.roster);
        assert!(matches!(err, Err(NetworkError::Setup(ref m)) if m.contains("timed out")));
        assert!(start.elapsed() < Duration::from_secs(5));
        drop(a);
    }

    #[test]
    fn roster_rejects_invalid_points() {
        // All-zero bytes decompress to a point not on the curve/not
        // canonical; and the identity encoding must be rejected too.
        let bad = [[0xffu8; 32]];
        assert!(Roster::from_bytes(&bad).is_err());
        let mut identity_enc = [0u8; 32];
        identity_enc[0] = 1; // y = 1 is the identity point
        assert!(Roster::from_bytes(&[identity_enc]).is_err());
    }

    #[test]
    fn roster_roundtrips_through_bytes() {
        let auth = MeshAuth::insecure_dev(1, 4, 13);
        let bytes = auth.roster.to_bytes();
        let back = Roster::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.len(), 4);
    }

    #[test]
    fn sealed_frame_io_reassembles_chunked_frames() {
        let (mut a, mut b) = pair();
        let resp_auth = MeshAuth::insecure_dev(2, 2, 15);
        let reader = std::thread::spawn(move || {
            let (_, mut sess) = respond(&mut b, &resp_auth.identity, &resp_auth.roster).unwrap();
            read_sealed(&mut b, &mut sess.recv).unwrap()
        });
        let init_auth = MeshAuth::insecure_dev(1, 2, 15);
        let target = *init_auth.roster.get(2).unwrap();
        let mut sess = initiate(&mut a, 1, &init_auth.identity, &target).unwrap();
        // Crosses multiple READ_CHUNK boundaries with a ragged tail.
        let big: Vec<u8> = (0..READ_CHUNK * 2 + 333).map(|i| (i % 251) as u8).collect();
        write_sealed(&mut a, &mut sess.send, &big).unwrap();
        assert_eq!(reader.join().unwrap(), big);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let (mut a, mut b) = pair();
        a.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        let mut cipher = RecvCipher { key: [0u8; 32], counter: 0 };
        let err = read_sealed(&mut b, &mut cipher).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_giant_frame_fails_without_upfront_allocation() {
        // A hostile prefix claiming the full MAX_FRAME with only a few
        // bytes behind it must fail on the read, not OOM on a 64 MiB
        // allocation.
        let (mut a, mut b) = pair();
        a.write_all(&MAX_FRAME.to_le_bytes()).unwrap();
        a.write_all(&[1, 2, 3]).unwrap();
        drop(a);
        let mut cipher = RecvCipher { key: [0u8; 32], counter: 0 };
        assert!(read_sealed(&mut b, &mut cipher).is_err());
    }

    #[test]
    fn secret_types_have_redacted_debug() {
        let seed = IdentitySeed::new([3u8; 32]);
        assert_eq!(format!("{seed:?}"), "IdentitySeed(redacted)");
        let id = StaticIdentity::from_seed(&seed);
        let dbg = format!("{id:?}");
        assert!(dbg.contains("redacted"));
        let (init, _) = run_handshake(
            MeshAuth::insecure_dev(1, 2, 14),
            MeshAuth::insecure_dev(2, 2, 14),
            1,
            2,
        );
        let session = init.unwrap();
        assert!(format!("{:?}", session.send).contains("redacted"));
        assert!(format!("{:?}", session.recv).contains("redacted"));
    }
}
