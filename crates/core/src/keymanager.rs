//! The multi-tenant on-demand key manager: per-tenant key namespaces,
//! encrypted share persistence, and an LRU hot-key cache.
//!
//! Each node runs one [`KeyManager`] over its own keystore directory.
//! A tenant key is identified by a [`KeyRef`] (`tenant/name`); its share
//! is persisted as one file, sealed with ChaCha20-Poly1305 under a
//! storage key derived from the node's keystore passphrase
//! ([`KeystoreKey::derive`], HKDF with the `theta/keystore/v1` domain).
//! The file's plaintext header (tenant, name, scheme) doubles as the
//! AEAD's associated data, so renaming or header-tampering a record
//! makes it fail closed, as does any ciphertext flip or a wrong storage
//! key.
//!
//! The manager implements [`KeyProvider`], so the router resolves
//! tenant-scoped requests ([`theta_orchestration::Request::Scoped`])
//! through it: unscoped requests get the node's static default chest
//! (legacy behaviour unchanged), scoped ones hit the LRU cache and fall
//! back to decrypt-from-disk, emitting `KeyLoaded`/`KeyEvicted` journal
//! events and the `theta_keys_loaded_total` / `theta_keys_evicted_total`
//! / `theta_keystore_open_failures_total` counters.
//!
//! Dealing happens on demand through [`ClusterKeyAdmin`] (the service
//! layer's [`KeyAdmin`]): the dealer runs locally and installs share
//! *i* into node *i*'s manager. Distributed key generation without a
//! dealer remains a roadmap item; the wire protocol and storage format
//! here do not change when it lands.

use parking_lot::Mutex;
use rand::RngCore;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use theta_codec::{Decode, Encode, Reader, Writer};
use theta_metrics::{NodeObservability, TraceEventKind};
use theta_orchestration::{KeyChest, KeyProvider, KeyRef, SharedChest};
use theta_primitives::kdf::{hkdf_expand_key, hkdf_extract, DomainHasher};
use theta_primitives::aead;
use theta_schemes::registry::SchemeId;
use theta_schemes::{SchemeError, ThresholdParams};
use theta_service::KeyAdmin;

/// Magic prefix of sealed keystore records.
const RECORD_MAGIC: &[u8; 8] = b"THETAKS1";

/// HKDF domain for deriving the storage key from a passphrase.
const STORAGE_KDF_DOMAIN: &[u8] = b"theta/keystore/v1";

/// Domain for hashing a [`KeyRef`] into a stable record id — used both
/// as the on-disk filename and as the journal "instance" for
/// `KeyLoaded`/`KeyEvicted` events, so a key's lifecycle is traceable.
const RECORD_ID_DOMAIN: &str = "theta/keystore/record-id/v1";

/// The symmetric key sealing keystore records at rest.
///
/// Secret-bearing: its `Debug` is redacted and the bytes are
/// volatile-wiped on drop (see `theta-lint`'s registry).
pub struct KeystoreKey([u8; 32]);

impl KeystoreKey {
    /// Wraps raw key bytes (e.g. from a provisioning system).
    pub fn new(bytes: [u8; 32]) -> KeystoreKey {
        KeystoreKey(bytes)
    }

    /// Derives the storage key from a passphrase with HKDF under the
    /// `theta/keystore/v1` domain.
    pub fn derive(passphrase: &[u8]) -> KeystoreKey {
        let prk = hkdf_extract(STORAGE_KDF_DOMAIN, passphrase);
        KeystoreKey(hkdf_expand_key(&prk, b"storage"))
    }

    fn bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl std::fmt::Debug for KeystoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("KeystoreKey(redacted)")
    }
}

impl Drop for KeystoreKey {
    fn drop(&mut self) {
        theta_math::wipe_bytes(&mut self.0);
    }
}

/// The stable 32-byte id of a keystore record.
fn record_id(keyref: &KeyRef) -> [u8; 32] {
    DomainHasher::new(RECORD_ID_DOMAIN)
        .chain(keyref.tenant.as_bytes())
        .chain(keyref.name.as_bytes())
        .finish32()
}

fn record_path(dir: &Path, keyref: &KeyRef) -> PathBuf {
    let id = record_id(keyref);
    let mut name = String::with_capacity(68);
    for b in id {
        name.push_str(&format!("{b:02x}"));
    }
    name.push_str(".key");
    dir.join(name)
}

/// The plaintext record header — also the AEAD associated data, binding
/// the ciphertext to its tenant, name and scheme.
struct RecordHeader {
    tenant: String,
    name: String,
    scheme: SchemeId,
}

impl Encode for RecordHeader {
    fn encode(&self, w: &mut Writer) {
        self.tenant.encode(w);
        self.name.encode(w);
        self.scheme.encode(w);
    }
}

impl Decode for RecordHeader {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(RecordHeader {
            tenant: String::decode(r)?,
            name: String::decode(r)?,
            scheme: SchemeId::decode(r)?,
        })
    }
}

/// One decrypted tenant key, pinned in the hot cache.
///
/// `Debug` shows scheme and public key only; the chest stays opaque.
pub struct LoadedKey {
    /// The key's scheme.
    pub scheme: SchemeId,
    /// Encoded public key (what `GetTenantKey` serves).
    pub public: Vec<u8>,
    /// The share chest the router executes against.
    pub chest: SharedChest,
}

impl std::fmt::Debug for LoadedKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedKey")
            .field("scheme", &self.scheme)
            .field("public", &format_args!("{} bytes", self.public.len()))
            .finish_non_exhaustive()
    }
}

/// Journal/metric handles, attached once the node's observability
/// bundle exists (the manager is constructed before the node spawns).
struct Hooks {
    journal: Arc<theta_metrics::TraceJournal>,
    loaded: Arc<theta_metrics::registry::Counter>,
    evicted: Arc<theta_metrics::registry::Counter>,
    open_failures: Arc<theta_metrics::registry::Counter>,
}

struct CacheState {
    /// LRU order: front = coldest, back = hottest. Capacities are small
    /// (tens), so the linear touch is cheaper than a linked structure.
    entries: VecDeque<(String, Arc<LoadedKey>)>,
}

/// One node's tenant keystore: sealed persistence plus a hot-key cache.
pub struct KeyManager {
    dir: PathBuf,
    storage: KeystoreKey,
    default_chest: SharedChest,
    cache_capacity: usize,
    cache: Mutex<CacheState>,
    hooks: Mutex<Option<Hooks>>,
}

impl KeyManager {
    /// Opens (creating if needed) the keystore at `dir`. `cache_capacity`
    /// bounds the number of decrypted tenant keys held hot (minimum 1).
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory.
    pub fn open(
        dir: impl Into<PathBuf>,
        storage: KeystoreKey,
        cache_capacity: usize,
    ) -> std::io::Result<KeyManager> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(KeyManager {
            dir,
            storage,
            default_chest: Arc::new(std::sync::Mutex::new(KeyChest::new())),
            cache_capacity: cache_capacity.max(1),
            cache: Mutex::new(CacheState { entries: VecDeque::new() }),
            hooks: Mutex::new(None),
        })
    }

    /// Sets the chest served to *unscoped* requests — the node's static
    /// dealer-provisioned keys, preserving legacy behaviour.
    pub fn set_default_chest(&self, chest: KeyChest) {
        *self.default_chest.lock().unwrap_or_else(|e| e.into_inner()) = chest;
    }

    /// Wires the node's observability bundle in: key lifecycle events go
    /// to its trace journal, counts to its registry. Without this the
    /// manager still works, silently.
    pub fn attach_observability(&self, obs: &NodeObservability) {
        *self.hooks.lock() = Some(Hooks {
            journal: obs.journal.clone(),
            loaded: obs.registry.counter("theta_keys_loaded_total"),
            evicted: obs.registry.counter("theta_keys_evicted_total"),
            open_failures: obs.registry.counter("theta_keystore_open_failures_total"),
        });
    }

    /// True when a sealed record exists for `keyref`.
    pub fn exists(&self, keyref: &KeyRef) -> bool {
        record_path(&self.dir, keyref).exists()
    }

    /// Seals and persists one tenant key share, then pins it hot. The
    /// same chest columns as the static [`KeyChest`] apply: `share` is
    /// the encoded per-scheme key share, `public` the encoded public
    /// key served to clients.
    ///
    /// # Errors
    ///
    /// A description when the record already exists or persisting fails.
    pub fn install(
        &self,
        keyref: &KeyRef,
        scheme: SchemeId,
        share: &[u8],
        public: &[u8],
    ) -> Result<(), String> {
        keyref.validate().map_err(|e| e.to_string())?;
        let path = record_path(&self.dir, keyref);
        if path.exists() {
            return Err(format!("key {keyref} already exists"));
        }
        let header = RecordHeader {
            tenant: keyref.tenant.clone(),
            name: keyref.name.clone(),
            scheme,
        };
        let header_bytes = header.encoded();
        let mut plaintext = Writer::new();
        share.to_vec().encode(&mut plaintext);
        public.to_vec().encode(&mut plaintext);
        let mut plaintext = plaintext.into_bytes();
        let mut nonce = [0u8; 12];
        rand::rngs::OsRng.fill_bytes(&mut nonce);
        let sealed = aead::seal(self.storage.bytes(), &nonce, &header_bytes, &plaintext);
        theta_math::wipe_bytes(&mut plaintext);
        let mut w = Writer::new();
        w.put_raw(RECORD_MAGIC);
        header_bytes.encode(&mut w);
        w.put_raw(&nonce);
        sealed.encode(&mut w);
        // Write-then-rename so a crash mid-write never leaves a
        // half-record under the real name.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, w.into_bytes()).map_err(|e| format!("persist {keyref}: {e}"))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("persist {keyref}: {e}"))?;
        let loaded = self
            .chest_from_share(scheme, share, public)
            .map_err(|e| format!("installed share for {keyref} does not decode: {e}"))?;
        self.pin(keyref, Arc::new(loaded));
        Ok(())
    }

    /// The decrypted key for `keyref`: hot-cache hit or sealed-record
    /// load.
    ///
    /// # Errors
    ///
    /// A description when the record is missing, tampered with, sealed
    /// under a different storage key, or undecodable.
    pub fn load(&self, keyref: &KeyRef) -> Result<Arc<LoadedKey>, String> {
        let cache_key = keyref.to_string();
        {
            let mut cache = self.cache.lock();
            if let Some(pos) =
                cache.entries.iter().position(|(name, _)| *name == cache_key)
            {
                // Touch: move to the hot end.
                let entry = cache.entries.remove(pos).expect("position just found");
                let hit = entry.1.clone();
                cache.entries.push_back(entry);
                return Ok(hit);
            }
        }
        let path = record_path(&self.dir, keyref);
        let bytes = std::fs::read(&path).map_err(|_| format!("unknown key {keyref}"))?;
        let loaded = match self.open_record(keyref, &bytes) {
            Ok(l) => l,
            Err(e) => {
                if let Some(hooks) = &*self.hooks.lock() {
                    hooks.open_failures.inc();
                }
                return Err(e);
            }
        };
        let loaded = Arc::new(loaded);
        if let Some(hooks) = &*self.hooks.lock() {
            hooks.loaded.inc();
            hooks.journal.record_full(
                record_id(keyref),
                TraceEventKind::KeyLoaded,
                0,
                cache_key.clone(),
            );
        }
        self.pin(keyref, loaded.clone());
        Ok(loaded)
    }

    /// Parses and opens one sealed record, checking every binding.
    fn open_record(&self, keyref: &KeyRef, bytes: &[u8]) -> Result<LoadedKey, String> {
        let mut r = Reader::new(bytes);
        let parse = |_: theta_codec::CodecError| format!("keystore record for {keyref} is malformed");
        if r.take(8).map_err(parse)? != RECORD_MAGIC {
            return Err(format!("keystore record for {keyref} is malformed"));
        }
        let header_bytes = Vec::<u8>::decode(&mut r).map_err(parse)?;
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(r.take(12).map_err(parse)?);
        let sealed = Vec::<u8>::decode(&mut r).map_err(parse)?;
        if !r.is_at_end() {
            return Err(format!("keystore record for {keyref} is malformed"));
        }
        let header = RecordHeader::decoded(&header_bytes).map_err(parse)?;
        if header.tenant != keyref.tenant || header.name != keyref.name {
            // A record copied under another ref's filename: the AEAD
            // would also refuse (the header is the AAD), but fail early
            // with a precise message.
            return Err(format!("keystore record for {keyref} names a different key"));
        }
        let mut plaintext = aead::open(self.storage.bytes(), &nonce, &header_bytes, &sealed)
            .map_err(|_| {
                format!(
                    "keystore record for {keyref} failed to authenticate \
                     (tampered, or wrong storage key)"
                )
            })?;
        let decoded = (|| -> theta_codec::Result<(Vec<u8>, Vec<u8>)> {
            let mut r = Reader::new(&plaintext);
            let share = Vec::<u8>::decode(&mut r)?;
            let public = Vec::<u8>::decode(&mut r)?;
            if !r.is_at_end() {
                return Err(theta_codec::CodecError::TrailingBytes(r.remaining()));
            }
            Ok((share, public))
        })();
        theta_math::wipe_bytes(&mut plaintext);
        let (mut share, public) = decoded.map_err(parse)?;
        let result = self.chest_from_share(header.scheme, &share, &public);
        theta_math::wipe_bytes(&mut share);
        result.map_err(|e| format!("keystore record for {keyref}: {e}"))
    }

    /// Builds a single-scheme chest around a decoded share.
    fn chest_from_share(
        &self,
        scheme: SchemeId,
        share: &[u8],
        public: &[u8],
    ) -> Result<LoadedKey, String> {
        let parse = |e: theta_codec::CodecError| format!("share does not decode: {e}");
        let mut chest = KeyChest::new();
        match scheme {
            SchemeId::Sg02 => {
                chest.sg02 = Some(theta_schemes::sg02::KeyShare::decoded(share).map_err(parse)?)
            }
            SchemeId::Bz03 => {
                chest.bz03 = Some(theta_schemes::bz03::KeyShare::decoded(share).map_err(parse)?)
            }
            SchemeId::Sh00 => {
                chest.sh00 = Some(theta_schemes::sh00::KeyShare::decoded(share).map_err(parse)?)
            }
            SchemeId::Bls04 => {
                chest.bls04 = Some(theta_schemes::bls04::KeyShare::decoded(share).map_err(parse)?)
            }
            SchemeId::Kg20 => {
                chest.kg20 = Some(theta_schemes::kg20::KeyShare::decoded(share).map_err(parse)?)
            }
            SchemeId::Cks05 => {
                chest.cks05 = Some(theta_schemes::cks05::KeyShare::decoded(share).map_err(parse)?)
            }
        }
        Ok(LoadedKey {
            scheme,
            public: public.to_vec(),
            chest: Arc::new(std::sync::Mutex::new(chest)),
        })
    }

    /// Inserts into the LRU, evicting the coldest entries over capacity.
    fn pin(&self, keyref: &KeyRef, loaded: Arc<LoadedKey>) {
        let cache_key = keyref.to_string();
        let mut evicted_names = Vec::new();
        {
            let mut cache = self.cache.lock();
            cache.entries.retain(|(name, _)| *name != cache_key);
            cache.entries.push_back((cache_key, loaded));
            while cache.entries.len() > self.cache_capacity {
                if let Some((name, _)) = cache.entries.pop_front() {
                    evicted_names.push(name);
                }
            }
        }
        if evicted_names.is_empty() {
            return;
        }
        if let Some(hooks) = &*self.hooks.lock() {
            for name in evicted_names {
                hooks.evicted.inc();
                // The evicted name is "tenant/name"; re-derive its id.
                let id = match name.split_once('/') {
                    Some((tenant, key)) => record_id(&KeyRef::new(tenant, key)),
                    None => [0u8; 32],
                };
                hooks.journal.record_full(id, TraceEventKind::KeyEvicted, 0, name);
            }
        }
    }

    /// Every record's `(tenant, name, scheme)` for one tenant, read from
    /// the plaintext headers (no storage key needed), sorted by name.
    pub fn list(&self, tenant: &str) -> Vec<(String, SchemeId)> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return out };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("key") {
                continue;
            }
            let Ok(bytes) = std::fs::read(&path) else { continue };
            let Some(header) = peek_header(&bytes) else { continue };
            if header.tenant == tenant {
                out.push((header.name, header.scheme));
            }
        }
        out.sort();
        out
    }
}

/// Parses just the plaintext header of a sealed record.
fn peek_header(bytes: &[u8]) -> Option<RecordHeader> {
    let mut r = Reader::new(bytes);
    if r.take(8).ok()? != RECORD_MAGIC {
        return None;
    }
    let header_bytes = Vec::<u8>::decode(&mut r).ok()?;
    RecordHeader::decoded(&header_bytes).ok()
}

impl KeyProvider for KeyManager {
    fn chest(&self, keyref: Option<&KeyRef>) -> Result<SharedChest, SchemeError> {
        match keyref {
            None => Ok(self.default_chest.clone()),
            Some(kr) => self
                .load(kr)
                .map(|loaded| loaded.chest.clone())
                .map_err(SchemeError::KeyMismatch),
        }
    }
}

/// A `KeyProvider` that shares one [`KeyManager`] — the router takes a
/// `Box<dyn KeyProvider>`, the service layer an `Arc<dyn KeyAdmin>`, so
/// both sides alias the same manager through this wrapper.
pub struct SharedKeyManager(pub Arc<KeyManager>);

impl KeyProvider for SharedKeyManager {
    fn chest(&self, keyref: Option<&KeyRef>) -> Result<SharedChest, SchemeError> {
        self.0.chest(keyref)
    }
}

/// The `KeyAdmin` of a standalone node (`theta-node`): serves
/// `ListKeys`/`GetTenantKey` and tenant-scoped requests from the node's
/// own keystore, but refuses on-demand dealing — one process holds one
/// share, so dealing must happen where every node's keystore is
/// reachable (the in-process [`ClusterKeyAdmin`], or `theta-keygen
/// --tenant` writing sealed records per node).
pub struct LocalKeyAdmin(pub Arc<KeyManager>);

impl KeyAdmin for LocalKeyAdmin {
    fn generate(&self, _keyref: &KeyRef, _scheme: SchemeId) -> Result<Vec<u8>, String> {
        Err("this node cannot deal on demand: it holds only its own share. \
             Deal tenant keys with `theta-keygen --tenant T --key K` into every \
             node's keystore"
            .into())
    }

    fn list(&self, tenant: &str) -> Vec<(String, SchemeId)> {
        self.0.list(tenant)
    }

    fn tenant_public_key(&self, keyref: &KeyRef) -> Result<(SchemeId, Vec<u8>), String> {
        let loaded = self.0.load(keyref)?;
        Ok((loaded.scheme, loaded.public.clone()))
    }
}

/// The on-demand dealer backing the `Keygen` RPC: deals a fresh key for
/// the requested scheme and installs share *i* into node *i*'s manager.
pub struct ClusterKeyAdmin {
    managers: Vec<Arc<KeyManager>>,
    params: ThresholdParams,
    /// Modulus size for on-demand SH00 keys. Dealt keys default to the
    /// test-grade 256 bits; production deployments should configure the
    /// paper's 2048.
    sh00_modulus_bits: usize,
}

impl ClusterKeyAdmin {
    /// A dealer over one manager per node, for a `(t+1)`-of-`n` network
    /// (`n == managers.len()` must hold).
    pub fn new(managers: Vec<Arc<KeyManager>>, params: ThresholdParams) -> ClusterKeyAdmin {
        assert_eq!(
            managers.len(),
            params.n() as usize,
            "one key manager per roster node"
        );
        ClusterKeyAdmin { managers, params, sh00_modulus_bits: 256 }
    }

    /// Overrides the SH00 modulus size for on-demand keys.
    pub fn sh00_modulus_bits(mut self, bits: usize) -> ClusterKeyAdmin {
        self.sh00_modulus_bits = bits;
        self
    }

    fn deal(
        &self,
        scheme: SchemeId,
    ) -> Result<(Vec<u8>, Vec<Vec<u8>>), SchemeError> {
        let mut rng = rand::rngs::OsRng;
        let encode_all = |shares: Vec<Vec<u8>>, public: Vec<u8>| (public, shares);
        Ok(match scheme {
            SchemeId::Sg02 => {
                let (pk, shares) = theta_schemes::sg02::keygen(self.params, &mut rng);
                encode_all(shares.iter().map(Encode::encoded).collect(), pk.encoded())
            }
            SchemeId::Bz03 => {
                let (pk, shares) = theta_schemes::bz03::keygen(self.params, &mut rng);
                encode_all(shares.iter().map(Encode::encoded).collect(), pk.encoded())
            }
            SchemeId::Sh00 => {
                let (pk, shares) =
                    theta_schemes::sh00::keygen(self.params, self.sh00_modulus_bits, &mut rng)?;
                encode_all(shares.iter().map(Encode::encoded).collect(), pk.encoded())
            }
            SchemeId::Bls04 => {
                let (pk, shares) = theta_schemes::bls04::keygen(self.params, &mut rng);
                encode_all(shares.iter().map(Encode::encoded).collect(), pk.encoded())
            }
            SchemeId::Kg20 => {
                let (pk, shares) = theta_schemes::kg20::keygen(self.params, &mut rng);
                encode_all(shares.iter().map(Encode::encoded).collect(), pk.encoded())
            }
            SchemeId::Cks05 => {
                let (pk, shares) = theta_schemes::cks05::keygen(self.params, &mut rng);
                encode_all(shares.iter().map(Encode::encoded).collect(), pk.encoded())
            }
        })
    }
}

impl KeyAdmin for ClusterKeyAdmin {
    fn generate(&self, keyref: &KeyRef, scheme: SchemeId) -> Result<Vec<u8>, String> {
        keyref.validate().map_err(|e| e.to_string())?;
        if self.managers.iter().any(|m| m.exists(keyref)) {
            return Err(format!("key {keyref} already exists"));
        }
        let (public, mut shares) = self.deal(scheme).map_err(|e| e.to_string())?;
        for (manager, share) in self.managers.iter().zip(shares.iter()) {
            manager.install(keyref, scheme, share, &public)?;
        }
        for share in &mut shares {
            theta_math::wipe_bytes(share);
        }
        Ok(public)
    }

    fn list(&self, tenant: &str) -> Vec<(String, SchemeId)> {
        self.managers[0].list(tenant)
    }

    fn tenant_public_key(&self, keyref: &KeyRef) -> Result<(SchemeId, Vec<u8>), String> {
        let loaded = self.managers[0].load(keyref)?;
        Ok((loaded.scheme, loaded.public.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "theta-keystore-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_manager(tag: &str, capacity: usize) -> KeyManager {
        KeyManager::open(tempdir(tag), KeystoreKey::derive(b"test-pass"), capacity).unwrap()
    }

    fn deal_one(manager: &KeyManager, keyref: &KeyRef) -> Vec<u8> {
        let params = ThresholdParams::new(0, 1).unwrap();
        let mut rng = rand::rngs::OsRng;
        let (pk, shares) = theta_schemes::bls04::keygen(params, &mut rng);
        manager
            .install(keyref, SchemeId::Bls04, &shares[0].encoded(), &pk.encoded())
            .unwrap();
        pk.encoded()
    }

    #[test]
    fn install_load_roundtrip_across_reopen() {
        let dir = tempdir("roundtrip");
        let keyref = KeyRef::new("acme", "signing");
        let public = {
            let manager =
                KeyManager::open(&dir, KeystoreKey::derive(b"pass"), 4).unwrap();
            deal_one(&manager, &keyref)
        };
        // A fresh manager (same dir + passphrase) reloads the share
        // from the sealed record.
        let manager = KeyManager::open(&dir, KeystoreKey::derive(b"pass"), 4).unwrap();
        let loaded = manager.load(&keyref).unwrap();
        assert_eq!(loaded.scheme, SchemeId::Bls04);
        assert_eq!(loaded.public, public);
        assert!(manager
            .chest(Some(&keyref))
            .unwrap()
            .lock()
            .unwrap()
            .has(SchemeId::Bls04));
        assert_eq!(manager.list("acme"), vec![("signing".into(), SchemeId::Bls04)]);
        assert!(manager.list("other").is_empty());
    }

    #[test]
    fn wrong_storage_key_fails_closed() {
        let dir = tempdir("wrongkey");
        let keyref = KeyRef::new("acme", "signing");
        {
            let manager = KeyManager::open(&dir, KeystoreKey::derive(b"pass"), 4).unwrap();
            deal_one(&manager, &keyref);
        }
        let manager = KeyManager::open(&dir, KeystoreKey::derive(b"other-pass"), 4).unwrap();
        let err = manager.load(&keyref).unwrap_err();
        assert!(err.contains("failed to authenticate"), "got: {err}");
    }

    #[test]
    fn tampered_record_rejected_and_counted() {
        let dir = tempdir("tamper");
        let keyref = KeyRef::new("acme", "signing");
        {
            let manager = KeyManager::open(&dir, KeystoreKey::derive(b"pass"), 4).unwrap();
            deal_one(&manager, &keyref);
        }
        let path = record_path(&dir, &keyref);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one ciphertext/tag bit
        std::fs::write(&path, &bytes).unwrap();
        let manager = KeyManager::open(&dir, KeystoreKey::derive(b"pass"), 4).unwrap();
        let obs = NodeObservability::new();
        manager.attach_observability(&obs);
        assert!(manager.load(&keyref).is_err());
        assert_eq!(
            obs.registry.counter_value("theta_keystore_open_failures_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn lru_evicts_coldest_and_counts() {
        let manager = seeded_manager("lru", 2);
        let obs = NodeObservability::new();
        manager.attach_observability(&obs);
        let refs: Vec<KeyRef> =
            (0..3).map(|i| KeyRef::new("acme", format!("k{i}"))).collect();
        for keyref in &refs {
            deal_one(&manager, keyref);
        }
        // Install pins hot; three installs through capacity 2 evicted
        // the coldest (k0).
        assert_eq!(
            obs.registry.counter_value("theta_keys_evicted_total", &[]),
            Some(1)
        );
        // k0 must reload from disk (counted), k2 is still hot.
        assert_eq!(obs.registry.counter_value("theta_keys_loaded_total", &[]), Some(0));
        manager.load(&refs[0]).unwrap();
        assert_eq!(obs.registry.counter_value("theta_keys_loaded_total", &[]), Some(1));
        manager.load(&refs[2]).unwrap();
        assert_eq!(obs.registry.counter_value("theta_keys_loaded_total", &[]), Some(1));
    }

    #[test]
    fn duplicate_names_and_unknown_keys_are_errors() {
        let manager = seeded_manager("dups", 4);
        let keyref = KeyRef::new("acme", "signing");
        deal_one(&manager, &keyref);
        let params = ThresholdParams::new(0, 1).unwrap();
        let (pk, shares) = theta_schemes::bls04::keygen(params, &mut rand::rngs::OsRng);
        assert!(manager
            .install(&keyref, SchemeId::Bls04, &shares[0].encoded(), &pk.encoded())
            .unwrap_err()
            .contains("already exists"));
        assert!(manager
            .load(&KeyRef::new("acme", "nope"))
            .unwrap_err()
            .contains("unknown key"));
    }

    #[test]
    fn admin_deals_across_managers_and_lists() {
        let params = ThresholdParams::new(1, 3).unwrap();
        let managers: Vec<Arc<KeyManager>> = (0..3)
            .map(|i| Arc::new(seeded_manager(&format!("admin-{i}"), 4)))
            .collect();
        let admin = ClusterKeyAdmin::new(managers.clone(), params);
        let keyref = KeyRef::new("acme", "shared");
        let public = admin.generate(&keyref, SchemeId::Cks05).unwrap();
        // Every node holds a share for the ref, all serving the same
        // public key.
        for manager in &managers {
            let loaded = manager.load(&keyref).unwrap();
            assert_eq!(loaded.scheme, SchemeId::Cks05);
            assert_eq!(loaded.public, public);
        }
        assert_eq!(admin.list("acme"), vec![("shared".into(), SchemeId::Cks05)]);
        let (scheme, pk) = admin.tenant_public_key(&keyref).unwrap();
        assert_eq!(scheme, SchemeId::Cks05);
        assert_eq!(pk, public);
        // Re-dealing the same name is refused.
        assert!(admin.generate(&keyref, SchemeId::Cks05).is_err());
    }
}
