//! # theta-core
//!
//! The integrated Thetacrypt node: one facade tying together the schemes,
//! protocols, orchestration, network and service layers into the
//! deployable unit the paper describes — and a [`ThetaNetwork`] builder
//! that stands up a whole Θ-network in-process (trusted-dealer setup,
//! §4.4) for applications, tests and benchmarks.
//!
//! ## Example
//!
//! ```
//! use theta_core::ThetaNetworkBuilder;
//! use theta_orchestration::Request;
//!
//! let net = ThetaNetworkBuilder::new(1, 4)
//!     .with_cks05()
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let coin = net.submit_and_wait(1, Request::Cks05Coin(b"round".to_vec())).unwrap();
//! assert_eq!(coin.as_bytes().len(), 32);
//! ```

pub mod keyfile;
pub mod keymanager;

use crate::keymanager::{ClusterKeyAdmin, KeyManager, KeystoreKey, SharedKeyManager};
use rand::SeedableRng;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use theta_metrics::NodeObservability;
use theta_network::inmemory::{InMemoryConfig, InMemoryHub};
use theta_network::{LinkProfile, Network};
use theta_orchestration::{
    spawn_node, spawn_node_with_keys, KeyChest, NodeConfig, NodeHandle, Request,
};
use theta_protocols::ProtocolOutput;
use theta_schemes::registry::SchemeId;
use theta_schemes::{SchemeError, ThresholdParams};
use theta_service::{PublicKeyChest, ServiceHandle, ServiceOptions};

/// Errors from Θ-network construction and use.
#[derive(Debug)]
pub enum CoreError {
    /// Invalid builder parameters.
    Config(String),
    /// A scheme-level failure (keygen or request execution).
    Scheme(SchemeError),
    /// The request did not complete within the deadline.
    Timeout,
    /// The node stopped (shut down or died) before delivering the
    /// result; retrying against the same handle is pointless.
    NodeStopped,
    /// Transport/service failure.
    Io(std::io::Error),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Config(msg) => write!(f, "configuration error: {msg}"),
            CoreError::Scheme(e) => write!(f, "scheme error: {e}"),
            CoreError::Timeout => write!(f, "request timed out"),
            CoreError::NodeStopped => {
                write!(f, "the node stopped before delivering the result")
            }
            CoreError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<SchemeError> for CoreError {
    fn from(e: SchemeError) -> Self {
        CoreError::Scheme(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

/// Builder for an in-process Θ-network with a trusted-dealer setup.
pub struct ThetaNetworkBuilder {
    t: u16,
    n: u16,
    schemes: HashSet<SchemeId>,
    link: LinkProfile,
    seed: Option<u64>,
    sh00_modulus_bits: usize,
    kg20_nonce_stock: usize,
    instance_timeout: Duration,
    worker_threads: usize,
    keystore: Option<(PathBuf, Vec<u8>)>,
    keystore_cache: usize,
    tenant_quota: usize,
    submission_queue_capacity: Option<usize>,
}

impl ThetaNetworkBuilder {
    /// Starts a builder for a `(t+1)`-out-of-`n` network.
    pub fn new(t: u16, n: u16) -> ThetaNetworkBuilder {
        ThetaNetworkBuilder {
            t,
            n,
            schemes: HashSet::new(),
            link: LinkProfile::fixed(Duration::ZERO),
            seed: None,
            sh00_modulus_bits: 256,
            kg20_nonce_stock: 0,
            instance_timeout: Duration::from_secs(30),
            worker_threads: 0,
            keystore: None,
            keystore_cache: 8,
            tenant_quota: 0,
            submission_queue_capacity: None,
        }
    }

    /// Provisions the SG02 threshold cipher.
    pub fn with_sg02(mut self) -> Self {
        self.schemes.insert(SchemeId::Sg02);
        self
    }

    /// Provisions the BZ03 threshold cipher.
    pub fn with_bz03(mut self) -> Self {
        self.schemes.insert(SchemeId::Bz03);
        self
    }

    /// Provisions SH00 threshold RSA with the given modulus size.
    /// Key generation cost grows steeply with size (safe primes); tests
    /// use 256, the paper's evaluation uses 2048.
    pub fn with_sh00(mut self, modulus_bits: usize) -> Self {
        self.schemes.insert(SchemeId::Sh00);
        self.sh00_modulus_bits = modulus_bits;
        self
    }

    /// Provisions BLS04 threshold signatures.
    pub fn with_bls04(mut self) -> Self {
        self.schemes.insert(SchemeId::Bls04);
        self
    }

    /// Provisions KG20/FROST with a precomputed-nonce stock per node
    /// (0 = generate nonces on demand, i.e. the full two-round mode).
    pub fn with_kg20(mut self, nonce_stock: usize) -> Self {
        self.schemes.insert(SchemeId::Kg20);
        self.kg20_nonce_stock = nonce_stock;
        self
    }

    /// Provisions the CKS05 coin.
    pub fn with_cks05(mut self) -> Self {
        self.schemes.insert(SchemeId::Cks05);
        self
    }

    /// Provisions every scheme (SH00 at its default test size).
    pub fn with_all_schemes(self) -> Self {
        self.with_sg02()
            .with_bz03()
            .with_sh00(256)
            .with_bls04()
            .with_kg20(0)
            .with_cks05()
    }

    /// Applies a uniform link profile (e.g. the paper's local/global RTTs).
    pub fn link_profile(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Deterministic RNG seed for reproducible keygen and protocols.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Per-instance timeout at every node.
    pub fn instance_timeout(mut self, timeout: Duration) -> Self {
        self.instance_timeout = timeout;
        self
    }

    /// Crypto worker threads per node (`0` = one per available core).
    pub fn worker_threads(mut self, workers: usize) -> Self {
        self.worker_threads = workers;
        self
    }

    /// Bounds each node's submission queue: `try_submit` refuses with
    /// `Overloaded` at the bound. Defaults to the orchestration layer's
    /// own default.
    pub fn submission_queue_capacity(mut self, capacity: usize) -> Self {
        self.submission_queue_capacity = Some(capacity);
        self
    }

    /// Enables the multi-tenant key manager: node `i` persists its
    /// tenant key shares under `<dir>/node-<i>`, sealed with a storage
    /// key derived from `passphrase`. The RPC services then answer
    /// on-demand `keygen`/`list_keys`/`get_tenant_key`, and tenant-scoped
    /// protocol requests resolve through the keystore.
    pub fn with_keystore(mut self, dir: impl Into<PathBuf>, passphrase: &[u8]) -> Self {
        self.keystore = Some((dir.into(), passphrase.to_vec()));
        self
    }

    /// Bounds the decrypted tenant keys each node holds hot (default 8).
    pub fn keystore_cache(mut self, capacity: usize) -> Self {
        self.keystore_cache = capacity;
        self
    }

    /// Caps concurrent in-flight tenant-scoped protocol requests per
    /// tenant at every RPC service (0 = unlimited). Excess requests get
    /// the retryable `Overloaded` refusal.
    pub fn tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = quota;
        self
    }

    /// Runs the trusted dealer, stands up the mesh and spawns all nodes.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for bad parameters or no schemes;
    /// [`CoreError::Scheme`] when key generation fails.
    pub fn build(self) -> Result<ThetaNetwork, CoreError> {
        if self.schemes.is_empty() {
            return Err(CoreError::Config("no schemes provisioned".into()));
        }
        let params = ThresholdParams::new(self.t, self.n)
            .map_err(|e| CoreError::Config(e.to_string()))?;
        let mut rng = match self.seed {
            Some(s) => rand::rngs::StdRng::seed_from_u64(s),
            None => rand::rngs::StdRng::from_entropy(),
        };

        let n = self.n as usize;
        let mut chests: Vec<KeyChest> = (0..n).map(|_| KeyChest::new()).collect();
        let mut public_keys = PublicKeyChest::default();

        if self.schemes.contains(&SchemeId::Sg02) {
            let (pk, shares) = theta_schemes::sg02::keygen(params, &mut rng);
            public_keys.sg02 = Some(pk);
            for (chest, share) in chests.iter_mut().zip(shares) {
                chest.sg02 = Some(share);
            }
        }
        if self.schemes.contains(&SchemeId::Bz03) {
            let (pk, shares) = theta_schemes::bz03::keygen(params, &mut rng);
            public_keys.bz03 = Some(pk);
            for (chest, share) in chests.iter_mut().zip(shares) {
                chest.bz03 = Some(share);
            }
        }
        if self.schemes.contains(&SchemeId::Sh00) {
            let (pk, shares) =
                theta_schemes::sh00::keygen(params, self.sh00_modulus_bits, &mut rng)?;
            public_keys.sh00 = Some(pk);
            for (chest, share) in chests.iter_mut().zip(shares) {
                chest.sh00 = Some(share);
            }
        }
        if self.schemes.contains(&SchemeId::Bls04) {
            let (pk, shares) = theta_schemes::bls04::keygen(params, &mut rng);
            public_keys.bls04 = Some(pk);
            for (chest, share) in chests.iter_mut().zip(shares) {
                chest.bls04 = Some(share);
            }
        }
        if self.schemes.contains(&SchemeId::Kg20) {
            let (pk, shares) = theta_schemes::kg20::keygen(params, &mut rng);
            public_keys.kg20 = Some(pk);
            for (chest, share) in chests.iter_mut().zip(shares) {
                for nonce in
                    theta_schemes::kg20::precompute_nonces(&share, self.kg20_nonce_stock, &mut rng)
                {
                    chest.kg20_nonces.push_back(nonce);
                }
                chest.kg20 = Some(share);
            }
        }
        if self.schemes.contains(&SchemeId::Cks05) {
            let (pk, shares) = theta_schemes::cks05::keygen(params, &mut rng);
            public_keys.cks05 = Some(pk);
            for (chest, share) in chests.iter_mut().zip(shares) {
                chest.cks05 = Some(share);
            }
        }

        let (hub, net_nodes) = InMemoryHub::build(
            self.n,
            InMemoryConfig {
                default_link: self.link,
                drop_probability: 0.0,
                seed: self.seed.unwrap_or(0),
            },
        );
        let node_config = |builder: &ThetaNetworkBuilder| NodeConfig {
            instance_timeout: builder.instance_timeout,
            use_precomputed_nonces: builder.kg20_nonce_stock > 0,
            worker_threads: builder.worker_threads,
            submission_queue_capacity: builder
                .submission_queue_capacity
                .unwrap_or(NodeConfig::default().submission_queue_capacity),
            ..NodeConfig::default()
        };
        let mut managers: Vec<Arc<KeyManager>> = Vec::new();
        let nodes: Vec<Arc<NodeHandle>> = match &self.keystore {
            None => chests
                .into_iter()
                .zip(net_nodes)
                .map(|(chest, net)| {
                    Arc::new(spawn_node(
                        chest,
                        Box::new(net) as Box<dyn Network>,
                        node_config(&self),
                    ))
                })
                .collect(),
            Some((dir, passphrase)) => {
                // Keystore mode: every node's KeyProvider is its own
                // KeyManager (dealer chest as the unscoped default), so
                // tenant-scoped requests resolve through the sealed
                // per-node keystore.
                let mut nodes = Vec::with_capacity(n);
                for (i, (chest, net)) in chests.into_iter().zip(net_nodes).enumerate() {
                    let manager = Arc::new(
                        KeyManager::open(
                            dir.join(format!("node-{}", i + 1)),
                            KeystoreKey::derive(passphrase),
                            self.keystore_cache,
                        )
                        .map_err(CoreError::Io)?,
                    );
                    manager.set_default_chest(chest);
                    let obs = Arc::new(NodeObservability::new());
                    manager.attach_observability(&obs);
                    nodes.push(Arc::new(spawn_node_with_keys(
                        Box::new(SharedKeyManager(manager.clone())),
                        Box::new(net) as Box<dyn Network>,
                        node_config(&self),
                        obs,
                    )));
                    managers.push(manager);
                }
                nodes
            }
        };
        let key_admin = (!managers.is_empty()).then(|| {
            Arc::new(
                ClusterKeyAdmin::new(managers.clone(), params)
                    .sh00_modulus_bits(self.sh00_modulus_bits),
            )
        });

        Ok(ThetaNetwork {
            params,
            hub,
            nodes,
            public_keys,
            services: Vec::new(),
            managers,
            key_admin,
            tenant_quota: self.tenant_quota,
        })
    }
}

/// A running in-process Θ-network.
pub struct ThetaNetwork {
    params: ThresholdParams,
    hub: InMemoryHub,
    nodes: Vec<Arc<NodeHandle>>,
    public_keys: PublicKeyChest,
    services: Vec<ServiceHandle>,
    managers: Vec<Arc<KeyManager>>,
    key_admin: Option<Arc<ClusterKeyAdmin>>,
    tenant_quota: usize,
}

impl ThetaNetwork {
    /// Threshold parameters of the deployment.
    pub fn params(&self) -> ThresholdParams {
        self.params
    }

    /// The dealer's public keys.
    pub fn public_keys(&self) -> &PublicKeyChest {
        &self.public_keys
    }

    /// The network hub, for fault injection (latency, partitions, loss).
    pub fn hub(&self) -> &InMemoryHub {
        &self.hub
    }

    /// The orchestration handle of node `id` (1-based).
    ///
    /// # Panics
    ///
    /// Panics when `id` is outside `1..=n`.
    pub fn node(&self, id: u16) -> &Arc<NodeHandle> {
        &self.nodes[id as usize - 1]
    }

    /// Event-loop counters of node `id` (1-based): wakeups, events,
    /// retries, cache evictions and instance lifecycle tallies.
    ///
    /// # Panics
    ///
    /// Panics when `id` is outside `1..=n`.
    pub fn node_counters(&self, id: u16) -> theta_metrics::EventLoopSnapshot {
        self.node(id).counters()
    }

    /// Full observability bundle of node `id` (1-based): metrics registry,
    /// trace journal and per-phase latency histograms.
    ///
    /// # Panics
    ///
    /// Panics when `id` is outside `1..=n`.
    pub fn node_observability(&self, id: u16) -> Arc<theta_metrics::NodeObservability> {
        self.node(id).observability()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (a Θ-network has at least one node).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Submits `request` at node `id` and blocks for the result.
    ///
    /// # Errors
    ///
    /// [`CoreError::Timeout`] after 60 s, or the scheme-level failure.
    pub fn submit_and_wait(&self, id: u16, request: Request) -> Result<ProtocolOutput, CoreError> {
        let pending = self.node(id).submit(request);
        let result = pending
            .wait_timeout(Duration::from_secs(60))
            .map_err(|e| match e {
                theta_orchestration::WaitError::TimedOut => CoreError::Timeout,
                theta_orchestration::WaitError::NodeStopped => CoreError::NodeStopped,
            })?;
        result.outcome.map_err(CoreError::from)
    }

    /// The on-demand key admin (present when the network was built
    /// [`ThetaNetworkBuilder::with_keystore`]).
    pub fn key_admin(&self) -> Option<Arc<ClusterKeyAdmin>> {
        self.key_admin.clone()
    }

    /// Node `id`'s key manager (1-based; keystore mode only).
    ///
    /// # Panics
    ///
    /// Panics when `id` is outside `1..=n`.
    pub fn key_manager(&self, id: u16) -> Option<&Arc<KeyManager>> {
        self.managers.get(id as usize - 1)
    }

    /// The service options every RPC server of this network runs with.
    fn service_options(&self, cluster: theta_service::ClusterConfig) -> ServiceOptions {
        ServiceOptions {
            cluster,
            key_admin: self
                .key_admin
                .clone()
                .map(|a| a as Arc<dyn theta_service::KeyAdmin>),
            tenant_quota: self.tenant_quota,
        }
    }

    /// Starts the RPC service for node `id` on `addr` (port 0 = ephemeral);
    /// returns the bound address.
    ///
    /// # Errors
    ///
    /// I/O errors from binding.
    pub fn serve_rpc(&mut self, id: u16, addr: std::net::SocketAddr) -> Result<std::net::SocketAddr, CoreError> {
        let listener = std::net::TcpListener::bind(addr)?;
        let options = self.service_options(theta_service::ClusterConfig::default());
        let handle = theta_service::serve_on_with_options(
            listener,
            self.node(id).clone(),
            self.public_keys.clone(),
            Duration::from_secs(60),
            options,
        )?;
        let bound = handle.addr();
        self.services.push(handle);
        Ok(bound)
    }

    /// Starts an RPC service for *every* node on an ephemeral port, each
    /// configured with the full roster — so `CollectTrace` on any node
    /// fans out across the whole Θ-network — and the given health SLOs.
    /// Returns the bound addresses in node order (index 0 = node 1).
    ///
    /// # Errors
    ///
    /// I/O errors from binding.
    pub fn serve_rpc_cluster(
        &mut self,
        slo: theta_service::SloThresholds,
    ) -> Result<Vec<std::net::SocketAddr>, CoreError> {
        // Bind every listener first: each server needs the complete
        // roster (ephemeral ports included) before it starts answering.
        let mut listeners = Vec::with_capacity(self.nodes.len());
        let mut peers = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
            peers.push(((i + 1) as u16, listener.local_addr()?));
            listeners.push(listener);
        }
        for (i, listener) in listeners.into_iter().enumerate() {
            let cluster = theta_service::ClusterConfig {
                peers: peers.clone(),
                self_id: (i + 1) as u16,
                slo: slo.clone(),
            };
            let options = self.service_options(cluster);
            let handle = theta_service::serve_on_with_options(
                listener,
                self.nodes[i].clone(),
                self.public_keys.clone(),
                Duration::from_secs(60),
                options,
            )?;
            self.services.push(handle);
        }
        Ok(peers.into_iter().map(|(_, addr)| addr).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_empty_and_bad_params() {
        assert!(matches!(
            ThetaNetworkBuilder::new(1, 4).build(),
            Err(CoreError::Config(_))
        ));
        assert!(matches!(
            ThetaNetworkBuilder::new(4, 4).with_cks05().build(),
            Err(CoreError::Config(_))
        ));
    }

    #[test]
    fn coin_round_trip() {
        let net = ThetaNetworkBuilder::new(1, 4).with_cks05().seed(1).build().unwrap();
        let a = net
            .submit_and_wait(1, Request::Cks05Coin(b"r".to_vec()))
            .unwrap();
        let b = net
            .submit_and_wait(3, Request::Cks05Coin(b"r".to_vec()))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sg02_encrypt_decrypt_through_network() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let net = ThetaNetworkBuilder::new(1, 4).with_sg02().seed(2).build().unwrap();
        let pk = net.public_keys().sg02.as_ref().unwrap();
        let ct = theta_schemes::sg02::encrypt(pk, b"l", b"core facade", &mut rng);
        let out = net
            .submit_and_wait(2, Request::Sg02Decrypt(theta_codec::Encode::encoded(&ct)))
            .unwrap();
        assert_eq!(out, ProtocolOutput::Plaintext(b"core facade".to_vec()));
    }

    #[test]
    fn rpc_service_end_to_end() {
        use theta_schemes::registry::SchemeId;
        let mut net = ThetaNetworkBuilder::new(1, 4)
            .with_sg02()
            .with_bls04()
            .seed(3)
            .build()
            .unwrap();
        let addr = net
            .serve_rpc(1, "127.0.0.1:0".parse().unwrap())
            .unwrap();
        let mut client =
            theta_service::RpcClient::connect(addr, Duration::from_secs(5)).unwrap();
        // Scheme API: encrypt server-side, then protocol API: decrypt.
        let ct = client.encrypt(SchemeId::Sg02, b"l", b"via rpc").unwrap();
        let (plain, latency) = client.run_protocol(Request::Sg02Decrypt(ct)).unwrap();
        assert_eq!(plain, b"via rpc");
        assert!(latency > Duration::ZERO);
        // Sign + verify through both APIs.
        let (sig, _) = client.run_protocol(Request::Bls04Sign(b"block".to_vec())).unwrap();
        assert!(client.verify_signature(SchemeId::Bls04, b"block", &sig).unwrap());
        assert!(!client.verify_signature(SchemeId::Bls04, b"other", &sig).unwrap());
        // Public key endpoint returns a decodable key.
        let pk_bytes = client.public_key(SchemeId::Bls04).unwrap();
        assert!(
            <theta_schemes::bls04::PublicKey as theta_codec::Decode>::decoded(&pk_bytes).is_ok()
        );
        // Node-stats endpoint reflects the two protocol runs above and
        // matches the in-process counter view.
        let stats = client.node_stats().unwrap();
        assert_eq!(stats.instances_started, 2);
        assert_eq!(stats.instances_completed, 2);
        assert_eq!(stats.instances_timed_out, 0);
        assert_eq!(stats, net.node_counters(1));
    }
}
