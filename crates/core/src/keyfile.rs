//! Key files for standalone deployments: the trusted dealer writes one
//! secret key file per node plus one public key file, and `theta-node`
//! loads them at startup (the paper's deployment where key material is
//! provisioned into each node's security domain).

use theta_codec::{Decode, Encode, Reader, Writer};
use theta_network::handshake::IdentitySeed;
use theta_orchestration::KeyChest;
use theta_schemes::{bls04, bz03, cks05, kg20, sg02, sh00};
use theta_service::PublicKeyChest;

/// Magic prefix of node key files.
const NODE_MAGIC: &[u8; 8] = b"THETAKEY";
/// Magic prefix of public key files.
const PUBLIC_MAGIC: &[u8; 8] = b"THETAPUB";

/// One node's secret key material, as persisted on disk.
#[derive(Default)]
pub struct NodeKeyFile {
    /// Node id (1-based).
    pub node_id: u16,
    /// SG02 share.
    pub sg02: Option<sg02::KeyShare>,
    /// BZ03 share.
    pub bz03: Option<bz03::KeyShare>,
    /// SH00 share.
    pub sh00: Option<sh00::KeyShare>,
    /// BLS04 share.
    pub bls04: Option<bls04::KeyShare>,
    /// KG20 share.
    pub kg20: Option<kg20::KeyShare>,
    /// CKS05 share.
    pub cks05: Option<cks05::KeyShare>,
    /// Seed of this node's static transport identity (the Noise-IK
    /// handshake key). Absent in key files dealt before the encrypted
    /// transport existed; such nodes can only join unauthenticated
    /// test meshes.
    pub identity_seed: Option<IdentitySeed>,
}

impl NodeKeyFile {
    /// Converts into the orchestration key chest.
    pub fn into_chest(self) -> KeyChest {
        let mut chest = KeyChest::new();
        chest.sg02 = self.sg02;
        chest.bz03 = self.bz03;
        chest.sh00 = self.sh00;
        chest.bls04 = self.bls04;
        chest.kg20 = self.kg20;
        chest.cks05 = self.cks05;
        chest
    }
}

/// Parses a node key file from a mutable buffer, volatile-wiping the
/// buffer before returning. The serialized bytes *are* the secret shares,
/// so the caller's copy must not linger on the heap after parsing; the
/// buffer is wiped on both the success and error paths.
///
/// # Errors
///
/// [`theta_codec::CodecError`] on malformed input (the buffer is still
/// wiped).
pub fn decode_node_key(bytes: &mut [u8]) -> theta_codec::Result<NodeKeyFile> {
    let result = NodeKeyFile::decoded(bytes);
    theta_math::wipe_bytes(bytes);
    result
}

fn put_opt<T: Encode>(w: &mut Writer, v: &Option<T>) {
    match v {
        None => false.encode(w),
        Some(inner) => {
            true.encode(w);
            inner.encode(w);
        }
    }
}

fn get_opt<T: Decode>(r: &mut Reader) -> theta_codec::Result<Option<T>> {
    if bool::decode(r)? {
        Ok(Some(T::decode(r)?))
    } else {
        Ok(None)
    }
}

impl Encode for NodeKeyFile {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(NODE_MAGIC);
        self.node_id.encode(w);
        put_opt(w, &self.sg02);
        put_opt(w, &self.bz03);
        put_opt(w, &self.sh00);
        put_opt(w, &self.bls04);
        put_opt(w, &self.kg20);
        put_opt(w, &self.cks05);
        match &self.identity_seed {
            None => false.encode(w),
            Some(seed) => {
                true.encode(w);
                w.put_raw(seed.bytes());
            }
        }
    }
}

impl Decode for NodeKeyFile {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        let magic = r.take(8)?;
        if magic != NODE_MAGIC {
            return Err(theta_codec::CodecError::InvalidValue(
                "not a theta node key file".into(),
            ));
        }
        let node_id = u16::decode(r)?;
        let sg02 = get_opt(r)?;
        let bz03 = get_opt(r)?;
        let sh00 = get_opt(r)?;
        let bls04 = get_opt(r)?;
        let kg20 = get_opt(r)?;
        let cks05 = get_opt(r)?;
        // Key files dealt before the encrypted transport end here.
        let identity_seed = if r.is_at_end() {
            None
        } else if bool::decode(r)? {
            let mut seed = [0u8; 32];
            seed.copy_from_slice(r.take(32)?);
            Some(IdentitySeed::new(seed))
        } else {
            None
        };
        Ok(NodeKeyFile { node_id, sg02, bz03, sh00, bls04, kg20, cks05, identity_seed })
    }
}

/// Serializes a public key chest with a file magic (no mesh roster —
/// kept for unauthenticated/test deployments).
pub fn encode_public(keys: &PublicKeyChest) -> Vec<u8> {
    encode_public_with_roster(keys, &[])
}

/// Serializes a public key chest plus the mesh roster (each node's
/// static transport public key, compressed, in id order).
pub fn encode_public_with_roster(keys: &PublicKeyChest, roster: &[[u8; 32]]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_raw(PUBLIC_MAGIC);
    put_opt(&mut w, &keys.sg02);
    put_opt(&mut w, &keys.bz03);
    put_opt(&mut w, &keys.sh00);
    put_opt(&mut w, &keys.bls04);
    put_opt(&mut w, &keys.kg20);
    put_opt(&mut w, &keys.cks05);
    if !roster.is_empty() {
        (roster.len() as u16).encode(&mut w);
        for entry in roster {
            w.put_raw(entry);
        }
    }
    w.into_bytes()
}

/// Parses a public key file, dropping any roster (see
/// [`decode_public_with_roster`]).
///
/// # Errors
///
/// [`theta_codec::CodecError`] on malformed input.
pub fn decode_public(bytes: &[u8]) -> theta_codec::Result<PublicKeyChest> {
    decode_public_with_roster(bytes).map(|(keys, _)| keys)
}

/// Parses a public key file including the mesh roster. Files written
/// before the encrypted transport (or with an empty roster) decode to
/// an empty roster vector.
///
/// # Errors
///
/// [`theta_codec::CodecError`] on malformed input.
pub fn decode_public_with_roster(
    bytes: &[u8],
) -> theta_codec::Result<(PublicKeyChest, Vec<[u8; 32]>)> {
    let mut r = Reader::new(bytes);
    let magic = r.take(8)?;
    if magic != PUBLIC_MAGIC {
        return Err(theta_codec::CodecError::InvalidValue(
            "not a theta public key file".into(),
        ));
    }
    let keys = PublicKeyChest {
        sg02: get_opt(&mut r)?,
        bz03: get_opt(&mut r)?,
        sh00: get_opt(&mut r)?,
        bls04: get_opt(&mut r)?,
        kg20: get_opt(&mut r)?,
        cks05: get_opt(&mut r)?,
    };
    let mut roster = Vec::new();
    if !r.is_at_end() {
        let count = u16::decode(&mut r)?;
        for _ in 0..count {
            let mut entry = [0u8; 32];
            entry.copy_from_slice(r.take(32)?);
            roster.push(entry);
        }
    }
    if !r.is_at_end() {
        return Err(theta_codec::CodecError::TrailingBytes(r.remaining()));
    }
    Ok((keys, roster))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use theta_schemes::ThresholdParams;

    #[test]
    fn node_key_file_roundtrip() {
        let mut r = rand::rngs::StdRng::seed_from_u64(3);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (_pk, shares) = sg02::keygen(params, &mut r);
        let (_bpk, bshares) = bls04::keygen(params, &mut r);
        let file = NodeKeyFile {
            node_id: 2,
            sg02: Some(shares[1].clone()),
            bls04: Some(bshares[1].clone()),
            ..Default::default()
        };
        let decoded = NodeKeyFile::decoded(&file.encoded()).unwrap();
        assert_eq!(decoded.node_id, 2);
        assert!(decoded.sg02.is_some());
        assert!(decoded.bls04.is_some());
        assert!(decoded.sh00.is_none());
        let chest = decoded.into_chest();
        assert!(chest.has(theta_schemes::SchemeId::Sg02));
        assert!(!chest.has(theta_schemes::SchemeId::Cks05));
    }

    #[test]
    fn decode_node_key_wipes_the_buffer() {
        let mut r = rand::rngs::StdRng::seed_from_u64(6);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (_pk, shares) = sg02::keygen(params, &mut r);
        let file = NodeKeyFile {
            node_id: 1,
            sg02: Some(shares[0].clone()),
            ..Default::default()
        };
        let mut bytes = file.encoded();
        let decoded = decode_node_key(&mut bytes).unwrap();
        assert!(decoded.sg02.is_some());
        assert!(bytes.iter().all(|&b| b == 0), "secret bytes survived decode");

        // The error path wipes too.
        let mut garbage = b"NOTAKEY0rest".to_vec();
        assert!(decode_node_key(&mut garbage).is_err());
        assert!(garbage.iter().all(|&b| b == 0));
    }

    #[test]
    fn public_key_file_roundtrip() {
        let mut r = rand::rngs::StdRng::seed_from_u64(4);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, _) = cks05::keygen(params, &mut r);
        let chest = PublicKeyChest { cks05: Some(pk), ..Default::default() };
        let bytes = encode_public(&chest);
        let back = decode_public(&bytes).unwrap();
        assert_eq!(back, chest);
    }

    #[test]
    fn identity_seed_roundtrips_and_is_optional() {
        let file = NodeKeyFile {
            node_id: 3,
            identity_seed: Some(IdentitySeed::new([7u8; 32])),
            ..Default::default()
        };
        let decoded = NodeKeyFile::decoded(&file.encoded()).unwrap();
        assert_eq!(decoded.identity_seed.as_ref().unwrap().bytes(), &[7u8; 32]);

        // A pre-transport key file (no trailing identity field) still
        // decodes, with no identity.
        let bare = NodeKeyFile { node_id: 4, ..Default::default() };
        let mut bytes = bare.encoded();
        bytes.truncate(bytes.len() - 1); // drop the identity presence flag
        let decoded = NodeKeyFile::decoded(&bytes).unwrap();
        assert_eq!(decoded.node_id, 4);
        assert!(decoded.identity_seed.is_none());
    }

    #[test]
    fn public_key_file_carries_the_roster() {
        use theta_network::handshake::{MeshAuth, Roster};
        let auth = MeshAuth::insecure_dev(1, 3, 99);
        let roster_bytes = auth.roster.to_bytes();
        let chest = PublicKeyChest::default();
        let bytes = encode_public_with_roster(&chest, &roster_bytes);
        let (keys, roster) = decode_public_with_roster(&bytes).unwrap();
        assert_eq!(keys, chest);
        assert_eq!(roster, roster_bytes);
        // The roster entries revalidate as curve points.
        assert!(Roster::from_bytes(&roster).is_ok());
        // The roster-less reader still works on the same file.
        assert_eq!(decode_public(&bytes).unwrap(), chest);
        // And a roster-less file yields an empty roster.
        let (_, empty) = decode_public_with_roster(&encode_public(&chest)).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(NodeKeyFile::decoded(b"NOTAKEY0rest").is_err());
        assert!(decode_public(b"NOTAPUB0rest").is_err());
        // Crossed magics rejected too.
        let mut r = rand::rngs::StdRng::seed_from_u64(5);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, _) = cks05::keygen(params, &mut r);
        let pub_bytes = encode_public(&PublicKeyChest { cks05: Some(pk), ..Default::default() });
        assert!(NodeKeyFile::decoded(&pub_bytes).is_err());
    }
}
