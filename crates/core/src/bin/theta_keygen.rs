//! `theta-keygen` — the trusted dealer as a CLI (paper §4.4 setup phase):
//! generates key material for a (t+1)-out-of-n Θ-network and writes one
//! secret key file per node plus the shared public key file.
//!
//! ```text
//! theta-keygen --t 1 --n 4 --schemes sg02,bls04,cks05 --out ./keys
//! ```
//!
//! With `--tenant T --key K` it instead deals ONE tenant key (exactly
//! one `--schemes` entry) into per-node keystores under
//! `<out>/keystore/node-<i>/`, sealed with the passphrase from
//! `$THETA_KEYSTORE_PASS` (or `--keystore-pass`). Point each
//! `theta-node --keystore` at its own `node-<i>` directory and
//! tenant-scoped requests resolve against the dealt key.

use rand::{RngCore, SeedableRng};
use std::sync::Arc;
use theta_codec::Encode;
use theta_core::keyfile::{encode_public_with_roster, NodeKeyFile};
use theta_core::keymanager::{ClusterKeyAdmin, KeyManager, KeystoreKey};
use theta_orchestration::KeyRef;
use theta_service::KeyAdmin;
use theta_network::handshake::{IdentitySeed, StaticIdentity};
use theta_schemes::registry::SchemeId;
use theta_schemes::ThresholdParams;
use theta_service::PublicKeyChest;

struct Args {
    t: u16,
    n: u16,
    out: std::path::PathBuf,
    schemes: Vec<SchemeId>,
    sh00_bits: usize,
    seed: Option<u64>,
    tenant: Option<String>,
    key_name: Option<String>,
    keystore_pass: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut t = None;
    let mut n = None;
    let mut out = None;
    let mut schemes = vec![SchemeId::Sg02, SchemeId::Bls04, SchemeId::Cks05];
    let mut sh00_bits = 512;
    let mut seed = None;
    let mut tenant = None;
    let mut key_name = None;
    let mut keystore_pass = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--t" => t = Some(value()?.parse().map_err(|e| format!("--t: {e}"))?),
            "--n" => n = Some(value()?.parse().map_err(|e| format!("--n: {e}"))?),
            "--out" => out = Some(std::path::PathBuf::from(value()?)),
            "--sh00-bits" => {
                sh00_bits = value()?.parse().map_err(|e| format!("--sh00-bits: {e}"))?
            }
            "--seed" => seed = Some(value()?.parse().map_err(|e| format!("--seed: {e}"))?),
            "--tenant" => tenant = Some(value()?),
            "--key" => key_name = Some(value()?),
            "--keystore-pass" => keystore_pass = Some(value()?),
            "--schemes" => {
                schemes = value()?
                    .split(',')
                    .map(|s| {
                        SchemeId::from_name(s.trim()).ok_or(format!("unknown scheme {s}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        t: t.ok_or("--t is required")?,
        n: n.ok_or("--n is required")?,
        out: out.ok_or("--out is required")?,
        schemes,
        sh00_bits,
        seed,
        tenant,
        key_name,
        keystore_pass,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: theta-keygen --t T --n N --out DIR \
                 [--schemes sg02,bz03,sh00,bls04,kg20,cks05] [--sh00-bits B] [--seed S] \
                 [--tenant T --key K [--keystore-pass P]]"
            );
            std::process::exit(2);
        }
    };
    let params = match ThresholdParams::new(args.t, args.n) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut rng = match args.seed {
        Some(s) => rand::rngs::StdRng::seed_from_u64(s),
        None => rand::rngs::StdRng::from_entropy(),
    };

    std::fs::create_dir_all(&args.out).expect("create output directory");

    if let Some(tenant) = &args.tenant {
        // Tenant-key mode: deal one key into every node's keystore and
        // exit — the static deployment files are untouched.
        let name = args.key_name.as_deref().unwrap_or_else(|| {
            eprintln!("error: --tenant needs --key NAME");
            std::process::exit(2);
        });
        if args.schemes.len() != 1 {
            eprintln!("error: tenant-key mode deals exactly one scheme (--schemes bls04)");
            std::process::exit(2);
        }
        let passphrase = args
            .keystore_pass
            .clone()
            .or_else(|| std::env::var("THETA_KEYSTORE_PASS").ok())
            .unwrap_or_else(|| {
                eprintln!(
                    "error: tenant-key mode needs a passphrase: set \
                     $THETA_KEYSTORE_PASS or pass --keystore-pass"
                );
                std::process::exit(2);
            });
        let managers: Vec<Arc<KeyManager>> = (1..=args.n)
            .map(|i| {
                Arc::new(
                    KeyManager::open(
                        args.out.join("keystore").join(format!("node-{i}")),
                        KeystoreKey::derive(passphrase.as_bytes()),
                        1,
                    )
                    .expect("open keystore"),
                )
            })
            .collect();
        let admin = ClusterKeyAdmin::new(managers, params).sh00_modulus_bits(args.sh00_bits);
        let keyref = KeyRef::new(tenant.clone(), name.to_string());
        let public = match admin.generate(&keyref, args.schemes[0]) {
            Ok(pk) => pk,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "dealt tenant key {keyref} ({}) into {} keystore(s) under {}",
            args.schemes[0],
            args.n,
            args.out.join("keystore").display()
        );
        println!("public key = {}", theta_primitives::to_hex(&public));
        return;
    }
    // Deal each node a static transport identity alongside its shares:
    // the Noise-IK handshake authenticates mesh links against the
    // roster of derived public keys written into the public key file.
    print!("generating transport identities... ");
    let mut roster = Vec::with_capacity(args.n as usize);
    let mut node_files: Vec<NodeKeyFile> = (1..=args.n)
        .map(|id| {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            let seed = IdentitySeed::new(seed);
            roster.push(StaticIdentity::from_seed(&seed).public_bytes());
            NodeKeyFile { node_id: id, identity_seed: Some(seed), ..Default::default() }
        })
        .collect();
    println!("done");
    let mut public = PublicKeyChest::default();

    for scheme in &args.schemes {
        print!("generating {scheme} keys... ");
        match scheme {
            SchemeId::Sg02 => {
                let (pk, shares) = theta_schemes::sg02::keygen(params, &mut rng);
                public.sg02 = Some(pk);
                for (f, s) in node_files.iter_mut().zip(shares) {
                    f.sg02 = Some(s);
                }
            }
            SchemeId::Bz03 => {
                let (pk, shares) = theta_schemes::bz03::keygen(params, &mut rng);
                public.bz03 = Some(pk);
                for (f, s) in node_files.iter_mut().zip(shares) {
                    f.bz03 = Some(s);
                }
            }
            SchemeId::Sh00 => {
                let (pk, shares) =
                    theta_schemes::sh00::keygen(params, args.sh00_bits, &mut rng)
                        .expect("sh00 keygen");
                public.sh00 = Some(pk);
                for (f, s) in node_files.iter_mut().zip(shares) {
                    f.sh00 = Some(s);
                }
            }
            SchemeId::Bls04 => {
                let (pk, shares) = theta_schemes::bls04::keygen(params, &mut rng);
                public.bls04 = Some(pk);
                for (f, s) in node_files.iter_mut().zip(shares) {
                    f.bls04 = Some(s);
                }
            }
            SchemeId::Kg20 => {
                let (pk, shares) = theta_schemes::kg20::keygen(params, &mut rng);
                public.kg20 = Some(pk);
                for (f, s) in node_files.iter_mut().zip(shares) {
                    f.kg20 = Some(s);
                }
            }
            SchemeId::Cks05 => {
                let (pk, shares) = theta_schemes::cks05::keygen(params, &mut rng);
                public.cks05 = Some(pk);
                for (f, s) in node_files.iter_mut().zip(shares) {
                    f.cks05 = Some(s);
                }
            }
        }
        println!("done");
    }

    for file in &node_files {
        let path = args.out.join(format!("node-{}.keys", file.node_id));
        // Wipe the serialized secret shares once they are on disk rather
        // than leaving a plaintext copy on the heap for the allocator.
        let mut encoded = file.encoded();
        std::fs::write(&path, &encoded).expect("write node key file");
        theta_math::wipe_bytes(&mut encoded);
        println!("wrote {}", path.display());
    }
    let pub_path = args.out.join("public.keys");
    std::fs::write(&pub_path, encode_public_with_roster(&public, &roster))
        .expect("write public key file");
    println!("wrote {} (including the {}-node mesh roster)", pub_path.display(), args.n);
    println!(
        "dealt a {}-out-of-{} deployment for {} scheme(s)",
        params.quorum(),
        params.n(),
        args.schemes.len()
    );
}
