//! `theta-client` — a small CLI against a node's RPC endpoint.
//!
//! ```text
//! theta-client --node 127.0.0.1:8001 coin epoch-7
//! theta-client --node 127.0.0.1:8001 sign bls04 "block 42"
//! theta-client --node 127.0.0.1:8001 keygen acme signing bls04
//! theta-client --node 127.0.0.1:8001 list-keys acme
//! theta-client --node 127.0.0.1:8001 sign --tenant acme --key signing bls04 "block 42"
//! theta-client --node 127.0.0.1:8001 seal-open sg02 "secret payload"
//! theta-client --node 127.0.0.1:8001 pubkey cks05
//! theta-client --node 127.0.0.1:8001 metrics
//! theta-client --node 127.0.0.1:8001 trace <instance-id-hex>
//! ```

use std::net::SocketAddr;
use std::time::Duration;
use theta_orchestration::{KeyRef, Request};
use theta_schemes::registry::SchemeId;
use theta_service::RpcClient;

fn parse_instance(hex: &str) -> [u8; 32] {
    let bytes = theta_primitives::from_hex(hex)
        .filter(|b| b.len() == 32)
        .unwrap_or_else(|| {
            eprintln!("trace expects a 64-char hex instance id");
            std::process::exit(2);
        });
    let mut instance = [0u8; 32];
    instance.copy_from_slice(&bytes);
    instance
}

fn usage() -> ! {
    eprintln!(
        "usage: theta-client --node ADDR <command>\n\
         commands:\n\
           coin <name>                 flip the CKS05 coin\n\
           sign [--tenant T --key K] <scheme> <message>\n\
                                       threshold-sign (sh00|bls04|kg20); with\n\
                                       --tenant/--key, under that tenant key\n\
           keygen <tenant> <name> <scheme>\n\
                                       deal a tenant key on demand\n\
           list-keys <tenant>          the tenant's keys (name + scheme)\n\
           seal-open <scheme> <msg>    encrypt via scheme API, decrypt via protocol API (sg02|bz03)\n\
           pubkey <scheme>             fetch a public key (hex)\n\
           stats                       event-loop counters of the node\n\
           metrics                     Prometheus text exposition of the node's metrics\n\
           health                      SLO watchdog verdict (ready/degraded + reasons)\n\
           trace <instance-hex>        lifecycle trace of one protocol instance\n\
           trace --cluster <hex>       merged cross-node timeline (fans GetTrace over the roster)"
    );
    std::process::exit(2);
}

/// Verifies a combined signature against an encoded public key, both
/// decoded per `scheme`.
fn verify_with(scheme: SchemeId, pk: &[u8], message: &[u8], sig: &[u8]) -> bool {
    use theta_codec::Decode;
    match scheme {
        SchemeId::Sh00 => {
            let (Ok(pk), Ok(sig)) = (
                theta_schemes::sh00::PublicKey::decoded(pk),
                theta_schemes::sh00::Signature::decoded(sig),
            ) else {
                return false;
            };
            theta_schemes::sh00::verify(&pk, message, &sig)
        }
        SchemeId::Bls04 => {
            let (Ok(pk), Ok(sig)) = (
                theta_schemes::bls04::PublicKey::decoded(pk),
                theta_schemes::bls04::Signature::decoded(sig),
            ) else {
                return false;
            };
            theta_schemes::bls04::verify(&pk, message, &sig)
        }
        SchemeId::Kg20 => {
            let (Ok(pk), Ok(sig)) = (
                theta_schemes::kg20::PublicKey::decoded(pk),
                theta_schemes::kg20::Signature::decoded(sig),
            ) else {
                return false;
            };
            theta_schemes::kg20::verify(&pk, message, &sig)
        }
        _ => false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut node: Option<SocketAddr> = None;
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        if a == "--node" {
            node = iter.next().and_then(|v| v.parse().ok());
        } else {
            rest.push(a);
        }
    }
    let Some(addr) = node else { usage() };
    if rest.is_empty() {
        usage()
    }

    let mut client =
        RpcClient::connect(addr, Duration::from_secs(5)).expect("connect to node RPC");

    match rest[0].as_str() {
        "coin" if rest.len() == 2 => {
            let request = Request::Cks05Coin(rest[1].clone().into_bytes());
            println!("instance = {}", theta_primitives::to_hex(&request.instance_id().0));
            let (value, latency) = client.run_protocol(request).expect("coin");
            println!("coin  = {}", theta_primitives::to_hex(&value));
            println!("server-side latency: {latency:?}");
        }
        "sign" if rest.len() == 3 => {
            let scheme = SchemeId::from_name(&rest[1]).unwrap_or_else(|| usage());
            let message = rest[2].clone().into_bytes();
            let request = match scheme {
                SchemeId::Sh00 => Request::Sh00Sign(message.clone()),
                SchemeId::Bls04 => Request::Bls04Sign(message.clone()),
                SchemeId::Kg20 => Request::Kg20Sign(message.clone()),
                _ => usage(),
            };
            println!("instance = {}", theta_primitives::to_hex(&request.instance_id().0));
            let (sig, latency) = client.run_protocol(request).expect("sign");
            println!("signature = {}", theta_primitives::to_hex(&sig));
            println!("server-side latency: {latency:?}");
            let ok = client
                .verify_signature(scheme, &message, &sig)
                .expect("verify");
            println!("verified: {ok}");
        }
        // sign --tenant T --key K <scheme> <message>
        "sign" if rest.len() == 7 && rest[1] == "--tenant" && rest[3] == "--key" => {
            let keyref = KeyRef::new(rest[2].clone(), rest[4].clone());
            let scheme = SchemeId::from_name(&rest[5]).unwrap_or_else(|| usage());
            let message = rest[6].clone().into_bytes();
            let inner = match scheme {
                SchemeId::Sh00 => Request::Sh00Sign(message.clone()),
                SchemeId::Bls04 => Request::Bls04Sign(message.clone()),
                SchemeId::Kg20 => Request::Kg20Sign(message.clone()),
                _ => usage(),
            };
            let request = Request::scoped(keyref.clone(), inner);
            println!("instance = {}", theta_primitives::to_hex(&request.instance_id().0));
            let (sig, latency) = client.run_protocol(request).expect("sign");
            println!("signature = {}", theta_primitives::to_hex(&sig));
            println!("server-side latency: {latency:?}");
            // The server's verify endpoint checks against the dealer's
            // network key; a tenant signature must be checked against
            // the tenant's own public key, fetched and verified here.
            let (served_scheme, pk) = client.tenant_key(keyref).expect("tenant key");
            assert_eq!(served_scheme, scheme, "tenant key has a different scheme");
            let ok = verify_with(scheme, &pk, &message, &sig);
            println!("verified against tenant key: {ok}");
            if !ok {
                std::process::exit(1);
            }
        }
        "keygen" if rest.len() == 4 => {
            let scheme = SchemeId::from_name(&rest[3]).unwrap_or_else(|| usage());
            let keyref = KeyRef::new(rest[1].clone(), rest[2].clone());
            let pk = client.keygen(keyref, scheme).expect("keygen");
            println!("dealt {}/{} ({scheme})", rest[1], rest[2]);
            println!("public key = {}", theta_primitives::to_hex(&pk));
        }
        "list-keys" if rest.len() == 2 => {
            let keys = client.list_keys(&rest[1]).expect("list keys");
            if keys.is_empty() {
                println!("no keys for tenant {}", rest[1]);
            }
            for (name, scheme) in keys {
                println!("{}/{name}  {scheme}", rest[1]);
            }
        }
        "seal-open" if rest.len() == 3 => {
            let scheme = SchemeId::from_name(&rest[1]).unwrap_or_else(|| usage());
            let message = rest[2].clone().into_bytes();
            let ct = client
                .encrypt(scheme, b"theta-client", &message)
                .expect("encrypt");
            println!("ciphertext bytes: {}", ct.len());
            let request = match scheme {
                SchemeId::Sg02 => Request::Sg02Decrypt(ct),
                SchemeId::Bz03 => Request::Bz03Decrypt(ct),
                _ => usage(),
            };
            println!("instance = {}", theta_primitives::to_hex(&request.instance_id().0));
            let (plain, latency) = client.run_protocol(request).expect("decrypt");
            assert_eq!(plain, message, "roundtrip mismatch");
            println!("decrypted: {:?}", String::from_utf8_lossy(&plain));
            println!("server-side latency: {latency:?}");
        }
        "pubkey" if rest.len() == 2 => {
            let scheme = SchemeId::from_name(&rest[1]).unwrap_or_else(|| usage());
            let pk = client.public_key(scheme).expect("public key");
            println!("{}", theta_primitives::to_hex(&pk));
        }
        "stats" if rest.len() == 1 => {
            let s = client.node_stats().expect("node stats");
            println!("{s:#?}");
        }
        "metrics" if rest.len() == 1 => {
            // Raw Prometheus text — pipeable straight into promtool or a
            // file_sd-backed scrape.
            print!("{}", client.metrics().expect("metrics"));
        }
        "health" if rest.len() == 1 => {
            let report = client.health().expect("health");
            println!("verdict: {}", if report.ready { "ready" } else { "degraded" });
            for reason in &report.reasons {
                println!("  - {reason}");
            }
            println!("e2e p99          : {:.3} ms", report.e2e_p99_micros as f64 / 1000.0);
            println!("run queue        : {}", report.runqueue_depth);
            println!("submission queue : {}", report.submission_queue_depth);
            println!("mailbox drops    : {}", report.mailbox_dropped);
            println!("overload rejects : {}", report.overload_rejections);
            println!("link faults      : {}", report.link_errors);
            if !report.ready {
                std::process::exit(1);
            }
        }
        "trace" if rest.len() == 2 => {
            let instance = parse_instance(&rest[1]);
            let trace = client.trace(instance).expect("trace");
            println!(
                "trace for {} ({} event(s){}):",
                &rest[1][..16],
                trace.events.len(),
                if trace.truncated { ", TRUNCATED: ring evicted earlier events" } else { "" }
            );
            for ev in trace.events {
                let peer = if ev.peer == 0 {
                    String::new()
                } else {
                    format!(" peer={}", ev.peer)
                };
                let detail = if ev.detail.is_empty() {
                    String::new()
                } else {
                    format!("  [{}]", ev.detail)
                };
                println!(
                    "  {:>10.3} ms  {:<18}{}{}",
                    ev.at_micros as f64 / 1000.0,
                    ev.kind.label(),
                    peer,
                    detail
                );
            }
        }
        "trace" if rest.len() == 3 && rest[1] == "--cluster" => {
            let instance = parse_instance(&rest[2]);
            let trace = client.collect_trace(instance).expect("collect trace");
            println!(
                "cluster timeline for {} — {} event(s) from {} node(s){}{}",
                &rest[2][..16],
                trace.entries.len(),
                trace.nodes_reporting,
                if trace.truncated { ", TRUNCATED" } else { "" },
                if trace.causality_violations > 0 {
                    format!(", {} causality violation(s)", trace.causality_violations)
                } else {
                    String::new()
                },
            );
            let origin = trace.entries.first().map_or(0, |e| e.aligned_micros);
            for entry in trace.entries {
                let ev = entry.event;
                let peer = if ev.peer == 0 {
                    String::new()
                } else {
                    format!(" peer={}", ev.peer)
                };
                let detail = if ev.detail.is_empty() {
                    String::new()
                } else {
                    format!("  [{}]", ev.detail)
                };
                println!(
                    "  {:>10.3} ms  node {:<3} {:<18}{}{}",
                    (entry.aligned_micros - origin) as f64 / 1000.0,
                    entry.node,
                    ev.kind.label(),
                    peer,
                    detail
                );
            }
        }
        _ => usage(),
    }
}
