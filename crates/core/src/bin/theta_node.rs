//! `theta-node` — a standalone Thetacrypt node over real TCP: loads its
//! key file, joins the full mesh, and serves the RPC endpoints (the
//! paper's standalone deployment mode).
//!
//! ```text
//! theta-node --id 1 --keys keys/node-1.keys --public keys/public.keys \
//!            --peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004 \
//!            --rpc 127.0.0.1:8001
//! ```
//!
//! Peer `i` in the list is node `i+1`'s mesh address; the node binds its
//! own entry. Node 1 doubles as the TOB sequencer.
//!
//! Every mesh link is authenticated and encrypted: the node's key file
//! carries its static transport identity, the public key file carries
//! the roster, and connection setup runs the Noise-IK handshake before
//! any protocol byte flows. `--mesh-degree D` (with `D > 0`) joins the
//! gossip/flood overlay with ≈D links per node instead of the `n-1`
//! links of the full mesh — the mode for fleets too large to fully
//! connect.
//!
//! `--rpc-peers a1,a2,...` (the RPC address of every node, in roster
//! order) enables the cluster plane: with it, `CollectTrace` fans out
//! across the roster and `theta-client trace --cluster` returns the
//! merged, clock-aligned timeline instead of just this node's slice.
//!
//! `--keystore DIR` attaches the multi-tenant key manager: tenant key
//! shares sealed under `DIR` (dealt by `theta-keygen --tenant`) serve
//! tenant-scoped protocol requests and the `list-keys`/tenant-key RPCs.
//! The storage passphrase comes from `$THETA_KEYSTORE_PASS` (or
//! `--keystore-pass`, which leaks it to the process list — prefer the
//! environment). `--tenant-quota N` caps each tenant's concurrent
//! in-flight scoped requests.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use theta_core::keyfile::{self, decode_public_with_roster};
use theta_core::keymanager::{KeyManager, KeystoreKey, LocalKeyAdmin, SharedKeyManager};
use theta_network::gossip::GossipMesh;
use theta_network::handshake::{MeshAuth, Roster, StaticIdentity};
use theta_network::tcp::TcpMesh;
use theta_network::Network;
use theta_orchestration::{spawn_node_observed, spawn_node_with_keys, NodeConfig};
use theta_service::{
    serve_on_with_options, ClusterConfig, ServiceOptions, SloThresholds,
};

struct Args {
    id: u16,
    keys: std::path::PathBuf,
    public: std::path::PathBuf,
    peers: Vec<SocketAddr>,
    rpc: SocketAddr,
    rpc_peers: Vec<SocketAddr>,
    workers: usize,
    mesh_degree: usize,
    keystore: Option<std::path::PathBuf>,
    keystore_pass: Option<String>,
    tenant_quota: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut id = None;
    let mut keys = None;
    let mut public = None;
    let mut peers = None;
    let mut rpc = None;
    let mut rpc_peers = Vec::new();
    let mut workers = 0;
    let mut mesh_degree = 0;
    let mut keystore = None;
    let mut keystore_pass = None;
    let mut tenant_quota = 0;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--id" => id = Some(value()?.parse().map_err(|e| format!("--id: {e}"))?),
            "--keys" => keys = Some(std::path::PathBuf::from(value()?)),
            "--public" => public = Some(std::path::PathBuf::from(value()?)),
            "--rpc" => rpc = Some(value()?.parse().map_err(|e| format!("--rpc: {e}"))?),
            "--workers" => {
                workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--mesh-degree" => {
                mesh_degree =
                    value()?.parse().map_err(|e| format!("--mesh-degree: {e}"))?;
            }
            "--keystore" => keystore = Some(std::path::PathBuf::from(value()?)),
            "--keystore-pass" => keystore_pass = Some(value()?),
            "--tenant-quota" => {
                tenant_quota =
                    value()?.parse().map_err(|e| format!("--tenant-quota: {e}"))?;
            }
            "--peers" => {
                peers = Some(
                    value()?
                        .split(',')
                        .map(|a| a.trim().parse().map_err(|e| format!("--peers: {e}")))
                        .collect::<Result<Vec<SocketAddr>, String>>()?,
                );
            }
            "--rpc-peers" => {
                rpc_peers = value()?
                    .split(',')
                    .map(|a| a.trim().parse().map_err(|e| format!("--rpc-peers: {e}")))
                    .collect::<Result<Vec<SocketAddr>, String>>()?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        id: id.ok_or("--id is required")?,
        keys: keys.ok_or("--keys is required")?,
        public: public.ok_or("--public is required")?,
        peers: peers.ok_or("--peers is required")?,
        rpc: rpc.ok_or("--rpc is required")?,
        rpc_peers,
        workers,
        mesh_degree,
        keystore,
        keystore_pass,
        tenant_quota,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: theta-node --id I --keys FILE --public FILE \
                 --peers a1,a2,... --rpc ADDR [--rpc-peers a1,a2,...] \
                 [--workers N] [--mesh-degree D] [--keystore DIR] \
                 [--keystore-pass P] [--tenant-quota N]"
            );
            std::process::exit(2);
        }
    };

    let mut key_bytes = std::fs::read(&args.keys).expect("read node key file");
    // decode_node_key volatile-wipes key_bytes: the on-disk encoding is
    // the secret shares themselves and must not linger in this buffer.
    let mut key_file =
        keyfile::decode_node_key(&mut key_bytes).expect("parse node key file");
    assert_eq!(
        key_file.node_id, args.id,
        "key file belongs to node {}, not {}",
        key_file.node_id, args.id
    );
    let public_bytes = std::fs::read(&args.public).expect("read public key file");
    let (public, roster_bytes) =
        decode_public_with_roster(&public_bytes).expect("parse public key file");

    let seed = key_file.identity_seed.take().unwrap_or_else(|| {
        panic!(
            "key file {} has no transport identity — re-deal with theta-keygen",
            args.keys.display()
        )
    });
    assert!(
        !roster_bytes.is_empty(),
        "public key file {} has no mesh roster — re-deal with theta-keygen",
        args.public.display()
    );
    assert_eq!(
        roster_bytes.len(),
        args.peers.len(),
        "roster covers {} nodes but --peers lists {}",
        roster_bytes.len(),
        args.peers.len()
    );
    let auth = MeshAuth {
        identity: StaticIdentity::from_seed(&seed),
        roster: Roster::from_bytes(&roster_bytes).expect("validate mesh roster"),
    };
    drop(seed); // wiped on drop; the derived identity lives on in auth

    println!(
        "node {} joining a {}-node mesh (TOB sequencer: node 1, links: {})...",
        args.id,
        args.peers.len(),
        if args.mesh_degree == 0 {
            "full mesh".to_string()
        } else {
            format!("gossip, degree {}", args.mesh_degree)
        }
    );
    let mesh: Box<dyn Network> = if args.mesh_degree == 0 {
        Box::new(TcpMesh::connect(args.id, &args.peers, auth).expect("mesh setup"))
    } else {
        Box::new(
            GossipMesh::connect(args.id, &args.peers, auth, args.mesh_degree)
                .expect("mesh setup"),
        )
    };
    println!("mesh connected (all links authenticated + encrypted)");

    let config = NodeConfig { worker_threads: args.workers, ..NodeConfig::default() };
    let obs = Arc::new(theta_metrics::NodeObservability::new());
    let (handle, key_admin) = match &args.keystore {
        None => (
            Arc::new(spawn_node_observed(key_file.into_chest(), mesh, config, obs)),
            None,
        ),
        Some(dir) => {
            let passphrase = args
                .keystore_pass
                .clone()
                .or_else(|| std::env::var("THETA_KEYSTORE_PASS").ok())
                .expect(
                    "--keystore needs a passphrase: set $THETA_KEYSTORE_PASS \
                     or pass --keystore-pass",
                );
            let manager = Arc::new(
                KeyManager::open(dir, KeystoreKey::derive(passphrase.as_bytes()), 8)
                    .expect("open keystore"),
            );
            manager.set_default_chest(key_file.into_chest());
            manager.attach_observability(&obs);
            println!("keystore attached at {}", dir.display());
            (
                Arc::new(spawn_node_with_keys(
                    Box::new(SharedKeyManager(manager.clone())),
                    mesh,
                    config,
                    obs,
                )),
                Some(Arc::new(LocalKeyAdmin(manager)) as Arc<dyn theta_service::KeyAdmin>),
            )
        }
    };
    if !args.rpc_peers.is_empty() {
        assert_eq!(
            args.rpc_peers.len(),
            args.peers.len(),
            "--rpc-peers lists {} nodes but the mesh has {}",
            args.rpc_peers.len(),
            args.peers.len()
        );
    }
    let cluster = ClusterConfig {
        peers: args
            .rpc_peers
            .iter()
            .enumerate()
            .map(|(i, addr)| (i as u16 + 1, *addr))
            .collect(),
        self_id: args.id,
        slo: SloThresholds::default(),
    };
    let listener = std::net::TcpListener::bind(args.rpc).expect("bind rpc endpoint");
    let service = serve_on_with_options(
        listener,
        handle,
        public,
        Duration::from_secs(60),
        ServiceOptions { cluster, key_admin, tenant_quota: args.tenant_quota },
    )
    .expect("start rpc service");
    println!("serving Thetacrypt RPC on {}", service.addr());
    println!("ready — press ctrl-c to stop");

    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
