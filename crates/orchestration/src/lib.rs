//! # theta-orchestration
//!
//! The paper's *orchestration module* (§3.5): the execution engine that
//! manages concurrent protocol instances, tracks their state, schedules
//! messages to and from the network layer, and returns results to the
//! service layer.
//!
//! - [`KeyChest`] — the *key manager*: per-scheme key material plus the
//!   KG20 precomputed-nonce stock.
//! - [`Request`] — what an application asks the Θ-network to do.
//! - the router + worker pool (via [`spawn_node`]): a thin router
//!   thread owning the instance registry, result cache, deadlines and
//!   network demux, forwarding work to N crypto workers over bounded
//!   per-instance mailboxes. Each live
//!   [`theta_protocols::ThresholdRoundProtocol`] instance is keyed by a
//!   content-derived [`InstanceId`] so that all nodes working on the
//!   same request converge on the same instance, and is hosted by an
//!   `InstanceHost` that serializes its own messages (no locks around
//!   protocol state) while distinct instances run truly in parallel.
//!
//! Protocol crypto never executes on the router thread — a debug
//! assertion enforces the split. Backpressure is explicit at every
//! boundary: the submission queue, the live-instance count and each
//! mailbox are bounded, and overflow is refused
//! ([`theta_schemes::SchemeError::Overloaded`]) rather than buffered
//! without limit.

mod batcher;
mod cache;
pub mod handshake;
mod instance_host;
pub mod mailbox;
mod router;
mod worker_pool;

pub use router::{
    spawn_node, spawn_node_observed, spawn_node_with_keys, InstanceResult, NodeConfig,
    NodeHandle, PendingResult, SubmitError, WaitError,
};

use theta_codec::{Decode, Encode, Reader, Writer};
use theta_primitives::DomainHasher;
use theta_schemes::registry::SchemeId;
use theta_schemes::SchemeError;
use theta_schemes::{bls04, bz03, cks05, kg20, sg02, sh00};

/// Identifies a protocol instance network-wide: a hash of the request
/// content, so independent nodes derive the same id for the same request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub [u8; 32]);

impl std::fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InstanceId({})", theta_primitives::to_hex(&self.0[..8]))
    }
}

impl Encode for InstanceId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for InstanceId {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(InstanceId(<[u8; 32]>::decode(r)?))
    }
}

/// Names one key in the multi-tenant keyspace: a `(tenant, name)` pair.
///
/// Tenants and names are bounded UTF-8 labels ([`KeyRef::validate`]); the
/// key manager maps a `KeyRef` to the node's share of that tenant key.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyRef {
    /// The tenant (namespace) that owns the key.
    pub tenant: String,
    /// The key's name inside the tenant's namespace.
    pub name: String,
}

/// Longest accepted tenant or key-name label, in bytes.
pub const KEY_LABEL_MAX: usize = 64;

impl KeyRef {
    /// Builds a reference without validating the labels.
    pub fn new(tenant: impl Into<String>, name: impl Into<String>) -> KeyRef {
        KeyRef { tenant: tenant.into(), name: name.into() }
    }

    /// Checks both labels: non-empty, at most [`KEY_LABEL_MAX`] bytes.
    ///
    /// # Errors
    ///
    /// [`SchemeError::InvalidParameters`] naming the offending label.
    pub fn validate(&self) -> Result<(), SchemeError> {
        for (which, label) in [("tenant", &self.tenant), ("key name", &self.name)] {
            if label.is_empty() {
                return Err(SchemeError::InvalidParameters(format!("empty {which}")));
            }
            if label.len() > KEY_LABEL_MAX {
                return Err(SchemeError::InvalidParameters(format!(
                    "{which} exceeds {KEY_LABEL_MAX} bytes"
                )));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for KeyRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.tenant, self.name)
    }
}

impl Encode for KeyRef {
    fn encode(&self, w: &mut Writer) {
        self.tenant.encode(w);
        self.name.encode(w);
    }
}

impl Decode for KeyRef {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(KeyRef { tenant: String::decode(r)?, name: String::decode(r)? })
    }
}

/// Wire tag marking a tenant-scoped request; disjoint from every
/// [`SchemeId`] tag so legacy decoders reject (not misread) it.
const SCOPED_TAG: u8 = 255;

/// A request for one threshold operation, as issued by the service layer.
///
/// Payloads are the canonical encodings of the scheme-level objects; they
/// are validated when the instance starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Decrypt an SG02 ciphertext (encoded [`sg02::Ciphertext`]).
    Sg02Decrypt(Vec<u8>),
    /// Decrypt a BZ03 ciphertext (encoded [`bz03::Ciphertext`]).
    Bz03Decrypt(Vec<u8>),
    /// Threshold-sign a message with SH00.
    Sh00Sign(Vec<u8>),
    /// Threshold-sign a message with BLS04.
    Bls04Sign(Vec<u8>),
    /// Threshold-sign a message with KG20 / FROST.
    Kg20Sign(Vec<u8>),
    /// Flip the CKS05 coin with this name.
    Cks05Coin(Vec<u8>),
    /// The inner operation, executed against a tenant key from the
    /// multi-tenant key manager instead of the node's default chest.
    /// Depth one only: the inner request is never itself `Scoped`.
    Scoped {
        /// Which tenant key serves the operation.
        keyref: KeyRef,
        /// The operation itself (one of the plain variants).
        inner: Box<Request>,
    },
}

impl Request {
    /// Wraps a plain request so it runs against a tenant key.
    ///
    /// # Panics
    ///
    /// When `inner` is already scoped — scoping does not nest.
    pub fn scoped(keyref: KeyRef, inner: Request) -> Request {
        assert!(
            !matches!(inner, Request::Scoped { .. }),
            "scoped requests do not nest"
        );
        Request::Scoped { keyref, inner: Box::new(inner) }
    }

    /// The scheme this request targets.
    pub fn scheme(&self) -> SchemeId {
        match self {
            Request::Sg02Decrypt(_) => SchemeId::Sg02,
            Request::Bz03Decrypt(_) => SchemeId::Bz03,
            Request::Sh00Sign(_) => SchemeId::Sh00,
            Request::Bls04Sign(_) => SchemeId::Bls04,
            Request::Kg20Sign(_) => SchemeId::Kg20,
            Request::Cks05Coin(_) => SchemeId::Cks05,
            Request::Scoped { inner, .. } => inner.scheme(),
        }
    }

    /// The request body (ciphertext / message / coin name).
    pub fn body(&self) -> &[u8] {
        match self {
            Request::Sg02Decrypt(b)
            | Request::Bz03Decrypt(b)
            | Request::Sh00Sign(b)
            | Request::Bls04Sign(b)
            | Request::Kg20Sign(b)
            | Request::Cks05Coin(b) => b,
            Request::Scoped { inner, .. } => inner.body(),
        }
    }

    /// The tenant key this request is scoped to, if any.
    pub fn keyref(&self) -> Option<&KeyRef> {
        match self {
            Request::Scoped { keyref, .. } => Some(keyref),
            _ => None,
        }
    }

    /// Derives the network-wide instance id of this request.
    ///
    /// Scoped requests live in their own domain, chained over the key
    /// reference as well — the same operation against two tenant keys
    /// (or against the default chest) must never collide.
    pub fn instance_id(&self) -> InstanceId {
        let digest = match self {
            Request::Scoped { keyref, inner } => {
                DomainHasher::new("thetacrypt/instance-id/scoped/v1")
                    .chain(keyref.tenant.as_bytes())
                    .chain(keyref.name.as_bytes())
                    .chain(inner.scheme().name().as_bytes())
                    .chain(inner.body())
                    .finish32()
            }
            _ => DomainHasher::new("thetacrypt/instance-id/v1")
                .chain(self.scheme().name().as_bytes())
                .chain(self.body())
                .finish32(),
        };
        InstanceId(digest)
    }
}

impl Encode for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Scoped { keyref, inner } => {
                SCOPED_TAG.encode(w);
                keyref.encode(w);
                inner.encode(w);
            }
            _ => {
                self.scheme().encode(w);
                self.body().to_vec().encode(w);
            }
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        // Mirrors `SchemeId`'s tag space (0..=5) plus the scoped sentinel.
        match u8::decode(r)? {
            SCOPED_TAG => {
                let keyref = KeyRef::decode(r)?;
                let inner = Request::decode(r)?;
                if matches!(inner, Request::Scoped { .. }) {
                    // Depth-one invariant: nesting is a malformed wire
                    // object, never a valid request.
                    return Err(theta_codec::CodecError::InvalidTag(SCOPED_TAG as u32));
                }
                Ok(Request::Scoped { keyref, inner: Box::new(inner) })
            }
            tag => {
                let scheme = SchemeId::decoded(&[tag])
                    .map_err(|_| theta_codec::CodecError::InvalidTag(tag as u32))?;
                let body = Vec::<u8>::decode(r)?;
                Ok(match scheme {
                    SchemeId::Sg02 => Request::Sg02Decrypt(body),
                    SchemeId::Bz03 => Request::Bz03Decrypt(body),
                    SchemeId::Sh00 => Request::Sh00Sign(body),
                    SchemeId::Bls04 => Request::Bls04Sign(body),
                    SchemeId::Kg20 => Request::Kg20Sign(body),
                    SchemeId::Cks05 => Request::Cks05Coin(body),
                })
            }
        }
    }
}

/// The network envelope wrapping every protocol message: which instance
/// it belongs to, which round produced it, and who sent it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Target instance.
    pub instance: InstanceId,
    /// The request that spawned the instance (lets nodes that have not
    /// seen the request yet start their own instance — needed because a
    /// share can arrive before the local application submits).
    pub request: Request,
    /// Protocol round of the payload.
    pub round: u16,
    /// Sending party.
    pub sender: u16,
    /// Scheme-specific protocol message.
    pub payload: Vec<u8>,
}

impl Encode for Envelope {
    fn encode(&self, w: &mut Writer) {
        self.instance.encode(w);
        self.request.encode(w);
        self.round.encode(w);
        self.sender.encode(w);
        self.payload.encode(w);
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(Envelope {
            instance: InstanceId::decode(r)?,
            request: Request::decode(r)?,
            round: u16::decode(r)?,
            sender: u16::decode(r)?,
            payload: Vec::<u8>::decode(r)?,
        })
    }
}

/// The key manager: this node's key shares for every provisioned scheme,
/// plus the KG20 precomputed-nonce stock.
#[derive(Default)]
pub struct KeyChest {
    /// SG02 key share, when provisioned.
    pub sg02: Option<sg02::KeyShare>,
    /// BZ03 key share, when provisioned.
    pub bz03: Option<bz03::KeyShare>,
    /// SH00 key share, when provisioned.
    pub sh00: Option<sh00::KeyShare>,
    /// BLS04 key share, when provisioned.
    pub bls04: Option<bls04::KeyShare>,
    /// KG20 key share, when provisioned.
    pub kg20: Option<kg20::KeyShare>,
    /// CKS05 key share, when provisioned.
    pub cks05: Option<cks05::KeyShare>,
    /// Precomputed FROST nonces (consumed front-first).
    pub kg20_nonces: std::collections::VecDeque<kg20::SigningNonce>,
}

impl KeyChest {
    /// An empty chest (no schemes provisioned).
    pub fn new() -> KeyChest {
        KeyChest::default()
    }

    /// True when key material for `scheme` is present.
    pub fn has(&self, scheme: SchemeId) -> bool {
        match scheme {
            SchemeId::Sg02 => self.sg02.is_some(),
            SchemeId::Bz03 => self.bz03.is_some(),
            SchemeId::Sh00 => self.sh00.is_some(),
            SchemeId::Bls04 => self.bls04.is_some(),
            SchemeId::Kg20 => self.kg20.is_some(),
            SchemeId::Cks05 => self.cks05.is_some(),
        }
    }
}

/// A chest shared between the router and a key manager. The mutex guards
/// the KG20 nonce stock (popped per signing instance); share reads only
/// clone out of it.
pub type SharedChest = std::sync::Arc<std::sync::Mutex<KeyChest>>;

/// Resolves key references to chests — the router's view of the key
/// manager. `None` asks for the node's default (deployment-dealt) chest;
/// `Some(keyref)` asks for a tenant key, which the provider may load on
/// demand (e.g. from an encrypted keystore).
///
/// Called on the router thread at instance start: implementations must
/// stay cheap on the hot path (a hot-cache hit is a map lookup; a miss
/// may read one small keystore file).
pub trait KeyProvider: Send {
    /// The chest serving `keyref`.
    ///
    /// # Errors
    ///
    /// [`SchemeError::KeyMismatch`] when the reference names no known
    /// key; any other error the provider's backing store surfaces.
    fn chest(&self, keyref: Option<&KeyRef>) -> Result<SharedChest, SchemeError>;
}

/// The fixed-keys provider: exactly the pre-refactor behaviour, serving
/// one dealt chest and refusing every tenant reference.
pub struct StaticKeys {
    chest: SharedChest,
}

impl StaticKeys {
    /// Wraps a dealt chest.
    pub fn new(chest: KeyChest) -> StaticKeys {
        StaticKeys { chest: std::sync::Arc::new(std::sync::Mutex::new(chest)) }
    }
}

impl KeyProvider for StaticKeys {
    fn chest(&self, keyref: Option<&KeyRef>) -> Result<SharedChest, SchemeError> {
        match keyref {
            None => Ok(self.chest.clone()),
            Some(kr) => Err(SchemeError::KeyMismatch(format!(
                "no tenant keyspace on this node (requested {kr})"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_codec_roundtrip() {
        let reqs = [
            Request::Sg02Decrypt(vec![1, 2]),
            Request::Bz03Decrypt(vec![]),
            Request::Sh00Sign(b"m".to_vec()),
            Request::Bls04Sign(b"m".to_vec()),
            Request::Kg20Sign(b"m".to_vec()),
            Request::Cks05Coin(b"coin".to_vec()),
        ];
        for r in reqs {
            assert_eq!(Request::decoded(&r.encoded()).unwrap(), r);
        }
    }

    #[test]
    fn instance_ids_are_content_addressed() {
        let a = Request::Bls04Sign(b"m".to_vec());
        let b = Request::Bls04Sign(b"m".to_vec());
        assert_eq!(a.instance_id(), b.instance_id());
        // Different scheme or body → different instance.
        assert_ne!(
            Request::Bls04Sign(b"m".to_vec()).instance_id(),
            Request::Sh00Sign(b"m".to_vec()).instance_id()
        );
        assert_ne!(
            Request::Bls04Sign(b"m1".to_vec()).instance_id(),
            Request::Bls04Sign(b"m2".to_vec()).instance_id()
        );
    }

    #[test]
    fn envelope_codec_roundtrip() {
        let req = Request::Cks05Coin(b"r".to_vec());
        let env = Envelope {
            instance: req.instance_id(),
            request: req,
            round: 2,
            sender: 7,
            payload: vec![9, 9],
        };
        assert_eq!(Envelope::decoded(&env.encoded()).unwrap(), env);
    }

    #[test]
    fn key_chest_tracks_provisioning() {
        let chest = KeyChest::new();
        for scheme in SchemeId::ALL {
            assert!(!chest.has(scheme));
        }
    }

    #[test]
    fn scoped_request_codec_roundtrip() {
        let scoped = Request::scoped(
            KeyRef::new("acme", "signing-1"),
            Request::Bls04Sign(b"m".to_vec()),
        );
        assert_eq!(Request::decoded(&scoped.encoded()).unwrap(), scoped);
        assert_eq!(scoped.scheme(), SchemeId::Bls04);
        assert_eq!(scoped.body(), b"m");
        assert_eq!(scoped.keyref(), Some(&KeyRef::new("acme", "signing-1")));
    }

    #[test]
    fn scoped_instance_ids_are_domain_separated() {
        let plain = Request::Bls04Sign(b"m".to_vec());
        let a = Request::scoped(KeyRef::new("acme", "k1"), plain.clone());
        let b = Request::scoped(KeyRef::new("acme", "k2"), plain.clone());
        let c = Request::scoped(KeyRef::new("other", "k1"), plain.clone());
        // Same operation, different key → different instance; and none
        // collide with the unscoped instance.
        assert_ne!(a.instance_id(), b.instance_id());
        assert_ne!(a.instance_id(), c.instance_id());
        assert_ne!(a.instance_id(), plain.instance_id());
        // Content-addressing still holds within one keyref.
        assert_eq!(
            a.instance_id(),
            Request::scoped(KeyRef::new("acme", "k1"), plain).instance_id()
        );
    }

    #[test]
    fn nested_scoped_requests_rejected_on_decode() {
        // Hand-craft a depth-2 scoped encoding: tag, keyref, then
        // another scoped request — the decoder must refuse it.
        let inner = Request::scoped(
            KeyRef::new("acme", "k1"),
            Request::Cks05Coin(b"c".to_vec()),
        );
        let mut w = Writer::new();
        255u8.encode(&mut w);
        KeyRef::new("outer", "k0").encode(&mut w);
        inner.encode(&mut w);
        assert!(Request::decoded(&w.into_bytes()).is_err());
    }

    #[test]
    fn keyref_labels_validated() {
        assert!(KeyRef::new("acme", "k1").validate().is_ok());
        assert!(KeyRef::new("", "k1").validate().is_err());
        assert!(KeyRef::new("acme", "").validate().is_err());
        assert!(KeyRef::new("a".repeat(KEY_LABEL_MAX + 1), "k").validate().is_err());
        assert!(KeyRef::new("a".repeat(KEY_LABEL_MAX), "k").validate().is_ok());
    }

    #[test]
    fn static_keys_refuse_tenant_refs() {
        let provider = StaticKeys::new(KeyChest::new());
        assert!(provider.chest(None).is_ok());
        assert!(matches!(
            provider.chest(Some(&KeyRef::new("acme", "k1"))),
            Err(SchemeError::KeyMismatch(_))
        ));
    }
}
