//! # theta-orchestration
//!
//! The paper's *orchestration module* (§3.5): the execution engine that
//! manages concurrent protocol instances, tracks their state, schedules
//! messages to and from the network layer, and returns results to the
//! service layer.
//!
//! - [`KeyChest`] — the *key manager*: per-scheme key material plus the
//!   KG20 precomputed-nonce stock.
//! - [`Request`] — what an application asks the Θ-network to do.
//! - the router + worker pool (via [`spawn_node`]): a thin router
//!   thread owning the instance registry, result cache, deadlines and
//!   network demux, forwarding work to N crypto workers over bounded
//!   per-instance mailboxes. Each live
//!   [`theta_protocols::ThresholdRoundProtocol`] instance is keyed by a
//!   content-derived [`InstanceId`] so that all nodes working on the
//!   same request converge on the same instance, and is hosted by an
//!   `InstanceHost` that serializes its own messages (no locks around
//!   protocol state) while distinct instances run truly in parallel.
//!
//! Protocol crypto never executes on the router thread — a debug
//! assertion enforces the split. Backpressure is explicit at every
//! boundary: the submission queue, the live-instance count and each
//! mailbox are bounded, and overflow is refused
//! ([`theta_schemes::SchemeError::Overloaded`]) rather than buffered
//! without limit.

mod batcher;
mod cache;
pub mod handshake;
mod instance_host;
pub mod mailbox;
mod router;
mod worker_pool;

pub use router::{
    spawn_node, spawn_node_observed, InstanceResult, NodeConfig, NodeHandle, PendingResult,
    SubmitError, WaitError,
};

use theta_codec::{Decode, Encode, Reader, Writer};
use theta_primitives::DomainHasher;
use theta_schemes::registry::SchemeId;
use theta_schemes::{bls04, bz03, cks05, kg20, sg02, sh00};

/// Identifies a protocol instance network-wide: a hash of the request
/// content, so independent nodes derive the same id for the same request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub [u8; 32]);

impl std::fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InstanceId({})", theta_primitives::to_hex(&self.0[..8]))
    }
}

impl Encode for InstanceId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for InstanceId {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(InstanceId(<[u8; 32]>::decode(r)?))
    }
}

/// A request for one threshold operation, as issued by the service layer.
///
/// Payloads are the canonical encodings of the scheme-level objects; they
/// are validated when the instance starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Decrypt an SG02 ciphertext (encoded [`sg02::Ciphertext`]).
    Sg02Decrypt(Vec<u8>),
    /// Decrypt a BZ03 ciphertext (encoded [`bz03::Ciphertext`]).
    Bz03Decrypt(Vec<u8>),
    /// Threshold-sign a message with SH00.
    Sh00Sign(Vec<u8>),
    /// Threshold-sign a message with BLS04.
    Bls04Sign(Vec<u8>),
    /// Threshold-sign a message with KG20 / FROST.
    Kg20Sign(Vec<u8>),
    /// Flip the CKS05 coin with this name.
    Cks05Coin(Vec<u8>),
}

impl Request {
    /// The scheme this request targets.
    pub fn scheme(&self) -> SchemeId {
        match self {
            Request::Sg02Decrypt(_) => SchemeId::Sg02,
            Request::Bz03Decrypt(_) => SchemeId::Bz03,
            Request::Sh00Sign(_) => SchemeId::Sh00,
            Request::Bls04Sign(_) => SchemeId::Bls04,
            Request::Kg20Sign(_) => SchemeId::Kg20,
            Request::Cks05Coin(_) => SchemeId::Cks05,
        }
    }

    /// The request body (ciphertext / message / coin name).
    pub fn body(&self) -> &[u8] {
        match self {
            Request::Sg02Decrypt(b)
            | Request::Bz03Decrypt(b)
            | Request::Sh00Sign(b)
            | Request::Bls04Sign(b)
            | Request::Kg20Sign(b)
            | Request::Cks05Coin(b) => b,
        }
    }

    /// Derives the network-wide instance id of this request.
    pub fn instance_id(&self) -> InstanceId {
        let digest = DomainHasher::new("thetacrypt/instance-id/v1")
            .chain(self.scheme().name().as_bytes())
            .chain(self.body())
            .finish32();
        InstanceId(digest)
    }
}

impl Encode for Request {
    fn encode(&self, w: &mut Writer) {
        self.scheme().encode(w);
        self.body().to_vec().encode(w);
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        let scheme = SchemeId::decode(r)?;
        let body = Vec::<u8>::decode(r)?;
        Ok(match scheme {
            SchemeId::Sg02 => Request::Sg02Decrypt(body),
            SchemeId::Bz03 => Request::Bz03Decrypt(body),
            SchemeId::Sh00 => Request::Sh00Sign(body),
            SchemeId::Bls04 => Request::Bls04Sign(body),
            SchemeId::Kg20 => Request::Kg20Sign(body),
            SchemeId::Cks05 => Request::Cks05Coin(body),
        })
    }
}

/// The network envelope wrapping every protocol message: which instance
/// it belongs to, which round produced it, and who sent it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Target instance.
    pub instance: InstanceId,
    /// The request that spawned the instance (lets nodes that have not
    /// seen the request yet start their own instance — needed because a
    /// share can arrive before the local application submits).
    pub request: Request,
    /// Protocol round of the payload.
    pub round: u16,
    /// Sending party.
    pub sender: u16,
    /// Scheme-specific protocol message.
    pub payload: Vec<u8>,
}

impl Encode for Envelope {
    fn encode(&self, w: &mut Writer) {
        self.instance.encode(w);
        self.request.encode(w);
        self.round.encode(w);
        self.sender.encode(w);
        self.payload.encode(w);
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(Envelope {
            instance: InstanceId::decode(r)?,
            request: Request::decode(r)?,
            round: u16::decode(r)?,
            sender: u16::decode(r)?,
            payload: Vec::<u8>::decode(r)?,
        })
    }
}

/// The key manager: this node's key shares for every provisioned scheme,
/// plus the KG20 precomputed-nonce stock.
#[derive(Default)]
pub struct KeyChest {
    /// SG02 key share, when provisioned.
    pub sg02: Option<sg02::KeyShare>,
    /// BZ03 key share, when provisioned.
    pub bz03: Option<bz03::KeyShare>,
    /// SH00 key share, when provisioned.
    pub sh00: Option<sh00::KeyShare>,
    /// BLS04 key share, when provisioned.
    pub bls04: Option<bls04::KeyShare>,
    /// KG20 key share, when provisioned.
    pub kg20: Option<kg20::KeyShare>,
    /// CKS05 key share, when provisioned.
    pub cks05: Option<cks05::KeyShare>,
    /// Precomputed FROST nonces (consumed front-first).
    pub kg20_nonces: std::collections::VecDeque<kg20::SigningNonce>,
}

impl KeyChest {
    /// An empty chest (no schemes provisioned).
    pub fn new() -> KeyChest {
        KeyChest::default()
    }

    /// True when key material for `scheme` is present.
    pub fn has(&self, scheme: SchemeId) -> bool {
        match scheme {
            SchemeId::Sg02 => self.sg02.is_some(),
            SchemeId::Bz03 => self.bz03.is_some(),
            SchemeId::Sh00 => self.sh00.is_some(),
            SchemeId::Bls04 => self.bls04.is_some(),
            SchemeId::Kg20 => self.kg20.is_some(),
            SchemeId::Cks05 => self.cks05.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_codec_roundtrip() {
        let reqs = [
            Request::Sg02Decrypt(vec![1, 2]),
            Request::Bz03Decrypt(vec![]),
            Request::Sh00Sign(b"m".to_vec()),
            Request::Bls04Sign(b"m".to_vec()),
            Request::Kg20Sign(b"m".to_vec()),
            Request::Cks05Coin(b"coin".to_vec()),
        ];
        for r in reqs {
            assert_eq!(Request::decoded(&r.encoded()).unwrap(), r);
        }
    }

    #[test]
    fn instance_ids_are_content_addressed() {
        let a = Request::Bls04Sign(b"m".to_vec());
        let b = Request::Bls04Sign(b"m".to_vec());
        assert_eq!(a.instance_id(), b.instance_id());
        // Different scheme or body → different instance.
        assert_ne!(
            Request::Bls04Sign(b"m".to_vec()).instance_id(),
            Request::Sh00Sign(b"m".to_vec()).instance_id()
        );
        assert_ne!(
            Request::Bls04Sign(b"m1".to_vec()).instance_id(),
            Request::Bls04Sign(b"m2".to_vec()).instance_id()
        );
    }

    #[test]
    fn envelope_codec_roundtrip() {
        let req = Request::Cks05Coin(b"r".to_vec());
        let env = Envelope {
            instance: req.instance_id(),
            request: req,
            round: 2,
            sender: 7,
            payload: vec![9, 9],
        };
        assert_eq!(Envelope::decoded(&env.encoded()).unwrap(), env);
    }

    #[test]
    fn key_chest_tracks_provisioning() {
        let chest = KeyChest::new();
        for scheme in SchemeId::ALL {
            assert!(!chest.has(scheme));
        }
    }
}
