//! The router thread: the thin orchestration core of a node.
//!
//! The router owns everything *about* instances — the registry, the
//! result cache, deadlines, retry schedules, subscriber lists and the
//! network handle — but never runs protocol crypto itself. Each
//! `do_round` / `update` / `finalize` happens inside an
//! [`InstanceHost`](crate::instance_host::InstanceHost) on one of N pool
//! workers; the router only demultiplexes network events onto bounded
//! per-instance mailboxes (routing by the 32-byte instance id that
//! leads every envelope, without a full decode on the residual path)
//! and applies the hosts' upcalls (broadcasts, terminal results) to the
//! world.
//!
//! Backpressure is explicit at every boundary: the submission queue and
//! the live-instance count are capped (`Overloaded` instead of
//! unbounded buffering), and mailboxes are bounded (drops are counted;
//! P2P retransmission re-delivers protocol traffic). Shutdown drains:
//! live instances get a bounded window to finish, then fail with
//! [`SchemeError::Shutdown`], so every subscriber always receives a
//! terminal result.

use crate::batcher::{BatchAggregator, FlushReason};
use crate::cache::ResultCache;
use crate::instance_host::{HostMsg, InstanceHost, Upcall};
use crate::worker_pool::{schedule, InstanceSlot, PoolJob, WorkerPool};
use crate::{Envelope, InstanceId, KeyChest, KeyProvider, Request, StaticKeys};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use rand::{RngCore, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use theta_sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use theta_codec::Decode;
use theta_metrics::counters::EventLoopCounters;
use theta_metrics::registry::{Counter, MetricsRegistry};
use theta_metrics::trace::TraceEventKind;
use theta_metrics::{EventLoopSnapshot, NodeObservability, PoolMetrics};
use theta_network::{demux, Network, NetworkEvent};
use theta_protocols::kg20_protocol::Kg20Sign;
use theta_protocols::one_round::{
    Bls04Sign, Bz03Decrypt, Cks05Coin, OneRoundProtocol, Sg02Decrypt, Sh00Sign,
};
use theta_protocols::{InboundMessage, ProtocolDriver, ProtocolOutput, ThresholdRoundProtocol};
use theta_schemes::{PartyId, SchemeError};

/// Upper bound on network events drained per wakeup, so one firehose
/// burst cannot starve command processing or timer service.
const EVENT_BATCH: usize = 64;

/// Node-level configuration knobs.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Instances with no progress past this deadline are failed.
    pub instance_timeout: Duration,
    /// Use the KG20 precomputed-nonce stock when available.
    pub use_precomputed_nonces: bool,
    /// Defer share verification until a quorum arrives and verify the
    /// whole pending set with one batched check (MSM / pairing-product);
    /// invalid shares are pruned and the instance keeps waiting. Eager
    /// per-share verification is used when false.
    pub lazy_batch_verification: bool,
    /// Pool-scoped batching: defer every batchable share check to the
    /// node-wide aggregator, which folds checks from *all* concurrent
    /// instances into one RLC/MSM settle. Takes precedence over
    /// `lazy_batch_verification` for schemes that support detached
    /// checks; non-batchable schemes fall back per the other flags.
    pub cross_instance_batching: bool,
    /// The aggregator settles as soon as this many checks are pending
    /// (the size flush, run by the submitting worker).
    pub batch_flush_size: usize,
    /// A pending check older than this triggers a flush even below the
    /// size threshold — bounds the latency cost of batching.
    pub batch_flush_age: Duration,
    /// RNG seed (`None` = entropy from the OS).
    pub rng_seed: Option<u64>,
    /// Finished results kept for duplicate submissions, at most this many.
    pub result_cache_capacity: usize,
    /// Finished results older than this are dropped from the cache.
    pub result_cache_ttl: Duration,
    /// First re-broadcast of an instance's P2P messages fires after this.
    pub retry_initial_backoff: Duration,
    /// Backoff doubles per retry up to this ceiling.
    pub retry_max_backoff: Duration,
    /// Crypto worker threads (`0` = one per available core).
    pub worker_threads: usize,
    /// Live-instance admission cap: submissions and first-contact starts
    /// beyond it are refused with [`SchemeError::Overloaded`].
    pub max_inflight_instances: usize,
    /// Bound of each instance's mailbox; events past it are dropped
    /// (and re-delivered by P2P retransmission).
    pub mailbox_capacity: usize,
    /// Submissions queued ahead of the router beyond this make
    /// [`NodeHandle::try_submit`] refuse with
    /// [`SubmitError::Overloaded`].
    pub submission_queue_capacity: usize,
    /// How long [`NodeHandle::shutdown`] lets live instances finish
    /// before failing them with [`SchemeError::Shutdown`].
    pub shutdown_drain: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            instance_timeout: Duration::from_secs(30),
            use_precomputed_nonces: true,
            lazy_batch_verification: true,
            cross_instance_batching: true,
            batch_flush_size: 16,
            batch_flush_age: Duration::from_millis(1),
            rng_seed: None,
            result_cache_capacity: 4096,
            result_cache_ttl: Duration::from_secs(300),
            retry_initial_backoff: Duration::from_millis(200),
            retry_max_backoff: Duration::from_secs(5),
            worker_threads: 0,
            max_inflight_instances: 1024,
            mailbox_capacity: 256,
            submission_queue_capacity: 1024,
            shutdown_drain: Duration::from_secs(5),
        }
    }
}

/// A pending result: completion data for one submitted request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceResult {
    /// The instance this result belongs to.
    pub instance: InstanceId,
    /// The protocol output or the failure that ended the instance.
    pub outcome: Result<ProtocolOutput, SchemeError>,
    /// Server-side latency: submission (or first message) to completion.
    pub elapsed: Duration,
}

/// Why a wait on a [`PendingResult`] yielded no result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitError {
    /// The timeout elapsed; the instance may still complete later.
    TimedOut,
    /// The node stopped (shut down or died) and will never deliver this
    /// result — retrying the wait is pointless.
    NodeStopped,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::TimedOut => write!(f, "timed out waiting for the instance result"),
            WaitError::NodeStopped => {
                write!(f, "the node stopped before delivering the instance result")
            }
        }
    }
}

impl std::error::Error for WaitError {}

/// Why a [`NodeHandle::try_submit`] was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The submission queue is at capacity — retry later.
    Overloaded,
    /// The node stopped; no submission will ever be served.
    NodeStopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "node overloaded: submission queue full"),
            SubmitError::NodeStopped => write!(f, "the node has stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Receiver half for one submitted request.
pub struct PendingResult {
    rx: Receiver<InstanceResult>,
}

impl std::fmt::Debug for PendingResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingResult").finish_non_exhaustive()
    }
}

impl PendingResult {
    /// Blocks until the instance completes or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`WaitError::TimedOut`] when the window elapsed with the node
    /// still alive; [`WaitError::NodeStopped`] when the node shut down
    /// or died without delivering — the two deserve different user
    /// messages, so they are distinct.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<InstanceResult, WaitError> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(RecvTimeoutError::Timeout) => Err(WaitError::TimedOut),
            Err(RecvTimeoutError::Disconnected) => Err(WaitError::NodeStopped),
        }
    }

    /// Non-blocking poll: `Ok(None)` means not ready yet.
    ///
    /// # Errors
    ///
    /// [`WaitError::NodeStopped`] when the node will never deliver.
    pub fn try_take(&self) -> Result<Option<InstanceResult>, WaitError> {
        match self.rx.try_recv() {
            Ok(r) => Ok(Some(r)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(WaitError::NodeStopped),
        }
    }
}

/// Completion callback for [`NodeHandle::try_submit_with`]: invoked on
/// the router thread with the terminal result, so it must stay cheap
/// (push to a queue, write a wakeup byte).
pub type CompletionFn = Box<dyn FnOnce(InstanceResult) + Send>;

/// A callback subscriber armed with a drop guard: if the router dies (or
/// drops a queued submit) without delivering, the guard fires the
/// callback with [`SchemeError::Shutdown`] — callback submitters get the
/// same always-a-terminal-result guarantee channel waiters get from a
/// disconnect.
struct NotifyGuard {
    instance: InstanceId,
    f: Option<CompletionFn>,
}

impl NotifyGuard {
    fn new(instance: InstanceId, f: CompletionFn) -> NotifyGuard {
        NotifyGuard { instance, f: Some(f) }
    }

    fn call(mut self, result: InstanceResult) {
        if let Some(f) = self.f.take() {
            f(result);
        }
    }

    /// Disarms the guard so dropping it fires nothing — for paths that
    /// report the failure synchronously instead.
    fn defuse(&mut self) {
        self.f = None;
    }
}

impl Drop for NotifyGuard {
    fn drop(&mut self) {
        if let Some(f) = self.f.take() {
            f(InstanceResult {
                instance: self.instance,
                outcome: Err(SchemeError::Shutdown),
                elapsed: Duration::ZERO,
            });
        }
    }
}

/// One party interested in an instance's terminal result: either a
/// channel being waited on ([`PendingResult`]) or a completion callback
/// (the event-loop front-end's wakeup path).
enum Subscriber {
    Channel(Sender<InstanceResult>),
    Notify(NotifyGuard),
}

impl Subscriber {
    /// Delivers the terminal result. `Err(())` means a channel
    /// subscriber hung up before delivery (callbacks cannot refuse).
    fn deliver(self, result: InstanceResult) -> Result<(), ()> {
        match self {
            Subscriber::Channel(tx) => tx.send(result).map_err(|_| ()),
            Subscriber::Notify(guard) => {
                guard.call(result);
                Ok(())
            }
        }
    }
}

enum Command {
    Submit { request: Request, reply: Subscriber },
    Shutdown { drain: Duration },
}

/// Handle to a running Thetacrypt node (router thread + worker pool).
pub struct NodeHandle {
    tx: Sender<Command>,
    join: Option<std::thread::JoinHandle<()>>,
    party: PartyId,
    obs: Arc<NodeObservability>,
    queue_depth: Arc<AtomicUsize>,
    queue_capacity: usize,
    overload_rejections: Arc<Counter>,
    drain: Duration,
}

impl NodeHandle {
    /// Submits a request; the returned [`PendingResult`] resolves when
    /// the Θ-network completes the instance at this node. Never refuses:
    /// use [`NodeHandle::try_submit`] for backpressure-aware admission.
    pub fn submit(&self, request: Request) -> PendingResult {
        let (reply_tx, reply_rx) = unbounded();
        self.queue_depth.fetch_add(1, Ordering::SeqCst);
        if self
            .tx
            .send(Command::Submit { request, reply: Subscriber::Channel(reply_tx) })
            .is_err()
        {
            // The router thread is gone; dropping the reply sender makes
            // the pending result report NodeStopped. Count it too.
            self.queue_depth.fetch_sub(1, Ordering::SeqCst);
            self.obs.registry.counter("theta_event_loop_errors_total").inc();
            self.obs.journal.record_detail(
                [0u8; 32],
                TraceEventKind::Error,
                "submit to a dead router thread",
            );
        }
        PendingResult { rx: reply_rx }
    }

    /// Backpressure-aware submission: refuses instead of queueing when
    /// the submission queue is at its configured bound.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] at the queue bound (counted in
    /// `theta_overload_rejections_total`); [`SubmitError::NodeStopped`]
    /// when the router is gone.
    pub fn try_submit(&self, request: Request) -> Result<PendingResult, SubmitError> {
        if self.queue_depth.load(Ordering::SeqCst) >= self.queue_capacity {
            self.overload_rejections.inc();
            return Err(SubmitError::Overloaded);
        }
        let (reply_tx, reply_rx) = unbounded();
        self.queue_depth.fetch_add(1, Ordering::SeqCst);
        if self
            .tx
            .send(Command::Submit { request, reply: Subscriber::Channel(reply_tx) })
            .is_err()
        {
            self.queue_depth.fetch_sub(1, Ordering::SeqCst);
            return Err(SubmitError::NodeStopped);
        }
        Ok(PendingResult { rx: reply_rx })
    }

    /// Backpressure-aware submission with a completion callback instead
    /// of a channel: `on_complete` runs exactly once, on the router
    /// thread, with the terminal result — including synthesized
    /// [`SchemeError::Shutdown`] results if the node stops first. This
    /// is the thread-free path the event-loop front-end uses: the
    /// callback posts to a completion queue and writes a wakeup byte,
    /// so no waiter thread ever parks on the result.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] at the queue bound (counted);
    /// [`SubmitError::NodeStopped`] when the router is gone. On either
    /// error the callback is dropped unrun — the refusal is the
    /// terminal answer.
    pub fn try_submit_with(
        &self,
        request: Request,
        on_complete: impl FnOnce(InstanceResult) + Send + 'static,
    ) -> Result<(), SubmitError> {
        if self.queue_depth.load(Ordering::SeqCst) >= self.queue_capacity {
            self.overload_rejections.inc();
            return Err(SubmitError::Overloaded);
        }
        let guard = NotifyGuard::new(request.instance_id(), Box::new(on_complete));
        self.queue_depth.fetch_add(1, Ordering::SeqCst);
        if let Err(crossbeam::channel::SendError(cmd)) =
            self.tx.send(Command::Submit { request, reply: Subscriber::Notify(guard) })
        {
            self.queue_depth.fetch_sub(1, Ordering::SeqCst);
            // Defuse before dropping: the synchronous NodeStopped below
            // is the caller's answer, the guard must not also fire.
            if let Command::Submit { reply: Subscriber::Notify(mut guard), .. } = cmd {
                guard.defuse();
            }
            return Err(SubmitError::NodeStopped);
        }
        Ok(())
    }

    /// This node's party id.
    pub fn party(&self) -> PartyId {
        self.party
    }

    /// Point-in-time view of the event-loop counters.
    pub fn counters(&self) -> EventLoopSnapshot {
        self.obs.counters.snapshot()
    }

    /// The node's observability bundle (metrics registry, trace journal,
    /// phase histograms) — what the service layer exposes over RPC.
    pub fn observability(&self) -> Arc<NodeObservability> {
        self.obs.clone()
    }

    /// Stops the node gracefully: live instances get up to
    /// `NodeConfig::shutdown_drain` to finish, then fail with
    /// [`SchemeError::Shutdown`]; every subscriber receives a terminal
    /// result either way.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Command::Shutdown { drain: self.drain });
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        // Fail-fast drain: no finish window, but subscribers still get
        // their Shutdown terminal results.
        let _ = self.tx.send(Command::Shutdown { drain: Duration::ZERO });
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Spawns the router + worker pool for one node with a fresh
/// observability bundle.
pub fn spawn_node(keys: KeyChest, network: Box<dyn Network>, config: NodeConfig) -> NodeHandle {
    spawn_node_observed(keys, network, config, Arc::new(NodeObservability::new()))
}

/// Spawns the router + worker pool for one node, wiring the given
/// observability bundle through every layer.
pub fn spawn_node_observed(
    keys: KeyChest,
    network: Box<dyn Network>,
    config: NodeConfig,
    obs: Arc<NodeObservability>,
) -> NodeHandle {
    spawn_node_with_keys(Box::new(StaticKeys::new(keys)), network, config, obs)
}

/// Spawns the router + worker pool for one node with a dynamic
/// [`KeyProvider`] — the multi-tenant deployment mode, where the
/// provider loads tenant chests on demand.
pub fn spawn_node_with_keys(
    keys: Box<dyn KeyProvider>,
    mut network: Box<dyn Network>,
    config: NodeConfig,
    obs: Arc<NodeObservability>,
) -> NodeHandle {
    network.attach_registry(&obs.registry);
    network.attach_journal(&obs.journal);
    let (tx, rx) = unbounded::<Command>();
    let party = PartyId(network.node_id());
    let queue_depth = Arc::new(AtomicUsize::new(0));
    let overload_rejections = obs
        .registry
        .counter(theta_metrics::observability::OVERLOAD_REJECTIONS_COUNTER);
    let queue_capacity = config.submission_queue_capacity;
    let drain = config.shutdown_drain;
    let thread_obs = obs.clone();
    let thread_depth = queue_depth.clone();
    let join = std::thread::Builder::new()
        .name(format!("theta-router-{}", party.value()))
        .spawn(move || Router::new(keys, network, config, rx, thread_obs, thread_depth).run())
        .expect("spawn router thread");
    NodeHandle {
        tx,
        join: Some(join),
        party,
        obs,
        queue_depth,
        queue_capacity,
        overload_rejections,
        drain,
    }
}

/// Router-side state for one live instance: everything *about* it, while
/// the protocol itself lives in the worker-owned host.
struct RouterEntry {
    slot: Arc<InstanceSlot>,
    subscribers: Vec<Subscriber>,
    started: Instant,
    deadline: Instant,
    /// Encoded envelopes of every P2P broadcast this instance has made,
    /// re-sent verbatim on retry (protocol `update`s are idempotent).
    p2p_history: Vec<Vec<u8>>,
    /// When the next re-broadcast fires (also validates heap entries).
    next_retry: Instant,
    /// Current backoff step (doubles per retry, capped).
    retry_backoff: Duration,
}

/// Registry counters the router touches, resolved once at startup so
/// hot paths never take the registry lock.
struct RouterMetrics {
    cache_hits: Arc<Counter>,
    dropped_malformed: Arc<Counter>,
    dropped_spoofed: Arc<Counter>,
    dropped_residual: Arc<Counter>,
    shares_rejected: Arc<Counter>,
    event_loop_errors: Arc<Counter>,
    batch_verify_ok: Arc<Counter>,
    shares_pruned: Arc<Counter>,
    eager_verifies: Arc<Counter>,
    shares_cross_batched: Arc<Counter>,
}

impl RouterMetrics {
    fn resolve(registry: &MetricsRegistry) -> RouterMetrics {
        RouterMetrics {
            cache_hits: registry.counter("theta_cache_hits_total"),
            dropped_malformed: registry
                .counter_with("theta_messages_dropped_total", &[("reason", "malformed")]),
            dropped_spoofed: registry
                .counter_with("theta_messages_dropped_total", &[("reason", "spoofed")]),
            dropped_residual: registry
                .counter_with("theta_messages_dropped_total", &[("reason", "residual")]),
            shares_rejected: registry.counter("theta_shares_rejected_total"),
            event_loop_errors: registry.counter("theta_event_loop_errors_total"),
            batch_verify_ok: registry.counter("theta_batch_verify_ok_total"),
            shares_pruned: registry.counter("theta_shares_pruned_total"),
            eager_verifies: registry.counter("theta_share_verifications_eager_total"),
            shares_cross_batched: registry.counter("theta_shares_cross_batched_total"),
        }
    }
}

/// Pass-through hasher for the instances map: instance ids are already
/// 32 bytes of a cryptographic hash (uniformly distributed by
/// construction), so running them through SipHash again only burns
/// router-thread cycles on the per-message demux path. Folding the id's
/// 8-byte chunks with XOR preserves the distribution and costs four
/// word ops.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 ^= u64::from_le_bytes(word);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type InstanceMap = HashMap<InstanceId, RouterEntry, BuildHasherDefault<IdHasher>>;

fn resolve_worker_threads(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

struct Router {
    keys: Box<dyn KeyProvider>,
    network: Box<dyn Network>,
    config: NodeConfig,
    commands: Receiver<Command>,
    queue_depth: Arc<AtomicUsize>,
    instances: InstanceMap,
    finished: ResultCache<InstanceResult>,
    /// Min-heap of `(deadline, id)` — lazily validated against the live
    /// instance on pop (an entry for a finished instance is skipped).
    expiry_heap: BinaryHeap<Reverse<(Instant, InstanceId)>>,
    /// Min-heap of `(retry-due, id)`, same lazy-validation discipline.
    retry_heap: BinaryHeap<Reverse<(Instant, InstanceId)>>,
    counters: Arc<EventLoopCounters>,
    obs: Arc<NodeObservability>,
    metrics: RouterMetrics,
    pool_metrics: PoolMetrics,
    pool: WorkerPool,
    /// The node-wide cross-instance batch aggregator, shared with every
    /// worker. The router only triggers its age/shutdown flushes.
    agg: Arc<BatchAggregator>,
    upcall_tx: Sender<Upcall>,
    upcall_rx: Receiver<Upcall>,
    /// Master RNG: only ever used to derive per-host seeds; all protocol
    /// randomness is drawn worker-side.
    rng: rand::rngs::StdRng,
}

impl Router {
    fn new(
        keys: Box<dyn KeyProvider>,
        network: Box<dyn Network>,
        config: NodeConfig,
        commands: Receiver<Command>,
        obs: Arc<NodeObservability>,
        queue_depth: Arc<AtomicUsize>,
    ) -> Self {
        let rng = match config.rng_seed {
            Some(seed) => rand::rngs::StdRng::seed_from_u64(seed),
            None => rand::rngs::StdRng::from_entropy(),
        };
        let finished = ResultCache::new(config.result_cache_capacity, config.result_cache_ttl);
        let metrics = RouterMetrics::resolve(&obs.registry);
        let workers = resolve_worker_threads(config.worker_threads);
        let pool_metrics = PoolMetrics::register(&obs.registry, workers);
        let agg = Arc::new(BatchAggregator::new(config.batch_flush_size, config.batch_flush_age));
        let pool = WorkerPool::spawn(workers, network.node_id(), &pool_metrics, agg.clone());
        let (upcall_tx, upcall_rx) = unbounded::<Upcall>();
        Router {
            keys,
            network,
            config,
            commands,
            queue_depth,
            instances: InstanceMap::default(),
            finished,
            expiry_heap: BinaryHeap::new(),
            retry_heap: BinaryHeap::new(),
            counters: obs.counters.clone(),
            obs,
            metrics,
            pool_metrics,
            pool,
            agg,
            upcall_tx,
            upcall_rx,
            rng,
        }
    }

    /// Counts a contained failure and records it in the trace journal —
    /// errors must be visible, never silently swallowed, never fatal.
    fn note_error(&self, instance: [u8; 32], detail: String) {
        self.metrics.event_loop_errors.inc();
        self.obs.journal.record_detail(instance, TraceEventKind::Error, detail);
    }

    /// Earliest pending deadline across both heaps and the aggregator's
    /// age flush, if any. Entries may be stale (their instance already
    /// finished, or a flush in progress will collect the pending
    /// checks) — a stale head only causes one early wakeup that pops
    /// (or fails to claim) and discards it.
    fn next_deadline(&self) -> Option<Instant> {
        let expiry = self.expiry_heap.peek().map(|Reverse((t, _))| *t);
        let retry = self.retry_heap.peek().map(|Reverse((t, _))| *t);
        let flush = self.agg.next_age_flush();
        [expiry, retry, flush].into_iter().flatten().min()
    }

    /// Age-trigger service: when the oldest pending check has aged out
    /// and no flush is running, claim the duty and hand the settle to a
    /// worker — batch crypto never runs on the router thread.
    fn flush_if_aged(&mut self, now: Instant) {
        if self.agg.claim_if_aged(now) {
            let _ = self.pool.injector().send(PoolJob::Flush(FlushReason::Age));
        }
    }

    // theta: event-loop
    fn run(mut self) {
        // Clone the receivers out of `self` so the `select!` arms can
        // call `&mut self` methods without borrow conflicts.
        let commands = self.commands.clone();
        let events = self.network.events().clone();
        let upcalls = self.upcall_rx.clone();
        loop {
            let timer = match self.next_deadline() {
                Some(t) => crossbeam::channel::at(t),
                None => crossbeam::channel::never(),
            };
            let mut drain_and_stop: Option<Duration> = None;
            // Re-stamped at the top of each arm — i.e. the moment
            // `select!` hands us work — so blocked time is excluded and
            // the router-busy counter measures the serial stage alone.
            // (Initialized here only because the macro hides the arms'
            // assignments from definite-assignment analysis.)
            let mut work_start = Instant::now();
            crossbeam::select! {
                recv(commands) -> cmd => {
                    work_start = Instant::now();
                    match cmd {
                        Ok(Command::Submit { request, reply }) => {
                            self.queue_depth.fetch_sub(1, Ordering::SeqCst);
                            self.pool_metrics
                                .submission_queue_depth
                                .set(self.queue_depth.load(Ordering::SeqCst) as i64);
                            EventLoopCounters::bump(&self.counters.commands_processed);
                            self.handle_submit(request, reply);
                        }
                        Ok(Command::Shutdown { drain }) => drain_and_stop = Some(drain),
                        Err(_) => drain_and_stop = Some(Duration::ZERO),
                    }
                },
                // Upcalls before raw events: results and broadcasts the
                // workers already produced should reach subscribers and
                // the wire ahead of new inbound work.
                recv(upcalls) -> up => {
                    work_start = Instant::now();
                    if let Ok(u) = up {
                        self.handle_upcall(u);
                        for _ in 1..EVENT_BATCH {
                            match upcalls.try_recv() {
                                Ok(u) => self.handle_upcall(u),
                                Err(_) => break,
                            }
                        }
                    }
                },
                recv(events) -> ev => {
                    work_start = Instant::now();
                    match ev {
                        Ok(event) => {
                            // Drain a bounded batch per wakeup: cheaper than
                            // one select round-trip per event, but still
                            // yields to commands and timers regularly. Count
                            // each event *before* handling it — completions
                            // notify subscribers who may read the counters.
                            EventLoopCounters::bump(&self.counters.events_processed);
                            self.handle_network_event(event);
                            for _ in 1..EVENT_BATCH {
                                match events.try_recv() {
                                    Ok(e) => {
                                        EventLoopCounters::bump(&self.counters.events_processed);
                                        self.handle_network_event(e);
                                    }
                                    Err(_) => break,
                                }
                            }
                        }
                        Err(_) => {
                            // The transport died under us: record it so the
                            // post-mortem shows why the node stopped.
                            self.note_error(
                                [0u8; 32],
                                "network event channel disconnected".into(),
                            );
                            drain_and_stop = Some(Duration::ZERO);
                        }
                    }
                },
                recv(timer) -> _ => { work_start = Instant::now(); }
            }
            if let Some(drain) = drain_and_stop {
                self.shutdown(drain);
                return;
            }
            EventLoopCounters::bump(&self.counters.wakeups);
            let now = Instant::now();
            self.expire_instances(now);
            self.retry_due(now);
            self.flush_if_aged(now);
            self.pool_metrics.router_busy_nanos.add(work_start.elapsed().as_nanos() as u64);
        }
    }

    /// Drain phase: give live instances up to `drain` to finish (network
    /// and upcall processing keep running), then fail the remainder with
    /// [`SchemeError::Shutdown`] so every subscriber gets a terminal
    /// result. Dropping `self` afterwards stops and joins the workers.
    // theta: event-loop
    fn shutdown(&mut self, drain: Duration) {
        let deadline = Instant::now() + drain;
        let events = self.network.events().clone();
        let upcalls = self.upcall_rx.clone();
        // Settle whatever the aggregator holds so draining instances
        // whose checks are parked there can still reach quorum.
        if self.agg.claim_for_shutdown() {
            let _ = self.pool.injector().send(PoolJob::Flush(FlushReason::Shutdown));
        }
        while !self.instances.is_empty() && Instant::now() < deadline {
            let wake = self.next_deadline().map_or(deadline, |t| t.min(deadline));
            let timer = crossbeam::channel::at(wake);
            crossbeam::select! {
                recv(upcalls) -> up => if let Ok(u) = up {
                    self.handle_upcall(u);
                },
                recv(events) -> ev => match ev {
                    Ok(event) => {
                        EventLoopCounters::bump(&self.counters.events_processed);
                        self.handle_network_event(event);
                    }
                    Err(_) => break,
                },
                recv(timer) -> _ => {}
            }
            let now = Instant::now();
            self.expire_instances(now);
            self.retry_due(now);
            // Checks deferred *during* the drain still need settling.
            self.flush_if_aged(now);
        }
        let leftover: Vec<InstanceId> = self.instances.keys().copied().collect();
        for id in leftover {
            self.finish_instance(id, Err(SchemeError::Shutdown), None);
        }
    }

    fn handle_submit(&mut self, request: Request, reply: Subscriber) {
        let id = request.instance_id();
        if let Some(done) = self.finished.get(&id, Instant::now()) {
            self.metrics.cache_hits.inc();
            self.obs.journal.record(id.0, TraceEventKind::CacheHit);
            if reply.deliver(done.clone()).is_err() {
                self.note_error(id.0, "cache-hit reply channel closed".into());
            }
            return;
        }
        if let Some(entry) = self.instances.get_mut(&id) {
            entry.subscribers.push(reply);
            return;
        }
        if self.instances.len() >= self.config.max_inflight_instances {
            // Admission control: refuse rather than buffer without bound.
            self.pool_metrics.overload_rejections.inc();
            self.obs.journal.record_detail(
                id.0,
                TraceEventKind::InstanceFailed,
                "refused: live-instance cap reached",
            );
            if reply
                .deliver(InstanceResult {
                    instance: id,
                    outcome: Err(SchemeError::Overloaded),
                    elapsed: Duration::ZERO,
                })
                .is_err()
            {
                self.note_error(id.0, "overloaded reply channel closed".into());
            }
            return;
        }
        match self.start_instance(&request) {
            Ok(()) => {
                // The start is asynchronous (the first round runs on a
                // worker), so the entry is guaranteed still live here.
                if let Some(entry) = self.instances.get_mut(&id) {
                    entry.subscribers.push(reply);
                }
            }
            Err(err) => {
                self.obs.journal.record_detail(
                    id.0,
                    TraceEventKind::InstanceFailed,
                    format!("{err:?}"),
                );
                if reply
                    .deliver(InstanceResult {
                        instance: id,
                        outcome: Err(err),
                        elapsed: Duration::ZERO,
                    })
                    .is_err()
                {
                    self.note_error(id.0, "reply channel closed".into());
                }
            }
        }
    }

    fn build_protocol(
        &mut self,
        request: &Request,
    ) -> Result<Box<dyn ThresholdRoundProtocol>, SchemeError> {
        let malformed = |e: theta_codec::CodecError| SchemeError::Malformed(e.to_string());
        // Verification-mode precedence: pooled (cross-instance batching)
        // over lazy (instance-local batching at quorum) over eager
        // (per-share inline). Pooled protocols whose scheme cannot
        // detach checks (SH00) verify inline anyway.
        fn one_round<S: theta_protocols::one_round::OneRoundScheme + 'static>(
            pooled: bool,
            lazy: bool,
            scheme: S,
        ) -> Box<OneRoundProtocol<S>> {
            Box::new(if pooled {
                OneRoundProtocol::new_pooled(scheme)
            } else if lazy {
                OneRoundProtocol::new_lazy(scheme)
            } else {
                OneRoundProtocol::new(scheme)
            })
        }
        let pooled = self.config.cross_instance_batching;
        let lazy = self.config.lazy_batch_verification;
        // A scoped request resolves its tenant chest through the key
        // provider, then builds the inner operation against it; plain
        // requests resolve the default chest the same way.
        let inner = match request {
            Request::Scoped { inner, .. } => &**inner,
            plain => plain,
        };
        let shared = self.keys.chest(request.keyref())?;
        let mut chest = shared.lock().unwrap_or_else(|e| e.into_inner());
        match inner {
            Request::Sg02Decrypt(bytes) => {
                let key = chest.sg02.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no sg02 key provisioned".into())
                })?;
                let ct = theta_schemes::sg02::Ciphertext::decoded(bytes).map_err(malformed)?;
                Ok(one_round(pooled, lazy, Sg02Decrypt::new(key, ct)))
            }
            Request::Bz03Decrypt(bytes) => {
                let key = chest.bz03.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no bz03 key provisioned".into())
                })?;
                let ct = theta_schemes::bz03::Ciphertext::decoded(bytes).map_err(malformed)?;
                Ok(one_round(pooled, lazy, Bz03Decrypt::new(key, ct)))
            }
            Request::Sh00Sign(message) => {
                let key = chest.sh00.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no sh00 key provisioned".into())
                })?;
                Ok(one_round(pooled, lazy, Sh00Sign::new(key, message.clone())))
            }
            Request::Bls04Sign(message) => {
                let key = chest.bls04.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no bls04 key provisioned".into())
                })?;
                Ok(one_round(pooled, lazy, Bls04Sign::new(key, message.clone())))
            }
            Request::Kg20Sign(message) => {
                let key = chest.kg20.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no kg20 key provisioned".into())
                })?;
                let nonce = if self.config.use_precomputed_nonces {
                    chest.kg20_nonces.pop_front()
                } else {
                    None
                };
                Ok(Box::new(match nonce {
                    Some(n) => Kg20Sign::with_precomputed_nonce(key, message.clone(), n),
                    None => Kg20Sign::new(key, message.clone()),
                }))
            }
            Request::Cks05Coin(name) => {
                let key = chest.cks05.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no cks05 key provisioned".into())
                })?;
                Ok(one_round(pooled, lazy, Cks05Coin::new(key, name.clone())))
            }
            Request::Scoped { .. } => {
                // Unreachable by construction (depth-one invariant), but
                // fail closed rather than recurse.
                Err(SchemeError::InvalidParameters("nested scoped request".into()))
            }
        }
    }

    /// Builds the protocol (cheap: key clones and decoding, no crypto),
    /// registers the instance and hands its first round to the pool.
    fn start_instance(&mut self, request: &Request) -> Result<(), SchemeError> {
        let id = request.instance_id();
        let protocol = self.build_protocol(request)?;
        let driver = ProtocolDriver::new(protocol);
        // Each host gets a private RNG seeded off the master: protocol
        // randomness is drawn worker-side, never on the router.
        let host_rng = rand::rngs::StdRng::seed_from_u64(self.rng.next_u64());
        let host = InstanceHost::new(
            id,
            driver,
            request.clone(),
            self.network.node_id(),
            host_rng,
            self.obs.clone(),
            self.metrics.shares_rejected.clone(),
            self.upcall_tx.clone(),
        );
        let slot = Arc::new(InstanceSlot::new(id, self.config.mailbox_capacity, host));
        let now = Instant::now();
        let deadline = now + self.config.instance_timeout;
        let next_retry = now + self.config.retry_initial_backoff;
        self.instances.insert(
            id,
            RouterEntry {
                slot: slot.clone(),
                subscribers: Vec::new(),
                started: now,
                deadline,
                p2p_history: Vec::new(),
                next_retry,
                retry_backoff: self.config.retry_initial_backoff,
            },
        );
        self.expiry_heap.push(Reverse((deadline, id)));
        self.retry_heap.push(Reverse((next_retry, id)));
        self.pool_metrics.inflight_instances.set(self.instances.len() as i64);
        // Counter and journal stay in lockstep: every counted start has
        // an `InstanceStarted` journal entry and vice versa.
        EventLoopCounters::bump(&self.counters.instances_started);
        self.obs.journal.record(id.0, TraceEventKind::InstanceStarted);
        // A fresh mailbox can always take its Start message.
        let scheduled =
            schedule(&slot, self.pool.injector(), &self.pool_metrics, HostMsg::Start);
        debug_assert!(scheduled.is_ok(), "fresh mailbox refused Start");
        Ok(())
    }

    // theta: entrypoint(network)
    fn handle_network_event(&mut self, event: NetworkEvent) {
        let (from, payload) = match event {
            NetworkEvent::P2p { from, payload } => (from, payload),
            NetworkEvent::Tob { from, payload, .. } => (from, payload),
        };
        // Route by the leading 32-byte instance id before decoding the
        // whole envelope — residual traffic for finished instances is
        // the post-quorum common case and costs only this peek.
        let Some(key) = demux::peek_key(&payload) else {
            self.metrics.dropped_malformed.inc();
            self.obs.journal.record_full(
                [0u8; 32],
                TraceEventKind::MessageDropped,
                from,
                "malformed envelope".into(),
            );
            return;
        };
        let id = InstanceId(key);
        if self.finished.contains(&id, Instant::now()) {
            // Residual message for a completed request — normal traffic
            // past quorum; counted but not journaled per-message.
            self.metrics.dropped_residual.inc();
            return;
        }
        let Ok(envelope) = Envelope::decoded(&payload) else {
            // Malformed traffic is dropped — but counted and journaled.
            self.metrics.dropped_malformed.inc();
            self.obs.journal.record_full(
                id.0,
                TraceEventKind::MessageDropped,
                from,
                "malformed envelope".into(),
            );
            return;
        };
        debug_assert_eq!(envelope.instance, id, "demux key disagrees with envelope");
        if envelope.sender != from {
            // Spoofed sender field. This applies to TOB deliveries too:
            // the transport stamps `from` with the authenticated
            // submitter, so a mismatching envelope is an impersonation
            // attempt (a peer trying to inject shares as someone else).
            self.metrics.dropped_spoofed.inc();
            self.obs.journal.record_full(
                id.0,
                TraceEventKind::MessageDropped,
                from,
                format!("spoofed sender {} != {}", envelope.sender, from),
            );
            return;
        }
        if !self.instances.contains_key(&id) {
            // First contact: start our own instance from the embedded
            // request (validates against our keys).
            if envelope.request.instance_id() != id {
                self.metrics.dropped_spoofed.inc();
                self.obs.journal.record_full(
                    id.0,
                    TraceEventKind::MessageDropped,
                    from,
                    "embedded request does not hash to instance id".into(),
                );
                return;
            }
            if self.instances.len() >= self.config.max_inflight_instances {
                self.pool_metrics.overload_rejections.inc();
                self.obs.journal.record_full(
                    id.0,
                    TraceEventKind::MessageDropped,
                    from,
                    "refused first contact: live-instance cap reached".into(),
                );
                return;
            }
            if let Err(err) = self.start_instance(&envelope.request) {
                self.note_error(
                    id.0,
                    format!("instance start on first contact failed: {err:?}"),
                );
                return;
            }
        }
        // TOB self-deliveries carry our own messages back; skip those.
        if envelope.sender == self.network.node_id() {
            return;
        }
        let inbound = InboundMessage {
            sender: PartyId(envelope.sender),
            round: envelope.round,
            payload: envelope.payload,
        };
        if let Some(entry) = self.instances.get(&id) {
            if schedule(
                &entry.slot,
                self.pool.injector(),
                &self.pool_metrics,
                HostMsg::Deliver { from, inbound },
            )
            .is_err()
            {
                // Mailbox full (or closing): drop and count. P2P
                // retransmission re-delivers protocol traffic later.
                self.pool_metrics.mailbox_dropped.inc();
                self.obs.journal.record_full(
                    id.0,
                    TraceEventKind::MessageDropped,
                    from,
                    "instance mailbox full".into(),
                );
            }
        }
    }

    fn handle_upcall(&mut self, upcall: Upcall) {
        match upcall {
            Upcall::Broadcast { id, p2p, tob } => {
                // The entry is gone when the instance timed out or shut
                // down between the worker's send and now; drop silently.
                let Some(entry) = self.instances.get_mut(&id) else { return };
                for bytes in p2p {
                    self.network.broadcast_p2p(bytes.clone());
                    entry.p2p_history.push(bytes);
                }
                for bytes in tob {
                    self.network.submit_tob(bytes);
                }
            }
            Upcall::Finished { id, outcome, stats } => {
                self.finish_instance(id, outcome, Some(stats));
            }
        }
    }

    fn finish_instance(
        &mut self,
        id: InstanceId,
        outcome: Result<ProtocolOutput, SchemeError>,
        stats: Option<theta_protocols::ProtocolStats>,
    ) {
        let Some(entry) = self.instances.remove(&id) else { return };
        // Close the mailbox: the worker discards residual work and late
        // pushes fail fast.
        entry.slot.mailbox.close();
        self.pool_metrics.inflight_instances.set(self.instances.len() as i64);
        if let Some(stats) = stats {
            // Fold the protocol's verification stats into the registry
            // now that the instance is final.
            self.metrics.batch_verify_ok.add(stats.batch_verify_ok);
            self.metrics.shares_pruned.add(stats.shares_pruned);
            self.metrics.eager_verifies.add(stats.eager_verifies);
            self.metrics.shares_cross_batched.add(stats.cross_batched);
        }
        let result = InstanceResult { instance: id, outcome, elapsed: entry.started.elapsed() };
        // Account and cache *before* notifying: a subscriber thread may
        // inspect counters the moment its result arrives.
        EventLoopCounters::bump(&self.counters.instances_completed);
        // The e2e histogram records *every* finish (success, failure,
        // timeout), mirroring `instances_completed` semantics.
        self.obs.phases.e2e.record(result.elapsed);
        match &result.outcome {
            Ok(_) => self.obs.journal.record(id.0, TraceEventKind::ResultDelivered),
            Err(err) => self.obs.journal.record_detail(
                id.0,
                TraceEventKind::InstanceFailed,
                format!("{err:?}"),
            ),
        }
        let evicted = self.finished.insert(id, result.clone(), Instant::now());
        EventLoopCounters::add(&self.counters.cache_evictions, evicted);
        for sub in entry.subscribers {
            if sub.deliver(result.clone()).is_err() {
                self.note_error(
                    id.0,
                    "subscriber channel closed before result delivery".into(),
                );
            }
        }
        // Heap entries for `id` are now stale; pops skip them.
    }

    /// Pops every due expiry deadline and fails the instances that are
    /// still live, with the real timeout error (subscribers see exactly
    /// what the cache later serves).
    fn expire_instances(&mut self, now: Instant) {
        while let Some(&Reverse((due, id))) = self.expiry_heap.peek() {
            if due > now {
                break;
            }
            self.expiry_heap.pop();
            let still_live = self
                .instances
                .get(&id)
                .is_some_and(|entry| entry.deadline <= now);
            if !still_live {
                continue; // finished already, or a stale entry
            }
            EventLoopCounters::bump(&self.counters.instances_timed_out);
            self.obs.journal.record(id.0, TraceEventKind::InstanceTimedOut);
            // The host may still hold the protocol; closing the mailbox
            // (in finish) makes the worker drop it. A late Finished
            // upcall for this id is ignored via the registry miss.
            self.finish_instance(
                id,
                Err(SchemeError::InvalidShareSet(
                    "instance timed out before reaching quorum".into(),
                )),
                None,
            );
        }
    }

    /// Pops every due retry deadline, re-broadcasts that instance's P2P
    /// history and reschedules it with doubled (capped) backoff.
    fn retry_due(&mut self, now: Instant) {
        while let Some(&Reverse((due, id))) = self.retry_heap.peek() {
            if due > now {
                break;
            }
            self.retry_heap.pop();
            let Some(entry) = self.instances.get_mut(&id) else {
                continue; // instance finished; stale entry
            };
            if entry.next_retry > now {
                continue; // superseded by a newer schedule
            }
            let resend: Vec<Vec<u8>> = entry.p2p_history.clone();
            entry.retry_backoff = (entry.retry_backoff * 2).min(self.config.retry_max_backoff);
            entry.next_retry = now + entry.retry_backoff;
            let next = entry.next_retry;
            if !resend.is_empty() {
                self.obs.journal.record_detail(
                    id.0,
                    TraceEventKind::RetryBroadcast,
                    format!("{} message(s)", resend.len()),
                );
            }
            for bytes in resend {
                self.network.broadcast_p2p(bytes);
                EventLoopCounters::bump(&self.counters.retries_sent);
            }
            self.retry_heap.push(Reverse((next, id)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use theta_codec::Encode;
    use theta_network::inmemory::{InMemoryConfig, InMemoryHub};
    use theta_schemes::ThresholdParams;

    fn seeded() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x0a0a)
    }

    fn build_network(n: u16) -> (InMemoryHub, Vec<Box<dyn Network>>) {
        let (hub, nodes) = InMemoryHub::build(n, InMemoryConfig::default());
        let boxed = nodes
            .into_iter()
            .map(|n| Box::new(n) as Box<dyn Network>)
            .collect();
        (hub, boxed)
    }

    fn full_chests(t: u16, n: u16, r: &mut rand::rngs::StdRng) -> Vec<KeyChest> {
        let params = ThresholdParams::new(t, n).unwrap();
        let (_, sg02) = theta_schemes::sg02::keygen(params, r);
        let (_, bls04) = theta_schemes::bls04::keygen(params, r);
        let (_, cks05) = theta_schemes::cks05::keygen(params, r);
        let (_, kg20) = theta_schemes::kg20::keygen(params, r);
        let mut chests: Vec<KeyChest> = (0..n).map(|_| KeyChest::new()).collect();
        for (i, chest) in chests.iter_mut().enumerate() {
            chest.sg02 = Some(sg02[i].clone());
            chest.bls04 = Some(bls04[i].clone());
            chest.cks05 = Some(cks05[i].clone());
            chest.kg20 = Some(kg20[i].clone());
        }
        chests
    }

    fn spawn_all(chests: Vec<KeyChest>, nets: Vec<Box<dyn Network>>) -> Vec<NodeHandle> {
        chests
            .into_iter()
            .zip(nets)
            .map(|(chest, net)| {
                spawn_node(
                    chest,
                    net,
                    NodeConfig { instance_timeout: Duration::from_secs(10), ..Default::default() },
                )
            })
            .collect()
    }

    const WAIT: Duration = Duration::from_secs(15);

    #[test]
    fn coin_request_end_to_end() {
        let mut r = seeded();
        let (_hub, nets) = build_network(4);
        let handles = spawn_all(full_chests(1, 4, &mut r), nets);
        let pending: Vec<PendingResult> = handles
            .iter()
            .map(|h| h.submit(Request::Cks05Coin(b"round-1".to_vec())))
            .collect();
        let mut outputs = Vec::new();
        for p in pending {
            let result = p.wait_timeout(WAIT).expect("completion");
            outputs.push(result.outcome.expect("coin value"));
        }
        for o in &outputs[1..] {
            assert_eq!(*o, outputs[0]);
        }
        // Every node started, completed and accounted for the instance.
        for h in &handles {
            let c = h.counters();
            assert_eq!(c.instances_started, 1);
            assert_eq!(c.instances_completed, 1);
            assert_eq!(c.instances_timed_out, 0);
            assert!(c.events_processed >= 1);
        }
    }

    #[test]
    fn bls_sign_only_quorum_submits() {
        // Only 2 of 4 applications ask; shares from all 4 nodes are not
        // needed — but only submitting nodes *start* instances, so the
        // other two nodes join on first contact via the envelope request.
        let mut r = seeded();
        let (_hub, nets) = build_network(4);
        let handles = spawn_all(full_chests(1, 4, &mut r), nets);
        let p0 = handles[0].submit(Request::Bls04Sign(b"block".to_vec()));
        let p2 = handles[2].submit(Request::Bls04Sign(b"block".to_vec()));
        let r0 = p0.wait_timeout(WAIT).expect("node 1 result");
        let r2 = p2.wait_timeout(WAIT).expect("node 3 result");
        assert_eq!(r0.outcome.unwrap(), r2.outcome.unwrap());
    }

    #[test]
    fn kg20_two_round_through_router() {
        let mut r = seeded();
        let (_hub, nets) = build_network(3);
        let handles = spawn_all(full_chests(0, 3, &mut r), nets);
        let pending: Vec<PendingResult> = handles
            .iter()
            .map(|h| h.submit(Request::Kg20Sign(b"frost via router".to_vec())))
            .collect();
        for p in pending {
            let result = p.wait_timeout(WAIT).expect("completion");
            let out = result.outcome.expect("signature");
            assert!(matches!(out, ProtocolOutput::Signature(_)));
        }
    }

    #[test]
    fn duplicate_submission_attaches_to_same_instance() {
        let mut r = seeded();
        let (_hub, nets) = build_network(4);
        let handles = spawn_all(full_chests(1, 4, &mut r), nets);
        for h in &handles[1..] {
            let _ = h.submit(Request::Cks05Coin(b"dup".to_vec()));
        }
        let first = handles[0].submit(Request::Cks05Coin(b"dup".to_vec()));
        let second = handles[0].submit(Request::Cks05Coin(b"dup".to_vec()));
        let a = first.wait_timeout(WAIT).unwrap();
        let b = second.wait_timeout(WAIT).unwrap();
        assert_eq!(a.outcome.unwrap(), b.outcome.unwrap());
        assert_eq!(a.instance, b.instance);
    }

    #[test]
    fn missing_key_fails_fast() {
        let (_hub, mut nets) = build_network(1);
        let handle = spawn_node(KeyChest::new(), nets.pop().unwrap(), NodeConfig::default());
        let pending = handle.submit(Request::Bls04Sign(b"x".to_vec()));
        let result = pending.wait_timeout(Duration::from_secs(5)).expect("fast failure");
        assert!(matches!(result.outcome, Err(SchemeError::KeyMismatch(_))));
    }

    #[test]
    fn crash_tolerance_with_t_failures() {
        // 4 nodes, t = 1: isolate one node; the other 3 still decrypt.
        let mut r = seeded();
        let (hub, nets) = build_network(4);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, sg02_keys) = theta_schemes::sg02::keygen(params, &mut r);
        let mut chests: Vec<KeyChest> = (0..4).map(|_| KeyChest::new()).collect();
        for (i, chest) in chests.iter_mut().enumerate() {
            chest.sg02 = Some(sg02_keys[i].clone());
        }
        let handles = spawn_all(chests, nets);
        hub.isolate_node(4, true);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"crash test", &mut r);
        let pending: Vec<PendingResult> = handles[..3]
            .iter()
            .map(|h| h.submit(Request::Sg02Decrypt(theta_codec::Encode::encoded(&ct))))
            .collect();
        for p in pending {
            let result = p.wait_timeout(WAIT).expect("completion despite crash");
            assert_eq!(
                result.outcome.unwrap(),
                ProtocolOutput::Plaintext(b"crash test".to_vec())
            );
        }
    }

    #[test]
    fn timeout_reported_when_quorum_unreachable() {
        // 4 nodes, t = 2 (quorum 3), but only 2 nodes are reachable.
        let mut r = seeded();
        let (hub, nets) = build_network(4);
        let params = ThresholdParams::new(2, 4).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let mut chests: Vec<KeyChest> = (0..4).map(|_| KeyChest::new()).collect();
        for (i, chest) in chests.iter_mut().enumerate() {
            chest.sg02 = Some(keys[i].clone());
        }
        let handles: Vec<NodeHandle> = chests
            .into_iter()
            .zip(nets)
            .map(|(chest, net)| {
                spawn_node(
                    chest,
                    net,
                    NodeConfig {
                        instance_timeout: Duration::from_millis(500),
                        ..Default::default()
                    },
                )
            })
            .collect();
        hub.isolate_node(3, true);
        hub.isolate_node(4, true);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"unreachable", &mut r);
        let pending = handles[0].submit(Request::Sg02Decrypt(theta_codec::Encode::encoded(&ct)));
        let result = pending.wait_timeout(WAIT).expect("timeout result");
        // Subscribers must see the real timeout error, not a placeholder
        // finished-then-retagged variant.
        match result.outcome {
            Err(SchemeError::InvalidShareSet(msg)) => {
                assert!(
                    msg.contains("timed out before reaching quorum"),
                    "unexpected message: {msg}"
                );
            }
            other => panic!("expected the timeout error, got {other:?}"),
        }
        assert_eq!(handles[0].counters().instances_timed_out, 1);
    }

    #[test]
    fn idle_router_does_not_spin() {
        // With no instances and no traffic, the loop must park in its
        // select rather than busy-poll: the wakeup counter stays flat.
        let (_hub, mut nets) = build_network(1);
        let handle = spawn_node(KeyChest::new(), nets.pop().unwrap(), NodeConfig::default());
        std::thread::sleep(Duration::from_millis(200));
        let before = handle.counters().wakeups;
        std::thread::sleep(Duration::from_millis(500));
        let after = handle.counters().wakeups;
        assert!(
            after - before <= 2,
            "idle loop woke {} times in 500 ms",
            after - before
        );
    }

    #[test]
    fn result_cache_eviction_gets_fresh_instance() {
        // Capacity-1 cache: finishing coin "b" evicts coin "a"'s result.
        // Re-submitting "a" must run a *fresh* instance (not serve a stale
        // or missing entry) and, the coin being deterministic, reproduce
        // the same value.
        let mut r = seeded();
        let (_hub, mut nets) = build_network(1);
        let params = ThresholdParams::new(0, 1).unwrap();
        let (_, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let mut chest = KeyChest::new();
        chest.cks05 = Some(keys[0].clone());
        let handle = spawn_node(
            chest,
            nets.pop().unwrap(),
            NodeConfig { result_cache_capacity: 1, ..Default::default() },
        );
        let first = handle
            .submit(Request::Cks05Coin(b"a".to_vec()))
            .wait_timeout(WAIT)
            .expect("first run");
        let _ = handle
            .submit(Request::Cks05Coin(b"b".to_vec()))
            .wait_timeout(WAIT)
            .expect("second run evicts the first");
        let again = handle
            .submit(Request::Cks05Coin(b"a".to_vec()))
            .wait_timeout(WAIT)
            .expect("fresh re-run after eviction");
        assert_eq!(first.outcome.unwrap(), again.outcome.unwrap());
        let c = handle.counters();
        assert_eq!(c.instances_started, 3, "evicted result must be recomputed");
        assert!(c.cache_evictions >= 2);
    }

    #[test]
    fn duplicate_submit_within_cache_serves_cached_result() {
        let mut r = seeded();
        let (_hub, mut nets) = build_network(1);
        let params = ThresholdParams::new(0, 1).unwrap();
        let (_, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let mut chest = KeyChest::new();
        chest.cks05 = Some(keys[0].clone());
        let handle = spawn_node(chest, nets.pop().unwrap(), NodeConfig::default());
        let first = handle
            .submit(Request::Cks05Coin(b"cached".to_vec()))
            .wait_timeout(WAIT)
            .expect("first run");
        let again = handle
            .submit(Request::Cks05Coin(b"cached".to_vec()))
            .wait_timeout(WAIT)
            .expect("cache hit");
        assert_eq!(first.outcome.unwrap(), again.outcome.unwrap());
        assert_eq!(handle.counters().instances_started, 1, "second submit is a cache hit");
    }

    #[test]
    fn spoofed_sender_is_dropped_even_via_tob() {
        // An envelope whose claimed sender disagrees with the transport's
        // authenticated `from` must be ignored on the TOB path too (the
        // seed only checked P2P). If it were accepted, the receiving node
        // would start an instance for the embedded request.
        let mut r = seeded();
        let params = ThresholdParams::new(1, 2).unwrap();
        let (_, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let (_hub, mut nets) = build_network(2);
        let injector = nets.remove(0); // raw handle for node 1, no router
        let mut chest = KeyChest::new();
        chest.cks05 = Some(keys[1].clone());
        let handle = spawn_node(chest, nets.pop().unwrap(), NodeConfig::default());

        let request = Request::Cks05Coin(b"spoof-tob".to_vec());
        let spoofed = Envelope {
            instance: request.instance_id(),
            request: request.clone(),
            round: 1,
            sender: 7, // does not match the true submitter (node 1)
            payload: vec![1, 2, 3],
        };
        injector.submit_tob(spoofed.encoded());
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(
            handle.counters().instances_started,
            0,
            "spoofed TOB envelope must not start an instance"
        );

        // The honest version of the same message is accepted.
        let honest = Envelope {
            instance: request.instance_id(),
            request,
            round: 1,
            sender: 1,
            payload: vec![1, 2, 3],
        };
        injector.submit_tob(honest.encoded());
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(handle.counters().instances_started, 1);
    }

    #[test]
    fn retries_rebroadcast_p2p_history() {
        // Partition node 2 while node 1 starts a coin; the share is lost.
        // Heal the partition: the retry machinery must re-deliver node
        // 1's share so node 2 (which hears of the instance only through
        // the retry) completes — and both agree.
        let mut r = seeded();
        let params = ThresholdParams::new(1, 2).unwrap();
        let (_, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let (hub, nets) = build_network(2);
        let handles: Vec<NodeHandle> = keys
            .iter()
            .zip(nets)
            .map(|(key, net)| {
                let mut chest = KeyChest::new();
                chest.cks05 = Some(key.clone());
                spawn_node(
                    chest,
                    net,
                    NodeConfig {
                        retry_initial_backoff: Duration::from_millis(100),
                        ..Default::default()
                    },
                )
            })
            .collect();
        hub.isolate_node(2, true);
        let pending = handles[0].submit(Request::Cks05Coin(b"retry me".to_vec()));
        std::thread::sleep(Duration::from_millis(250));
        hub.isolate_node(2, false);
        let result = pending.wait_timeout(WAIT).expect("completion after heal");
        assert!(result.outcome.is_ok());
        assert!(
            handles[0].counters().retries_sent >= 1,
            "node 1 must have re-broadcast its share"
        );
    }

    // ------------------------------------------------------------------
    // Router/worker-pool specific coverage.
    // ------------------------------------------------------------------

    #[test]
    fn crypto_runs_on_worker_threads_not_router() {
        // The InstanceHost debug-asserts it never executes on a thread
        // named `theta-router-*`; completing an instance under
        // debug_assertions therefore proves the split. The per-worker
        // busy histogram proves work actually reached the pool.
        let mut r = seeded();
        let (_hub, mut nets) = build_network(1);
        let params = ThresholdParams::new(0, 1).unwrap();
        let (_, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let mut chest = KeyChest::new();
        chest.cks05 = Some(keys[0].clone());
        let handle = spawn_node(
            chest,
            nets.pop().unwrap(),
            NodeConfig { worker_threads: 2, ..Default::default() },
        );
        let result = handle
            .submit(Request::Cks05Coin(b"threads".to_vec()))
            .wait_timeout(WAIT)
            .expect("completion");
        assert!(result.outcome.is_ok());
        // The worker records its busy time *after* the host delivers the
        // terminal result (the histogram write is deliberately off the
        // result path), so poll briefly instead of reading once.
        let obs = handle.observability();
        let busy_total = || -> u64 {
            (0..2)
                .map(|w| {
                    obs.registry
                        .histogram_snapshot(
                            theta_metrics::observability::WORKER_BUSY_HISTOGRAM,
                            &[("worker", &w.to_string())],
                        )
                        .map_or(0, |s| s.count())
                })
                .sum()
        };
        let deadline = std::time::Instant::now() + WAIT;
        while busy_total() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(busy_total() >= 1, "no worker recorded busy time — crypto ran elsewhere?");
    }

    #[test]
    fn overloaded_submission_is_refused_not_queued() {
        // Two isolated nodes (instances can never finish) and a cap of 2:
        // the third distinct submission must be refused with Overloaded.
        let mut r = seeded();
        let params = ThresholdParams::new(1, 2).unwrap();
        let (_, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let (hub, mut nets) = build_network(2);
        hub.isolate_node(1, true);
        let mut chest = KeyChest::new();
        chest.cks05 = Some(keys[0].clone());
        let handle = spawn_node(
            chest,
            nets.remove(0),
            NodeConfig {
                max_inflight_instances: 2,
                instance_timeout: Duration::from_secs(30),
                ..Default::default()
            },
        );
        let _a = handle.submit(Request::Cks05Coin(b"a".to_vec()));
        let _b = handle.submit(Request::Cks05Coin(b"b".to_vec()));
        let c = handle.submit(Request::Cks05Coin(b"c".to_vec()));
        let refused = c.wait_timeout(Duration::from_secs(5)).expect("immediate refusal");
        assert_eq!(refused.outcome, Err(SchemeError::Overloaded));
        let obs = handle.observability();
        let rejected = obs
            .registry
            .counter_value(theta_metrics::observability::OVERLOAD_REJECTIONS_COUNTER, &[])
            .unwrap_or(0);
        assert!(rejected >= 1, "overload rejection must be counted");
    }

    #[test]
    fn try_submit_applies_queue_backpressure() {
        let (_hub, mut nets) = build_network(1);
        let handle = spawn_node(
            KeyChest::new(),
            nets.pop().unwrap(),
            NodeConfig { submission_queue_capacity: 0, ..Default::default() },
        );
        // Zero capacity: every try_submit is refused up front.
        match handle.try_submit(Request::Cks05Coin(b"never".to_vec())) {
            Err(SubmitError::Overloaded) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // The unconditional path still queues.
        let pending = handle.submit(Request::Cks05Coin(b"queued".to_vec()));
        let result = pending.wait_timeout(Duration::from_secs(5)).expect("served");
        // No cks05 key: fails fast, but it was *served*, not refused.
        assert!(matches!(result.outcome, Err(SchemeError::KeyMismatch(_))));
    }

    #[test]
    fn shutdown_drains_live_instances_with_terminal_results() {
        // A quorum-blocked instance (peer isolated) cannot finish inside
        // the drain window: the subscriber must still get a terminal
        // result, tagged Shutdown.
        let mut r = seeded();
        let params = ThresholdParams::new(1, 2).unwrap();
        let (_, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let (hub, mut nets) = build_network(2);
        hub.isolate_node(1, true);
        let mut chest = KeyChest::new();
        chest.cks05 = Some(keys[0].clone());
        let handle = spawn_node(
            chest,
            nets.remove(0),
            NodeConfig {
                shutdown_drain: Duration::from_millis(200),
                ..Default::default()
            },
        );
        let pending = handle.submit(Request::Cks05Coin(b"drain me".to_vec()));
        std::thread::sleep(Duration::from_millis(100)); // let the instance start
        handle.shutdown();
        let result = pending
            .wait_timeout(Duration::from_secs(1))
            .expect("shutdown must deliver a terminal result");
        assert_eq!(result.outcome, Err(SchemeError::Shutdown));
    }

    #[test]
    fn shutdown_drain_lets_completing_instances_finish() {
        // A completable instance submitted right before shutdown finishes
        // inside the drain window and delivers its real result.
        let mut r = seeded();
        let (_hub, mut nets) = build_network(1);
        let params = ThresholdParams::new(0, 1).unwrap();
        let (_, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let mut chest = KeyChest::new();
        chest.cks05 = Some(keys[0].clone());
        let handle = spawn_node(chest, nets.pop().unwrap(), NodeConfig::default());
        let pending = handle.submit(Request::Cks05Coin(b"finish me".to_vec()));
        handle.shutdown();
        let result = pending
            .wait_timeout(Duration::from_secs(1))
            .expect("result delivered before or during drain");
        assert!(result.outcome.is_ok(), "drain should let the coin finish");
    }

    #[test]
    fn pending_result_reports_node_stopped() {
        // A reply channel whose sender is gone (router died / command
        // never served) must report NodeStopped, not TimedOut.
        let (tx, rx) = unbounded::<InstanceResult>();
        let pending = PendingResult { rx };
        drop(tx);
        assert_eq!(
            pending.wait_timeout(Duration::from_millis(10)),
            Err(WaitError::NodeStopped)
        );
        assert_eq!(pending.try_take(), Err(WaitError::NodeStopped));

        // And a live-but-empty channel reports TimedOut / not-ready.
        let (_tx2, rx2) = unbounded::<InstanceResult>();
        let pending2 = PendingResult { rx: rx2 };
        assert_eq!(
            pending2.wait_timeout(Duration::from_millis(10)),
            Err(WaitError::TimedOut)
        );
        assert_eq!(pending2.try_take(), Ok(None));
    }

    #[test]
    fn distinct_instances_progress_concurrently() {
        // With 2 workers and 2 slow-to-quorum instances, both must be
        // live at once (inflight gauge reaches 2) — instances do not
        // serialize behind one another.
        let mut r = seeded();
        let params = ThresholdParams::new(1, 2).unwrap();
        let (_, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let (hub, mut nets) = build_network(2);
        hub.isolate_node(1, true);
        let mut chest = KeyChest::new();
        chest.cks05 = Some(keys[0].clone());
        let handle = spawn_node(
            chest,
            nets.remove(0),
            NodeConfig { worker_threads: 2, ..Default::default() },
        );
        let _a = handle.submit(Request::Cks05Coin(b"parallel-a".to_vec()));
        let _b = handle.submit(Request::Cks05Coin(b"parallel-b".to_vec()));
        std::thread::sleep(Duration::from_millis(200));
        let obs = handle.observability();
        let inflight = obs
            .registry
            .gauge(theta_metrics::observability::INFLIGHT_INSTANCES_GAUGE)
            .get();
        assert_eq!(inflight, 2, "both instances must be live concurrently");
    }

    // ------------------------------------------------------------------
    // Cross-instance batch verification (PR 7).
    // ------------------------------------------------------------------

    #[test]
    fn cross_instance_batching_settles_and_traces() {
        // Several concurrent BLS04 instances on a 4-node network: shares
        // from all instances must verify through the pool aggregator
        // (not per-instance checks), the flush counters/histogram must
        // record it, and each instance's journal must show the full
        // batch lifecycle (BatchEnqueued → BatchSettled → ShareVerified)
        // — what GetTrace serves to the operator.
        let mut r = seeded();
        let (_hub, nets) = build_network(4);
        let chests = full_chests(1, 4, &mut r);
        let handles: Vec<NodeHandle> = chests
            .into_iter()
            .zip(nets)
            .map(|(chest, net)| {
                spawn_node(
                    chest,
                    net,
                    NodeConfig {
                        batch_flush_size: 4,
                        batch_flush_age: Duration::from_millis(2),
                        ..Default::default()
                    },
                )
            })
            .collect();
        const REQS: usize = 4;
        let pending: Vec<(InstanceId, PendingResult)> = (0..REQS)
            .map(|i| {
                let req = Request::Bls04Sign(format!("batched-{i}").into_bytes());
                (req.instance_id(), handles[0].submit(req))
            })
            .collect();
        for (_, p) in &pending {
            let result = p.wait_timeout(WAIT).expect("completion");
            assert!(result.outcome.is_ok(), "batched instance failed: {:?}", result.outcome);
        }
        let obs = handles[0].observability();
        // Shares verified via the pool-scoped batch, not instance-local.
        let deadline = std::time::Instant::now() + WAIT;
        let cross = || {
            obs.registry
                .counter_value("theta_shares_cross_batched_total", &[])
                .unwrap_or(0)
        };
        // Stats fold on Finished upcalls which race this check briefly.
        while cross() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(cross() >= 1, "no share was cross-batch verified");
        // At least one flush fired, and the size histogram saw it.
        let flushes: u64 = ["size", "age", "shutdown"]
            .iter()
            .map(|reason| {
                obs.registry
                    .counter_value(
                        theta_metrics::observability::BATCH_FLUSHES_COUNTER,
                        &[("reason", reason)],
                    )
                    .unwrap_or(0)
            })
            .sum();
        assert!(flushes >= 1, "no batch flush recorded");
        let sizes = obs
            .registry
            .histogram_snapshot(theta_metrics::observability::BATCH_SIZE_HISTOGRAM, &[])
            .expect("batch size histogram registered");
        assert!(sizes.count() >= 1, "no batch size recorded");
        // Per-instance trace: the request's shares rode a batch.
        let (id, _) = &pending[0];
        let kinds: Vec<TraceEventKind> =
            obs.journal.events_for(&id.0).iter().map(|e| e.kind).collect();
        assert!(
            kinds.contains(&TraceEventKind::BatchEnqueued),
            "journal missing BatchEnqueued: {kinds:?}"
        );
        assert!(
            kinds.contains(&TraceEventKind::BatchSettled),
            "journal missing BatchSettled: {kinds:?}"
        );
        assert!(kinds.contains(&TraceEventKind::ShareVerified));
    }

    #[test]
    fn forged_share_in_cross_batch_prunes_only_culprit() {
        // Node 2 holds a key share from an *independent* keygen: its
        // shares decode fine but fail verification. With t = 2 (quorum
        // 3) the three honest nodes must still complete every instance —
        // the failed batch bisects down to node 2's checks and prunes
        // exactly those, never the innocent instances' valid shares.
        let mut r = seeded();
        let params = ThresholdParams::new(2, 4).unwrap();
        let (_, honest_keys) = theta_schemes::bls04::keygen(params, &mut r);
        let (_, foreign_keys) = theta_schemes::bls04::keygen(params, &mut r);
        let (_hub, nets) = build_network(4);
        let handles: Vec<NodeHandle> = (0..4usize)
            .zip(nets)
            .map(|(i, net)| {
                let mut chest = KeyChest::new();
                chest.bls04 = Some(if i == 1 {
                    foreign_keys[i].clone() // the forger
                } else {
                    honest_keys[i].clone()
                });
                spawn_node(
                    chest,
                    net,
                    NodeConfig {
                        batch_flush_size: 4,
                        batch_flush_age: Duration::from_millis(2),
                        ..Default::default()
                    },
                )
            })
            .collect();
        // Two concurrent instances so the forged shares share a batch
        // with innocent checks from another instance.
        let pending: Vec<PendingResult> = (0..2)
            .flat_map(|i| {
                let msg = format!("forged-batch-{i}").into_bytes();
                [&handles[0], &handles[2], &handles[3]]
                    .map(|h| h.submit(Request::Bls04Sign(msg.clone())))
            })
            .collect();
        for p in pending {
            let result = p.wait_timeout(WAIT).expect("completion despite forger");
            assert!(
                result.outcome.is_ok(),
                "honest quorum must survive a forged share in the batch: {:?}",
                result.outcome
            );
        }
        // At least one honest node saw node 2's share fail the batch
        // settle and pruned it (journaled with the batch reject detail).
        let pruned_somewhere = [0usize, 2, 3].iter().any(|&i| {
            let obs = handles[i].observability();
            obs.journal.events_for(&Request::Bls04Sign(b"forged-batch-0".to_vec()).instance_id().0)
                .iter()
                .any(|e| {
                    e.kind == TraceEventKind::ShareRejected
                        && e.detail.contains("cross-instance batch")
                })
        });
        assert!(pruned_somewhere, "no honest node journaled the batch-verdict prune");
    }
}
