//! Worker-side host for one protocol instance.
//!
//! An [`InstanceHost`] owns a [`ProtocolDriver`] plus everything a
//! worker needs to run it without consulting the router: the request
//! (for envelope framing), a private RNG, the observability handles and
//! the upcall channel back to the router. All of an instance's messages
//! are applied here *sequentially* — the worker-pool scheduling
//! handshake guarantees at most one worker runs a given host at a time,
//! so the protocol state needs no lock of its own — while hosts of
//! distinct instances run on different workers in parallel.
//!
//! The host does every `do_round` / `update` / `finalize` and all
//! envelope encoding; the router only moves bytes. A debug assertion
//! enforces that split: protocol crypto on a thread named
//! `theta-router-*` is a bug.

use crate::{Envelope, InstanceId, Request};
use crossbeam::channel::Sender;
use std::sync::Arc;
use std::time::Instant;
use theta_codec::Encode;
use theta_metrics::registry::Counter;
use theta_metrics::trace::TraceEventKind;
use theta_metrics::NodeObservability;
use theta_network::NodeId;
use theta_protocols::{InboundMessage, ProtocolDriver, ProtocolOutput, ProtocolStats, RoundOutput};
use theta_schemes::batch::PendingCheck;
use theta_schemes::{PartyId, SchemeError};

/// Work the router forwards to an instance's mailbox.
pub(crate) enum HostMsg {
    /// Run the first round (always the first message a host sees).
    Start,
    /// Apply one verified-source network message.
    Deliver {
        /// Transport-authenticated sending node.
        from: NodeId,
        /// The protocol message.
        inbound: InboundMessage,
    },
    /// Per-party verdicts from a cross-instance batch settle, for
    /// checks this instance previously deferred.
    Verdicts {
        /// `(party, valid)` for each settled check of this instance.
        verdicts: Vec<(PartyId, bool)>,
        /// Total checks in the settled batch (all instances), for the
        /// trace journal.
        batch_size: usize,
        /// Flush-reason label (`"size"` / `"age"` / `"shutdown"`).
        reason: &'static str,
    },
}

/// What a host reports back to the router.
pub(crate) enum Upcall {
    /// Encoded envelopes to put on the wire. The router owns the network
    /// handle and the P2P retransmission history.
    Broadcast {
        /// The emitting instance.
        id: InstanceId,
        /// Envelopes for P2P broadcast (appended to the retry history).
        p2p: Vec<Vec<u8>>,
        /// Envelopes for the total-order channel.
        tob: Vec<Vec<u8>>,
    },
    /// The instance reached a terminal outcome.
    Finished {
        /// The finished instance.
        id: InstanceId,
        /// Result or failure.
        outcome: Result<ProtocolOutput, SchemeError>,
        /// The protocol's accumulated verification-work stats.
        stats: ProtocolStats,
    },
}

/// Guards the router/worker split: protocol crypto must never run on
/// the router thread. Compiled away in release builds.
#[inline]
fn assert_off_router() {
    #[cfg(debug_assertions)]
    if let Some(name) = std::thread::current().name() {
        debug_assert!(
            !name.starts_with("theta-router-"),
            "protocol crypto executed on the router thread ({name})"
        );
    }
}

pub(crate) struct InstanceHost {
    id: InstanceId,
    driver: ProtocolDriver,
    request: Request,
    sender: NodeId,
    rng: rand::rngs::StdRng,
    obs: Arc<NodeObservability>,
    shares_rejected: Arc<Counter>,
    upcalls: Sender<Upcall>,
}

impl InstanceHost {
    #[allow(clippy::too_many_arguments)] // construction site is single; a builder would be noise
    pub(crate) fn new(
        id: InstanceId,
        driver: ProtocolDriver,
        request: Request,
        sender: NodeId,
        rng: rand::rngs::StdRng,
        obs: Arc<NodeObservability>,
        shares_rejected: Arc<Counter>,
        upcalls: Sender<Upcall>,
    ) -> InstanceHost {
        InstanceHost { id, driver, request, sender, rng, obs, shares_rejected, upcalls }
    }

    /// Applies one mailbox message; returns `true` once the instance is
    /// terminal (the caller drops the host, freeing protocol state).
    ///
    /// Checks the protocol deferred for cross-instance batching are
    /// drained into `checks_out` — the worker submits them to the pool
    /// aggregator *after* releasing this host's slot.
    // theta: worker-only
    pub(crate) fn handle(
        &mut self,
        msg: HostMsg,
        checks_out: &mut Vec<(PartyId, PendingCheck)>,
    ) -> bool {
        assert_off_router();
        match msg {
            HostMsg::Start => self.start(),
            HostMsg::Deliver { from, inbound } => self.deliver(from, &inbound, checks_out),
            HostMsg::Verdicts { verdicts, batch_size, reason } => {
                self.apply_verdicts(&verdicts, batch_size, reason);
            }
        }
        self.drain_checks(checks_out);
        self.driver.is_done()
    }

    /// Moves the driver's deferred checks into `checks_out`, journaling
    /// each hand-off so GetTrace shows the share rode a batch.
    fn drain_checks(&mut self, checks_out: &mut Vec<(PartyId, PendingCheck)>) {
        for (party, check) in self.driver.take_pending_checks() {
            self.obs
                .journal
                .record_peer(self.id.0, TraceEventKind::BatchEnqueued, party.value());
            checks_out.push((party, check));
        }
    }

    fn start(&mut self) {
        let compute_start = Instant::now();
        match self.driver.start(&mut self.rng) {
            Ok(output) => {
                self.obs.phases.share_compute.record(compute_start.elapsed());
                self.obs.journal.record(self.id.0, TraceEventKind::ShareComputed);
                self.emit(vec![output]);
                // Journaled here (hand-off to the router for transmission)
                // so the per-instance lifecycle order ShareSent <
                // QuorumReached holds regardless of router scheduling.
                self.obs.journal.record(self.id.0, TraceEventKind::ShareSent);
                self.advance();
            }
            Err(err) => self.finish(Err(err), self.driver.stats()),
        }
    }

    fn deliver(
        &mut self,
        from: NodeId,
        inbound: &InboundMessage,
        checks_out: &mut Vec<(PartyId, PendingCheck)>,
    ) {
        self.obs.journal.record_peer(self.id.0, TraceEventKind::ShareReceived, from);
        let verify_start = Instant::now();
        let verdict = self.driver.deliver(inbound);
        let verify_spent = verify_start.elapsed();
        self.obs.phases.share_verify.record(verify_spent);
        theta_metrics::profiler::record_phase(
            theta_metrics::WorkerPhase::ShareVerify,
            verify_spent,
        );
        match verdict {
            Ok(()) => {
                // In pooled mode an accepted share is *deferred*, not
                // verified: its check surfaces here and the trace shows
                // BatchEnqueued instead of ShareVerified (which arrives
                // later with the batch verdicts).
                let before = checks_out.len();
                self.drain_checks(checks_out);
                if checks_out.len() == before {
                    self.obs.journal.record_peer(self.id.0, TraceEventKind::ShareVerified, from);
                }
            }
            Err(err) => {
                // Invalid share: logged and dropped, the instance lives on.
                self.shares_rejected.inc();
                self.obs.journal.record_full(
                    self.id.0,
                    TraceEventKind::ShareRejected,
                    from,
                    format!("{err:?}"),
                );
            }
        }
        self.advance();
    }

    /// Applies one batch settle's verdicts for this instance: journals
    /// the settle and each per-party outcome, resolves the deferred
    /// checks and advances (a quorum of verified shares finalizes here).
    fn apply_verdicts(&mut self, verdicts: &[(PartyId, bool)], batch_size: usize, reason: &str) {
        self.obs.journal.record_detail(
            self.id.0,
            TraceEventKind::BatchSettled,
            format!(
                "{} verdict(s) from a {batch_size}-check cross-instance batch ({reason} flush)",
                verdicts.len()
            ),
        );
        for (party, ok) in verdicts {
            if *ok {
                self.obs
                    .journal
                    .record_peer(self.id.0, TraceEventKind::ShareVerified, party.value());
            } else {
                self.shares_rejected.inc();
                self.obs.journal.record_full(
                    self.id.0,
                    TraceEventKind::ShareRejected,
                    party.value(),
                    "failed cross-instance batch verification".into(),
                );
            }
        }
        self.driver.resolve_checks(verdicts);
        self.advance();
    }

    /// Runs rounds while the progression condition holds and finalizes
    /// once the termination condition holds, reporting everything to the
    /// router.
    fn advance(&mut self) {
        let step = self.driver.advance(&mut self.rng);
        for (party, err) in &step.rejects {
            // A buffered future-round message that failed on replay:
            // counted and journaled exactly like a direct-deliver reject.
            self.shares_rejected.inc();
            self.obs.journal.record_detail(
                self.id.0,
                TraceEventKind::ShareRejected,
                format!("replayed round message from party {}: {err:?}", party.value()),
            );
        }
        if !step.outputs.is_empty() {
            self.emit(step.outputs);
        }
        if let Some(outcome) = step.finished {
            if let Some(combine) = step.combine_time {
                self.obs.journal.record(self.id.0, TraceEventKind::QuorumReached);
                self.obs.phases.combine.record(combine);
                theta_metrics::profiler::record_phase(theta_metrics::WorkerPhase::Combine, combine);
                if outcome.is_ok() {
                    self.obs.journal.record(self.id.0, TraceEventKind::Combined);
                }
            }
            self.finish(outcome, self.driver.stats());
        }
    }

    /// Encodes round outputs into envelopes and ships them to the router
    /// for transmission.
    fn emit(&self, outputs: Vec<RoundOutput>) {
        let mut p2p = Vec::new();
        let mut tob = Vec::new();
        for output in outputs {
            for msg in output.messages {
                let envelope = Envelope {
                    instance: self.id,
                    request: self.request.clone(),
                    round: msg.round,
                    sender: self.sender,
                    payload: msg.payload,
                };
                let bytes = envelope.encoded();
                match msg.transport {
                    theta_protocols::Transport::P2p => p2p.push(bytes),
                    theta_protocols::Transport::Tob => tob.push(bytes),
                }
            }
        }
        if p2p.is_empty() && tob.is_empty() {
            return;
        }
        let _ = self.upcalls.send(Upcall::Broadcast { id: self.id, p2p, tob });
    }

    fn finish(&self, outcome: Result<ProtocolOutput, SchemeError>, stats: ProtocolStats) {
        let _ = self.upcalls.send(Upcall::Finished { id: self.id, outcome, stats });
    }
}
