//! The crypto worker pool and its scheduling handshake.
//!
//! Each live instance is wrapped in an [`InstanceSlot`]: its bounded
//! mailbox, a `scheduled` flag and the (worker-owned) [`InstanceHost`].
//! The router is the single producer: it pushes a message and, if the
//! slot was not already scheduled, places the slot on the shared run
//! queue. A worker picks the slot up, drains and applies the whole
//! mailbox, then unschedules. The flag guarantees a slot is never on
//! the run queue twice, which in turn guarantees at most one worker
//! touches a given host at a time — so protocol state needs no lock,
//! while distinct instances run on different workers in parallel.
//!
//! The handshake (push/schedule on the producer side, drain/unschedule
//! on the consumer side) is the only clever part; it lives in
//! [`crate::handshake`] so the loom models and the interleaving test
//! hammer the exact code the pool runs.

use crate::batcher::{run_flush, BatchAggregator, FlushReason};
use crate::handshake::{drain_apply, schedule_core, unschedule};
use crate::instance_host::{HostMsg, InstanceHost};
use crate::mailbox::{Mailbox, PushError};
use crate::InstanceId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;
use theta_metrics::{profiler, PoolMetrics, WorkerPhase};
use theta_schemes::batch::PendingCheck;
use theta_schemes::PartyId;
use theta_sync::atomic::AtomicBool;
use theta_sync::Mutex;

/// One live instance's scheduling state.
pub(crate) struct InstanceSlot {
    pub(crate) id: InstanceId,
    pub(crate) mailbox: Mailbox<HostMsg>,
    /// True while the slot is on the run queue or being drained.
    scheduled: AtomicBool,
    /// The host, present until the instance finishes. Only the worker
    /// holding the scheduled slot may lock it.
    host: Mutex<Option<InstanceHost>>,
}

impl InstanceSlot {
    pub(crate) fn new(id: InstanceId, capacity: usize, host: InstanceHost) -> InstanceSlot {
        InstanceSlot {
            id,
            mailbox: Mailbox::new(capacity),
            scheduled: AtomicBool::new(false),
            host: Mutex::new(Some(host)),
        }
    }
}

/// A run-queue entry: a scheduled slot, a claimed batch flush (the
/// router's age/shutdown triggers hand the settle to a worker this
/// way), or the shutdown sentinel each worker consumes exactly once
/// (workers hold injector clones for re-injection, so plain channel
/// disconnection can never fire).
pub(crate) enum PoolJob {
    Run(Arc<InstanceSlot>),
    /// Settle the aggregator's pending batch. The sender already holds
    /// the flush claim ([`BatchAggregator::claim_if_aged`] /
    /// [`BatchAggregator::claim_for_shutdown`]); the worker runs
    /// [`run_flush`] to completion.
    Flush(FlushReason),
    Stop,
}

/// Producer-side handshake: enqueue `msg` and, if the slot was idle,
/// hand it to the run queue.
///
/// # Errors
///
/// Propagates the mailbox bound ([`PushError::Full`]) or closure
/// ([`PushError::Closed`]); the message is dropped in either case.
pub(crate) fn schedule(
    slot: &Arc<InstanceSlot>,
    injector: &Sender<PoolJob>,
    metrics: &PoolMetrics,
    msg: HostMsg,
) -> Result<(), PushError> {
    schedule_core(&slot.mailbox, &slot.scheduled, msg, || {
        metrics.runqueue_depth.add(1);
        let _ = injector.send(PoolJob::Run(slot.clone()));
    })
}

/// Drains and applies everything in the slot's mailbox; checks the
/// host deferred for cross-instance batching come back in `checks`
/// (the caller submits them to the aggregator *after* the host lock is
/// released, so a same-worker flush never deadlocks on its own slot).
/// Returns `true` when the slot must be re-injected (messages arrived
/// during the hand-back).
fn run_slot(
    slot: &InstanceSlot,
    scratch: &mut Vec<HostMsg>,
    checks: &mut Vec<(PartyId, PendingCheck)>,
) -> bool {
    {
        let mut host = slot
            .host
            .try_lock()
            .unwrap_or_else(|_| panic!("instance {:?} scheduled on two workers at once", slot.id));
        drain_apply(&slot.mailbox, scratch, |msg| {
            if let Some(h) = host.as_mut() {
                if h.handle(msg, checks) {
                    // Terminal: free the protocol state eagerly; any
                    // residual mailbox traffic is discarded below.
                    *host = None;
                }
            }
        });
        // The guard drops here, before the flag flips, so the next
        // worker to claim the slot can never contend on the lock.
    }
    unschedule(&slot.mailbox, &slot.scheduled)
}

/// The pool: N OS threads eating scheduled slots off one shared run
/// queue. Dropping the pool closes the queue and joins the workers.
pub(crate) struct WorkerPool {
    injector: Sender<PoolJob>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers named `theta-worker-{party}-{i}`, all
    /// sharing the node's cross-instance batch aggregator.
    pub(crate) fn spawn(
        threads: usize,
        party: u16,
        metrics: &PoolMetrics,
        agg: Arc<BatchAggregator>,
    ) -> WorkerPool {
        let (injector, run_queue) = unbounded::<PoolJob>();
        let workers = (0..threads)
            .map(|i| {
                let rx: Receiver<PoolJob> = run_queue.clone();
                let injector = injector.clone();
                let metrics = metrics.clone();
                let busy = metrics.worker_busy[i.min(metrics.worker_busy.len() - 1)].clone();
                let phases =
                    metrics.worker_phases[i.min(metrics.worker_phases.len() - 1)].clone();
                let agg = agg.clone();
                std::thread::Builder::new()
                    .name(format!("theta-worker-{party}-{i}"))
                    .spawn(move || {
                        // This thread's profiling sink: instrumentation
                        // sites below (host verify/combine, batch settle)
                        // attribute into it without knowing the worker.
                        profiler::install_worker_phases(phases);
                        let mut scratch = Vec::new();
                        let mut checks: Vec<(PartyId, PendingCheck)> = Vec::new();
                        // Exits on PoolJob::Stop or a closed queue alike.
                        let mut idle_start = Instant::now();
                        while let Ok(job) = rx.recv() {
                            let busy_start = Instant::now();
                            profiler::record_phase(
                                WorkerPhase::Idle,
                                busy_start.duration_since(idle_start),
                            );
                            match job {
                                PoolJob::Run(slot) => {
                                    metrics.runqueue_depth.add(-1);
                                    let reinject = run_slot(&slot, &mut scratch, &mut checks);
                                    if reinject {
                                        metrics.runqueue_depth.add(1);
                                        let _ = injector.send(PoolJob::Run(slot.clone()));
                                    }
                                    // Submit deferred checks only after the
                                    // host lock is released; the submission
                                    // that crosses the size threshold settles
                                    // the batch right here, overlapping with
                                    // other workers' share processing.
                                    if !checks.is_empty()
                                        && agg.submit(&slot, std::mem::take(&mut checks))
                                    {
                                        let _settle =
                                            profiler::PhaseScope::enter(WorkerPhase::BatchSettle);
                                        run_flush(&agg, &injector, &metrics, FlushReason::Size);
                                    }
                                }
                                PoolJob::Flush(reason) => {
                                    let _settle =
                                        profiler::PhaseScope::enter(WorkerPhase::BatchSettle);
                                    run_flush(&agg, &injector, &metrics, reason);
                                }
                                PoolJob::Stop => break,
                            }
                            let spent = busy_start.elapsed();
                            busy.record(spent);
                            metrics.worker_busy_nanos.add(spent.as_nanos() as u64);
                            idle_start = Instant::now();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { injector, workers }
    }

    /// The producer handle the router schedules slots through.
    pub(crate) fn injector(&self) -> &Sender<PoolJob> {
        &self.injector
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // One Stop per worker — each consumes exactly one and exits;
        // join so no worker outlives the node it belongs to.
        for _ in &self.workers {
            let _ = self.injector.send(PoolJob::Stop);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use theta_sync::atomic::Ordering;

    /// Repeat-run interleaving harness for the mailbox/run-queue
    /// handoff: one producer races one consumer over a shared slot-like
    /// pair of (mailbox, scheduled flag). Every message must be applied
    /// exactly once, in order, and the consumer must never run
    /// concurrently with itself (asserted via `try_lock`).
    #[test]
    fn handoff_interleaving_never_loses_messages() {
        const MSGS: u64 = 200;
        let rounds: u64 = if cfg!(debug_assertions) { 40 } else { 200 };
        for round in 0..rounds {
            let mailbox: Arc<Mailbox<u64>> = Arc::new(Mailbox::new(usize::MAX));
            let scheduled = Arc::new(AtomicBool::new(false));
            let seen = Arc::new(Mutex::new(Vec::new()));
            let (tx, rx) = unbounded::<()>();

            let producer = {
                let mailbox = mailbox.clone();
                let scheduled = scheduled.clone();
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..MSGS {
                        mailbox.try_push(i).unwrap();
                        if !scheduled.swap(true, Ordering::SeqCst) {
                            tx.send(()).unwrap();
                        }
                        if i % 16 == round % 16 {
                            std::thread::yield_now();
                        }
                    }
                })
            };
            drop(tx);

            let consumer = {
                let mailbox = mailbox.clone();
                let scheduled = scheduled.clone();
                let seen = seen.clone();
                std::thread::spawn(move || {
                    let mut scratch = Vec::new();
                    while let Ok(()) = rx.recv() {
                        loop {
                            {
                                // Mirrors run_slot's exclusive-host claim.
                                let mut out = seen.try_lock().expect("concurrent drain");
                                loop {
                                    mailbox.drain_into(&mut scratch);
                                    if scratch.is_empty() {
                                        break;
                                    }
                                    out.extend(scratch.drain(..));
                                }
                            }
                            if !unschedule(&mailbox, &scheduled) {
                                break;
                            }
                        }
                    }
                })
            };

            producer.join().unwrap();
            consumer.join().unwrap();
            let seen = seen.lock().unwrap();
            assert_eq!(*seen, (0..MSGS).collect::<Vec<_>>(), "round {round}");
            assert!(mailbox.is_empty());
        }
    }
}
