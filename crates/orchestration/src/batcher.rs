//! The cross-instance batch aggregator (pool-scoped share verification).
//!
//! Per-instance lazy batching (PR 3) amortizes verification *within*
//! one instance: at most `quorum` checks fold into one MSM. Under many
//! concurrent instances the bigger win is folding checks *across*
//! instances: every pending DLEQ proof in the pool — whatever instance,
//! whatever Fiat–Shamir domain — verifies as one random-linear-
//! combination MSM, and every pending pairing check as one multi-Miller
//! pairing product, via [`theta_schemes::batch::settle_mixed`].
//!
//! The flow:
//!
//! 1. pooled-mode protocols defer each share's check as a detached
//!    [`PendingCheck`]; the worker that drained the instance submits
//!    them here ([`BatchAggregator::submit`]);
//! 2. the submission that crosses `flush_size` claims the flush duty
//!    (the [`crate::handshake::batch_submit`] handshake — model-checked
//!    under loom) and that same worker settles the batch off the
//!    router thread;
//! 3. checks that never see a size crossing are picked up by the
//!    router's age trigger (`flush_age`), which claims the duty and
//!    injects a [`crate::worker_pool::PoolJob::Flush`] so the crypto
//!    still runs on a worker;
//! 4. verdicts travel back to each instance through its regular
//!    mailbox ([`HostMsg::Verdicts`]) — the same single-writer
//!    scheduling handshake as every other host message, so protocol
//!    state stays lock-free.
//!
//! A failed batch never poisons innocent instances:
//! [`theta_schemes::batch::settle_mixed`] bisects down to the exact
//! culprit checks, and each instance receives only its own per-party
//! verdicts. Verdicts whose mailbox push fails are dropped — the share
//! simply stays unverified and the next P2P retransmission re-enqueues
//! its check (re-deliveries of the identical payload re-enter the
//! outbox), so a lost flush degrades latency, never safety.

use crate::handshake::{batch_claim, batch_finish, batch_submit, batch_take};
use crate::instance_host::HostMsg;
use crate::mailbox::PushError;
use crate::worker_pool::{schedule, InstanceSlot, PoolJob};
use crossbeam::channel::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};
use theta_metrics::PoolMetrics;
use theta_schemes::batch::{settle_mixed, PendingCheck};
use theta_schemes::PartyId;
use theta_sync::atomic::AtomicBool;
use theta_sync::Mutex;

/// Why a batch flush fired (the `reason` label on
/// `theta_batch_flushes_total` and in the per-instance trace journal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FlushReason {
    /// The pending list reached `flush_size`.
    Size,
    /// The oldest pending check aged past `flush_age`.
    Age,
    /// Node shutdown: settle whatever is pending so draining instances
    /// can still reach quorum.
    Shutdown,
}

impl FlushReason {
    pub(crate) fn label(self) -> &'static str {
        match self {
            FlushReason::Size => "size",
            FlushReason::Age => "age",
            FlushReason::Shutdown => "shutdown",
        }
    }
}

/// One deferred share check, waiting for a batch settle.
pub(crate) struct PendingVerify {
    /// The instance the verdict goes back to.
    slot: Arc<InstanceSlot>,
    /// The party whose share the check validates.
    party: PartyId,
    /// The detached statement + proof.
    check: PendingCheck,
    /// When the check entered the pool (drives the age flush).
    enqueued: Instant,
}

/// The pool-wide aggregator: one per node, shared by every worker and
/// the router.
pub(crate) struct BatchAggregator {
    pending: Mutex<Vec<PendingVerify>>,
    flush_claimed: AtomicBool,
    flush_size: usize,
    flush_age: Duration,
}

impl BatchAggregator {
    pub(crate) fn new(flush_size: usize, flush_age: Duration) -> BatchAggregator {
        BatchAggregator {
            pending: Mutex::new(Vec::new()),
            flush_claimed: AtomicBool::new(false),
            // A zero size would make `batch_finish` re-claim forever on
            // an empty list.
            flush_size: flush_size.max(1),
            flush_age,
        }
    }

    /// Adds one instance's drained checks to the pool. Returns `true`
    /// when this submission crossed the size threshold and the caller
    /// (a worker, by construction) must run [`run_flush`].
    pub(crate) fn submit(
        &self,
        slot: &Arc<InstanceSlot>,
        checks: Vec<(PartyId, PendingCheck)>,
    ) -> bool {
        let now = Instant::now();
        let items = checks.into_iter().map(|(party, check)| PendingVerify {
            slot: slot.clone(),
            party,
            check,
            enqueued: now,
        });
        batch_submit(&self.pending, &self.flush_claimed, items, self.flush_size)
    }

    /// When the age-based flush for the oldest pending check is due
    /// (the router folds this into its timer deadline).
    pub(crate) fn next_age_flush(&self) -> Option<Instant> {
        let p = self.pending.lock().expect("batch list poisoned");
        p.first().map(|v| v.enqueued + self.flush_age)
    }

    /// Router-side age trigger: claims the flush duty iff a pending
    /// check has aged out and no flush is already running. The caller
    /// must then hand a [`PoolJob::Flush`] to the pool — the settle
    /// itself never runs on the router thread.
    pub(crate) fn claim_if_aged(&self, now: Instant) -> bool {
        let due = match self.next_age_flush() {
            Some(t) => t <= now,
            None => false,
        };
        due && batch_claim(&self.flush_claimed)
    }

    /// Unconditional claim for the shutdown flush. `false` means a
    /// flush is already in progress (which will settle the same checks).
    pub(crate) fn claim_for_shutdown(&self) -> bool {
        batch_claim(&self.flush_claimed)
    }
}

/// Settles batches until the flush duty hands back clean: take the
/// pending list, verify it as one cross-instance equation (bisecting
/// culprits on failure), and mail each instance its own verdicts. Runs
/// on a worker thread; the caller must hold the flush claim (from
/// [`BatchAggregator::submit`], [`BatchAggregator::claim_if_aged`] or
/// [`BatchAggregator::claim_for_shutdown`]).
pub(crate) fn run_flush(
    agg: &BatchAggregator,
    injector: &Sender<PoolJob>,
    metrics: &PoolMetrics,
    reason: FlushReason,
) {
    loop {
        let batch = batch_take(&agg.pending);
        if !batch.is_empty() {
            settle_batch(&batch, injector, metrics, reason);
        }
        if !batch_finish(&agg.pending, &agg.flush_claimed, agg.flush_size) {
            return;
        }
    }
}

fn settle_batch(
    batch: &[PendingVerify],
    injector: &Sender<PoolJob>,
    metrics: &PoolMetrics,
    reason: FlushReason,
) {
    metrics.batch_size.record_micros(batch.len() as u64);
    match reason {
        FlushReason::Size => metrics.batch_flushes_size.inc(),
        FlushReason::Age => metrics.batch_flushes_age.inc(),
        FlushReason::Shutdown => metrics.batch_flushes_shutdown.inc(),
    }
    let checks: Vec<&PendingCheck> = batch.iter().map(|v| &v.check).collect();
    let verdicts = settle_mixed(&checks);
    // Group verdicts per instance, preserving arrival order within each
    // group. Batches are small (≈flush_size), so a linear scan beats a
    // map here.
    type InstanceVerdicts<'a> = (&'a Arc<InstanceSlot>, Vec<(PartyId, bool)>);
    let mut grouped: Vec<InstanceVerdicts<'_>> = Vec::new();
    for (v, ok) in batch.iter().zip(verdicts) {
        match grouped.iter_mut().find(|(slot, _)| slot.id == v.slot.id) {
            Some((_, list)) => list.push((v.party, ok)),
            None => grouped.push((&v.slot, vec![(v.party, ok)])),
        }
    }
    for (slot, instance_verdicts) in grouped {
        // A Closed push means the instance already finished (its quorum
        // settled in an earlier batch) — the verdicts are moot, the
        // normal residual case. A Full push loses the verdicts, but the
        // next P2P retransmission re-enqueues the affected checks, so
        // count it like any other mailbox drop.
        if let Err(PushError::Full) = schedule(
            slot,
            injector,
            metrics,
            HostMsg::Verdicts {
                verdicts: instance_verdicts,
                batch_size: batch.len(),
                reason: reason.label(),
            },
        ) {
            metrics.mailbox_dropped.inc();
        }
    }
}
