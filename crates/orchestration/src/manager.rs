//! The instance manager / protocol executor event loop.

use crate::{Envelope, InstanceId, KeyChest, Request};
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use theta_codec::{Decode, Encode};
use theta_network::{Network, NetworkEvent};
use theta_protocols::kg20_protocol::Kg20Sign;
use theta_protocols::one_round::{
    Bls04Sign, Bz03Decrypt, Cks05Coin, OneRoundProtocol, Sg02Decrypt, Sh00Sign,
};
use theta_protocols::{
    InboundMessage, ProtocolOutput, RoundOutput, ThresholdRoundProtocol, Transport,
};
use theta_schemes::{PartyId, SchemeError};

/// Node-level configuration knobs.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Instances with no progress past this deadline are failed.
    pub instance_timeout: Duration,
    /// Use the KG20 precomputed-nonce stock when available.
    pub use_precomputed_nonces: bool,
    /// RNG seed (`None` = entropy from the OS).
    pub rng_seed: Option<u64>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            instance_timeout: Duration::from_secs(30),
            use_precomputed_nonces: true,
            rng_seed: None,
        }
    }
}

/// A pending result: completion data for one submitted request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceResult {
    /// The instance this result belongs to.
    pub instance: InstanceId,
    /// The protocol output or the failure that ended the instance.
    pub outcome: Result<ProtocolOutput, SchemeError>,
    /// Server-side latency: submission (or first message) to completion.
    pub elapsed: Duration,
}

/// Receiver half for one submitted request.
pub struct PendingResult {
    rx: Receiver<InstanceResult>,
}

impl PendingResult {
    /// Blocks until the instance completes or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<InstanceResult> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking poll.
    pub fn try_take(&self) -> Option<InstanceResult> {
        self.rx.try_recv().ok()
    }
}

enum Command {
    Submit { request: Request, reply: Sender<InstanceResult> },
    Shutdown,
}

/// Handle to a running Thetacrypt node (the manager thread).
pub struct NodeHandle {
    tx: Sender<Command>,
    join: Option<std::thread::JoinHandle<()>>,
    party: PartyId,
}

impl NodeHandle {
    /// Submits a request; the returned [`PendingResult`] resolves when
    /// the Θ-network completes the instance at this node.
    pub fn submit(&self, request: Request) -> PendingResult {
        let (reply_tx, reply_rx) = unbounded();
        let _ = self.tx.send(Command::Submit { request, reply: reply_tx });
        PendingResult { rx: reply_rx }
    }

    /// This node's party id.
    pub fn party(&self) -> PartyId {
        self.party
    }

    /// Stops the manager thread (in-flight instances are dropped).
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Command::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Spawns the instance-manager event loop for one node.
pub fn spawn_node(
    keys: KeyChest,
    network: Box<dyn Network>,
    config: NodeConfig,
) -> NodeHandle {
    let (tx, rx) = unbounded::<Command>();
    let party = PartyId(network.node_id());
    let join = std::thread::Builder::new()
        .name(format!("theta-node-{}", party.value()))
        .spawn(move || InstanceManager::new(keys, network, config, rx).run())
        .expect("spawn node thread");
    NodeHandle { tx, join: Some(join), party }
}

struct LiveInstance {
    protocol: Box<dyn ThresholdRoundProtocol>,
    request: Request,
    subscribers: Vec<Sender<InstanceResult>>,
    started: Instant,
    deadline: Instant,
}

struct InstanceManager {
    keys: KeyChest,
    network: Box<dyn Network>,
    config: NodeConfig,
    commands: Receiver<Command>,
    instances: HashMap<InstanceId, LiveInstance>,
    finished: HashMap<InstanceId, InstanceResult>,
    rng: rand::rngs::StdRng,
}

impl InstanceManager {
    fn new(
        keys: KeyChest,
        network: Box<dyn Network>,
        config: NodeConfig,
        commands: Receiver<Command>,
    ) -> Self {
        let rng = match config.rng_seed {
            Some(seed) => rand::rngs::StdRng::seed_from_u64(seed),
            None => rand::rngs::StdRng::from_entropy(),
        };
        InstanceManager {
            keys,
            network,
            config,
            commands,
            instances: HashMap::new(),
            finished: HashMap::new(),
            rng,
        }
    }

    fn run(mut self) {
        loop {
            // Drain local commands.
            loop {
                match self.commands.try_recv() {
                    Ok(Command::Submit { request, reply }) => self.handle_submit(request, reply),
                    Ok(Command::Shutdown) => return,
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => return,
                }
            }
            // Pump the network.
            if let Some(event) = self.network.recv_timeout(Duration::from_micros(500)) {
                self.handle_network_event(event);
            }
            self.expire_instances();
        }
    }

    fn handle_submit(&mut self, request: Request, reply: Sender<InstanceResult>) {
        let id = request.instance_id();
        if let Some(done) = self.finished.get(&id) {
            let _ = reply.send(done.clone());
            return;
        }
        if let Some(live) = self.instances.get_mut(&id) {
            live.subscribers.push(reply);
            return;
        }
        match self.start_instance(&request) {
            Ok(()) => {
                if let Some(live) = self.instances.get_mut(&id) {
                    live.subscribers.push(reply);
                } else if let Some(done) = self.finished.get(&id) {
                    // The instance already finished during start (n = 1).
                    let _ = reply.send(done.clone());
                }
            }
            Err(err) => {
                let _ = reply.send(InstanceResult {
                    instance: id,
                    outcome: Err(err),
                    elapsed: Duration::ZERO,
                });
            }
        }
    }

    fn build_protocol(
        &mut self,
        request: &Request,
    ) -> Result<Box<dyn ThresholdRoundProtocol>, SchemeError> {
        let malformed = |e: theta_codec::CodecError| SchemeError::Malformed(e.to_string());
        match request {
            Request::Sg02Decrypt(bytes) => {
                let key = self.keys.sg02.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no sg02 key provisioned".into())
                })?;
                let ct = theta_schemes::sg02::Ciphertext::decoded(bytes).map_err(malformed)?;
                Ok(Box::new(OneRoundProtocol::new(Sg02Decrypt::new(key, ct))))
            }
            Request::Bz03Decrypt(bytes) => {
                let key = self.keys.bz03.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no bz03 key provisioned".into())
                })?;
                let ct = theta_schemes::bz03::Ciphertext::decoded(bytes).map_err(malformed)?;
                Ok(Box::new(OneRoundProtocol::new(Bz03Decrypt::new(key, ct))))
            }
            Request::Sh00Sign(message) => {
                let key = self.keys.sh00.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no sh00 key provisioned".into())
                })?;
                Ok(Box::new(OneRoundProtocol::new(Sh00Sign::new(key, message.clone()))))
            }
            Request::Bls04Sign(message) => {
                let key = self.keys.bls04.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no bls04 key provisioned".into())
                })?;
                Ok(Box::new(OneRoundProtocol::new(Bls04Sign::new(key, message.clone()))))
            }
            Request::Kg20Sign(message) => {
                let key = self.keys.kg20.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no kg20 key provisioned".into())
                })?;
                let nonce = if self.config.use_precomputed_nonces {
                    self.keys.kg20_nonces.pop_front()
                } else {
                    None
                };
                Ok(Box::new(match nonce {
                    Some(n) => Kg20Sign::with_precomputed_nonce(key, message.clone(), n),
                    None => Kg20Sign::new(key, message.clone()),
                }))
            }
            Request::Cks05Coin(name) => {
                let key = self.keys.cks05.clone().ok_or_else(|| {
                    SchemeError::KeyMismatch("no cks05 key provisioned".into())
                })?;
                Ok(Box::new(OneRoundProtocol::new(Cks05Coin::new(key, name.clone()))))
            }
        }
    }

    fn start_instance(&mut self, request: &Request) -> Result<(), SchemeError> {
        let id = request.instance_id();
        let mut protocol = self.build_protocol(request)?;
        let output = protocol.do_round(&mut self.rng)?;
        let now = Instant::now();
        self.instances.insert(
            id,
            LiveInstance {
                protocol,
                request: request.clone(),
                subscribers: Vec::new(),
                started: now,
                deadline: now + self.config.instance_timeout,
            },
        );
        self.dispatch_round_output(id, output);
        self.poll_instance(id);
        Ok(())
    }

    fn dispatch_round_output(&mut self, id: InstanceId, output: RoundOutput) {
        let Some(live) = self.instances.get(&id) else { return };
        let sender = self.network.node_id();
        for msg in output.messages {
            let envelope = Envelope {
                instance: id,
                request: live.request.clone(),
                round: msg.round,
                sender,
                payload: msg.payload,
            };
            let bytes = envelope.encoded();
            match msg.transport {
                Transport::P2p => self.network.broadcast_p2p(bytes),
                Transport::Tob => self.network.submit_tob(bytes),
            }
        }
    }

    fn handle_network_event(&mut self, event: NetworkEvent) {
        let (from, payload, via_tob) = match event {
            NetworkEvent::P2p { from, payload } => (from, payload, false),
            NetworkEvent::Tob { from, payload, .. } => (from, payload, true),
        };
        let Ok(envelope) = Envelope::decoded(&payload) else {
            return; // malformed traffic is dropped
        };
        if envelope.sender != from && !via_tob {
            return; // spoofed sender field
        }
        let id = envelope.instance;
        if self.finished.contains_key(&id) {
            return; // residual message for a completed request
        }
        if !self.instances.contains_key(&id) {
            // First contact: start our own instance from the embedded
            // request (validates against our keys).
            if envelope.request.instance_id() != id {
                return;
            }
            if self.start_instance(&envelope.request).is_err() {
                return;
            }
        }
        // TOB self-deliveries carry our own messages back; skip those.
        if envelope.sender == self.network.node_id() {
            return;
        }
        let inbound = InboundMessage {
            sender: PartyId(envelope.sender),
            round: envelope.round,
            payload: envelope.payload,
        };
        if let Some(live) = self.instances.get_mut(&id) {
            // Invalid messages are logged-and-dropped; the instance lives on.
            let _ = live.protocol.update(&inbound);
        }
        self.poll_instance(id);
    }

    /// Advances rounds and finalizes when ready.
    fn poll_instance(&mut self, id: InstanceId) {
        loop {
            let Some(live) = self.instances.get_mut(&id) else { return };
            if live.protocol.is_ready_for_next_round() {
                match live.protocol.do_round(&mut self.rng) {
                    Ok(out) => {
                        self.dispatch_round_output(id, out);
                        continue;
                    }
                    Err(err) => {
                        self.finish_instance(id, Err(err));
                        return;
                    }
                }
            }
            if live.protocol.is_ready_to_finalize() {
                let outcome = live.protocol.finalize();
                self.finish_instance(id, outcome);
            }
            return;
        }
    }

    fn finish_instance(&mut self, id: InstanceId, outcome: Result<ProtocolOutput, SchemeError>) {
        if let Some(live) = self.instances.remove(&id) {
            let result = InstanceResult {
                instance: id,
                outcome,
                elapsed: live.started.elapsed(),
            };
            for sub in &live.subscribers {
                let _ = sub.send(result.clone());
            }
            self.finished.insert(id, result);
        }
    }

    fn expire_instances(&mut self) {
        let now = Instant::now();
        let expired: Vec<InstanceId> = self
            .instances
            .iter()
            .filter(|(_, live)| live.deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            self.finish_instance(
                id,
                Err(SchemeError::NotEnoughShares { have: 0, need: 0 }),
            );
            // Re-tag the generic timeout error with context.
            if let Some(r) = self.finished.get_mut(&id) {
                r.outcome = Err(SchemeError::InvalidShareSet(
                    "instance timed out before reaching quorum".into(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use theta_network::inmemory::{InMemoryConfig, InMemoryHub};
    use theta_schemes::ThresholdParams;

    fn seeded() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x0a0a)
    }

    fn build_network(n: u16) -> (InMemoryHub, Vec<Box<dyn Network>>) {
        let (hub, nodes) = InMemoryHub::build(n, InMemoryConfig::default());
        let boxed = nodes
            .into_iter()
            .map(|n| Box::new(n) as Box<dyn Network>)
            .collect();
        (hub, boxed)
    }

    fn full_chests(t: u16, n: u16, r: &mut rand::rngs::StdRng) -> Vec<KeyChest> {
        let params = ThresholdParams::new(t, n).unwrap();
        let (_, sg02) = theta_schemes::sg02::keygen(params, r);
        let (_, bls04) = theta_schemes::bls04::keygen(params, r);
        let (_, cks05) = theta_schemes::cks05::keygen(params, r);
        let (_, kg20) = theta_schemes::kg20::keygen(params, r);
        let mut chests: Vec<KeyChest> = (0..n).map(|_| KeyChest::new()).collect();
        for (i, chest) in chests.iter_mut().enumerate() {
            chest.sg02 = Some(sg02[i].clone());
            chest.bls04 = Some(bls04[i].clone());
            chest.cks05 = Some(cks05[i].clone());
            chest.kg20 = Some(kg20[i].clone());
        }
        chests
    }

    fn spawn_all(chests: Vec<KeyChest>, nets: Vec<Box<dyn Network>>) -> Vec<NodeHandle> {
        chests
            .into_iter()
            .zip(nets)
            .map(|(chest, net)| {
                spawn_node(
                    chest,
                    net,
                    NodeConfig { instance_timeout: Duration::from_secs(10), ..Default::default() },
                )
            })
            .collect()
    }

    const WAIT: Duration = Duration::from_secs(15);

    #[test]
    fn coin_request_end_to_end() {
        let mut r = seeded();
        let (_hub, nets) = build_network(4);
        let handles = spawn_all(full_chests(1, 4, &mut r), nets);
        let pending: Vec<PendingResult> = handles
            .iter()
            .map(|h| h.submit(Request::Cks05Coin(b"round-1".to_vec())))
            .collect();
        let mut outputs = Vec::new();
        for p in pending {
            let result = p.wait_timeout(WAIT).expect("completion");
            outputs.push(result.outcome.expect("coin value"));
        }
        for o in &outputs[1..] {
            assert_eq!(*o, outputs[0]);
        }
    }

    #[test]
    fn bls_sign_only_quorum_submits() {
        // Only 2 of 4 applications ask; shares from all 4 nodes are not
        // needed — but only submitting nodes *start* instances, so the
        // other two nodes join on first contact via the envelope request.
        let mut r = seeded();
        let (_hub, nets) = build_network(4);
        let handles = spawn_all(full_chests(1, 4, &mut r), nets);
        let p0 = handles[0].submit(Request::Bls04Sign(b"block".to_vec()));
        let p2 = handles[2].submit(Request::Bls04Sign(b"block".to_vec()));
        let r0 = p0.wait_timeout(WAIT).expect("node 1 result");
        let r2 = p2.wait_timeout(WAIT).expect("node 3 result");
        assert_eq!(r0.outcome.unwrap(), r2.outcome.unwrap());
    }

    #[test]
    fn kg20_two_round_through_manager() {
        let mut r = seeded();
        let (_hub, nets) = build_network(3);
        let handles = spawn_all(full_chests(0, 3, &mut r), nets);
        let pending: Vec<PendingResult> = handles
            .iter()
            .map(|h| h.submit(Request::Kg20Sign(b"frost via manager".to_vec())))
            .collect();
        for p in pending {
            let result = p.wait_timeout(WAIT).expect("completion");
            let out = result.outcome.expect("signature");
            assert!(matches!(out, ProtocolOutput::Signature(_)));
        }
    }

    #[test]
    fn duplicate_submission_attaches_to_same_instance() {
        let mut r = seeded();
        let (_hub, nets) = build_network(4);
        let handles = spawn_all(full_chests(1, 4, &mut r), nets);
        for h in &handles[1..] {
            let _ = h.submit(Request::Cks05Coin(b"dup".to_vec()));
        }
        let first = handles[0].submit(Request::Cks05Coin(b"dup".to_vec()));
        let second = handles[0].submit(Request::Cks05Coin(b"dup".to_vec()));
        let a = first.wait_timeout(WAIT).unwrap();
        let b = second.wait_timeout(WAIT).unwrap();
        assert_eq!(a.outcome.unwrap(), b.outcome.unwrap());
        assert_eq!(a.instance, b.instance);
    }

    #[test]
    fn missing_key_fails_fast() {
        let (_hub, mut nets) = build_network(1);
        let handle = spawn_node(KeyChest::new(), nets.pop().unwrap(), NodeConfig::default());
        let pending = handle.submit(Request::Bls04Sign(b"x".to_vec()));
        let result = pending.wait_timeout(Duration::from_secs(5)).expect("fast failure");
        assert!(matches!(result.outcome, Err(SchemeError::KeyMismatch(_))));
    }

    #[test]
    fn crash_tolerance_with_t_failures() {
        // 4 nodes, t = 1: isolate one node; the other 3 still decrypt.
        let mut r = seeded();
        let (hub, nets) = build_network(4);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, sg02_keys) = theta_schemes::sg02::keygen(params, &mut r);
        let mut chests: Vec<KeyChest> = (0..4).map(|_| KeyChest::new()).collect();
        for (i, chest) in chests.iter_mut().enumerate() {
            chest.sg02 = Some(sg02_keys[i].clone());
        }
        let handles = spawn_all(chests, nets);
        hub.isolate_node(4, true);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"crash test", &mut r);
        let pending: Vec<PendingResult> = handles[..3]
            .iter()
            .map(|h| h.submit(Request::Sg02Decrypt(theta_codec::Encode::encoded(&ct))))
            .collect();
        for p in pending {
            let result = p.wait_timeout(WAIT).expect("completion despite crash");
            assert_eq!(
                result.outcome.unwrap(),
                ProtocolOutput::Plaintext(b"crash test".to_vec())
            );
        }
    }

    #[test]
    fn timeout_reported_when_quorum_unreachable() {
        // 4 nodes, t = 2 (quorum 3), but only 2 nodes are reachable.
        let mut r = seeded();
        let (hub, nets) = build_network(4);
        let params = ThresholdParams::new(2, 4).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let mut chests: Vec<KeyChest> = (0..4).map(|_| KeyChest::new()).collect();
        for (i, chest) in chests.iter_mut().enumerate() {
            chest.sg02 = Some(keys[i].clone());
        }
        let handles: Vec<NodeHandle> = chests
            .into_iter()
            .zip(nets)
            .map(|(chest, net)| {
                spawn_node(
                    chest,
                    net,
                    NodeConfig {
                        instance_timeout: Duration::from_millis(500),
                        ..Default::default()
                    },
                )
            })
            .collect();
        hub.isolate_node(3, true);
        hub.isolate_node(4, true);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"unreachable", &mut r);
        let pending = handles[0].submit(Request::Sg02Decrypt(theta_codec::Encode::encoded(&ct)));
        let result = pending.wait_timeout(WAIT).expect("timeout result");
        assert!(result.outcome.is_err());
    }
}
