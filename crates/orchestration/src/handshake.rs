//! The producer/consumer scheduling handshake, in one place.
//!
//! These three functions are the entire lock-free core of the worker
//! pool: the router runs [`schedule_core`], a worker runs
//! [`drain_apply`] followed by [`unschedule`]. They are extracted from
//! `worker_pool` (which calls them on the real run queue) so that the
//! loom models in `tests/loom.rs` exercise *this exact code* — not a
//! test-only re-implementation — against every interleaving.
//!
//! # The invariant
//!
//! The `scheduled` flag means "the slot is on the run queue or a worker
//! is draining it". The protocol:
//!
//! - **Producer** (`schedule_core`): push the message *first*, then
//!   `swap(true)`. If the swap returned `false` the slot was idle and
//!   the producer owns the duty of enqueueing it — exactly one
//!   enqueuer per idle→scheduled transition.
//! - **Consumer** (`unschedule`): runs only after draining the mailbox
//!   to empty. `store(false)` first, then re-check the mailbox; if a
//!   message is present, try to re-claim with `swap(true)`.
//!
//! Because the producer's push happens before its swap, a message can
//! be missed by both sides only if the consumer's emptiness re-check
//! happened before the push *and* the producer's swap returned `true`
//! (someone scheduled) — but the consumer had already stored `false`,
//! so the swap returns `false` and the producer enqueues. The loom
//! models verify this exhaustively rather than taking the prose on
//! faith.

use crate::mailbox::{Mailbox, PushError};
use theta_sync::atomic::{AtomicBool, Ordering};

/// Producer-side handshake: enqueue `msg` and, iff the slot was idle,
/// call `enqueue` (which must place the slot on the run queue).
///
/// # Errors
///
/// Propagates the mailbox bound ([`PushError::Full`]) or closure
/// ([`PushError::Closed`]); the message is dropped in either case and
/// the slot is *not* scheduled for it.
pub fn schedule_core<T>(
    mailbox: &Mailbox<T>,
    scheduled: &AtomicBool,
    msg: T,
    enqueue: impl FnOnce(),
) -> Result<(), PushError> {
    mailbox.try_push(msg)?;
    // SeqCst: the push above must be ordered before this swap so that a
    // consumer observing `scheduled == false` in `unschedule` and then
    // re-checking the mailbox cannot miss the message. Under any weaker
    // ordering the push could be reordered past the swap and the
    // handshake's "push-then-flag" argument collapses.
    if !scheduled.swap(true, Ordering::SeqCst) {
        enqueue();
    }
    Ok(())
}

/// Consumer-side handshake, run *after* the mailbox was drained to
/// empty and the host lock released: clears the scheduled flag, then
/// re-claims the slot iff a producer slipped a message in between.
/// Returns `true` when the caller must put the slot back on the run
/// queue.
pub fn unschedule<T>(mailbox: &Mailbox<T>, scheduled: &AtomicBool) -> bool {
    // SeqCst: the store must not sink below the emptiness re-check, or
    // a producer could push + see `scheduled == true` (stale) while we
    // see an empty mailbox (stale) — the lost-wakeup this module
    // exists to prevent.
    scheduled.store(false, Ordering::SeqCst);
    // Producer order is push-then-swap, so either we see its message
    // here, or it saw our store and scheduled the slot itself — a
    // message can be missed by both sides only if it was never pushed.
    !mailbox.is_empty() && !scheduled.swap(true, Ordering::SeqCst)
}

/// Consumer-side drain loop: repeatedly swaps the mailbox contents out
/// and applies them in FIFO order until an observation finds it empty.
/// `scratch` is the caller's reusable buffer (workers keep one per
/// thread to avoid per-drain allocation).
pub fn drain_apply<T>(mailbox: &Mailbox<T>, scratch: &mut Vec<T>, mut apply: impl FnMut(T)) {
    loop {
        mailbox.drain_into(scratch);
        if scratch.is_empty() {
            break;
        }
        for msg in scratch.drain(..) {
            apply(msg);
        }
    }
}
