//! The producer/consumer scheduling handshake, in one place.
//!
//! These three functions are the entire lock-free core of the worker
//! pool: the router runs [`schedule_core`], a worker runs
//! [`drain_apply`] followed by [`unschedule`]. They are extracted from
//! `worker_pool` (which calls them on the real run queue) so that the
//! loom models in `tests/loom.rs` exercise *this exact code* — not a
//! test-only re-implementation — against every interleaving.
//!
//! # The invariant
//!
//! The `scheduled` flag means "the slot is on the run queue or a worker
//! is draining it". The protocol:
//!
//! - **Producer** (`schedule_core`): push the message *first*, then
//!   `swap(true)`. If the swap returned `false` the slot was idle and
//!   the producer owns the duty of enqueueing it — exactly one
//!   enqueuer per idle→scheduled transition.
//! - **Consumer** (`unschedule`): runs only after draining the mailbox
//!   to empty. `store(false)` first, then re-check the mailbox; if a
//!   message is present, try to re-claim with `swap(true)`.
//!
//! Because the producer's push happens before its swap, a message can
//! be missed by both sides only if the consumer's emptiness re-check
//! happened before the push *and* the producer's swap returned `true`
//! (someone scheduled) — but the consumer had already stored `false`,
//! so the swap returns `false` and the producer enqueues. The loom
//! models verify this exhaustively rather than taking the prose on
//! faith.

//! # The batch-flush handshake
//!
//! The cross-instance batch aggregator reuses the same shape with a
//! second flag, `flush_claimed` ("some thread is settling a batch right
//! now"): submitters push under the pending-list lock and the one whose
//! push crosses the size threshold claims the flush duty
//! ([`batch_submit`]); the flusher swaps the list out ([`batch_take`]),
//! settles it, then hands the duty back ([`batch_finish`]) — which,
//! exactly like `unschedule`, re-checks the list *after* releasing the
//! flag and re-claims if submissions crossed the threshold mid-flush.
//! Checks enqueued during a flush below the threshold are not lost
//! either: they stay on the list for the age-based flush to collect.

use crate::mailbox::{Mailbox, PushError};
use theta_sync::atomic::{AtomicBool, Ordering};
use theta_sync::Mutex;

/// Producer-side handshake: enqueue `msg` and, iff the slot was idle,
/// call `enqueue` (which must place the slot on the run queue).
///
/// # Errors
///
/// Propagates the mailbox bound ([`PushError::Full`]) or closure
/// ([`PushError::Closed`]); the message is dropped in either case and
/// the slot is *not* scheduled for it.
pub fn schedule_core<T>(
    mailbox: &Mailbox<T>,
    scheduled: &AtomicBool,
    msg: T,
    enqueue: impl FnOnce(),
) -> Result<(), PushError> {
    mailbox.try_push(msg)?;
    // SeqCst: the push above must be ordered before this swap so that a
    // consumer observing `scheduled == false` in `unschedule` and then
    // re-checking the mailbox cannot miss the message. Under any weaker
    // ordering the push could be reordered past the swap and the
    // handshake's "push-then-flag" argument collapses.
    if !scheduled.swap(true, Ordering::SeqCst) {
        enqueue();
    }
    Ok(())
}

/// Consumer-side handshake, run *after* the mailbox was drained to
/// empty and the host lock released: clears the scheduled flag, then
/// re-claims the slot iff a producer slipped a message in between.
/// Returns `true` when the caller must put the slot back on the run
/// queue.
pub fn unschedule<T>(mailbox: &Mailbox<T>, scheduled: &AtomicBool) -> bool {
    // SeqCst: the store must not sink below the emptiness re-check, or
    // a producer could push + see `scheduled == true` (stale) while we
    // see an empty mailbox (stale) — the lost-wakeup this module
    // exists to prevent.
    scheduled.store(false, Ordering::SeqCst);
    // Producer order is push-then-swap, so either we see its message
    // here, or it saw our store and scheduled the slot itself — a
    // message can be missed by both sides only if it was never pushed.
    !mailbox.is_empty() && !scheduled.swap(true, Ordering::SeqCst)
}

/// Consumer-side drain loop: repeatedly swaps the mailbox contents out
/// and applies them in FIFO order until an observation finds it empty.
/// `scratch` is the caller's reusable buffer (workers keep one per
/// thread to avoid per-drain allocation).
pub fn drain_apply<T>(mailbox: &Mailbox<T>, scratch: &mut Vec<T>, mut apply: impl FnMut(T)) {
    loop {
        mailbox.drain_into(scratch);
        if scratch.is_empty() {
            break;
        }
        for msg in scratch.drain(..) {
            apply(msg);
        }
    }
}

/// Submitter-side batch handshake: appends `items` to the shared
/// pending list and, iff the list reached `threshold` *and* no flush is
/// in progress, claims the flush duty. Returns `true` when the caller
/// now owns the duty and must run the flush loop
/// ([`batch_take`] → settle → [`batch_finish`] until it reports no
/// re-claim).
pub fn batch_submit<T>(
    pending: &Mutex<Vec<T>>,
    flush_claimed: &AtomicBool,
    items: impl IntoIterator<Item = T>,
    threshold: usize,
) -> bool {
    let len = {
        let mut p = pending.lock().expect("batch list poisoned");
        p.extend(items);
        p.len()
    };
    // Push-then-claim, mirroring schedule_core's push-then-swap: a
    // flusher that observes `flush_claimed == false` in `batch_finish`
    // and then re-checks the list cannot miss these items.
    len >= threshold
        && flush_claimed
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
}

/// Flusher-side: swaps the whole pending list out for settlement. Also
/// the shutdown drain (which takes unconditionally, without a claim,
/// after the workers have stopped).
pub fn batch_take<T>(pending: &Mutex<Vec<T>>) -> Vec<T> {
    std::mem::take(&mut *pending.lock().expect("batch list poisoned"))
}

/// Flusher-side hand-back, run *after* the taken batch was settled:
/// releases the flush duty, then re-checks the list; if submissions
/// crossed `threshold` mid-flush (their `batch_submit` saw the flag
/// held and could not claim), re-claims. Returns `true` when the caller
/// must run another take/settle round — the no-lost-size-flush
/// guarantee, same argument as [`unschedule`].
pub fn batch_finish<T>(
    pending: &Mutex<Vec<T>>,
    flush_claimed: &AtomicBool,
    threshold: usize,
) -> bool {
    flush_claimed.store(false, Ordering::SeqCst);
    let len = pending.lock().expect("batch list poisoned").len();
    len >= threshold
        && flush_claimed
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
}

/// Claims the flush duty outside the size path — the router's age-based
/// flush trigger and the shutdown flush use this. Returns `true` when
/// the claim succeeded (a flush is then owed, ending in
/// [`batch_finish`]); `false` means a flush is already in progress.
pub fn batch_claim(flush_claimed: &AtomicBool) -> bool {
    flush_claimed
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_handshake_claims_exactly_at_threshold() {
        let pending: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        let claimed = AtomicBool::new(false);
        assert!(!batch_submit(&pending, &claimed, [1], 3), "below threshold");
        assert!(!batch_submit(&pending, &claimed, [2], 3), "still below");
        assert!(batch_submit(&pending, &claimed, [3], 3), "crossing claims");
        // While the flush is claimed, further threshold crossings must
        // not claim a second flusher.
        assert!(!batch_submit(&pending, &claimed, [4, 5, 6], 3));
        let batch = batch_take(&pending);
        assert_eq!(batch, vec![1, 2, 3, 4, 5, 6]);
        // Nothing arrived mid-flush: the hand-back releases the duty.
        assert!(!batch_finish(&pending, &claimed, 3));
        assert!(!claimed.load(Ordering::SeqCst));
    }

    #[test]
    fn batch_finish_reclaims_when_submissions_crossed_mid_flush() {
        let pending: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        let claimed = AtomicBool::new(false);
        assert!(batch_submit(&pending, &claimed, [1, 2], 2));
        let first = batch_take(&pending);
        assert_eq!(first, vec![1, 2]);
        // A whole batch worth of checks lands while we are settling:
        // its submitter saw the flag held and did not claim.
        assert!(!batch_submit(&pending, &claimed, [3, 4], 2));
        // The hand-back must pick that duty up — otherwise the size
        // flush is lost and those checks wait for the age fallback.
        assert!(batch_finish(&pending, &claimed, 2), "mid-flush crossing must re-claim");
        assert_eq!(batch_take(&pending), vec![3, 4]);
        assert!(!batch_finish(&pending, &claimed, 2));
        // Sub-threshold leftovers do not spin the flush loop...
        assert!(!batch_submit(&pending, &claimed, [5], 2));
        assert!(batch_claim(&claimed), "age path can claim an idle duty");
        assert_eq!(batch_take(&pending), vec![5]);
        assert!(!batch_finish(&pending, &claimed, 2));
        // ...and a claim attempt during a flush is refused.
        assert!(batch_claim(&claimed));
        assert!(!batch_claim(&claimed));
    }
}
