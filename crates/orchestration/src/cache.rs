//! Bounded result cache for finished instances.
//!
//! The manager used to keep every completed instance in an unbounded
//! `HashMap` forever — a memory leak on any long-running node. This
//! cache bounds memory two ways:
//!
//! - **capacity**: beyond `capacity` entries the oldest insertion is
//!   evicted (FIFO — results are immutable, so recency of *access* does
//!   not make an entry more valuable, only recency of completion does);
//! - **TTL**: entries older than `ttl` are dropped lazily on access and
//!   eagerly on insert.
//!
//! Each insertion gets a generation number so a stale FIFO slot (from an
//! id that was evicted and later re-inserted) can never evict the fresh
//! entry by accident.

use crate::InstanceId;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

struct Entry<V> {
    value: V,
    generation: u64,
    inserted: Instant,
}

/// FIFO + TTL bounded map from [`InstanceId`] to a finished result.
pub(crate) struct ResultCache<V> {
    capacity: usize,
    ttl: Duration,
    map: HashMap<InstanceId, Entry<V>>,
    /// Insertion order as `(id, generation)` pairs; stale pairs (whose
    /// generation no longer matches the map) are skipped on pop.
    order: VecDeque<(InstanceId, u64)>,
    next_generation: u64,
}

impl<V> ResultCache<V> {
    pub(crate) fn new(capacity: usize, ttl: Duration) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            ttl,
            map: HashMap::new(),
            order: VecDeque::new(),
            next_generation: 0,
        }
    }

    /// Inserts (or replaces) `id`, then enforces TTL and capacity.
    /// Returns how many *other* entries were evicted.
    pub(crate) fn insert(&mut self, id: InstanceId, value: V, now: Instant) -> u64 {
        let generation = self.next_generation;
        self.next_generation += 1;
        self.map.insert(id, Entry { value, generation, inserted: now });
        self.order.push_back((id, generation));
        let mut evicted = 0;
        // TTL pass: the order queue is insertion-sorted, so expired
        // entries cluster at the front.
        while let Some(&(old_id, old_gen)) = self.order.front() {
            let matches_live = self
                .map
                .get(&old_id)
                .is_some_and(|e| e.generation == old_gen);
            if !matches_live {
                self.order.pop_front(); // superseded or already evicted
                continue;
            }
            let expired = self.map[&old_id].inserted + self.ttl <= now;
            if expired || self.map.len() > self.capacity {
                self.order.pop_front();
                self.map.remove(&old_id);
                evicted += 1;
                continue;
            }
            break;
        }
        evicted
    }

    /// Fetches `id`, dropping it instead when its TTL has lapsed.
    pub(crate) fn get(&mut self, id: &InstanceId, now: Instant) -> Option<&V> {
        if let Some(e) = self.map.get(id) {
            if e.inserted + self.ttl <= now {
                self.map.remove(id);
                return None;
            }
        }
        self.map.get(id).map(|e| &e.value)
    }

    /// True when `id` holds an unexpired entry.
    pub(crate) fn contains(&mut self, id: &InstanceId, now: Instant) -> bool {
        self.get(id, now).is_some()
    }

    /// Live entry count (may include TTL-lapsed entries not yet touched).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(b: u8) -> InstanceId {
        InstanceId([b; 32])
    }

    const LONG: Duration = Duration::from_secs(3600);

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut c = ResultCache::new(2, LONG);
        let now = Instant::now();
        assert_eq!(c.insert(id(1), "a", now), 0);
        assert_eq!(c.insert(id(2), "b", now), 0);
        assert_eq!(c.insert(id(3), "c", now), 1); // evicts id(1)
        assert!(c.get(&id(1), now).is_none());
        assert_eq!(c.get(&id(2), now), Some(&"b"));
        assert_eq!(c.get(&id(3), now), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut c = ResultCache::new(16, Duration::from_millis(100));
        let t0 = Instant::now();
        c.insert(id(1), "a", t0);
        assert_eq!(c.get(&id(1), t0), Some(&"a"));
        let later = t0 + Duration::from_millis(200);
        assert!(c.get(&id(1), later).is_none());
        // Eager expiry on insert also counts as eviction.
        c.insert(id(2), "b", t0);
        let evicted = c.insert(id(3), "c", later);
        assert_eq!(evicted, 1); // id(2) expired and was swept
        assert!(c.get(&id(2), later).is_none());
        assert!(c.get(&id(3), later).is_some());
    }

    #[test]
    fn reinsert_after_eviction_survives_stale_order_slot() {
        let mut c = ResultCache::new(1, LONG);
        let now = Instant::now();
        c.insert(id(1), "first", now);
        c.insert(id(2), "evicts-1", now);
        c.insert(id(1), "fresh", now); // re-insert under a new generation
        assert_eq!(c.get(&id(1), now), Some(&"fresh"));
        assert!(c.get(&id(2), now).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replacing_same_id_does_not_count_as_eviction() {
        let mut c = ResultCache::new(4, LONG);
        let now = Instant::now();
        assert_eq!(c.insert(id(1), "v1", now), 0);
        assert_eq!(c.insert(id(1), "v2", now), 0);
        assert_eq!(c.get(&id(1), now), Some(&"v2"));
        assert_eq!(c.len(), 1);
    }
}
