//! Bounded per-instance mailbox.
//!
//! Every live protocol instance owns one [`Mailbox`]: the router is its
//! single producer, the worker currently scheduled for the instance its
//! single consumer. The bound is the backpressure mechanism — when a
//! burst of network traffic outruns a worker, `try_push` fails instead
//! of buffering without limit, and the router counts the drop (P2P
//! retransmission re-delivers protocol messages later, so a dropped
//! share delays an instance rather than wedging it).
//!
//! The mailbox itself is just a mutex around a `VecDeque`; the lock is
//! held only to push or to swap the queue out, never while protocol
//! work runs.

use std::collections::VecDeque;
use theta_sync::Mutex;

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The mailbox is at capacity; the message was dropped.
    Full,
    /// The instance finished or the node is shutting down.
    Closed,
}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC-ish queue (in practice SPSC: router → scheduled
/// worker) carrying one instance's pending work.
pub struct Mailbox<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
}

impl<T> Mailbox<T> {
    /// An open mailbox holding at most `capacity` messages.
    pub fn new(capacity: usize) -> Mailbox<T> {
        Mailbox {
            inner: Mutex::new(Inner { queue: VecDeque::new(), closed: false }),
            capacity,
        }
    }

    /// Enqueues `msg` unless the mailbox is full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`Mailbox::close`]. The message is dropped either way.
    pub fn try_push(&self, msg: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("mailbox poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.queue.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.queue.push_back(msg);
        Ok(())
    }

    /// Moves every queued message into `out` (appended in FIFO order).
    pub fn drain_into(&self, out: &mut Vec<T>) {
        let mut inner = self.inner.lock().expect("mailbox poisoned");
        out.extend(inner.queue.drain(..));
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("mailbox poisoned").queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the mailbox and discards anything still queued; later
    /// pushes fail with [`PushError::Closed`].
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("mailbox poisoned");
        inner.closed = true;
        inner.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let mb = Mailbox::new(2);
        mb.try_push(1).unwrap();
        mb.try_push(2).unwrap();
        assert_eq!(mb.try_push(3), Err(PushError::Full));
        assert_eq!(mb.len(), 2);
        let mut out = Vec::new();
        mb.drain_into(&mut out);
        assert_eq!(out, vec![1, 2]);
        assert!(mb.is_empty());
        // Draining frees capacity again.
        mb.try_push(4).unwrap();
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn close_discards_and_refuses() {
        let mb = Mailbox::new(8);
        mb.try_push("x").unwrap();
        mb.close();
        assert!(mb.is_empty(), "close discards queued messages");
        assert_eq!(mb.try_push("y"), Err(PushError::Closed));
    }
}
