//! Randomized-interleaving accounting property for the mailbox and the
//! scheduled-flag handshake (the same production code the loom models
//! in `tests/loom.rs` check exhaustively on tiny schedules — this file
//! covers big random workloads on real OS threads instead).
//!
//! Property: for every mix of producers, message counts, capacities and
//! injected yield points,
//!
//! ```text
//! delivered + dropped == enqueued
//! ```
//!
//! with every message delivered exactly once, no drained batch ever
//! exceeding the mailbox capacity, and the run queue receiving at least
//! one token whenever something was delivered (no lost wakeups).

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use theta_orchestration::handshake::{drain_apply, schedule_core, unschedule};
use theta_orchestration::mailbox::{Mailbox, PushError};
use theta_sync::atomic::AtomicBool;

/// One run: `producers[p]` messages pushed from thread `p`, each push
/// optionally preceded by a yield (from the shared `yields` script) to
/// shake out different interleavings run to run.
fn run_mix(capacity: usize, producers: &[usize], yields: &[bool]) {
    let mailbox = Arc::new(Mailbox::<(usize, usize)>::new(capacity));
    let scheduled = Arc::new(AtomicBool::new(false));
    let dropped = Arc::new(AtomicUsize::new(0));
    let (tokens_tx, tokens_rx) = mpsc::channel::<()>();

    let enqueued: usize = producers.iter().sum();

    let handles: Vec<_> = producers
        .iter()
        .enumerate()
        .map(|(p, &count)| {
            let mailbox = mailbox.clone();
            let scheduled = scheduled.clone();
            let dropped = dropped.clone();
            let tokens_tx = tokens_tx.clone();
            let yields: Vec<bool> =
                yields.iter().cycle().skip(p).take(count).copied().collect();
            std::thread::spawn(move || {
                for (i, &pause) in yields.iter().enumerate() {
                    if pause {
                        std::thread::yield_now();
                    }
                    match schedule_core(&mailbox, &scheduled, (p, i), || {
                        tokens_tx.send(()).expect("consumer alive");
                    }) {
                        Ok(()) => {}
                        Err(PushError::Full) => {
                            dropped.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(PushError::Closed) => panic!("mailbox never closed here"),
                    }
                }
            })
        })
        .collect();
    // The consumer exits when every producer-held sender is gone.
    drop(tokens_tx);

    // Consumer: exactly the worker-pool loop — drain to empty, clear the
    // scheduled flag, and keep going locally when unschedule detects a
    // message that raced in after the drain.
    let mut delivered: Vec<(usize, usize)> = Vec::new();
    let mut scratch = Vec::new();
    while tokens_rx.recv().is_ok() {
        loop {
            drain_apply(&mailbox, &mut scratch, |msg| delivered.push(msg));
            if !unschedule(&mailbox, &scheduled) {
                break;
            }
        }
    }
    for h in handles {
        h.join().expect("producer");
    }
    // The last producer's token may have been consumed before its
    // message landed — one final pass picks up any straggler.
    loop {
        drain_apply(&mailbox, &mut scratch, |msg| delivered.push(msg));
        if !unschedule(&mailbox, &scheduled) {
            break;
        }
    }

    let dropped = dropped.load(Ordering::SeqCst);
    assert_eq!(
        delivered.len() + dropped,
        enqueued,
        "conservation: delivered + dropped == enqueued"
    );
    assert!(mailbox.is_empty(), "nothing may be stranded");

    // Exactly-once, per producer, in per-producer FIFO order.
    for (p, &count) in producers.iter().enumerate() {
        let mine: Vec<usize> =
            delivered.iter().filter(|(q, _)| *q == p).map(|&(_, i)| i).collect();
        assert!(mine.windows(2).all(|w| w[0] < w[1]), "producer {p} reordered: {mine:?}");
        let dropped_here = count - mine.len();
        assert!(dropped_here <= count, "producer {p} over-delivered");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mailbox_accounting_balances_under_random_interleavings(
        capacity in 1usize..16,
        producers in proptest::collection::vec(1usize..24, 1..5),
        yields in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        run_mix(capacity, &producers, &yields);
    }

    #[test]
    fn unbounded_enough_mailbox_never_drops(
        producers in proptest::collection::vec(1usize..16, 1..5),
        yields in proptest::collection::vec(any::<bool>(), 1..32),
    ) {
        // Capacity ≥ total enqueued: conservation collapses to
        // delivered == enqueued with zero drops.
        let total: usize = producers.iter().sum();
        run_mix(total, &producers, &yields);
    }
}
